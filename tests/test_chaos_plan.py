"""Unit tests for fault plans: validation, serialization, randomization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import RATE_FIELDS, FaultPlan, FaultPlanError


class TestValidation:
    def test_default_plan_is_quiet(self):
        plan = FaultPlan()
        assert plan.quiet
        assert plan.active_sites == {}

    @pytest.mark.parametrize("field_name", sorted(RATE_FIELDS.values()))
    def test_rate_out_of_range_names_the_field(self, field_name):
        with pytest.raises(FaultPlanError, match=field_name):
            FaultPlan(**{field_name: 1.5})
        with pytest.raises(FaultPlanError, match=field_name):
            FaultPlan(**{field_name: -0.1})

    def test_rate_must_be_numeric(self):
        with pytest.raises(FaultPlanError, match="worker_crash"):
            FaultPlan(worker_crash="high")
        with pytest.raises(FaultPlanError, match="worker_crash"):
            FaultPlan(worker_crash=True)

    def test_seed_must_be_int(self):
        with pytest.raises(FaultPlanError, match="seed"):
            FaultPlan(seed="zero")

    def test_knob_validation(self):
        with pytest.raises(FaultPlanError, match="hang_seconds"):
            FaultPlan(hang_seconds=-1)
        with pytest.raises(FaultPlanError, match="max_deliveries"):
            FaultPlan(max_deliveries=0)
        with pytest.raises(FaultPlanError, match="dead_letter_capacity"):
            FaultPlan(dead_letter_capacity=0)
        with pytest.raises(FaultPlanError, match="queue_capacity"):
            FaultPlan(queue_capacity=0)
        with pytest.raises(FaultPlanError, match="hang_timeout"):
            FaultPlan(hang_timeout=0)

    def test_unknown_site_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault site"):
            FaultPlan().rate("disk.full")


class TestSerialization:
    def test_json_round_trip(self):
        plan = FaultPlan(seed=9, worker_crash=0.05, repair_noop=0.2,
                         max_deliveries=2, queue_capacity=32,
                         hang_timeout=0.5)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_unknown_fields_rejected_by_name(self):
        with pytest.raises(FaultPlanError, match="disk_full"):
            FaultPlan.from_dict({"seed": 1, "disk_full": 0.3})

    def test_non_object_document_rejected(self):
        with pytest.raises(FaultPlanError, match="JSON object"):
            FaultPlan.from_json("[1, 2, 3]")

    def test_invalid_json_rejected(self):
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            FaultPlan.from_json("{seed: nope")

    def test_bad_value_surfaces_through_from_json(self):
        with pytest.raises(FaultPlanError, match="worker_crash"):
            FaultPlan.from_json('{"worker_crash": 3.0}')


class TestRandomized:
    def test_pure_function_of_seed(self):
        assert FaultPlan.randomized(5) == FaultPlan.randomized(5)
        assert FaultPlan.randomized(5) != FaultPlan.randomized(6)

    def test_rates_bounded_by_max_rate(self):
        for seed in range(50):
            plan = FaultPlan.randomized(seed, max_rate=0.2)
            for field_name in RATE_FIELDS.values():
                assert 0.0 <= getattr(plan, field_name) <= 0.2

    def test_sweeps_both_sparse_and_dense_mixes(self):
        site_counts = [len(FaultPlan.randomized(seed).active_sites)
                       for seed in range(50)]
        assert min(site_counts) <= 2
        assert max(site_counts) >= 6

    def test_describe_mentions_active_sites(self):
        plan = FaultPlan(seed=3, worker_crash=0.1)
        assert "worker.crash" in plan.describe()
        assert "quiet" in FaultPlan(seed=3).describe()


@given(st.builds(
    FaultPlan,
    seed=st.integers(min_value=0, max_value=2**31),
    **{name: st.floats(min_value=0.0, max_value=1.0)
       for name in RATE_FIELDS.values()},
))
@settings(max_examples=50, deadline=None)
def test_every_valid_plan_survives_a_round_trip(plan):
    restored = FaultPlan.from_json(plan.to_json())
    assert restored == plan
    assert restored.active_sites == plan.active_sites
