"""Property-based tests (hypothesis) for framework-level invariants.

The invariants a downstream user implicitly relies on:

* hardening is total and idempotent under *any* sequence of drift;
* the protection loop restores compliance after any package drift mix;
* auditpol's text interface round-trips any flag combination;
* random walks only ever take edges the model has;
* the RESA -> pattern -> LTL chain never emits an unparseable formula.
"""

from hypothesis import given, settings, strategies as st

from repro.environment import hardened_ubuntu_host, hardened_windows_host
from repro.environment.auditpol import SimulatedAuditPol
from repro.gwt.graph import GraphModel, random_walk
from repro.ltl.parser import parse_ltl
from repro.rqcode import default_catalog
from repro.rqcode.concepts import CheckStatus

CATALOG = default_catalog()

_UBUNTU_DRIFTS = st.lists(
    st.sampled_from([
        ("install", "nis"),
        ("install", "rsh-server"),
        ("install", "telnetd"),
        ("remove", "aide"),
        ("remove", "vlock"),
        ("remove", "libpam-pkcs11"),
        ("config", ("/etc/ssh/sshd_config", "PermitEmptyPasswords",
                    "yes")),
        ("config", ("/etc/login.defs", "ENCRYPT_METHOD", "MD5")),
        ("service", "rsyslog"),
        ("service", "ssh"),
    ]),
    max_size=8,
)


def _apply_drift(host, drift):
    kind, payload = drift
    if kind == "install":
        host.drift_install_package(payload)
    elif kind == "remove":
        host.drift_remove_package(payload)
    elif kind == "config":
        host.drift_config_value(*payload)
    elif kind == "service":
        host.drift_stop_service(payload)


@settings(max_examples=40, deadline=None)
@given(drifts=_UBUNTU_DRIFTS)
def test_hardening_is_total_under_any_drift(drifts):
    host = hardened_ubuntu_host()
    for drift in drifts:
        _apply_drift(host, drift)
    report = CATALOG.harden_host(host)
    assert report.compliance_ratio == 1.0
    # Idempotence: a second campaign changes nothing.
    second = CATALOG.harden_host(host)
    assert second.remediated == 0


@settings(max_examples=40, deadline=None)
@given(drifts=_UBUNTU_DRIFTS)
def test_protection_loop_restores_compliance(drifts):
    from repro.core import VeriDevOpsOrchestrator

    host = hardened_ubuntu_host()
    orchestrator = VeriDevOpsOrchestrator()
    orchestrator.ingest_standards("ubuntu")
    loop = orchestrator.start_protection(host)
    for drift in drifts:
        _apply_drift(host, drift)
    report = orchestrator.catalog.check_host(host)
    assert report.compliance_ratio == 1.0, [
        r.finding_id for r in report.results
        if r.after is not CheckStatus.PASS]
    loop.stop()


@settings(max_examples=60, deadline=None)
@given(
    subcategory=st.sampled_from(
        ["Logon", "User Account Management", "Sensitive Privilege Use",
         "Account Lockout", "Special Logon"]),
    success=st.booleans(),
    failure=st.booleans(),
)
def test_auditpol_text_interface_round_trips(subcategory, success, failure):
    tool = SimulatedAuditPol()
    flags = []
    flags.append(f"/success:{'enable' if success else 'disable'}")
    flags.append(f"/failure:{'enable' if failure else 'disable'}")
    tool.run(f'/set /subcategory:"{subcategory}" ' + " ".join(flags))
    output = tool.run(f'/get /subcategory:"{subcategory}"')
    expected = tool.store.get(subcategory).render()
    assert expected in output


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       max_steps=st.integers(min_value=0, max_value=60))
def test_random_walk_stays_inside_the_model(seed, max_steps):
    model = GraphModel("m", "a")
    model.add_state("b")
    model.add_state("c")
    model.add_action("a", "b", "ab")
    model.add_action("b", "c", "bc")
    model.add_action("c", "a", "ca")
    model.add_action("b", "a", "ba")
    case = random_walk(model, seed=seed, max_steps=max_steps)
    assert len(case.steps) <= max_steps
    valid_actions = {action for _, _, action in model.actions}
    assert all(step.action in valid_actions for step in case.steps)
    # The action sequence must trace a connected path from the start.
    current = model.start
    for step in case.steps:
        targets = [
            v for u, v, data in model.graph.edges(data=True)
            if u == current and data["action"] == step.action
        ]
        assert targets, (current, step.action)
        current = targets[0]


_SYSTEMS = st.sampled_from([
    "authentication service", "session manager", "audit subsystem",
    "gateway", "update client",
])
_ACTIONS = st.sampled_from([
    "lock the account", "record the event", "alert the operator",
    "encrypt stored credentials", "terminate the session",
])
_CONDITIONS = st.sampled_from([
    "intrusion is detected", "3 consecutive failures occur",
    "a policy violation occurs", "the session is idle",
])


@settings(max_examples=80, deadline=None)
@given(
    system=_SYSTEMS, action=_ACTIONS, condition=_CONDITIONS,
    shape=st.sampled_from(["B1", "B3", "B4", "B5"]),
    bound=st.integers(min_value=1, max_value=600),
)
def test_resa_to_ltl_never_emits_unparseable_formulas(
        system, action, condition, shape, bound):
    from repro.resa import match_boilerplate, to_pattern
    from repro.specpatterns import to_ltl
    from repro.specpatterns.ltl_mappings import PatternScopeUnsupported

    if shape == "B1":
        text = f"The {system} shall {action}."
    elif shape == "B3":
        text = f"When {condition}, the {system} shall {action}."
    elif shape == "B4":
        text = (f"When {condition}, the {system} shall {action} "
                f"within {bound} seconds.")
    else:
        text = f"The {system} shall not {action}."
    structured = match_boilerplate("R", text)
    pattern, scope = to_pattern(structured)
    try:
        formula = to_ltl(pattern, scope)
    except PatternScopeUnsupported:
        return  # outside the LTL table is acceptable; crashing is not
    # The rendered formula must parse back.
    assert parse_ltl(str(formula)) == formula
