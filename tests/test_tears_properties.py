"""Property-based tests for the TEARS expression evaluator.

The evaluator is cross-checked against Python's own semantics on
randomly generated expression trees, layered the way the language is
meant to be used: arithmetic over signals, comparisons over arithmetic,
boolean connectives over comparisons.  (Nesting booleans *inside*
arithmetic diverges from Python by design: TEARS booleans are strictly
0/1 where Python's ``and``/``or`` return an operand.)
"""

import math

from hypothesis import given, settings, strategies as st

from repro.tears.expr import parse_expr

SIGNALS = ("a", "b", "c")


@st.composite
def arithmetic_trees(draw, depth=0):
    """(tears_text, python_text) pairs of pure arithmetic."""
    if depth >= 3 or draw(st.booleans()):
        if draw(st.booleans()):
            value = draw(st.integers(min_value=0, max_value=20))
            return (str(value), str(value))
        name = draw(st.sampled_from(SIGNALS))
        return (name, name)
    kind = draw(st.sampled_from(["add", "sub", "mul", "abs", "neg"]))
    if kind == "abs":
        tears, python = draw(arithmetic_trees(depth=depth + 1))
        return (f"abs({tears})", f"abs({python})")
    if kind == "neg":
        tears, python = draw(arithmetic_trees(depth=depth + 1))
        return (f"-({tears})", f"-({python})")
    left_t, left_p = draw(arithmetic_trees(depth=depth + 1))
    right_t, right_p = draw(arithmetic_trees(depth=depth + 1))
    symbol = {"add": "+", "sub": "-", "mul": "*"}[kind]
    return (f"({left_t}) {symbol} ({right_t})",
            f"(({left_p}) {symbol} ({right_p}))")


@st.composite
def comparison_trees(draw):
    left_t, left_p = draw(arithmetic_trees())
    right_t, right_p = draw(arithmetic_trees())
    operator = draw(st.sampled_from(["==", "!=", "<", "<=", ">", ">="]))
    return (f"({left_t}) {operator} ({right_t})",
            f"(({left_p}) {operator} ({right_p}))")


@st.composite
def boolean_trees(draw, depth=0):
    if depth >= 2 or draw(st.booleans()):
        return draw(comparison_trees())
    kind = draw(st.sampled_from(["and", "or", "not"]))
    if kind == "not":
        tears, python = draw(boolean_trees(depth=depth + 1))
        return (f"not ({tears})", f"(not ({python}))")
    left_t, left_p = draw(boolean_trees(depth=depth + 1))
    right_t, right_p = draw(boolean_trees(depth=depth + 1))
    return (f"({left_t}) {kind} ({right_t})",
            f"(({left_p}) {kind} ({right_p}))")


def samples():
    return st.fixed_dictionaries({
        name: st.integers(min_value=0, max_value=9).map(float)
        for name in SIGNALS
    })


def py_eval(text, sample):
    return eval(  # noqa: S307 - sealed namespace, test only
        text, {"__builtins__": {"abs": abs}}, dict(sample))


@settings(max_examples=300, deadline=None)
@given(tree=arithmetic_trees(), sample=samples())
def test_arithmetic_matches_python(tree, sample):
    tears_text, python_text = tree
    assert math.isclose(parse_expr(tears_text).evaluate(sample),
                        py_eval(python_text, sample))


@settings(max_examples=300, deadline=None)
@given(tree=comparison_trees(), sample=samples())
def test_comparisons_match_python(tree, sample):
    tears_text, python_text = tree
    actual = parse_expr(tears_text).evaluate(sample)
    assert actual in (0.0, 1.0)
    assert bool(actual) == py_eval(python_text, sample)


@settings(max_examples=300, deadline=None)
@given(tree=boolean_trees(), sample=samples())
def test_boolean_connectives_match_python(tree, sample):
    tears_text, python_text = tree
    actual = parse_expr(tears_text).evaluate(sample)
    assert actual in (0.0, 1.0)
    assert bool(actual) == bool(py_eval(python_text, sample))


@settings(max_examples=100, deadline=None)
@given(tree=boolean_trees())
def test_signal_listing_is_sound(tree):
    tears_text, _ = tree
    expr = parse_expr(tears_text)
    listed = set(expr.signals())
    # Evaluating with exactly the listed signals must not raise.
    expr.evaluate({name: 1.0 for name in listed})


@settings(max_examples=100, deadline=None)
@given(tree=boolean_trees(), sample=samples())
def test_parse_is_deterministic(tree, sample):
    tears_text, _ = tree
    first = parse_expr(tears_text).evaluate(sample)
    second = parse_expr(tears_text).evaluate(sample)
    assert first == second
