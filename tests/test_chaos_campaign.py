"""Campaigns: validation, JSON round-trips, and replay determinism.

The replay property at the heart of the campaign layer: a campaign
re-hydrated from its serialized JSON and re-run against an identically
built fleet must reproduce the original run byte-for-byte — same
decision digest, same incident signature, same stage windows, same
invariant outcomes.
"""

import pytest

from repro.chaos import (
    Campaign,
    CampaignError,
    CampaignStage,
    FaultPlan,
    run_campaign,
)
from repro.scenarios import get_scenario

SCENARIO = get_scenario("zoned-perimeter")


def stage(name="probe", **overrides):
    settings = dict(name=name, plan=FaultPlan(seed=0))
    settings.update(overrides)
    return CampaignStage(**settings)


class TestCampaignValidation:
    def test_stage_rejects_bad_rounds(self):
        with pytest.raises(CampaignError, match="rounds"):
            stage(rounds=0)

    def test_stage_rejects_bad_extend_rate(self):
        with pytest.raises(CampaignError, match="extend_rate"):
            stage(extend_rate=1.5)

    def test_stage_rejects_non_string_targets(self):
        with pytest.raises(CampaignError, match="target_hosts"):
            stage(target_hosts=(1, 2))

    def test_campaign_rejects_empty_stages(self):
        with pytest.raises(CampaignError, match="non-empty"):
            Campaign(name="c", seed=1, stages=())

    def test_campaign_rejects_duplicate_stage_names(self):
        with pytest.raises(CampaignError, match="duplicate"):
            Campaign(name="c", seed=1,
                     stages=(stage("a"), stage("a")))

    def test_unknown_fields_rejected_by_name(self):
        with pytest.raises(CampaignError, match="sneaky"):
            Campaign.from_dict({"name": "c", "seed": 1, "stages": [],
                                "sneaky": True})

    def test_stage_plan_folds_campaign_seed(self):
        campaign = Campaign(
            name="c", seed=99,
            stages=(stage(plan=FaultPlan(seed=5, repair_noop=0.1)),))
        folded = campaign.stage_plan(0)
        assert folded.seed == 99
        assert folded.repair_noop == 0.1


class TestCampaignSerialization:
    def test_json_round_trip_preserves_everything(self):
        campaign = Campaign(
            name="two-phase", seed=7,
            stages=(stage("recon", capec_ids=("CAPEC-169",),
                          target_hosts=("h-00",), rounds=2,
                          extend_rate=0.25, max_extra_rounds=1),
                    stage("exploit",
                          plan=FaultPlan(seed=0, session_error=0.2))))
        assert Campaign.from_json(campaign.to_json()) == campaign

    def test_compiled_scenario_campaign_round_trips(self):
        campaign = SCENARIO.compile_campaign()
        again = Campaign.from_json(campaign.to_json())
        assert again == campaign
        assert again.to_json() == campaign.to_json()

    def test_malformed_json_rejected(self):
        with pytest.raises(CampaignError, match="valid JSON"):
            Campaign.from_json("{nope")


class TestReplayDeterminism:
    """Serialize -> re-hydrate -> re-run == the original run."""

    @pytest.fixture(scope="class")
    def runs(self):
        campaign = SCENARIO.compile_campaign()
        serialized = campaign.to_json()

        def one_run(campaign):
            return run_campaign(
                campaign,
                fleet=SCENARIO.build_fleet(),
                shards=2,
                drift=SCENARIO.apply_drift,
                placement=SCENARIO.shard_hints(2))

        first = one_run(campaign)
        second = one_run(Campaign.from_json(serialized))
        return first, second

    def test_decision_digests_agree(self, runs):
        first, second = runs
        assert first.digest == second.digest
        assert first.decisions == second.decisions
        assert first.injections == second.injections

    def test_incident_signatures_agree(self, runs):
        first, second = runs
        assert first.signature() == second.signature()
        assert first.drifts == second.drifts

    def test_stage_windows_agree(self, runs):
        first, second = runs
        assert [(w.stage, w.rounds, w.targets, w.clocks, w.decisions)
                for w in first.stage_windows] \
            == [(w.stage, w.rounds, w.targets, w.clocks, w.decisions)
                for w in second.stage_windows]

    def test_invariants_hold_on_both_runs(self, runs):
        for result in runs:
            result.invariants.raise_if_violated()
            result.stage_invariants.raise_if_violated()
            assert result.fully_repaired

    def test_stage_summary_is_plain_data(self, runs):
        first, _ = runs
        rows = first.stage_summary()
        assert [row["stage"] for row in rows] \
            == ["recon", "exploit", "persist"]
        assert all(row["rounds"] >= 1 for row in rows)
