"""CWE/CAPEC catalogue records through the live re-arm plane.

The acceptance property for the catalogue front-ends: the bundled
CWE weakness and CAPEC attack-pattern corpora lower to monitorable IR
(``G !weakness_*`` / ``G !attack_*``), ride a :class:`ReqStream` delta
into a *running* :class:`SocService` on either backend, and from that
moment matching weakness/attack events raise incidents — no restart,
no gap.
"""

import pytest

from repro.environment import hardened_ubuntu_host
from repro.reqs import default_registry
from repro.reqs.stream import ReqStream
from repro.rqcode import default_catalog
from repro.soc.rearm import Rearmer, plan_for_records
from repro.soc.service import SocService

CATALOG = default_catalog()
REGISTRY = default_registry()


def arm_empty(hosts, backend, shards=2):
    plans = {host.name: plan_for_records([], host, CATALOG)
             for host in hosts}
    return SocService(hosts, CATALOG, plans, shards=shards, seed=3,
                      backend=backend).start()


class TestCatalogueLowering:
    @pytest.mark.parametrize("frontend,prefix", [
        ("cwe", "weakness_cwe_"), ("capec", "attack_capec_")])
    def test_corpus_lowers_to_monitorable_absence(self, frontend, prefix):
        irs = REGISTRY.lower_bundled(frontend)
        assert irs
        for record in irs:
            assert record.formalization is not None
            assert prefix in record.formalization.ltl
            assert record.provenance[0].kind == frontend


class TestLiveCatalogueRearm:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_cwe_and_capec_feed_rearms_live(self, backend):
        records = (REGISTRY.lower_bundled("cwe")
                   + REGISTRY.lower_bundled("capec"))
        hosts = [hardened_ubuntu_host(f"cat-{i:02d}") for i in range(2)]
        soc = arm_empty(hosts, backend)
        stream = ReqStream()
        try:
            delta = stream.diff(records)
            report = Rearmer(soc).apply(delta)
            stream.commit(delta)
            assert report.summary()["added"] > 0
            for host in hosts:
                monitors, _ = soc.plans[host.name]
                assert set(monitors) == {r.rid for r in records}
            # A weakness event and an attack event, different hosts.
            hosts[0].events.emit("weakness_cwe_20")
            hosts[1].events.emit("attack_capec_66")
            soc.drain()
        finally:
            soc.stop()
        by_host = soc.incidents_by_host()
        assert "CWE-REQ-20" in {i.req_id for i in by_host["cat-00"]}
        assert "CAPEC-REQ-66" in {i.req_id for i in by_host["cat-01"]}

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_catalogue_retirement_stops_detection(self, backend):
        records = REGISTRY.lower_bundled("capec")
        hosts = [hardened_ubuntu_host("cat-00")]
        soc = arm_empty(hosts, backend, shards=1)
        stream = ReqStream()
        rearmer = Rearmer(soc)     # one per service: tokens must not repeat
        try:
            delta = stream.diff(records)
            rearmer.apply(delta)
            stream.commit(delta)
            retire = stream.diff([], remove_rids=["CAPEC-REQ-66"])
            rearmer.apply(retire)
            stream.commit(retire)
            hosts[0].events.emit("attack_capec_66")
            soc.drain()
        finally:
            soc.stop()
        assert all(incident.req_id != "CAPEC-REQ-66"
                   for incident in soc.incidents())
