"""Scheduler, task linker, event bus, policy, and chaos-seam tests."""

import threading
import time

import pytest

from repro.chaos import ChaosController, FaultPlan
from repro.sched.events import EventBus
from repro.sched.journal import Journal
from repro.sched.policy import (BreakerBank, PolicyRunner, RetryPolicy,
                                SINGLE_ATTEMPT)
from repro.sched.scheduler import BatchReport, Scheduler, SchedulerCrash
from repro.sched.task import Task, TaskPolicy, TaskState, conflicts, link


class TestLinker:
    def test_disjoint_tasks_have_no_edges(self):
        tasks = [Task(name="a", run=lambda: None, writes=("x",)),
                 Task(name="b", run=lambda: None, writes=("y",))]
        deps, ancestors = link(tasks)
        assert deps == [set(), set()]
        assert ancestors == [set(), set()]

    def test_conflict_rules_match_wave_partitioner(self):
        writer = Task(name="w", run=lambda: None, writes=("k",))
        rewriter = Task(name="w2", run=lambda: None, writes=("k",))
        reader = Task(name="r", run=lambda: None, reads=("k",))
        other = Task(name="o", run=lambda: None, reads=("z",))
        assert conflicts(writer, rewriter)        # write/write
        assert conflicts(writer, reader)          # read-after-write
        assert conflicts(reader, rewriter)        # write-after-read
        assert not conflicts(reader, other)

    def test_undeclared_task_is_a_barrier(self):
        tasks = [Task(name="a", run=lambda: None, writes=("x",)),
                 Task(name="bar", run=lambda: None),
                 Task(name="b", run=lambda: None, writes=("y",))]
        deps, _ = link(tasks)
        assert deps[1] == {0}
        assert deps[2] == {1}

    def test_explicit_deps_and_ancestors(self):
        tasks = [Task(name="a", run=lambda: None, writes=("x",)),
                 Task(name="b", run=lambda: None, writes=("y",),
                      deps=("a",)),
                 Task(name="c", run=lambda: None, writes=("z",),
                      deps=("b",))]
        deps, ancestors = link(tasks)
        assert deps == [set(), {0}, {1}]
        assert ancestors[2] == {0, 1}

    def test_duplicate_names_rejected(self):
        tasks = [Task(name="a", run=lambda: None),
                 Task(name="a", run=lambda: None)]
        with pytest.raises(ValueError, match="duplicate task name"):
            link(tasks)

    def test_forward_dep_rejected(self):
        tasks = [Task(name="a", run=lambda: None, writes=("x",),
                      deps=("b",)),
                 Task(name="b", run=lambda: None, writes=("y",))]
        with pytest.raises(ValueError, match="earlier task"):
            link(tasks)


class TestEventBus:
    def test_publish_subscribe_and_history(self):
        bus = EventBus()
        seen = []
        handle = bus.subscribe(seen.append)
        bus.publish("task.started", task="a")
        bus.publish("task.completed", task="a", data={"attempts": 1})
        bus.unsubscribe(handle)
        bus.publish("task.started", task="b")
        assert [event.kind for event in seen] == [
            "task.started", "task.completed"]
        assert len(bus) == 3
        assert [event.task for event
                in bus.history(kinds=("task.started",))] == ["a", "b"]

    def test_replay_feeds_recorded_history(self):
        bus = EventBus()
        bus.publish("a")
        bus.publish("b")
        replayed = []
        assert bus.replay(replayed.append) == 2
        assert [event.seq for event in replayed] == [0, 1]


class TestPolicyRunner:
    def test_succeeds_without_retries(self):
        outcome = PolicyRunner(retry=SINGLE_ATTEMPT).run(
            lambda index: (True, "ok"))
        assert outcome.success and outcome.value == "ok"
        assert outcome.attempts == 1 and outcome.ran

    def test_retries_until_success_with_backoff(self):
        sleeps = []
        failures = []
        calls = []

        def attempt(index):
            calls.append(index)
            return (index == 2, index)

        outcome = PolicyRunner(
            retry=RetryPolicy(max_attempts=4, backoff_base=0.01,
                              jitter=0.0),
            sleeper=sleeps.append,
            on_attempt_failed=failures.append).run(attempt)
        assert outcome.success and outcome.attempts == 3
        assert calls == [0, 1, 2]
        assert failures == [0, 1]
        assert sleeps == [0.01, 0.02]   # exponential, jitter-free

    def test_exception_contained_not_propagated(self):
        contained = []

        def attempt(index):
            raise RuntimeError("boom")

        outcome = PolicyRunner(
            retry=RetryPolicy(max_attempts=2, backoff_base=0.0,
                              jitter=0.0),
            on_exception=lambda exc: contained.append(exc) or "sub").run(
                attempt)
        assert not outcome.success
        assert isinstance(outcome.error, RuntimeError)
        assert outcome.value == "sub"
        assert len(contained) == 2

    def test_breaker_gates_admission(self):
        bank = BreakerBank(failure_threshold=2, cooldown=99)
        breaker = bank.get("backend")
        runner = PolicyRunner(retry=SINGLE_ATTEMPT)
        for _ in range(2):
            runner.run(lambda index: (False, None), breaker=breaker)
        outcome = runner.run(lambda index: (True, "x"), breaker=breaker)
        assert not outcome.ran and not outcome.success

    def test_precheck_short_circuits_without_attempts(self):
        attempted = []
        outcome = PolicyRunner(retry=SINGLE_ATTEMPT).run(
            lambda index: attempted.append(index) or (True, None),
            precheck=lambda: (True, "cached"))
        assert outcome.prechecked and outcome.success
        assert outcome.value == "cached"
        assert outcome.attempts == 0 and not attempted


def _report_states(report: BatchReport):
    return {result.name: result.state for result in report.results}


class TestSchedulerExecution:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_results_in_declaration_order(self, workers):
        tasks = [Task(name=f"t{index}", run=lambda i=index: i,
                      writes=(f"k{index}",))
                 for index in range(5)]
        report = Scheduler(workers=workers).run_batch(tasks)
        assert report.passed
        assert [result.name for result in report.results] == [
            f"t{index}" for index in range(5)]
        assert [result.value for result in report.results] == list(range(5))

    @pytest.mark.parametrize("workers", [1, 4])
    def test_dependency_order_respected(self, workers):
        order = []
        lock = threading.Lock()

        def run(name):
            with lock:
                order.append(name)

        tasks = [Task(name="w", run=lambda: run("w"), writes=("k",)),
                 Task(name="r", run=lambda: run("r"), reads=("k",)),
                 Task(name="r2", run=lambda: run("r2"), reads=("k",))]
        assert Scheduler(workers=workers).run_batch(tasks).passed
        assert order[0] == "w"

    def test_independent_tasks_overlap_in_parallel(self):
        barrier = threading.Barrier(2, timeout=5)
        tasks = [Task(name=f"t{index}", run=barrier.wait,
                      writes=(f"k{index}",))
                 for index in range(2)]
        # Each task blocks until the other runs: only true overlap passes.
        assert Scheduler(workers=2).run_batch(tasks).passed

    @pytest.mark.parametrize("workers", [1, 4])
    def test_failure_skips_dependents_and_fail_fast(self, workers):
        tasks = [Task(name="boom", run=self._boom, writes=("k",)),
                 Task(name="dependent", run=lambda: None, reads=("k",)),
                 Task(name="later", run=lambda: None, writes=("z",))]
        report = Scheduler(workers=workers).run_batch(tasks)
        states = _report_states(report)
        assert not report.passed
        assert states["boom"] is TaskState.FAILED
        assert states["dependent"] is TaskState.SKIPPED
        if workers == 1:
            # Serial fail-fast is deterministic; in parallel an
            # independent task already in flight is allowed to finish.
            assert states["later"] is TaskState.SKIPPED
        else:
            assert states["later"] in (TaskState.SKIPPED,
                                       TaskState.SUCCEEDED)

    def test_fail_fast_off_runs_independent_tasks(self):
        tasks = [Task(name="boom", run=self._boom, writes=("k",)),
                 Task(name="other", run=lambda: "ok", writes=("z",))]
        report = Scheduler(workers=1).run_batch(tasks, fail_fast=False)
        states = _report_states(report)
        assert states["boom"] is TaskState.FAILED
        assert states["other"] is TaskState.SUCCEEDED

    def test_value_level_failure_via_ok_predicate(self):
        tasks = [Task(name="soft", run=lambda: {"passed": False},
                      ok=lambda value: value["passed"])]
        report = Scheduler(workers=1).run_batch(tasks)
        assert not report.passed
        assert report.results[0].state is TaskState.FAILED
        assert report.results[0].error is None

    def test_raise_errors_filters_by_type(self):
        tasks = [Task(name="boom", run=self._boom)]
        report = Scheduler(workers=1).run_batch(tasks)
        report.raise_errors(only=(KeyError,))   # contained: wrong type
        with pytest.raises(RuntimeError, match="boom"):
            report.raise_errors()

    def test_task_names_unique_across_run(self):
        scheduler = Scheduler(workers=1)
        scheduler.run_batch([Task(name="a", run=lambda: None)])
        with pytest.raises(ValueError, match="already scheduled"):
            scheduler.run_batch([Task(name="a", run=lambda: None)])

    def test_events_published_for_lifecycle(self):
        bus = EventBus()
        scheduler = Scheduler(workers=1, bus=bus)
        scheduler.run_batch([
            Task(name="good", run=lambda: None, writes=("a",)),
            Task(name="bad", run=self._boom, writes=("b",)),
            Task(name="blocked", run=lambda: None, reads=("b",)),
        ], fail_fast=False)
        kinds = [(event.kind, event.task) for event in bus.history()]
        assert ("task.completed", "good") in kinds
        assert ("task.failed", "bad") in kinds
        assert ("task.skipped", "blocked") in kinds

    @staticmethod
    def _boom():
        raise RuntimeError("boom")


class TestSchedulerPolicies:
    def test_retry_policy_drives_reattempts(self):
        calls = []

        def flaky():
            calls.append(len(calls))
            if len(calls) < 3:
                raise RuntimeError("transient")
            return "ok"

        bus = EventBus()
        policy = TaskPolicy(retry=RetryPolicy(
            max_attempts=5, backoff_base=0.0, jitter=0.0))
        report = Scheduler(workers=1, bus=bus).run_batch(
            [Task(name="flaky", run=flaky, policy=policy)])
        assert report.passed
        assert report.results[0].attempts == 3
        assert len(bus.history(kinds=("task.retry",))) == 2

    def test_breaker_key_shares_budget_across_tasks(self):
        breakers = BreakerBank(failure_threshold=2, cooldown=99)
        policy = TaskPolicy(retry=SINGLE_ATTEMPT, breaker_key="backend")

        def boom():
            raise RuntimeError("down")

        tasks = [Task(name=f"t{index}", run=boom, writes=(f"k{index}",),
                      policy=policy)
                 for index in range(4)]
        report = Scheduler(workers=1, breakers=breakers).run_batch(
            tasks, fail_fast=False)
        errors = [str(result.error) for result in report.results]
        assert "boom" not in errors[0]
        # First two burn the threshold; the rest are absorbed open-circuit.
        assert all("circuit breaker open" in error
                   for error in errors[2:])
        assert breakers.get("backend").skipped == 2


class TestChaosSeam:
    def _effective(self, counters, count=4):
        return [Task(name=f"t{index}",
                     run=(lambda i=index: (counters.__setitem__(
                         f"t{i}", counters.get(f"t{i}", 0) + 1)
                         or {"i": i})),
                     effective=True)
                for index in range(count)]

    def test_crash_after_budget(self, tmp_path):
        journal = Journal(str(tmp_path / "j.jsonl"))
        counters = {}
        scheduler = Scheduler(workers=1, journal=journal, crash_after=2)
        with pytest.raises(SchedulerCrash):
            scheduler.run_batch(self._effective(counters))
        assert len(journal.completions()) == 2

    def test_chaos_plan_crash_and_torn_tail(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        plan = FaultPlan(seed=7, sched_crash=1.0, sched_truncate=1.0)
        scheduler = Scheduler(workers=1, journal=Journal(path),
                              chaos=ChaosController(plan))
        with pytest.raises(SchedulerCrash):
            scheduler.run_batch(self._effective({}))
        reloaded = Journal(path)
        assert reloaded.torn_tail          # the crash tore the tail
        assert len(reloaded.completions()) == 0

    def test_generation_key_lets_resume_make_progress(self, tmp_path):
        """A resumed generation draws fresh chaos decisions."""
        path = str(tmp_path / "j.jsonl")
        plan = FaultPlan(seed=3, sched_crash=0.6)
        counters = {}
        generation = 0
        for _ in range(40):     # far more generations than ever needed
            journal = Journal(path)
            scheduler = Scheduler(
                workers=1, journal=journal,
                chaos=ChaosController(plan), generation=generation)
            try:
                report = scheduler.run_batch(self._effective(counters))
            except SchedulerCrash:
                generation += 1
                continue
            assert report.passed
            break
        else:
            pytest.fail("crash-resume loop never converged")
        final = Journal(path)
        assert len(final.completions()) == 4
        # Exactly-once effective execution across all generations.
        assert all(count == 1 for count in counters.values())
        assert all(count == 1 for count
                   in final.completion_counts().values())

    def test_adopted_tasks_do_not_recrash(self, tmp_path):
        """The crash budget only counts *fresh* completions."""
        path = str(tmp_path / "j.jsonl")
        counters = {}
        with pytest.raises(SchedulerCrash):
            Scheduler(workers=1, journal=Journal(path),
                      crash_after=3).run_batch(self._effective(counters))
        journal = Journal(path)
        report = Scheduler(workers=1, journal=journal,
                           crash_after=3).run_batch(
            self._effective(counters))
        assert report.passed
        states = _report_states(report)
        assert states["t0"] is TaskState.ADOPTED
        assert states["t3"] is TaskState.SUCCEEDED
        assert all(count == 1 for count in counters.values())
