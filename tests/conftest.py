"""Shared fixtures for the test suite."""

import pytest

from repro.environment import (
    adversarial_ubuntu_host,
    adversarial_windows_host,
    default_ubuntu_host,
    default_windows_host,
    hardened_ubuntu_host,
    hardened_windows_host,
)
from repro.rqcode import default_catalog


@pytest.fixture
def win_default():
    return default_windows_host()


@pytest.fixture
def win_hardened():
    return hardened_windows_host()


@pytest.fixture
def win_adversarial():
    return adversarial_windows_host()


@pytest.fixture
def ubuntu_default():
    return default_ubuntu_host()


@pytest.fixture
def ubuntu_hardened():
    return hardened_ubuntu_host()


@pytest.fixture
def ubuntu_adversarial():
    return adversarial_ubuntu_host()


@pytest.fixture
def catalog():
    return default_catalog()
