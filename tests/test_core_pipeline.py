"""Unit tests for the pipeline engine and the requirement repository."""

import pytest

from repro.core.pipeline import (
    Job,
    Pipeline,
    PipelineContext,
    Stage,
)
from repro.core.gates import GateResult, SecurityGate
from repro.core.repository import (
    RequirementRecord,
    RequirementRepository,
    RequirementSource,
    RequirementStatus,
)


class _StubGate(SecurityGate):
    name = "stub"

    def __init__(self, passed=True):
        self._passed = passed
        self.evaluations = 0

    def evaluate(self, context):
        self.evaluations += 1
        return GateResult(passed=self._passed, detail="stub")


class TestPipelineContext:
    def test_put_get_require(self):
        context = PipelineContext(seed=1)
        assert context.get("seed") == 1
        context.put("x", "y")
        assert context.require("x") == "y"
        assert "x" in context

    def test_require_missing_raises_with_inventory(self):
        context = PipelineContext(a=1)
        with pytest.raises(KeyError) as excinfo:
            context.require("missing")
        assert "a" in str(excinfo.value)


class TestPipelineExecution:
    def test_jobs_run_in_order(self):
        order = []
        pipeline = Pipeline([
            Stage("one", jobs=[Job("a", lambda c: order.append("a")),
                               Job("b", lambda c: order.append("b"))]),
            Stage("two", jobs=[Job("c", lambda c: order.append("c"))]),
        ])
        run = pipeline.run()
        assert run.passed
        assert order == ["a", "b", "c"]

    def test_failing_job_stops_pipeline(self):
        def boom(context):
            raise RuntimeError("kaboom")

        later_gate = _StubGate()
        pipeline = Pipeline([
            Stage("one", jobs=[Job("boom", boom)]),
            Stage("two", gates=[later_gate]),
        ])
        run = pipeline.run()
        assert not run.passed
        assert run.failed_stage == "one"
        assert later_gate.evaluations == 0
        assert "kaboom" in run.stage_results[0].job_results[0].detail

    def test_failing_gate_stops_pipeline(self):
        reached = []
        pipeline = Pipeline([
            Stage("one", gates=[_StubGate(passed=False)]),
            Stage("two", jobs=[Job("later",
                                   lambda c: reached.append(True))]),
        ])
        run = pipeline.run()
        assert not run.passed
        assert run.failed_stage == "one"
        assert reached == []

    def test_gate_rows_report(self):
        pipeline = Pipeline([Stage("s", gates=[_StubGate()])])
        run = pipeline.run()
        rows = run.gate_rows()
        assert rows == [{"stage": "s", "gate": "stub", "verdict": "PASS",
                         "detail": "stub"}]

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(ValueError):
            Pipeline([Stage("s"), Stage("s")])

    def test_jobs_share_context(self):
        pipeline = Pipeline([
            Stage("one", jobs=[Job("write", lambda c: c.put("k", 42))]),
            Stage("two", jobs=[Job("read",
                                   lambda c: str(c.require("k")))]),
        ])
        run = pipeline.run()
        assert run.passed
        assert run.stage_results[1].job_results[0].detail == "42"

    def test_summary(self):
        run = Pipeline([Stage("s")]).run()
        assert "passed" in run.summary()


class TestRepository:
    def _record(self, req_id="R-1"):
        return RequirementRecord(
            req_id=req_id, text="The system shall log.",
            source=RequirementSource.NATURAL_LANGUAGE)

    def test_add_and_lookup(self):
        repository = RequirementRepository()
        repository.add(self._record())
        assert "R-1" in repository
        assert repository.get("R-1").text == "The system shall log."
        assert len(repository) == 1

    def test_duplicate_id_rejected(self):
        repository = RequirementRepository()
        repository.add(self._record())
        with pytest.raises(ValueError):
            repository.add(self._record())

    def test_lifecycle_is_monotone(self):
        record = self._record()
        record.advance_to(RequirementStatus.ANALYZED)
        record.advance_to(RequirementStatus.FORMALIZED)
        with pytest.raises(ValueError):
            record.advance_to(RequirementStatus.ELICITED)

    def test_advance_to_same_status_allowed(self):
        record = self._record()
        record.advance_to(RequirementStatus.ELICITED)
        assert record.status is RequirementStatus.ELICITED

    def test_queries(self):
        repository = RequirementRepository()
        first = repository.add(self._record("R-1"))
        second = repository.add(RequirementRecord(
            req_id="R-2", text="x", source=RequirementSource.STANDARD))
        first.advance_to(RequirementStatus.ANALYZED)
        assert [r.req_id for r in repository.with_status(
            RequirementStatus.ANALYZED)] == ["R-1"]
        assert [r.req_id for r in repository.at_least(
            RequirementStatus.ELICITED)] == ["R-1", "R-2"]
        assert [r.req_id for r in repository.from_source(
            RequirementSource.STANDARD)] == ["R-2"]

    def test_status_histogram_and_rows(self):
        repository = RequirementRepository()
        repository.add(self._record())
        histogram = repository.status_histogram()
        assert histogram["elicited"] == 1
        rows = repository.traceability_rows()
        assert rows[0]["req"] == "R-1"
        assert rows[0]["pattern"] == "-"
        assert rows[0]["trace"] == "-"      # no provenance, no chain

    def test_trace_column_commits_to_provenance_chain(self):
        repository = RequirementRepository()
        record = self._record()
        record.provenance = "CVE-2024-0001"
        repository.add(record)
        row = repository.traceability_rows()[0]
        chain = record.to_ir().provenance_chain_digest()
        assert row["trace"] == chain[:12]
        # The digest commits to the source: a different provenance
        # yields a different trace cell.
        other = self._record("R-2")
        other.provenance = "CVE-2024-0002"
        repository.add(other)
        rows = repository.traceability_rows()
        assert rows[0]["trace"] != rows[1]["trace"]
