"""Property-based tests (hypothesis) for the DBM zone algebra."""

from hypothesis import given, settings, strategies as st

from repro.ta.dbm import DBM, INF, encode

N_CLOCKS = 2


def constraints():
    """Random single constraints (i, j, bound) over N_CLOCKS clocks."""
    indices = st.integers(min_value=0, max_value=N_CLOCKS)
    values = st.integers(min_value=-10, max_value=10)
    return st.tuples(indices, indices, values, st.booleans()).filter(
        lambda t: t[0] != t[1])


def zones():
    """Random non-empty zones built by constraining the delayed origin."""

    @st.composite
    def build(draw):
        zone = DBM.zero(N_CLOCKS).up()
        for _ in range(draw(st.integers(min_value=0, max_value=3))):
            i, j, value, strict = draw(constraints())
            probe = zone.copy().constrain(i, j, encode(value, strict))
            if not probe.is_empty():
                zone = probe
        return zone

    return build()


@settings(max_examples=200, deadline=None)
@given(zone=zones())
def test_up_enlarges(zone):
    delayed = zone.copy().up()
    assert delayed.includes(zone)


@settings(max_examples=200, deadline=None)
@given(zone=zones())
def test_up_is_idempotent(zone):
    once = zone.copy().up()
    twice = once.copy().up()
    assert once == twice


@settings(max_examples=200, deadline=None)
@given(zone=zones(), clock=st.integers(min_value=1, max_value=N_CLOCKS))
def test_reset_is_idempotent(zone, clock):
    once = zone.copy().reset(clock)
    twice = once.copy().reset(clock)
    assert once == twice


@settings(max_examples=200, deadline=None)
@given(zone=zones(), clock=st.integers(min_value=1, max_value=N_CLOCKS))
def test_reset_pins_clock_to_zero(zone, clock):
    reset = zone.copy().reset(clock)
    assert not reset.is_empty()
    assert reset.satisfies(clock, 0, encode(0, False))
    assert reset.satisfies(0, clock, encode(0, False))


@settings(max_examples=200, deadline=None)
@given(zone=zones(), constraint=constraints())
def test_constrain_shrinks(zone, constraint):
    i, j, value, strict = constraint
    tightened = zone.copy().constrain(i, j, encode(value, strict))
    if not tightened.is_empty():
        assert zone.includes(tightened)


@settings(max_examples=200, deadline=None)
@given(zone=zones(), k=st.integers(min_value=1, max_value=15))
def test_extrapolation_enlarges(zone, k):
    extrapolated = zone.copy().extrapolate(k)
    assert extrapolated.includes(zone)


@settings(max_examples=200, deadline=None)
@given(zone=zones(), k=st.integers(min_value=1, max_value=15))
def test_extrapolation_is_idempotent(zone, k):
    once = zone.copy().extrapolate(k)
    twice = once.copy().extrapolate(k)
    assert once == twice


@settings(max_examples=200, deadline=None)
@given(zone=zones(), constraint=constraints())
def test_satisfies_implies_intersects(zone, constraint):
    i, j, value, strict = constraint
    bound = encode(value, strict)
    if zone.satisfies(i, j, bound):
        assert zone.intersects(i, j, bound)


@settings(max_examples=200, deadline=None)
@given(zone=zones())
def test_inclusion_is_reflexive_and_key_stable(zone):
    assert zone.includes(zone.copy())
    assert zone.key() == zone.copy().key()


@settings(max_examples=200, deadline=None)
@given(first=zones(), second=zones())
def test_inclusion_antisymmetry(first, second):
    if first.includes(second) and second.includes(first):
        assert first.key() == second.key()
