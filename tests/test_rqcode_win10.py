"""Unit tests for the Windows 10 STIG requirement classes."""

import pytest

from repro.rqcode.concepts import CheckStatus, EnforcementStatus
from repro.rqcode.win10 import (
    V_63447,
    V_63449,
    V_63463,
    V_63467,
    V_63483,
    V_63487,
    Windows10SecurityTechnicalImplementationGuide,
)


class TestPatternHierarchy:
    def test_categories_and_subcategories(self, win_default):
        assert V_63447(win_default).get_category() == "Account Management"
        assert V_63447(win_default).get_subcategory() == \
            "User Account Management"
        assert V_63463(win_default).get_category() == "Logon/Logoff"
        assert V_63463(win_default).get_subcategory() == "Logon"
        assert V_63483(win_default).get_category() == "Privilege Use"
        assert V_63483(win_default).get_subcategory() == \
            "Sensitive Privilege Use"

    def test_inclusion_settings(self, win_default):
        assert V_63447(win_default).get_inclusion_setting() == "Failure"
        assert V_63449(win_default).get_inclusion_setting() == "Success"

    def test_texts_mention_subcategory(self, win_default):
        requirement = V_63467(win_default)
        assert "Logon" in requirement.check_text()
        assert "Success" in requirement.fix_text()
        assert "audit trail" in requirement.description().lower()

    def test_metadata(self, win_default):
        requirement = V_63487(win_default)
        assert requirement.finding_id() == "V-63487"
        assert requirement.stig().startswith("Windows 10")
        assert requirement.severity() == "medium"


class TestCheckSemantics:
    def test_fails_on_default_host(self, win_default):
        # Default Windows audits Logon Success only, so the Failure
        # finding fails and the Success finding passes.
        assert V_63463(win_default).check() is CheckStatus.FAIL
        assert V_63467(win_default).check() is CheckStatus.PASS

    def test_passes_on_hardened_host(self, win_hardened):
        for cls in Windows10SecurityTechnicalImplementationGuide.STIG_CLASSES:
            assert cls(win_hardened).check() is CheckStatus.PASS, cls

    def test_fails_on_adversarial_host(self, win_adversarial):
        for cls in Windows10SecurityTechnicalImplementationGuide.STIG_CLASSES:
            assert cls(win_adversarial).check() is CheckStatus.FAIL, cls

    def test_covering_setting_satisfies_weaker_requirement(self, win_default):
        # Success and Failure covers a Failure-only finding.
        win_default.audit_store.set("Sensitive Privilege Use",
                                    success=True, failure=True)
        assert V_63483(win_default).check() is CheckStatus.PASS
        assert V_63487(win_default).check() is CheckStatus.PASS


class TestEnforceSemantics:
    def test_enforce_fixes_failing_finding(self, win_adversarial):
        requirement = V_63447(win_adversarial)
        assert requirement.check() is CheckStatus.FAIL
        assert requirement.enforce() is EnforcementStatus.SUCCESS
        assert requirement.check() is CheckStatus.PASS

    def test_enforce_goes_through_auditpol_events(self, win_adversarial):
        V_63449(win_adversarial).enforce()
        event = win_adversarial.events.last("audit.policy_changed")
        assert event.payload["subcategory"] == "User Account Management"

    def test_enforce_preserves_other_flag(self, win_default):
        # Default host audits UAM Success; enforcing the Failure finding
        # must not clear Success.
        V_63447(win_default).enforce()
        setting = win_default.audit_store.get("User Account Management")
        assert setting.render() == "Success and Failure"


class TestAggregate:
    def test_all_stigs_order(self, win_default):
        guide = Windows10SecurityTechnicalImplementationGuide(win_default)
        ids = [r.finding_id() for r in guide.all_stigs()]
        assert ids == ["V-63447", "V-63449", "V-63463",
                       "V-63467", "V-63483", "V-63487"]

    def test_check_all(self, win_hardened):
        guide = Windows10SecurityTechnicalImplementationGuide(win_hardened)
        results = guide.check_all()
        assert set(results.values()) == {CheckStatus.PASS}

    def test_enforce_all_remediates_everything(self, win_adversarial):
        guide = Windows10SecurityTechnicalImplementationGuide(win_adversarial)
        statuses = guide.enforce_all()
        assert set(statuses.values()) == {EnforcementStatus.SUCCESS}
        assert set(guide.check_all().values()) == {CheckStatus.PASS}
