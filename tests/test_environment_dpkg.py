"""Unit tests for the simulated dpkg/apt package manager."""

import pytest

from repro.environment.dpkg import DEFAULT_PACKAGE_UNIVERSE, SimulatedDpkg
from repro.environment.errors import UnknownPackageError
from repro.environment.events import EventLog


class TestQueries:
    def test_nothing_installed_initially(self):
        dpkg = SimulatedDpkg()
        assert dpkg.installed_packages() == []
        assert not dpkg.is_installed("nis")

    def test_known_versus_installed(self):
        dpkg = SimulatedDpkg()
        assert dpkg.known("nis")
        assert not dpkg.is_installed("nis")

    def test_unknown_package_is_not_installed(self):
        dpkg = SimulatedDpkg()
        assert not dpkg.is_installed("not-a-package")

    def test_list_output_not_installed(self):
        dpkg = SimulatedDpkg()
        output = dpkg.list_output("nis")
        assert "un  nis" in output

    def test_list_output_installed(self):
        dpkg = SimulatedDpkg()
        dpkg.install("nis")
        output = dpkg.list_output("nis")
        assert "ii  nis" in output
        assert DEFAULT_PACKAGE_UNIVERSE["nis"] in output

    def test_list_output_unknown_raises(self):
        dpkg = SimulatedDpkg()
        with pytest.raises(UnknownPackageError):
            dpkg.list_output("not-a-package")


class TestMutations:
    def test_install_and_remove(self):
        dpkg = SimulatedDpkg()
        dpkg.install("auditd")
        assert dpkg.is_installed("auditd")
        dpkg.remove("auditd")
        assert not dpkg.is_installed("auditd")

    def test_install_is_idempotent(self):
        log = EventLog()
        dpkg = SimulatedDpkg(event_log=log)
        dpkg.install("auditd")
        dpkg.install("auditd")
        assert len(log.of_kind("package.installed")) == 1

    def test_remove_is_idempotent(self):
        log = EventLog()
        dpkg = SimulatedDpkg(event_log=log)
        dpkg.install("auditd")
        dpkg.remove("auditd")
        dpkg.remove("auditd")
        assert len(log.of_kind("package.removed")) == 1

    def test_install_unknown_raises(self):
        dpkg = SimulatedDpkg()
        with pytest.raises(UnknownPackageError):
            dpkg.install("not-a-package")

    def test_seed_installed_emits_no_events(self):
        log = EventLog()
        dpkg = SimulatedDpkg(event_log=log)
        dpkg.seed_installed(["auditd", "ufw"])
        assert len(log) == 0
        assert dpkg.installed_packages() == ["auditd", "ufw"]

    def test_seed_unknown_raises(self):
        dpkg = SimulatedDpkg()
        with pytest.raises(UnknownPackageError):
            dpkg.seed_installed(["nonexistent"])

    def test_custom_universe(self):
        dpkg = SimulatedDpkg(universe={"custom-pkg": "1.0"})
        assert dpkg.known("custom-pkg")
        assert not dpkg.known("nis")
        dpkg.install("custom-pkg")
        assert dpkg.is_installed("custom-pkg")

    def test_events_carry_version(self):
        log = EventLog()
        dpkg = SimulatedDpkg(event_log=log)
        dpkg.install("nis")
        event = log.last("package.installed")
        assert event.payload["name"] == "nis"
        assert event.payload["version"] == DEFAULT_PACKAGE_UNIVERSE["nis"]
