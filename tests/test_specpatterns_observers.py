"""Unit tests for observer-automata generation and verification.

Each observer is composed with small emitting systems — one compliant,
one violating — and the observer query must distinguish them.
"""

import pytest

from repro.specpatterns import (
    Absence,
    AfterQ,
    AfterQUntilR,
    BeforeR,
    BetweenQAndR,
    Existence,
    Globally,
    Precedence,
    Response,
    TimedResponse,
    build_observer,
)
from repro.specpatterns.observers import ObserverUnsupported
from repro.ta import (
    Edge,
    Location,
    Network,
    TimedAutomaton,
    ZoneGraphChecker,
    parse_guard,
    parse_query,
)


def emitter(name, *actions, loop=False):
    """A system emitting the given channels in sequence.

    Each emission happens from an urgent location so the sequence is
    forced; with ``loop`` the sequence repeats forever.
    """
    locations = [Location(f"s{i}", urgent=True)
                 for i in range(len(actions))]
    locations.append(Location("end", urgent=loop))
    edges = []
    for i, action in enumerate(actions):
        edges.append(Edge(f"s{i}", f"s{i + 1}" if i + 1 < len(actions)
                          else "end", sync=f"{action}!", action=action))
    if loop and actions:
        edges.append(Edge("end", "s0", action="repeat"))
    return TimedAutomaton(name=name, clocks=[], locations=locations,
                          edges=edges)


def verdict(observer, system):
    network = Network([system, observer.automaton])
    return ZoneGraphChecker(network).check(parse_query(observer.query))


class TestAbsenceObservers:
    def test_globally(self):
        observer = build_observer(Absence(p="p"), Globally())
        assert verdict(observer, emitter("Sys", "q")).satisfied
        assert not verdict(observer, emitter("Sys", "p")).satisfied

    def test_before_r_violation_needs_closing_r(self):
        observer = build_observer(Absence(p="p"), BeforeR(r="r"))
        assert not verdict(observer, emitter("Sys", "p", "r")).satisfied
        assert verdict(observer, emitter("Sys", "r", "p")).satisfied

    def test_after_q(self):
        observer = build_observer(Absence(p="p"), AfterQ(q="q"))
        assert verdict(observer, emitter("Sys", "p", "q")).satisfied
        assert not verdict(observer, emitter("Sys", "q", "p")).satisfied

    def test_between(self):
        observer = build_observer(Absence(p="p"), BetweenQAndR(q="q", r="r"))
        assert not verdict(observer,
                           emitter("Sys", "q", "p", "r")).satisfied
        assert verdict(observer, emitter("Sys", "q", "r", "p")).satisfied
        # Segment never closes: compliant.
        assert verdict(observer, emitter("Sys", "q", "p")).satisfied

    def test_after_until_immediate_violation(self):
        observer = build_observer(Absence(p="p"), AfterQUntilR(q="q", r="r"))
        assert not verdict(observer, emitter("Sys", "q", "p")).satisfied
        assert verdict(observer, emitter("Sys", "q", "r", "p")).satisfied


class TestOrderObservers:
    def test_precedence(self):
        observer = build_observer(Precedence(p="access", s="auth"))
        assert verdict(observer, emitter("Sys", "auth", "access")).satisfied
        assert not verdict(observer,
                           emitter("Sys", "access", "auth")).satisfied

    def test_existence(self):
        observer = build_observer(Existence(p="audit"))
        assert verdict(observer, emitter("Sys", "audit")).satisfied
        # A system that never emits p can idle forever: A<> done fails.
        assert not verdict(observer, emitter("Sys", "other")).satisfied

    def test_response_leads_to(self):
        observer = build_observer(Response(p="req", s="ack"))
        compliant = emitter("Sys", "req", "ack", loop=True)
        assert verdict(observer, compliant).satisfied
        violating = emitter("Sys", "req")
        assert not verdict(observer, violating).satisfied


class TestTimedResponseObserver:
    def _system(self, latency):
        return TimedAutomaton(
            name="Sys", clocks=["x"],
            locations=[
                Location("run"),
                Location("resp", invariant=parse_guard(f"x <= {latency}")),
            ],
            edges=[
                Edge("run", "resp", sync="violation!", resets=("x",),
                     action="violate"),
                Edge("resp", "run", sync="alert!", action="alert"),
            ],
        )

    def test_fast_responder_passes(self):
        observer = build_observer(
            TimedResponse(p="violation", s="alert", bound=10))
        assert verdict(observer, self._system(latency=5)).satisfied

    def test_slow_responder_fails(self):
        observer = build_observer(
            TimedResponse(p="violation", s="alert", bound=10))
        result = verdict(observer, self._system(latency=20))
        assert not result.satisfied
        assert any("timeout" in label or "late" in label
                   for label in result.witness)

    def test_boundary_latency_passes(self):
        observer = build_observer(
            TimedResponse(p="violation", s="alert", bound=10))
        assert verdict(observer, self._system(latency=10)).satisfied


class TestObserverStructure:
    def test_input_enabled_everywhere(self):
        observer = build_observer(Absence(p="p"), BetweenQAndR(q="q", r="r"))
        automaton = observer.automaton
        for location in automaton.locations.values():
            for channel in observer.channels:
                receiving = [
                    edge for edge in automaton.outgoing(location.name)
                    if edge.sync == f"{channel}?"
                ]
                assert receiving, (location.name, channel)

    def test_unsupported_pairs_raise(self):
        with pytest.raises(ObserverUnsupported):
            build_observer(Response(p="p", s="s"), BeforeR(r="r"))
        with pytest.raises(ObserverUnsupported):
            build_observer(Existence(p="p"), AfterQ(q="q"))

    def test_custom_name(self):
        observer = build_observer(Absence(p="p"), name="Watchdog")
        assert observer.name == "Watchdog"
        assert "Watchdog" in observer.query


class TestExtendedObservers:
    def test_bounded_existence_counts(self):
        from repro.specpatterns import BoundedExistence
        observer = build_observer(BoundedExistence(p="p", bound=2))
        assert verdict(observer, emitter("Sys", "p", "p")).satisfied
        assert not verdict(observer, emitter("Sys", "p", "p", "p")).satisfied

    def test_bounded_existence_custom_bound(self):
        from repro.specpatterns import BoundedExistence
        observer = build_observer(BoundedExistence(p="p", bound=3))
        assert verdict(observer, emitter("Sys", "p", "p", "p")).satisfied
        assert not verdict(
            observer, emitter("Sys", "p", "p", "p", "p")).satisfied

    def test_response_chain(self):
        from repro.specpatterns import ResponseChain
        observer = build_observer(ResponseChain(p="p", s="s", t="t"))
        compliant = emitter("Sys", "p", "s", "t", loop=True)
        assert verdict(observer, compliant).satisfied
        half_chain = emitter("Sys", "p", "s")
        assert not verdict(observer, half_chain).satisfied

    def test_universality_violation_event_convention(self):
        from repro.specpatterns import Universality
        observer = build_observer(Universality(p="safe_mode"))
        assert observer.channels == ("not_safe_mode",)
        stays_safe = emitter("Sys", "boot", "run")
        breaks = emitter("Sys", "boot", "not_safe_mode")
        extra = build_observer(Universality(p="safe_mode"),
                               extra_channels=("boot", "run"))
        assert verdict(extra, stays_safe).satisfied
        assert not verdict(extra, breaks).satisfied

    def test_extra_channels_prevent_blocking(self):
        # Without extra channels, the observer would block the system's
        # unmonitored emissions under binary handshake.
        observer_plain = build_observer(Absence(p="p"))
        system = emitter("Sys", "x", "p")
        from repro.ta import Network, ZoneGraphChecker, parse_query
        network = Network([system, observer_plain.automaton])
        result = ZoneGraphChecker(network).check(
            parse_query(observer_plain.query))
        # x! has no receiver: the system is stuck before ever emitting
        # p, so the property trivially "holds" — the wrong verdict.
        assert result.satisfied
        # With x declared as an extra channel, the violation is found.
        observer_full = build_observer(Absence(p="p"),
                                       extra_channels=("x",))
        network = Network([system, observer_full.automaton])
        result = ZoneGraphChecker(network).check(
            parse_query(observer_full.query))
        assert not result.satisfied


class TestScopedResponseObservers:
    def test_response_after_q(self):
        from repro.specpatterns import Response
        observer = build_observer(Response(p="p", s="s"), AfterQ(q="q"))
        # p before the scope opens carries no obligation.
        assert verdict(observer, emitter("Sys", "p", "q")).satisfied
        # Inside the scope, answered p is fine...
        assert verdict(observer, emitter("Sys", "q", "p", "s")).satisfied
        # ...unanswered p is a violation.
        assert not verdict(observer, emitter("Sys", "q", "p")).satisfied

    def test_response_after_q_until_r(self):
        from repro.specpatterns import AfterQUntilR, Response
        observer = build_observer(Response(p="p", s="s"),
                                  AfterQUntilR(q="q", r="r"))
        assert verdict(observer,
                       emitter("Sys", "q", "p", "s", "r")).satisfied
        # r closing the segment with p outstanding violates.
        assert not verdict(observer,
                           emitter("Sys", "q", "p", "r")).satisfied
        # Trailing outstanding p with no r violates too.
        assert not verdict(observer, emitter("Sys", "q", "p")).satisfied
        # p after the segment closed carries no obligation.
        assert verdict(observer, emitter("Sys", "q", "r", "p")).satisfied
