"""Unit tests for the NALABS HTML report."""

from repro.nalabs import NalabsAnalyzer, RequirementText
from repro.nalabs.report import render_html


def analyze(*texts):
    records = [RequirementText(f"R{i}", text)
               for i, text in enumerate(texts, start=1)]
    return NalabsAnalyzer().analyze_corpus(records)


class TestRenderHtml:
    def test_document_structure(self):
        html = render_html(analyze("The system shall log events."))
        assert html.startswith("<!DOCTYPE html>")
        assert "<h1>NALABS analysis</h1>" in html
        assert "Metric summary" in html

    def test_flagged_cells_highlighted(self):
        html = render_html(analyze("The system may be adequate."))
        assert "background:#ffcdd2" in html

    def test_clean_corpus_not_highlighted(self):
        html = render_html(analyze(
            "The system shall lock the account after 3 attempts."))
        assert "background:#ffcdd2" not in html

    def test_occurrences_in_tooltips(self):
        html = render_html(analyze("The system may be adequate."))
        assert 'title="vagueness: adequate"' in html

    def test_text_escaped(self):
        html = render_html(analyze(
            'The system shall reject <script> & "quotes".'))
        assert "<script>" not in html
        assert "&lt;script&gt;" in html

    def test_empty_corpus(self):
        html = render_html(analyze())
        assert "(empty corpus)" in html

    def test_smelly_count_line(self):
        html = render_html(analyze(
            "The system shall log events.",
            "The system may be adequate.",
        ))
        assert "1/2 requirements carry at least one smell" in html
