"""Unit tests for RQCODE core concepts."""

import pytest

from repro.rqcode.concepts import (
    CheckableEnforceableRequirement,
    CheckStatus,
    EnforcementStatus,
    FindingMetadata,
    PredicateCheckable,
    Requirement,
)


class TestStatuses:
    def test_check_status_truthiness(self):
        assert CheckStatus.PASS
        assert not CheckStatus.FAIL
        assert not CheckStatus.INCOMPLETE

    def test_enforcement_status_truthiness(self):
        assert EnforcementStatus.SUCCESS
        assert not EnforcementStatus.FAILURE
        assert not EnforcementStatus.INCOMPLETE


class TestPredicateCheckable:
    def test_boolean_callable(self):
        flag = {"value": False}
        checkable = PredicateCheckable(lambda: flag["value"], name="flag")
        assert checkable.check() is CheckStatus.FAIL
        flag["value"] = True
        assert checkable.check() is CheckStatus.PASS
        assert checkable.holds()

    def test_checkstatus_callable_passthrough(self):
        checkable = PredicateCheckable(lambda: CheckStatus.INCOMPLETE)
        assert checkable.check() is CheckStatus.INCOMPLETE

    def test_str_uses_name(self):
        assert str(PredicateCheckable(lambda: True, name="p")) == "p"


class TestRequirement:
    METADATA = FindingMetadata(
        finding_id="V-0001",
        version="WN10-XX-000001",
        rule_id="SV-1r1_rule",
        severity="high",
        description="Test finding.",
        stig="Test STIG",
        date="2021-01-01",
        check_text="Check something.",
        fix_text="Fix something.",
    )

    def test_accessors(self):
        requirement = Requirement(self.METADATA)
        assert requirement.finding_id() == "V-0001"
        assert requirement.severity() == "high"
        assert requirement.stig() == "Test STIG"
        assert requirement.check_text() == "Check something."
        assert requirement.fix_text() == "Fix something."

    def test_to_document_includes_populated_fields(self):
        document = Requirement(self.METADATA).to_document()
        assert "Finding ID: V-0001" in document
        assert "Severity: high" in document
        assert "Fix Text: Fix something." in document

    def test_to_document_omits_empty_fields(self):
        requirement = Requirement(FindingMetadata(finding_id="V-2"))
        document = requirement.to_document()
        assert "Check Text" not in document

    def test_default_metadata(self):
        requirement = Requirement()
        assert requirement.finding_id() == ""
        assert requirement.severity() == "medium"


class _ToggleRequirement(CheckableEnforceableRequirement):
    """Fails until enforced; counts enforcement calls."""

    def __init__(self, enforce_succeeds=True):
        super().__init__()
        self.compliant = False
        self.enforce_calls = 0
        self.enforce_succeeds = enforce_succeeds

    def check(self):
        return CheckStatus.PASS if self.compliant else CheckStatus.FAIL

    def enforce(self):
        self.enforce_calls += 1
        if self.enforce_succeeds:
            self.compliant = True
            return EnforcementStatus.SUCCESS
        return EnforcementStatus.FAILURE


class TestCheckEnforceCheck:
    def test_remediates_failing_requirement(self):
        requirement = _ToggleRequirement()
        before, enforcement, after = requirement.check_enforce_check()
        assert before is CheckStatus.FAIL
        assert enforcement is EnforcementStatus.SUCCESS
        assert after is CheckStatus.PASS

    def test_skips_enforcement_when_already_passing(self):
        requirement = _ToggleRequirement()
        requirement.compliant = True
        before, enforcement, after = requirement.check_enforce_check()
        assert before is CheckStatus.PASS
        assert requirement.enforce_calls == 0
        assert enforcement is EnforcementStatus.SUCCESS

    def test_reports_failed_enforcement(self):
        requirement = _ToggleRequirement(enforce_succeeds=False)
        before, enforcement, after = requirement.check_enforce_check()
        assert enforcement is EnforcementStatus.FAILURE
        assert after is CheckStatus.FAIL
