"""Unit tests for GWT scenario -> graph model synthesis."""

import pytest

from repro.gwt import parse_feature
from repro.gwt.dsl import generate
from repro.gwt.graph import edge_coverage_of
from repro.gwt.scenario_model import action_name, model_from_feature

FEATURE = """
Feature: Account lockout
  Scenario: lock after failures
    Given the account is active
    When 3 consecutive logons fail
    Then the account is locked

  Scenario: successful logon resets
    Given the account is active
    When 3 consecutive logons fail
    Then the account is locked
    And the administrator unlocks the account
    And the user logs on successfully

  Scenario: normal logon
    Given the account is active
    When the user logs on successfully
    Then a session is created
"""


class TestActionNames:
    def test_sanitization(self):
        assert action_name("The account is locked!") == \
            "the_account_is_locked"
        assert action_name("3 logons fail") == "a_3_logons_fail"
        assert action_name("") == "step"


class TestModelSynthesis:
    def test_shared_prefixes_merge(self):
        feature = parse_feature(FEATURE)
        model = model_from_feature(feature)
        # Scenarios 1 and 2 share two steps; scenario 3 branches at the
        # start: expect start + 2 shared + 2 tail + 2 branch = 7 states.
        assert len(model.states) == 7
        # The shared first action exists exactly once.
        first_actions = [action for source, _, action in model.actions
                         if source == "start"]
        assert sorted(first_actions) == [
            "a_3_consecutive_logons_fail",
            "the_user_logs_on_successfully",
        ]

    def test_given_steps_fold_into_start(self):
        feature = parse_feature(FEATURE)
        model = model_from_feature(feature)
        actions = {action for _, _, action in model.actions}
        assert "the_account_is_active" not in actions

    def test_bindings_survive(self):
        feature = parse_feature(FEATURE)
        model = model_from_feature(feature)
        binding_edges = [
            data for _, _, data in model.graph.edges(data=True)
            if data["bindings"]
        ]
        assert any(data["bindings"].get("param1") == 3.0
                   for data in binding_edges)

    def test_model_is_start_connected(self):
        model = model_from_feature(parse_feature(FEATURE))
        model.validate()  # must not raise

    def test_synthesized_model_feeds_generators(self):
        """The full automatic chain: feature text -> model -> abstract
        tests under a GraphWalker expression.  Tree models need the
        suite form (restarts from the start state)."""
        from repro.gwt.dsl import generate_suite

        model = model_from_feature(parse_feature(FEATURE))
        cases = generate_suite(model, "directed(edge_coverage(100))")
        assert len(cases) >= 2  # the branch forces a restart
        assert edge_coverage_of(model, cases) == 1.0

    def test_single_scenario_is_a_chain(self):
        feature = parse_feature(
            "Feature: f\nScenario: s\nGiven setup\nWhen act\nThen check\n")
        model = model_from_feature(feature)
        assert len(model.states) == 3  # start -> s1 -> s2
        assert {a for _, _, a in model.actions} == {"act", "check"}
