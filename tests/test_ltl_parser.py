"""Unit tests for the LTL parser and formula AST."""

import pytest

from repro.ltl import (
    And,
    Atom,
    Eventually,
    FALSE,
    Globally,
    Implies,
    LtlParseError,
    Next,
    Not,
    Or,
    Release,
    TRUE,
    Until,
    WeakUntil,
    parse_ltl,
)
from repro.ltl.formulas import implies, land, lnot, lor


class TestParser:
    def test_atom(self):
        assert parse_ltl("p") == Atom("p")

    def test_dotted_atom(self):
        assert parse_ltl("package.removed") == Atom("package.removed")

    def test_constants(self):
        assert parse_ltl("true") is TRUE
        assert parse_ltl("false") is FALSE

    def test_unary_operators(self):
        assert parse_ltl("!p") == Not(Atom("p"))
        assert parse_ltl("X p") == Next(Atom("p"))
        assert parse_ltl("F p") == Eventually(Atom("p"))
        assert parse_ltl("G p") == Globally(Atom("p"))

    def test_binary_operators(self):
        assert parse_ltl("p U q") == Until(Atom("p"), Atom("q"))
        assert parse_ltl("p W q") == WeakUntil(Atom("p"), Atom("q"))
        assert parse_ltl("p R q") == Release(Atom("p"), Atom("q"))

    def test_precedence_and_binds_tighter_than_or(self):
        assert parse_ltl("a & b | c") == Or(And(Atom("a"), Atom("b")),
                                            Atom("c"))

    def test_implication_is_loosest_and_right_assoc(self):
        formula = parse_ltl("a -> b -> c")
        assert formula == Implies(Atom("a"), Implies(Atom("b"), Atom("c")))

    def test_until_right_associative(self):
        assert parse_ltl("a U b U c") == Until(Atom("a"),
                                               Until(Atom("b"), Atom("c")))

    def test_parentheses(self):
        assert parse_ltl("(a | b) & c") == And(Or(Atom("a"), Atom("b")),
                                               Atom("c"))

    def test_nested_temporal(self):
        formula = parse_ltl("G (request -> F response)")
        assert formula == Globally(Implies(Atom("request"),
                                           Eventually(Atom("response"))))

    def test_round_trip_through_str(self):
        for text in ("G (a -> F b)", "p U (q & r)", "!a | X b",
                     "(a W b) R c"):
            formula = parse_ltl(text)
            assert parse_ltl(str(formula)) == formula

    @pytest.mark.parametrize("bad", ["", "&", "p &", "(p", "p )q", "U p",
                                     "p @ q"])
    def test_malformed_raises(self, bad):
        with pytest.raises(LtlParseError):
            parse_ltl(bad)


class TestSmartConstructors:
    def test_not_folding(self):
        assert lnot(TRUE) is FALSE
        assert lnot(FALSE) is TRUE
        assert lnot(lnot(Atom("p"))) == Atom("p")

    def test_and_folding(self):
        p = Atom("p")
        assert land(TRUE, p) == p
        assert land(p, TRUE) == p
        assert land(FALSE, p) is FALSE
        assert land(p, p) == p

    def test_or_folding(self):
        p = Atom("p")
        assert lor(FALSE, p) == p
        assert lor(TRUE, p) is TRUE
        assert lor(p, p) == p

    def test_implies_folding(self):
        p = Atom("p")
        assert implies(FALSE, p) is TRUE
        assert implies(TRUE, p) == p
        assert implies(p, FALSE) == Not(p)
        assert implies(p, TRUE) is TRUE

    def test_operator_sugar(self):
        p, q = Atom("p"), Atom("q")
        assert (p & q) == And(p, q)
        assert (p | q) == Or(p, q)
        assert (~p) == Not(p)
        assert (p >> q) == Implies(p, q)

    def test_atoms_collection(self):
        formula = parse_ltl("G (a -> F (b & c.d))")
        assert formula.atoms() == frozenset({"a", "b", "c.d"})
