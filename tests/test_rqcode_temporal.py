"""Unit tests for the RQCODE temporal patterns (monitoring loops)."""

import pytest

from repro.rqcode.concepts import CheckStatus, PredicateCheckable
from repro.rqcode.temporal import (
    AfterUntilUniversality,
    Eventually,
    GlobalResponseTimed,
    GlobalResponseUntil,
    GlobalUniversality,
    GlobalUniversalityTimed,
    MonitoringLoop,
)


class _Scripted:
    """A checkable whose truth follows a scripted timeline.

    Index 0 is the value at the first poll; the final value persists.
    """

    def __init__(self, timeline):
        self.timeline = list(timeline)
        self.index = 0

    def probe(self):
        value = self.timeline[min(self.index, len(self.timeline) - 1)]
        return value

    def step(self, _iteration):
        self.index += 1

    def checkable(self, name="p"):
        return PredicateCheckable(self.probe, name=name)


class TestMonitoringLoopBase:
    def test_boundary_must_be_positive(self):
        with pytest.raises(ValueError):
            MonitoringLoop(boundary=0)

    def test_default_loop_passes_at_timeout(self):
        loop = MonitoringLoop(boundary=5)
        assert loop.check() is CheckStatus.PASS
        assert loop.iterations_run == 5

    def test_variant_decreases(self):
        loop = MonitoringLoop(boundary=10)
        assert loop.variant(0) == 10
        assert loop.variant(10) == 0

    def test_sleep_milliseconds_configurable(self):
        assert MonitoringLoop(sleep_ms=250).sleep_milliseconds() == 250


class TestGlobalUniversality:
    def test_passes_when_p_always_holds(self):
        script = _Scripted([True] * 5)
        loop = GlobalUniversality(script.checkable(), boundary=5,
                                  step=script.step)
        assert loop.check() is CheckStatus.PASS

    def test_fails_on_first_violation(self):
        script = _Scripted([True, True, False, True])
        loop = GlobalUniversality(script.checkable(), boundary=10,
                                  step=script.step)
        assert loop.check() is CheckStatus.FAIL
        assert loop.iterations_run == 2

    def test_tctl_rendering(self):
        loop = GlobalUniversality(PredicateCheckable(lambda: True, "p"))
        assert loop.tctl() == "A[] (p)"


class TestEventually:
    def test_passes_when_p_becomes_true(self):
        script = _Scripted([False, False, True])
        loop = Eventually(script.checkable(), boundary=10, step=script.step)
        assert loop.check() is CheckStatus.PASS

    def test_fails_at_boundary_without_p(self):
        script = _Scripted([False])
        loop = Eventually(script.checkable(), boundary=4, step=script.step)
        assert loop.check() is CheckStatus.FAIL
        assert loop.iterations_run == 4

    def test_tctl_rendering(self):
        loop = Eventually(PredicateCheckable(lambda: True, "p"))
        assert loop.tctl() == "A<> (p)"


class TestGlobalResponseTimed:
    def test_response_within_bound_passes(self):
        stimulus = PredicateCheckable(lambda: True, "s")
        script = _Scripted([False, False, True])
        loop = GlobalResponseTimed(stimulus, script.checkable("r"),
                                   boundary=5, step=script.step)
        assert loop.check() is CheckStatus.PASS

    def test_response_after_bound_fails(self):
        stimulus = PredicateCheckable(lambda: True, "s")
        script = _Scripted([False] * 10 + [True])
        loop = GlobalResponseTimed(stimulus, script.checkable("r"),
                                   boundary=3, step=script.step)
        assert loop.check() is CheckStatus.FAIL

    def test_without_stimulus_is_incomplete(self):
        stimulus = PredicateCheckable(lambda: False, "s")
        response = PredicateCheckable(lambda: True, "r")
        loop = GlobalResponseTimed(stimulus, response, boundary=3)
        assert loop.check() is CheckStatus.INCOMPLETE

    def test_tctl_includes_bound(self):
        loop = GlobalResponseTimed(
            PredicateCheckable(lambda: True, "s"),
            PredicateCheckable(lambda: True, "r"), boundary=7)
        assert loop.tctl() == "A[] ((s) imply A<>[0,7] (r))"


class TestGlobalResponseUntil:
    def _loop(self, q_timeline, r_timeline, boundary=10):
        q_script = _Scripted(q_timeline)
        r_script = _Scripted(r_timeline)

        def step(i):
            q_script.step(i)
            r_script.step(i)

        return GlobalResponseUntil(
            PredicateCheckable(lambda: True, "p"),
            q_script.checkable("q"),
            r_script.checkable("r"),
            boundary=boundary, step=step)

    def test_q_eventually_holds(self):
        loop = self._loop([False, False, True], [False])
        assert loop.check() is CheckStatus.PASS

    def test_release_waives_obligation(self):
        loop = self._loop([False], [False, True])
        assert loop.check() is CheckStatus.PASS

    def test_neither_q_nor_r_fails(self):
        loop = self._loop([False], [False], boundary=4)
        assert loop.check() is CheckStatus.FAIL

    def test_unsatisfied_premise_is_incomplete(self):
        loop = GlobalResponseUntil(
            PredicateCheckable(lambda: False, "p"),
            PredicateCheckable(lambda: True, "q"),
            PredicateCheckable(lambda: True, "r"))
        assert loop.check() is CheckStatus.INCOMPLETE


class TestGlobalUniversalityTimed:
    def test_holds_for_window(self):
        script = _Scripted([True] * 3)
        loop = GlobalUniversalityTimed(script.checkable(), boundary=3,
                                       step=script.step)
        assert loop.check() is CheckStatus.PASS

    def test_breaks_inside_window(self):
        script = _Scripted([True, False])
        loop = GlobalUniversalityTimed(script.checkable(), boundary=3,
                                       step=script.step)
        assert loop.check() is CheckStatus.FAIL

    def test_tctl_includes_window(self):
        loop = GlobalUniversalityTimed(
            PredicateCheckable(lambda: True, "p"), boundary=9)
        assert loop.tctl() == "A[][0,9] (p)"


class TestAfterUntilUniversality:
    def _loop(self, p_timeline, r_timeline, q_value=True, boundary=10):
        p_script = _Scripted(p_timeline)
        r_script = _Scripted(r_timeline)

        def step(i):
            p_script.step(i)
            r_script.step(i)

        return AfterUntilUniversality(
            PredicateCheckable(lambda: q_value, "q"),
            p_script.checkable("p"),
            r_script.checkable("r"),
            boundary=boundary, step=step)

    def test_scope_not_opened_is_incomplete(self):
        loop = self._loop([True], [False], q_value=False)
        assert loop.check() is CheckStatus.INCOMPLETE

    def test_p_holds_until_r_closes(self):
        loop = self._loop([True, True, True], [False, False, True])
        assert loop.check() is CheckStatus.PASS

    def test_p_violated_before_r_fails(self):
        loop = self._loop([True, False], [False])
        assert loop.check() is CheckStatus.FAIL

    def test_p_holds_forever_without_r_passes(self):
        loop = self._loop([True], [False], boundary=5)
        assert loop.check() is CheckStatus.PASS

    def test_tctl_weak_until(self):
        loop = self._loop([True], [False])
        assert "W" in loop.tctl()


class TestStepHookDrivesEnvironment:
    def test_loop_observes_environment_changes(self, ubuntu_default):
        """The step hook is how the monitor sees the world move: here a
        package is removed between polls and Eventually turns PASS."""
        host = ubuntu_default

        def step(iteration):
            if iteration == 2:
                host.dpkg.remove("nis")

        loop = Eventually(
            PredicateCheckable(lambda: not host.dpkg.is_installed("nis"),
                               name="nis_absent"),
            boundary=10, step=step)
        assert loop.check() is CheckStatus.PASS
        assert loop.iterations_run == 3


class TestLtlBridge:
    """The event-driven ablation: each pattern's ltl() agrees with its
    polling verdict on the same scripted timeline."""

    def test_global_universality_agrees_with_ltlf(self):
        from repro.ltl import evaluate_ltlf

        timeline = [True, True, False]
        script = _Scripted(timeline)
        loop = GlobalUniversality(script.checkable("p"), boundary=3,
                                  step=script.step)
        polling = loop.check()
        trace = [{"p"} if value else set() for value in timeline]
        assert (polling is CheckStatus.PASS) == \
            evaluate_ltlf(loop.ltl(), trace)

    def test_eventually_agrees_with_ltlf(self):
        from repro.ltl import evaluate_ltlf

        for timeline in ([False, True], [False, False]):
            script = _Scripted(timeline)
            loop = Eventually(script.checkable("p"), boundary=2,
                              step=script.step)
            polling = loop.check()
            trace = [{"p"} if value else set() for value in timeline]
            assert (polling is CheckStatus.PASS) == \
                evaluate_ltlf(loop.ltl(), trace), timeline

    def test_ltl_formulas_parse_back(self):
        from repro.ltl import parse_ltl

        p = PredicateCheckable(lambda: True, "p")
        s = PredicateCheckable(lambda: True, "s")
        r = PredicateCheckable(lambda: True, "r")
        for loop in (
            GlobalUniversality(p),
            Eventually(p),
            GlobalResponseTimed(s, r, boundary=5),
            GlobalResponseUntil(p, s, r),
            GlobalUniversalityTimed(p, boundary=5),
            AfterUntilUniversality(s, p, r),
        ):
            formula = loop.ltl()
            assert parse_ltl(str(formula)) == formula

    def test_base_loop_ltl_is_true(self):
        from repro.ltl.formulas import TRUE

        assert MonitoringLoop(boundary=1).ltl() is TRUE
