"""The invariant suite: randomized seeded fault plans, conservation
laws, and byte-identical replay.

Each seed expands (purely) into a :class:`FaultPlan` mixing roughly
half the fault sites at rates up to 20%; the scenario harness drives a
fleet drift storm through the SOC under that plan and the
:class:`InvariantChecker` asserts the conservation properties — no
event lost, quiescent drain, at most one effective repair per drift,
no phantom incidents, bounded dead letters.  CI's chaos-smoke job runs
a fixed 3-seed slice of this file (`-k` on the ``seed-N`` ids); the
full sweep runs with the regular suite.
"""

import pytest

from repro.chaos import (
    ChaosController,
    FaultPlan,
    check_invariants,
    run_chaos_scenario,
)

#: The randomized sweep: one plan per seed, ids stable for CI slicing.
SEEDS = list(range(25))


@pytest.mark.parametrize(
    "seed", SEEDS, ids=[f"seed-{seed}" for seed in SEEDS])
def test_invariants_hold_under_randomized_fault_plan(seed):
    plan = FaultPlan.randomized(seed)
    result = run_chaos_scenario(plan)
    result.invariants.raise_if_violated()
    # Eventual repair coverage: the degradation ladder (retry ->
    # breaker -> dead-letter -> reconcile) always converges to a
    # fully compliant fleet at these fault rates.
    assert result.fully_repaired, (
        f"posture {result.posture_ratio:.0%} under {plan.describe()}")


class TestReplay:
    DENSE = FaultPlan(seed=77, worker_crash=0.1, worker_hang=0.08,
                      session_error=0.12, repair_raise=0.15,
                      repair_noop=0.1, event_duplicate=0.1,
                      event_reorder=0.1, event_delay=0.05,
                      config_slow=0.1, max_deliveries=2)

    def test_chaos_run_replays_byte_identically(self):
        first = run_chaos_scenario(self.DENSE)
        second = run_chaos_scenario(self.DENSE)
        assert first.injections > 0          # the plan actually fired
        assert first.decisions == second.decisions
        assert first.digest == second.digest
        assert first.signature() == second.signature()

    def test_replay_from_serialized_plan(self):
        # The plan round-trips through JSON and the restored plan
        # reproduces the exact same run — what --chaos-plan relies on.
        restored = FaultPlan.from_json(self.DENSE.to_json())
        original = run_chaos_scenario(self.DENSE)
        replayed = run_chaos_scenario(restored)
        assert replayed.digest == original.digest
        assert replayed.signature() == original.signature()

    def test_different_seed_different_run(self):
        other = FaultPlan.from_dict(
            {**self.DENSE.to_dict(), "seed": 78})
        assert run_chaos_scenario(self.DENSE).digest != \
            run_chaos_scenario(other).digest

    def test_quiet_plan_injects_nothing(self):
        result = run_chaos_scenario(FaultPlan(seed=0))
        assert result.injections == 0
        assert result.decisions == {}
        assert result.invariants.ok
        assert result.fully_repaired


class TestDecisionDeterminism:
    def test_decisions_are_order_independent(self):
        plan = FaultPlan(seed=5, worker_crash=0.5)
        first = ChaosController(plan)
        second = ChaosController(plan)
        keys = [f"host-{i}:{t}:0" for i in range(4) for t in range(10)]
        for key in keys:
            first.decide("worker.crash", key)
        for key in reversed(keys):
            second.decide("worker.crash", key)
        assert first.decisions() == second.decisions()
        assert first.decisions_digest() == second.decisions_digest()

    def test_zero_rate_site_never_draws(self):
        controller = ChaosController(FaultPlan(seed=5))
        assert not any(controller.decide("worker.crash", f"k{i}")
                       for i in range(100))
        assert controller.injection_count() == 0


class TestCheckerCatchesViolations:
    """The checker must actually fail on broken accounting, or the
    25-seed sweep above proves nothing."""

    def _clean_run(self):
        return run_chaos_scenario(FaultPlan(seed=1),
                                  check_invariants=False)

    def test_admission_leak_detected(self):
        result = self._clean_run()
        result.service.metrics.counter("soc.events.offered").inc()
        report = check_invariants(result.service)
        assert not report.ok
        assert any("admission leak" in v for v in report.violations)

    def test_disposition_leak_detected(self):
        result = self._clean_run()
        result.service.metrics.counter("soc.events.ingested").inc()
        report = check_invariants(result.service)
        assert any("disposition leak" in v for v in report.violations)

    def test_dead_letter_ledger_mismatch_detected(self):
        result = self._clean_run()
        result.service.metrics.counter("soc.events.dead_lettered").inc()
        report = check_invariants(result.service)
        assert any("ledger mismatch" in v for v in report.violations)

    def test_raise_if_violated_raises_with_every_violation(self):
        result = self._clean_run()
        result.service.metrics.counter("soc.events.offered").inc()
        result.service.metrics.counter("soc.events.dead_lettered").inc()
        report = check_invariants(result.service)
        with pytest.raises(AssertionError, match="2 invariant"):
            report.raise_if_violated()

    def test_clean_run_summary_reads_ok(self):
        report = check_invariants(self._clean_run().service)
        assert report.ok
        assert report.summary().startswith("invariants OK")
        assert len(report.checked) == 5
