"""Integration tests crossing subsystem boundaries.

These exercise the seams the unit tests cannot: RESA text through
formalization into runtime monitors; vulnerability records through the
pipeline; observers verified against systems derived from requirements;
TEARS judging logs produced by a simulated host.
"""

import pytest

from repro.core import VeriDevOpsOrchestrator
from repro.environment import default_ubuntu_host, hardened_windows_host
from repro.ltl import LtlMonitor, Verdict, evaluate_ltlf, parse_ltl
from repro.resa import match_boilerplate, to_pattern
from repro.specpatterns import Globally, build_observer, to_ltl
from repro.ta import Edge, Location, Network, TimedAutomaton, \
    ZoneGraphChecker, parse_guard, parse_query
from repro.tears import GaVerdict, GuardedAssertion, TimedTrace, parse_expr
from repro.vulndb import SoftwareInventory, bundled_database


class TestResaToMonitor:
    def test_boilerplate_to_runtime_monitor(self):
        """Constrained NL -> pattern -> LTL -> armed monitor -> verdicts."""
        structured = match_boilerplate(
            "R", "When intrusion is detected, the gateway shall alert "
                 "the operator.")
        pattern, scope = to_pattern(structured)
        formula = to_ltl(pattern, scope)
        monitor = LtlMonitor(formula)

        # An intrusion without an alert leaves the obligation open; the
        # exact LTLf judgment on the completed trace is the verdict.
        trace = [{"intrusion_is_detected"}, set(), {"alert_the_operator"}]
        assert monitor.observe_trace(trace) is Verdict.INCONCLUSIVE
        assert evaluate_ltlf(formula, trace)
        assert not evaluate_ltlf(formula, trace[:2])

    def test_timed_boilerplate_to_observer_verification(self):
        """Timed NL requirement -> TimedResponse observer -> model check."""
        structured = match_boilerplate(
            "R", "When intrusion is detected, the gateway shall alert "
                 "the operator within 5 seconds.")
        pattern, _ = to_pattern(structured)
        observer = build_observer(pattern)

        fast_gateway = TimedAutomaton(
            name="GW", clocks=["x"],
            locations=[
                Location("idle"),
                Location("alerting", invariant=parse_guard("x <= 3")),
            ],
            edges=[
                Edge("idle", "alerting", sync=f"{pattern.p}!",
                     resets=("x",), action="intrusion"),
                Edge("alerting", "idle", sync=f"{pattern.s}!",
                     action="alert"),
            ],
        )
        network = Network([fast_gateway, observer.automaton])
        result = ZoneGraphChecker(network).check(parse_query(observer.query))
        assert result.satisfied


class TestVulnDrivenPipeline:
    def test_vulnerable_inventory_flows_through_pipeline(self):
        host = default_ubuntu_host()
        orchestrator = VeriDevOpsOrchestrator()
        inventory = SoftwareInventory.of(host.name, "ubuntu", {
            "openssh-server": "7.6", "bash": "4.3",
        })
        orchestrator.ingest_vulnerabilities(bundled_database(), inventory)
        run = orchestrator.run_prevention([host])
        assert run.passed, run.gate_rows()
        formalized = orchestrator.repository.formalized()
        assert formalized
        assert all(record.tctl for record in formalized)


class TestHostEventsToTears:
    def test_ga_judges_host_event_log(self):
        """A TEARS G/A evaluates a signal trace derived from host
        events: compliance ratio must recover after hardening."""
        host = hardened_windows_host()
        trace = TimedTrace()
        # Sample the 'audit_ok' signal around a drift/repair episode.
        def sample(time):
            setting = host.audit_store.get("Logon").render()
            trace.record(time, audit_ok=1 if "Success" in setting else 0,
                         drifted=0 if "Success" in setting else 1)

        sample(0)
        host.drift_audit_policy("Logon")
        sample(1)
        host.audit_store.set("Logon", success=True, failure=True)  # repair
        sample(2)

        ga = GuardedAssertion(
            name="audit_recovers",
            guard=parse_expr("drifted == 1"),
            assertion=parse_expr("audit_ok == 1"),
            within=2,
        )
        result = ga.evaluate(trace)
        assert result.verdict is GaVerdict.PASSED
        assert result.activations == 1

    def test_ga_fails_without_repair(self):
        host = hardened_windows_host()
        trace = TimedTrace()
        host.drift_audit_policy("Logon")
        trace.record(0, drifted=1, audit_ok=0)
        trace.record(5, drifted=1, audit_ok=0)
        ga = GuardedAssertion(
            name="audit_recovers",
            guard=parse_expr("drifted == 1"),
            assertion=parse_expr("audit_ok == 1"),
            within=2,
        )
        assert ga.evaluate(trace).verdict is GaVerdict.FAILED


class TestStandardsRoundTrip:
    def test_windows_standards_pipeline_and_protection(self):
        host = hardened_windows_host()
        orchestrator = VeriDevOpsOrchestrator()
        orchestrator.ingest_standards("windows")
        run = orchestrator.run_prevention([host])
        assert run.passed
        loop = orchestrator.start_protection(host, run)
        host.drift_audit_policy("Logon")
        effective = [i for i in loop.incidents if i.effective]
        assert effective
        assert host.audit_store.get("Logon").render() == \
            "Success and Failure"
