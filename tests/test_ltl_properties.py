"""Property-based tests (hypothesis) for the LTL substrate.

The central invariant: the progression monitor is *impartial* — once it
concludes TRUE/FALSE on a prefix, exact LTLf evaluation on any completed
trace extending that prefix agrees.
"""

from hypothesis import given, settings, strategies as st

from repro.ltl import LtlMonitor, Verdict, evaluate_ltlf, parse_ltl
from repro.ltl.formulas import (
    Atom,
    Eventually,
    Globally,
    Next,
    Until,
    WeakUntil,
    implies,
    land,
    lnot,
    lor,
)
from repro.ltl.monitor import progress

ATOMS = ("a", "b", "c")


def formulas(max_depth=4):
    atoms = st.sampled_from([Atom(name) for name in ATOMS])

    def extend(children):
        return st.one_of(
            children.map(lnot),
            children.map(Next),
            children.map(Eventually),
            children.map(Globally),
            st.tuples(children, children).map(lambda pair: land(*pair)),
            st.tuples(children, children).map(lambda pair: lor(*pair)),
            st.tuples(children, children).map(lambda pair: implies(*pair)),
            st.tuples(children, children).map(lambda pair: Until(*pair)),
            st.tuples(children, children).map(lambda pair: WeakUntil(*pair)),
        )

    return st.recursive(atoms, extend, max_leaves=max_depth)


def steps():
    return st.frozensets(st.sampled_from(ATOMS), max_size=len(ATOMS))


def traces(max_size=6):
    return st.lists(steps(), min_size=0, max_size=max_size)


@settings(max_examples=200, deadline=None)
@given(formula=formulas(), trace=traces())
def test_concluded_monitor_agrees_with_ltlf(formula, trace):
    monitor = LtlMonitor(formula)
    consumed = []
    for step in trace:
        consumed.append(step)
        if monitor.observe(step) is not Verdict.INCONCLUSIVE:
            break
    if monitor.verdict is Verdict.TRUE:
        # TRUE means satisfied on every extension; check several.
        assert evaluate_ltlf(formula, consumed + [frozenset()] * 3)
        assert evaluate_ltlf(formula, consumed + [frozenset(ATOMS)] * 3)
    elif monitor.verdict is Verdict.FALSE:
        assert not evaluate_ltlf(formula, consumed + [frozenset()] * 3)
        assert not evaluate_ltlf(formula, consumed + [frozenset(ATOMS)] * 3)


@settings(max_examples=200, deadline=None)
@given(formula=formulas(), trace=traces(max_size=5))
def test_negation_duality_in_ltlf(formula, trace):
    assert evaluate_ltlf(lnot(formula), trace) == \
        (not evaluate_ltlf(formula, trace))


@settings(max_examples=150, deadline=None)
@given(formula=formulas(), step=steps(),
       trace=st.lists(steps(), min_size=1, max_size=4))
def test_progression_preserves_ltlf_semantics(formula, step, trace):
    """LTLf(φ, step·σ) == LTLf(progress(φ, step), σ) — the defining
    equation of formula progression.

    σ is required non-empty: progression targets infinite-trace
    semantics, and at the very end of a finite trace LTLf's strong-Next
    convention legitimately diverges (e.g. ``X (a -> a)`` is false on a
    one-step trace but progresses to a tautology).
    """
    progressed = progress(formula, step)
    assert evaluate_ltlf(formula, [step] + trace) == \
        evaluate_ltlf(progressed, trace)


@settings(max_examples=100, deadline=None)
@given(left=formulas(max_depth=3), right=formulas(max_depth=3),
       trace=traces(max_size=5))
def test_weak_until_decomposition(left, right, trace):
    """p W q  ==  (p U q) | G p, pointwise on finite traces."""
    weak = WeakUntil(left, right)
    strong_or_global = lor(Until(left, right), Globally(left))
    assert evaluate_ltlf(weak, trace) == \
        evaluate_ltlf(strong_or_global, trace)


@settings(max_examples=100, deadline=None)
@given(operand=formulas(max_depth=3), trace=traces(max_size=5))
def test_eventually_globally_duality(operand, trace):
    assert evaluate_ltlf(Eventually(operand), trace) == \
        (not evaluate_ltlf(Globally(lnot(operand)), trace))


@settings(max_examples=100, deadline=None)
@given(formula=formulas(), trace=traces())
def test_monitor_verdict_is_monotone(formula, trace):
    """Once TRUE/FALSE, the verdict never changes on further input."""
    monitor = LtlMonitor(formula)
    concluded = None
    for step in trace:
        monitor.observe(step)
        if concluded is not None:
            assert monitor.verdict is concluded
        elif monitor.verdict is not Verdict.INCONCLUSIVE:
            concluded = monitor.verdict
