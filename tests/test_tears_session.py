"""Unit tests for the TEARS session directory and analysis overview."""

from pathlib import Path

import pytest

from repro.tears import (
    GaVerdict,
    SessionDirectory,
    TimedTrace,
    parse_ga,
)
from repro.tears.session import render_overview


@pytest.fixture
def session(tmp_path):
    return SessionDirectory(tmp_path / "session").initialize()


@pytest.fixture
def brake_ga():
    return parse_ga(
        'GA "brake_response":\n'
        " WHEN speed > 50 and brake == 1\n"
        " THEN decel >= 2\n"
        " WITHIN 3"
    )


def passing_trace():
    trace = TimedTrace()
    trace.record(0, speed=60, brake=1, decel=0)
    trace.record(2, speed=55, brake=1, decel=3)
    return trace


def failing_trace():
    trace = TimedTrace()
    trace.record(0, speed=60, brake=1, decel=0)
    trace.record(9, speed=60, brake=1, decel=0)
    return trace


class TestLayout:
    def test_initialize_creates_structure(self, session):
        assert session.ga_dir.is_dir()
        assert session.generated_dir.is_dir()
        assert session.log_dir.is_dir()
        assert session.req_dir.is_dir()
        assert (session.root / "main_definitions.ga").exists()

    def test_initialize_is_idempotent(self, session):
        definitions = session.root / "main_definitions.ga"
        definitions.write_text("# customized\n")
        session.initialize()
        assert definitions.read_text() == "# customized\n"

    def test_expected_napkin_paths(self, session):
        assert session.log_dir == session.root / "log" / "Expert-Sessions"


class TestGaStorage:
    def test_write_and_load_round_trip(self, session, brake_ga):
        session.write_gas([brake_ga])
        loaded = session.load_gas()
        assert len(loaded) == 1
        assert loaded[0].name == "brake_response"
        assert loaded[0].within == 3

    def test_load_without_file_returns_empty(self, session):
        assert session.load_gas() == []


class TestLogStorage:
    def test_write_and_load_logs(self, session):
        session.write_log("LOGDATA", passing_trace())
        logs = session.load_logs()
        assert list(logs) == ["LOGDATA"]
        assert len(logs["LOGDATA"]) == 2


class TestAnalysis:
    def test_analyze_passing_and_failing_logs(self, session, brake_ga):
        session.write_gas([brake_ga])
        session.write_log("GOOD", passing_trace())
        session.write_log("BAD", failing_trace())
        results = session.analyze()
        assert results["GOOD"][0].verdict is GaVerdict.PASSED
        assert results["BAD"][0].verdict is GaVerdict.FAILED

    def test_analyze_writes_overview(self, session, brake_ga):
        session.write_gas([brake_ga])
        session.write_log("GOOD", passing_trace())
        session.analyze()
        overview = (session.generated_dir /
                    "ANALYSIS_overview.html").read_text()
        assert "brake_response" in overview
        assert "PASSED" in overview

    def test_overview_renders_failures_and_vacuity(self, brake_ga):
        idle = TimedTrace()
        idle.record(0, speed=10, brake=0, decel=0)
        html = render_overview({
            "BAD": [brake_ga.evaluate(failing_trace())],
            "IDLE": [brake_ga.evaluate(idle)],
        })
        assert "FAILED" in html
        assert "VACUOUS" in html
        assert "never held" in html
