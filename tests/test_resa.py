"""Unit tests for RESA: boilerplates, ontology, parser, pattern export."""

import pytest

from repro.resa import (
    BoilerplateMatchError,
    EastAdlLevel,
    Ontology,
    default_ontology,
    level_for_extension,
    match_boilerplate,
    parse_document,
    to_pattern,
)
from repro.resa.export import bound_in_seconds, event_name
from repro.specpatterns import (
    Absence,
    AfterQUntilR,
    Existence,
    Globally,
    Response,
    TimedResponse,
    Universality,
)


class TestBoilerplates:
    def test_b1_simple_shall(self):
        req = match_boilerplate("R", "The audit subsystem shall log events.")
        assert req.boilerplate_id == "B1"
        assert req.slots["system"] == "audit subsystem"
        assert req.slots["action"] == "log events"

    def test_b2_timed(self):
        req = match_boilerplate(
            "R", "The gateway shall reject the request within 5 seconds.")
        assert req.boilerplate_id == "B2"
        assert req.slots["number"] == "5"
        assert req.slots["unit"] == "seconds"

    def test_b3_conditional(self):
        req = match_boilerplate(
            "R", "When intrusion is detected, the gateway shall alert "
                 "the operator.")
        assert req.boilerplate_id == "B3"
        assert req.slots["condition"] == "intrusion is detected"

    def test_b4_beats_b3(self):
        req = match_boilerplate(
            "R", "When intrusion is detected, the gateway shall alert "
                 "the operator within 2 seconds.")
        assert req.boilerplate_id == "B4"

    def test_b5_negative(self):
        req = match_boilerplate(
            "R", "The gateway shall not transmit passwords.")
        assert req.boilerplate_id == "B5"

    def test_b6_while(self):
        req = match_boilerplate(
            "R", "While the vehicle is moving, the door controller shall "
                 "lock the doors.")
        assert req.boilerplate_id == "B6"

    def test_whitespace_normalized(self):
        req = match_boilerplate("R", "The   gateway  shall   log events.")
        assert req.text == "The gateway shall log events."

    def test_no_match_raises(self):
        with pytest.raises(BoilerplateMatchError):
            match_boilerplate("R", "Logging is generally good practice")


class TestOntology:
    def test_default_knows_systems(self):
        ontology = default_ontology()
        assert ontology.knows("system", "authentication service")
        assert not ontology.knows("system", "flux capacitor")

    def test_multiword_with_stopwords(self):
        ontology = default_ontology()
        assert ontology.knows("action", "lock the account")

    def test_numbers_are_transparent(self):
        ontology = default_ontology()
        assert ontology.knows("condition", "3 consecutive failures occur")

    def test_extend(self):
        ontology = Ontology()
        ontology.extend("system", ["reactor core"])
        assert ontology.knows("system", "Reactor Core")

    def test_unknown_category(self):
        assert not Ontology().knows("nope", "term")


class TestDocumentParsing:
    DOC = """
# security requirements
REQ-1: The authentication service shall lock the account.
REQ-2: When 3 consecutive failures occur, the session manager
       shall alert the operator within 5 seconds.
REQ-3: This text matches nothing structured
"""

    def test_parse_with_continuation_lines(self):
        document = parse_document(self.DOC)
        assert [r.req_id for r in document.requirements] == ["REQ-1",
                                                             "REQ-2"]
        assert document.requirements[1].boilerplate_id == "B4"

    def test_unmatched_statement_is_error(self):
        document = parse_document(self.DOC)
        assert len(document.errors) == 1
        assert document.errors[0].req_id == "REQ-3"
        assert not document.valid

    def test_unknown_terms_are_warnings(self):
        document = parse_document(
            "REQ-1: The flux capacitor shall frobnicate the widget.")
        assert document.valid  # structure fine, vocabulary warned
        assert len(document.warnings) >= 1

    def test_requirement_lookup(self):
        document = parse_document("REQ-1: The gateway shall log events.")
        assert document.requirement("REQ-1").boilerplate_id == "B1"
        with pytest.raises(KeyError):
            document.requirement("REQ-9")

    def test_levels_by_extension(self):
        assert level_for_extension("spec.resa") is EastAdlLevel.GENERIC
        assert level_for_extension("spec.vl") is EastAdlLevel.VEHICLE
        assert level_for_extension("spec.al") is EastAdlLevel.ANALYSIS
        assert level_for_extension("spec.dl") is EastAdlLevel.DESIGN
        with pytest.raises(ValueError):
            level_for_extension("spec.txt")


class TestPatternExport:
    def test_b1_existence(self):
        req = match_boilerplate("R", "The gateway shall log events.")
        pattern, scope = to_pattern(req)
        assert pattern == Existence(p="log_events")
        assert scope == Globally()

    def test_b2_timed_response(self):
        req = match_boilerplate(
            "R", "The gateway shall reject the request within 2 minutes.")
        pattern, _ = to_pattern(req)
        assert isinstance(pattern, TimedResponse)
        assert pattern.bound == 120

    def test_b3_response(self):
        req = match_boilerplate(
            "R", "When intrusion is detected, the gateway shall alert "
                 "the operator.")
        pattern, _ = to_pattern(req)
        assert pattern == Response(p="intrusion_is_detected",
                                   s="alert_the_operator")

    def test_b5_absence(self):
        req = match_boilerplate(
            "R", "The gateway shall not transmit passwords.")
        pattern, _ = to_pattern(req)
        assert pattern == Absence(p="transmit_passwords")

    def test_b6_scoped_universality(self):
        req = match_boilerplate(
            "R", "While the vehicle is moving, the door controller shall "
                 "lock the doors.")
        pattern, scope = to_pattern(req)
        assert isinstance(pattern, Universality)
        assert isinstance(scope, AfterQUntilR)

    def test_event_name_sanitization(self):
        assert event_name("3 failures occur") == "e_3_failures_occur"
        assert event_name("Lock-The Account!") == "lock_the_account"
        assert event_name("") == "event"

    def test_bound_conversion(self):
        assert bound_in_seconds("5", "seconds") == 5
        assert bound_in_seconds("2", "minutes") == 120
        assert bound_in_seconds("500", "ms") == 1
        with pytest.raises(ValueError):
            bound_in_seconds("5", "fortnights")
