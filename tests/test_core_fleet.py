"""Unit tests for fleet management and fleet-wide protection."""

import pytest

from repro.core.fleet import Fleet, FleetProtection
from repro.environment import (
    adversarial_ubuntu_host,
    default_ubuntu_host,
    hardened_ubuntu_host,
    hardened_windows_host,
)
from repro.rqcode import default_catalog


@pytest.fixture
def fleet(catalog):
    fleet = Fleet("prod", catalog)
    fleet.add(hardened_ubuntu_host("web-1"))
    fleet.add(hardened_ubuntu_host("web-2"))
    fleet.add(hardened_windows_host("ops-console"))
    return fleet


class TestFleet:
    def test_membership(self, fleet):
        assert len(fleet) == 3
        assert fleet.host("web-1").os_family == "ubuntu"
        assert [h.name for h in fleet.hosts("windows")] == ["ops-console"]

    def test_duplicate_names_rejected(self, fleet):
        with pytest.raises(ValueError):
            fleet.add(hardened_ubuntu_host("web-1"))

    def test_audit_posture(self, fleet):
        posture = fleet.audit()
        assert posture.host_count == 3
        assert posture.fully_compliant_hosts == 3
        assert posture.worst_ratio == 1.0

    def test_mixed_posture(self, catalog):
        fleet = Fleet("mixed", catalog)
        fleet.add(hardened_ubuntu_host("good"))
        fleet.add(adversarial_ubuntu_host("bad"))
        posture = fleet.audit()
        assert posture.fully_compliant_hosts == 1
        assert posture.worst_ratio == 0.0
        assert 0.0 < posture.mean_ratio < 1.0

    def test_harden_lifts_the_fleet(self, catalog):
        fleet = Fleet("mixed", catalog)
        fleet.add(adversarial_ubuntu_host("bad-1"))
        fleet.add(default_ubuntu_host("meh-1"))
        posture = fleet.harden()
        assert posture.worst_ratio == 1.0

    def test_posture_rows(self, fleet):
        rows = fleet.audit().rows()
        assert len(rows) == 3
        assert rows[0]["ratio"] == "100%"

    def test_empty_fleet_posture(self, catalog):
        posture = Fleet("empty", catalog).audit()
        assert posture.worst_ratio == 1.0
        assert posture.rows() == []


class TestFleetProtection:
    def test_drift_on_any_host_repaired(self, fleet):
        protection = FleetProtection(fleet).start()
        fleet.host("web-1").drift_install_package("nis")
        fleet.host("web-2").drift_install_package("rsh-server")
        fleet.host("ops-console").drift_audit_policy("Logon")

        # The audit drift breaks both Logon findings (success+failure),
        # so four effective repairs across the three drift events.
        assert protection.effective_repairs() >= 3
        assert not fleet.host("web-1").dpkg.is_installed("nis")
        assert not fleet.host("web-2").dpkg.is_installed("rsh-server")
        assert fleet.host("ops-console").audit_store.get(
            "Logon").render() == "Success and Failure"

    def test_incidents_merged_in_time_order(self, fleet):
        protection = FleetProtection(fleet).start()
        fleet.host("web-2").drift_install_package("nis")
        fleet.host("web-1").drift_install_package("nis")
        incidents = protection.incidents()
        assert incidents
        times = [incident.detected_at for incident in incidents]
        assert times == sorted(times)

    def test_incidents_by_host(self, fleet):
        protection = FleetProtection(fleet).start()
        fleet.host("web-1").drift_install_package("nis")
        by_host = protection.incidents_by_host()
        assert any(i.effective for i in by_host["web-1"])
        assert not any(i.effective for i in by_host["web-2"])

    def test_cross_platform_bindings_filtered(self, fleet):
        """A Windows finding must never be enforced on an Ubuntu box:
        the ubuntu loops carry only ubuntu bindings."""
        protection = FleetProtection(fleet).start()
        ubuntu_loop = protection.loop_for("web-1")
        ubuntu_findings = {
            fid for binding in ubuntu_loop.bindings.values()
            for fid in binding
        }
        assert ubuntu_findings
        assert all(fid.startswith("V-219") for fid in ubuntu_findings)

    def test_account_policy_drift_repaired(self, fleet):
        protection = FleetProtection(fleet).start()
        console = fleet.host("ops-console")
        console.drift_account_policy(threshold=0)
        assert console.accounts.policy.threshold == 3
        assert console.accounts.policy.duration_minutes >= 15

    def test_start_is_idempotent(self, fleet):
        protection = FleetProtection(fleet).start().start()
        assert len(protection.incidents()) == 0
        protection.stop()
        fleet.host("web-1").drift_install_package("nis")
        assert protection.effective_repairs() == 0
