"""Unit tests for the per-finding circuit breaker."""

from repro.soc.breaker import BreakerState, CircuitBreaker


class TestClosedState:
    def test_allows_while_closed(self):
        breaker = CircuitBreaker(failure_threshold=3)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED  # streak broken


class TestTripping:
    def test_opens_at_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3)
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 1

    def test_open_skips_and_counts(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=2)
        breaker.record_failure()
        assert not breaker.allow()
        assert breaker.skipped == 1


class TestRecovery:
    def _tripped(self, cooldown=2):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=cooldown)
        breaker.record_failure()
        return breaker

    def test_half_open_after_cooldown(self):
        breaker = self._tripped(cooldown=2)
        assert not breaker.allow()
        assert not breaker.allow()   # cooldown absorbed
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow()       # the trial request

    def test_trial_success_closes(self):
        breaker = self._tripped(cooldown=1)
        breaker.allow()              # absorbs cooldown -> HALF_OPEN
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_trial_failure_reopens(self):
        breaker = self._tripped(cooldown=1)
        breaker.allow()
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2

    def test_validation(self):
        import pytest

        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=0)

    def test_trial_failure_restores_the_full_cooldown(self):
        # Regression: a failed half-open probe must re-open with a
        # fresh, complete backoff — not whatever cooldown remainder
        # the previous OPEN period left behind.
        breaker = CircuitBreaker(failure_threshold=1, cooldown=3)
        breaker.record_failure()                  # -> OPEN
        for _ in range(3):
            assert not breaker.allow()            # full cooldown
        assert breaker.allow()                    # the probe
        breaker.record_failure()                  # probe fails -> OPEN
        absorbed = 0
        while not breaker.allow():
            absorbed += 1
            assert absorbed <= 3
        assert absorbed == 3                      # full cooldown again

    def test_trial_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=1)
        breaker.record_failure()
        breaker.record_failure()                  # -> OPEN (streak 2)
        breaker.allow()                           # absorb -> HALF_OPEN
        assert breaker.allow()
        breaker.record_success()                  # probe lands
        assert breaker.state is BreakerState.CLOSED
        assert breaker.consecutive_failures == 0
        # A single new failure must not re-trip: the streak restarted.
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()


class TestHalfOpenSingleProbe:
    def _half_open(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1)
        breaker.record_failure()
        assert not breaker.allow()               # absorb -> HALF_OPEN
        assert breaker.state is BreakerState.HALF_OPEN
        return breaker

    def test_second_caller_is_absorbed_while_probe_in_flight(self):
        breaker = self._half_open()
        assert breaker.allow()                   # the one probe
        assert not breaker.allow()               # concurrent caller
        assert not breaker.allow()
        assert breaker.state is BreakerState.HALF_OPEN

    def test_probe_slot_reopens_after_outcome(self):
        breaker = self._half_open()
        assert breaker.allow()
        assert not breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()                   # closed: flows again

    def test_concurrent_probes_admit_exactly_one_caller(self):
        # Regression for the double-probe race: two shard workers
        # hitting a half-open breaker at once must not both be let
        # through to hammer the same backend.
        import threading

        breaker = self._half_open()
        admitted = []
        barrier = threading.Barrier(8)

        def prober():
            barrier.wait()
            if breaker.allow():
                admitted.append(threading.current_thread().name)

        threads = [threading.Thread(target=prober) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=5.0)
        assert len(admitted) == 1
