"""Unit tests for the per-finding circuit breaker."""

from repro.soc.breaker import BreakerState, CircuitBreaker


class TestClosedState:
    def test_allows_while_closed(self):
        breaker = CircuitBreaker(failure_threshold=3)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED  # streak broken


class TestTripping:
    def test_opens_at_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3)
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 1

    def test_open_skips_and_counts(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=2)
        breaker.record_failure()
        assert not breaker.allow()
        assert breaker.skipped == 1


class TestRecovery:
    def _tripped(self, cooldown=2):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=cooldown)
        breaker.record_failure()
        return breaker

    def test_half_open_after_cooldown(self):
        breaker = self._tripped(cooldown=2)
        assert not breaker.allow()
        assert not breaker.allow()   # cooldown absorbed
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow()       # the trial request

    def test_trial_success_closes(self):
        breaker = self._tripped(cooldown=1)
        breaker.allow()              # absorbs cooldown -> HALF_OPEN
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_trial_failure_reopens(self):
        breaker = self._tripped(cooldown=1)
        breaker.allow()
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2

    def test_validation(self):
        import pytest

        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=0)
