"""Unit tests for the configuration-file store."""

from repro.environment.configstore import ConfigFileStore


class TestFileLevel:
    def test_exists_and_ensure(self):
        store = ConfigFileStore()
        assert not store.exists("/etc/ssh/sshd_config")
        store.ensure("/etc/ssh/sshd_config")
        assert store.exists("/etc/ssh/sshd_config")

    def test_remove_file(self):
        store = ConfigFileStore()
        store.set("/f", "Key", "v")
        store.remove_file("/f")
        assert not store.exists("/f")
        store.remove_file("/f")  # idempotent

    def test_paths_sorted(self):
        store = ConfigFileStore()
        store.ensure("/b")
        store.ensure("/a")
        assert store.paths() == ["/a", "/b"]


class TestKeyLevel:
    def test_get_missing_returns_default(self):
        store = ConfigFileStore()
        assert store.get("/f", "Key") is None
        assert store.get("/f", "Key", "fallback") == "fallback"

    def test_set_then_get(self):
        store = ConfigFileStore()
        store.set("/f", "PermitRootLogin", "no")
        assert store.get("/f", "PermitRootLogin") == "no"

    def test_lookup_is_case_insensitive(self):
        store = ConfigFileStore()
        store.set("/f", "PermitRootLogin", "no")
        assert store.get("/f", "permitrootlogin") == "no"

    def test_set_replaces_in_place_preserving_order(self):
        store = ConfigFileStore()
        store.set("/f", "A", "1")
        store.set("/f", "B", "2")
        store.set("/f", "A", "99")
        assert store.keys("/f") == ["A", "B"]
        assert store.get("/f", "A") == "99"

    def test_unset(self):
        store = ConfigFileStore()
        store.set("/f", "A", "1")
        assert store.unset("/f", "a") is True
        assert store.get("/f", "A") is None
        assert store.unset("/f", "A") is False
        assert store.unset("/missing", "A") is False


class TestTextRoundTrip:
    SSHD = "Protocol 2\n# comment\n\nPermitRootLogin no\nUsePAM yes\n"

    def test_load_text_skips_comments_and_blanks(self):
        store = ConfigFileStore()
        store.load_text("/f", self.SSHD)
        assert store.keys("/f") == ["Protocol", "PermitRootLogin", "UsePAM"]

    def test_render_round_trip(self):
        store = ConfigFileStore()
        store.load_text("/f", self.SSHD)
        rendered = store.render("/f")
        second = ConfigFileStore()
        second.load_text("/f", rendered)
        assert second.snapshot() == store.snapshot()

    def test_grep_case_insensitive(self):
        store = ConfigFileStore()
        store.load_text("/f", self.SSHD)
        assert store.grep("/f", "permitroot") == ["PermitRootLogin no"]
        assert store.grep("/f", "nonexistent") == []

    def test_snapshot_plain_data(self):
        store = ConfigFileStore()
        store.set("/f", "A", "1")
        assert store.snapshot() == {"/f": {"A": "1"}}

    def test_load_text_replaces_content(self):
        store = ConfigFileStore()
        store.set("/f", "Old", "x")
        store.load_text("/f", "New y")
        assert store.get("/f", "Old") is None
        assert store.get("/f", "New") == "y"
