"""Unit tests for the VeriDevOps orchestrator (WP2 -> WP4 -> WP3)."""

import pytest

from repro.core import VeriDevOpsOrchestrator
from repro.core.repository import RequirementSource, RequirementStatus
from repro.vulndb import SoftwareInventory, bundled_database

CLEAN_NL = [
    "The authentication service shall lock the account.",
    "When 3 consecutive failures occur, the session manager shall "
    "alert the operator within 5 seconds.",
    "The audit subsystem shall not transmit passwords.",
]


class TestIngestion:
    def test_natural_language_with_boilerplates(self):
        orchestrator = VeriDevOpsOrchestrator()
        records = orchestrator.ingest_natural_language(CLEAN_NL)
        assert len(records) == 3
        assert all(r.pattern is not None for r in records)
        assert records[0].source is RequirementSource.NATURAL_LANGUAGE

    def test_free_form_text_recorded_without_pattern(self):
        orchestrator = VeriDevOpsOrchestrator()
        records = orchestrator.ingest_natural_language(
            ["Logging is generally considered good practice"])
        assert records[0].pattern is None
        assert "no boilerplate" in records[0].provenance

    def test_standards_bind_rqcode_findings(self):
        orchestrator = VeriDevOpsOrchestrator()
        records = orchestrator.ingest_standards("ubuntu")
        assert len(records) == 14
        assert all(r.rqcode_findings for r in records)
        assert all(r.source is RequirementSource.STANDARD for r in records)

    def test_vulnerabilities_produce_patterned_records(self):
        orchestrator = VeriDevOpsOrchestrator()
        inventory = SoftwareInventory.of("h", "ubuntu", {"bash": "4.3"})
        records = orchestrator.ingest_vulnerabilities(
            bundled_database(), inventory)
        assert records
        assert all(r.pattern is not None for r in records)
        assert all(r.provenance.startswith("CVE-") for r in records)


class TestPrevention:
    def test_full_pipeline_passes_and_hardens(self, ubuntu_adversarial):
        orchestrator = VeriDevOpsOrchestrator()
        orchestrator.ingest_natural_language(CLEAN_NL)
        orchestrator.ingest_standards("ubuntu")
        run = orchestrator.run_prevention([ubuntu_adversarial])
        assert run.passed, run.gate_rows()
        # The host came out hardened.
        report = run.context.get("compliance_reports")[0]
        assert report.compliance_ratio == 1.0
        # Standard requirements went all the way to MONITORED.
        standards = orchestrator.repository.from_source(
            RequirementSource.STANDARD)
        assert all(r.status is RequirementStatus.MONITORED
                   for r in standards)

    def test_smelly_requirements_block_the_pipeline(self, ubuntu_default):
        orchestrator = VeriDevOpsOrchestrator()
        orchestrator.ingest_natural_language([
            "The system may be adequate where possible.",
            "The system could possibly react in a timely manner.",
        ])
        run = orchestrator.run_prevention(
            [ubuntu_default], max_smelly_ratio=0.1)
        assert not run.passed
        assert run.failed_stage == "requirements"

    def test_gate_rows_cover_all_gates(self, ubuntu_default):
        orchestrator = VeriDevOpsOrchestrator()
        orchestrator.ingest_standards("ubuntu")
        run = orchestrator.run_prevention([ubuntu_default])
        gates = [row["gate"] for row in run.gate_rows()]
        assert gates == ["requirements-quality", "formalization",
                         "verification", "stig-compliance",
                         "monitoring-deployment"]


class TestProtection:
    def test_end_to_end_drift_repair(self, ubuntu_default):
        orchestrator = VeriDevOpsOrchestrator()
        orchestrator.ingest_standards("ubuntu")
        run = orchestrator.run_prevention([ubuntu_default])
        loop = orchestrator.start_protection(ubuntu_default, run)

        ubuntu_default.drift_install_package("rsh-server")
        assert not ubuntu_default.dpkg.is_installed("rsh-server")
        effective = [i for i in loop.incidents if i.effective]
        assert len(effective) == 1
        assert effective[0].repairs[0].finding_id == "V-219158"

    def test_protection_without_pipeline_run(self, ubuntu_hardened):
        orchestrator = VeriDevOpsOrchestrator()
        orchestrator.ingest_standards("ubuntu")
        loop = orchestrator.start_protection(ubuntu_hardened)
        ubuntu_hardened.drift_install_package("nis")
        assert any(i.effective for i in loop.incidents)

    def test_state_style_monitors_filtered_from_event_loop(self,
                                                           ubuntu_default):
        orchestrator = VeriDevOpsOrchestrator()
        orchestrator.ingest_standards("ubuntu")
        run = orchestrator.run_prevention([ubuntu_default])
        loop = orchestrator.start_protection(ubuntu_default, run)
        # Only drift detectors should be armed: the G compliant_X
        # universality monitors cannot observe event streams.
        assert all(req_id.endswith("/drift") for req_id in loop.monitors)


class TestIec62443Ingestion:
    def test_srs_ingested_with_bindings(self):
        from repro.standards import SecurityLevel

        orchestrator = VeriDevOpsOrchestrator()
        records = orchestrator.ingest_iec62443("ubuntu",
                                               SecurityLevel.SL2)
        assert len(records) == 24
        bound = [r for r in records if r.rqcode_findings]
        unbound = [r for r in records if not r.rqcode_findings]
        assert bound and unbound  # gaps stay visible
        assert all(r.provenance.startswith("IEC 62443-3-3")
                   for r in records)

    def test_srs_flow_through_pipeline_and_protection(self,
                                                      ubuntu_default):
        orchestrator = VeriDevOpsOrchestrator()
        orchestrator.ingest_iec62443("ubuntu")
        run = orchestrator.run_prevention([ubuntu_default])
        assert run.passed
        loop = orchestrator.start_protection(ubuntu_default, run)
        ubuntu_default.drift_install_package("nis")
        assert any(i.effective for i in loop.incidents)
        assert not ubuntu_default.dpkg.is_installed("nis")
