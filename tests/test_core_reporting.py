"""Unit tests for the Markdown security report."""

import pytest

from repro.core import VeriDevOpsOrchestrator
from repro.core.reporting import SecurityReport, report_for_cycle
from repro.core.repository import RequirementRepository
from repro.environment import hardened_ubuntu_host


@pytest.fixture
def cycle(ubuntu_default):
    orchestrator = VeriDevOpsOrchestrator()
    orchestrator.ingest_natural_language([
        "The audit subsystem shall not transmit passwords.",
    ])
    orchestrator.ingest_standards("ubuntu")
    run = orchestrator.run_prevention([ubuntu_default])
    loop = orchestrator.start_protection(ubuntu_default, run)
    ubuntu_default.drift_install_package("nis")
    return orchestrator, run, loop


class TestSecurityReport:
    def test_full_report_sections(self, cycle):
        orchestrator, run, loop = cycle
        report = report_for_cycle(orchestrator, run, loop)
        text = report.render()
        assert text.startswith("# VeriDevOps security report")
        assert "## Pipeline: PASSED" in text
        assert "## Requirements" in text
        assert "## Host compliance" in text
        assert "## Operations incidents" in text

    def test_traceability_table_rows(self, cycle):
        orchestrator, run, loop = cycle
        text = report_for_cycle(orchestrator, run, loop).render()
        assert "| NL-001 |" in text
        assert "V-219157" in text

    def test_incident_rows_mark_effectiveness(self, cycle):
        orchestrator, run, loop = cycle
        text = report_for_cycle(orchestrator, run, loop).render()
        assert "effective repairs" in text
        assert "| yes |" in text       # the nis repair
        assert "re-check" in text      # sibling package findings

    def test_failed_pipeline_reported(self, ubuntu_default):
        orchestrator = VeriDevOpsOrchestrator()
        orchestrator.ingest_natural_language([
            "The system may be adequate where possible.",
        ])
        run = orchestrator.run_prevention([ubuntu_default],
                                          max_smelly_ratio=0.0)
        text = report_for_cycle(orchestrator, run).render()
        assert "FAILED at stage `requirements`" in text

    def test_sections_omitted_when_artifacts_missing(self):
        text = SecurityReport().render()
        assert "## Pipeline" not in text
        assert "## Requirements" not in text

    def test_empty_repository_renders(self):
        text = SecurityReport(
            repository=RequirementRepository()).render()
        assert "0 requirements under management" in text
        assert "_(none)_" in text

    def test_compliance_section_per_host(self, catalog):
        host = hardened_ubuntu_host()
        report = SecurityReport(
            compliance_reports=[catalog.check_host(host)])
        text = report.render()
        assert "ubuntu-hardened (ubuntu) — 100%" in text

    def test_markdown_tables_well_formed(self, cycle):
        orchestrator, run, loop = cycle
        text = report_for_cycle(orchestrator, run, loop).render()
        for line in text.splitlines():
            if line.startswith("|"):
                assert line.endswith("|"), line
