"""Unit tests for LTL monitoring (progression) and LTLf evaluation."""

import pytest

from repro.ltl import LtlMonitor, Verdict, evaluate_ltlf, parse_ltl


class TestMonitorVerdicts:
    def test_eventually_concludes_true(self):
        monitor = LtlMonitor(parse_ltl("F done"))
        assert monitor.observe(set()) is Verdict.INCONCLUSIVE
        assert monitor.observe({"done"}) is Verdict.TRUE

    def test_globally_concludes_false(self):
        monitor = LtlMonitor(parse_ltl("G !alarm"))
        assert monitor.observe(set()) is Verdict.INCONCLUSIVE
        assert monitor.observe({"alarm"}) is Verdict.FALSE

    def test_globally_never_concludes_true(self):
        monitor = LtlMonitor(parse_ltl("G ok"))
        for _ in range(10):
            assert monitor.observe({"ok"}) is Verdict.INCONCLUSIVE

    def test_next_requires_second_step(self):
        monitor = LtlMonitor(parse_ltl("X p"))
        assert monitor.observe(set()) is Verdict.INCONCLUSIVE
        assert monitor.observe({"p"}) is Verdict.TRUE

    def test_until_satisfied(self):
        monitor = LtlMonitor(parse_ltl("p U q"))
        assert monitor.observe({"p"}) is Verdict.INCONCLUSIVE
        assert monitor.observe({"q"}) is Verdict.TRUE

    def test_until_violated(self):
        monitor = LtlMonitor(parse_ltl("p U q"))
        assert monitor.observe(set()) is Verdict.FALSE

    def test_verdict_freezes_after_conclusion(self):
        monitor = LtlMonitor(parse_ltl("F done"))
        monitor.observe({"done"})
        steps = monitor.steps_observed
        assert monitor.observe(set()) is Verdict.TRUE
        assert monitor.steps_observed == steps

    def test_observe_trace_stops_early(self):
        monitor = LtlMonitor(parse_ltl("F done"))
        verdict = monitor.observe_trace([set(), {"done"}, set(), set()])
        assert verdict is Verdict.TRUE
        assert monitor.steps_observed == 2

    def test_reset_rearms(self):
        monitor = LtlMonitor(parse_ltl("G !alarm"))
        monitor.observe({"alarm"})
        assert monitor.verdict is Verdict.FALSE
        monitor.reset()
        assert monitor.verdict is Verdict.INCONCLUSIVE
        assert monitor.observe(set()) is Verdict.INCONCLUSIVE

    def test_response_property_lifecycle(self):
        monitor = LtlMonitor(parse_ltl("G (req -> F ack)"))
        verdict = monitor.observe_trace([{"req"}, set(), {"ack"}, set()])
        assert verdict is Verdict.INCONCLUSIVE  # G never closes


class TestLtlfEvaluation:
    def test_atom_at_first_position(self):
        assert evaluate_ltlf(parse_ltl("p"), [{"p"}])
        assert not evaluate_ltlf(parse_ltl("p"), [set()])

    def test_empty_trace_semantics(self):
        assert evaluate_ltlf(parse_ltl("G p"), [])      # vacuous
        assert not evaluate_ltlf(parse_ltl("F p"), [])
        assert not evaluate_ltlf(parse_ltl("p"), [])

    def test_next_is_strong_at_trace_end(self):
        assert not evaluate_ltlf(parse_ltl("X p"), [{"p"}])

    def test_globally_over_suffix(self):
        trace = [{"p"}, {"p"}, {"p"}]
        assert evaluate_ltlf(parse_ltl("G p"), trace)
        assert not evaluate_ltlf(parse_ltl("G p"), trace + [set()])

    def test_until_needs_witness(self):
        assert evaluate_ltlf(parse_ltl("p U q"), [{"p"}, {"q"}])
        assert not evaluate_ltlf(parse_ltl("p U q"), [{"p"}, {"p"}])

    def test_weak_until_tolerates_no_witness(self):
        assert evaluate_ltlf(parse_ltl("p W q"), [{"p"}, {"p"}])
        assert not evaluate_ltlf(parse_ltl("p W q"), [{"p"}, set()])

    def test_release(self):
        # q must hold until (and including when) p releases it.
        assert evaluate_ltlf(parse_ltl("p R q"), [{"q"}, {"q", "p"}, set()])
        assert evaluate_ltlf(parse_ltl("p R q"), [{"q"}, {"q"}])
        assert not evaluate_ltlf(parse_ltl("p R q"), [{"q"}, set()])

    def test_response_pattern(self):
        formula = parse_ltl("G (req -> F ack)")
        assert evaluate_ltlf(formula, [{"req"}, set(), {"ack"}])
        assert not evaluate_ltlf(formula, [{"req"}, set()])

    def test_position_argument(self):
        trace = [set(), {"p"}]
        assert evaluate_ltlf(parse_ltl("p"), trace, position=1)


class TestMonitorAgreesWithLtlf:
    """Impartiality: a concluded monitor verdict must agree with LTLf on
    any completed trace extending the observed prefix."""

    CASES = [
        ("F done", [set(), {"done"}]),
        ("G !alarm", [set(), {"alarm"}]),
        ("p U q", [{"p"}, {"q"}]),
        ("p U q", [set()]),
        ("X p", [set(), {"p"}]),
        ("a & b", [{"a", "b"}]),
        ("a | b", [set()]),
    ]

    @pytest.mark.parametrize("text,trace", CASES)
    def test_agreement(self, text, trace):
        formula = parse_ltl(text)
        monitor = LtlMonitor(formula)
        verdict = monitor.observe_trace(trace)
        if verdict is Verdict.TRUE:
            assert evaluate_ltlf(formula, trace)
        elif verdict is Verdict.FALSE:
            assert not evaluate_ltlf(formula, trace)
