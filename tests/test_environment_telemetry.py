"""Unit tests for host telemetry sampling (environment/telemetry.py)."""

from repro.environment import hardened_ubuntu_host
from repro.environment.telemetry import HostSampler, signal_name
from repro.rqcode import default_catalog
from repro.tears.trace import TimedTrace


class TestSignalName:
    def test_dashes_become_underscores(self):
        assert signal_name("V-219157") == "ok_V_219157"

    def test_plain_id_is_prefixed(self):
        assert signal_name("X1") == "ok_X1"


class TestHostSampler:
    def test_sample_snapshots_every_platform_finding(self):
        host = hardened_ubuntu_host()
        catalog = default_catalog()
        sampler = HostSampler(host, catalog)
        values = sampler.sample()
        findings = catalog.finding_ids("ubuntu")
        assert set(values) == ({signal_name(fid) for fid in findings}
                               | {"compliance"})
        assert values["compliance"] == 1.0
        assert all(values[signal_name(fid)] == 1.0 for fid in findings)

    def test_sample_reflects_drift_and_repair(self):
        host = hardened_ubuntu_host()
        catalog = default_catalog()
        sampler = HostSampler(host, catalog)
        sampler.sample()
        host.drift_install_package("nis")
        drifted = sampler.sample()
        assert drifted["compliance"] < 1.0
        host.dpkg.remove("nis")
        repaired = sampler.sample()
        assert repaired["compliance"] == 1.0
        assert len(sampler.trace) == 3

    def test_sample_appends_to_supplied_trace(self):
        host = hardened_ubuntu_host()
        trace = TimedTrace()
        sampler = HostSampler(host, default_catalog(), trace=trace)
        sampler.sample(time=1.0)
        sampler.sample(time=2.0)
        assert sampler.trace is trace
        assert [s.time for s in trace] == [1.0, 2.0]

    def test_default_timestamp_is_host_clock(self):
        host = hardened_ubuntu_host()
        host.events.advance(7)
        sampler = HostSampler(host, default_catalog())
        sample = sampler.sample()
        assert sampler.trace[-1].time == 7.0
        assert sample["compliance"] == 1.0

    def test_stalled_clock_still_yields_monotone_trace(self):
        host = hardened_ubuntu_host()
        sampler = HostSampler(host, default_catalog())
        sampler.sample()
        sampler.sample()   # clock did not advance between samples
        first, second = sampler.trace[0].time, sampler.trace[1].time
        assert second > first

    def test_windows_host_samples_windows_findings_only(self):
        from repro.environment import hardened_windows_host

        host = hardened_windows_host()
        catalog = default_catalog()
        values = HostSampler(host, catalog).sample()
        expected = {signal_name(fid)
                    for fid in catalog.finding_ids("windows")}
        assert set(values) == expected | {"compliance"}
