"""Unit tests for the GraphWalker generator/stop-condition DSL."""

import pytest

from repro.gwt.dsl import GeneratorDslError, generate, parse_generator
from repro.gwt.graph import GraphModel, edge_coverage_of


@pytest.fixture
def model():
    model = GraphModel("m", "a")
    for state in ("b", "c"):
        model.add_state(state)
    model.add_action("a", "b", "ab")
    model.add_action("b", "c", "bc")
    model.add_action("c", "a", "ca")
    model.add_action("b", "a", "ba")
    return model


class TestParsing:
    def test_random_edge_coverage(self):
        spec = parse_generator("random(edge_coverage(100))")
        assert spec.generator == "random"
        assert spec.condition == "edge_coverage"
        assert spec.argument == "100"

    def test_aliases_normalize(self):
        assert parse_generator(
            "weighted_random(edge_coverage(80))").generator == "random"
        assert parse_generator(
            "quick_random(length(10))").generator == "random"

    def test_a_star(self):
        spec = parse_generator("a_star(reached_vertex(c))")
        assert spec.generator == "a_star"
        assert spec.argument == "c"

    def test_whitespace_tolerated(self):
        spec = parse_generator("  random ( length ( 5 ) ) ")
        assert spec.condition == "length"

    @pytest.mark.parametrize("bad", [
        "random", "random()", "random(edge_coverage)", "nonsense(x(1))",
        "random(reached_vertex(v))", "a_star(length(5))",
    ])
    def test_malformed_or_unsupported_raises(self, bad):
        with pytest.raises(GeneratorDslError):
            parse_generator(bad)

    def test_round_trip_str(self):
        spec = parse_generator("random(edge_coverage(100))")
        assert str(spec) == "random(edge_coverage(100))"


class TestDispatch:
    def test_random_edge_coverage_hits_target(self, model):
        case = generate(model, "random(edge_coverage(100))", seed=1)
        assert edge_coverage_of(model, [case]) == 1.0

    def test_random_partial_edge_coverage(self, model):
        case = generate(model, "random(edge_coverage(50))", seed=1)
        assert edge_coverage_of(model, [case]) >= 0.5

    def test_random_length(self, model):
        case = generate(model, "random(length(7))", seed=2)
        assert len(case.steps) <= 7

    def test_random_vertex_coverage(self, model):
        case = generate(model, "random(vertex_coverage(100))", seed=3)
        visited = {model.start}
        current = model.start
        for step in case.steps:
            for u, v, data in model.graph.edges(data=True):
                if u == current and data["action"] == step.action:
                    current = v
                    visited.add(v)
                    break
        assert visited == set(model.states)

    def test_a_star_reaches_vertex(self, model):
        case = generate(model, "a_star(reached_vertex(c))")
        assert case.actions == ["ab", "bc"]

    def test_directed_edge_coverage(self, model):
        case = generate(model, "directed(edge_coverage(100))")
        assert edge_coverage_of(model, [case]) == 1.0

    def test_directed_requires_full_coverage(self, model):
        with pytest.raises(GeneratorDslError):
            generate(model, "directed(edge_coverage(80))")

    def test_percentage_bounds_checked(self, model):
        with pytest.raises(GeneratorDslError):
            generate(model, "random(edge_coverage(150))")

    def test_deterministic_by_seed(self, model):
        first = generate(model, "random(length(20))", seed=9)
        second = generate(model, "random(length(20))", seed=9)
        assert first.actions == second.actions

    def test_case_name_records_expression(self, model):
        case = generate(model, "random(edge_coverage(100))", seed=1)
        assert case.name == "random(edge_coverage(100))"
