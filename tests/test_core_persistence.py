"""Tests for repository persistence and enforcement fault injection."""

import pytest

from repro.core import VeriDevOpsOrchestrator
from repro.core.persistence import (
    record_from_dict,
    record_to_dict,
    repository_from_json,
    repository_to_json,
)
from repro.core.repository import RequirementStatus
from repro.rqcode import default_catalog
from repro.rqcode.concepts import CheckStatus, EnforcementStatus
from repro.vulndb import SoftwareInventory, bundled_database


def populated_repository():
    orchestrator = VeriDevOpsOrchestrator()
    orchestrator.ingest_natural_language([
        "The audit subsystem shall not transmit passwords.",
        "When 3 consecutive failures occur, the session manager shall "
        "alert the operator within 5 seconds.",
    ])
    orchestrator.ingest_standards("ubuntu")
    orchestrator.ingest_vulnerabilities(
        bundled_database(),
        SoftwareInventory.of("h", "ubuntu", {"bash": "4.3"}))
    return orchestrator.repository


class TestPersistence:
    def test_round_trip_preserves_everything(self):
        repository = populated_repository()
        restored = repository_from_json(repository_to_json(repository))
        assert len(restored) == len(repository)
        for original in repository.all():
            copy = restored.get(original.req_id)
            assert copy.text == original.text
            assert copy.source is original.source
            assert copy.status is original.status
            assert copy.pattern == original.pattern
            assert copy.scope == original.scope
            assert copy.rqcode_findings == original.rqcode_findings
            assert copy.provenance == original.provenance

    def test_round_trip_after_pipeline(self, ubuntu_default):
        orchestrator = VeriDevOpsOrchestrator()
        orchestrator.ingest_standards("ubuntu")
        run = orchestrator.run_prevention([ubuntu_default])
        assert run.passed
        restored = repository_from_json(
            repository_to_json(orchestrator.repository))
        statuses = {r.status for r in restored.all()}
        assert statuses == {RequirementStatus.MONITORED}
        # Formal artifacts survive too.
        assert all(r.ltl for r in restored.all())

    def test_unknown_pattern_kind_rejected(self):
        payload = record_to_dict(populated_repository().all()[0])
        payload["pattern"] = {"kind": "Nonexistent", "fields": {}}
        with pytest.raises(ValueError):
            record_from_dict(payload)

    def test_version_checked(self):
        with pytest.raises(ValueError):
            repository_from_json('{"version": 99, "records": []}')

    def test_pattern_less_records_round_trip(self):
        orchestrator = VeriDevOpsOrchestrator()
        orchestrator.ingest_natural_language(["free prose, no pattern"])
        restored = repository_from_json(
            repository_to_json(orchestrator.repository))
        assert restored.all()[0].pattern is None


class TestEnforcementFaultInjection:
    def test_broken_dpkg_surfaces_enforcement_failure(self, ubuntu_default):
        from repro.rqcode.ubuntu import V_219157

        ubuntu_default.dpkg.break_tool()
        finding = V_219157(ubuntu_default)  # nis installed on default
        assert finding.check() is CheckStatus.FAIL
        assert finding.enforce() is EnforcementStatus.FAILURE
        # And the host is untouched.
        assert ubuntu_default.dpkg.is_installed("nis")

    def test_harden_reports_partial_compliance(self, catalog,
                                               ubuntu_adversarial):
        ubuntu_adversarial.dpkg.break_tool()
        report = catalog.harden_host(ubuntu_adversarial)
        assert report.compliance_ratio < 1.0
        failures = [r for r in report.results
                    if r.enforcement is EnforcementStatus.FAILURE]
        assert failures  # package findings could not be repaired
        # Config findings are unaffected by the broken package tool.
        config_rows = [r for r in report.results
                       if r.finding_id == "V-219177"]
        assert config_rows[0].after is CheckStatus.PASS

    def test_recovery_after_repair_tool(self, catalog, ubuntu_adversarial):
        ubuntu_adversarial.dpkg.break_tool()
        catalog.harden_host(ubuntu_adversarial)
        ubuntu_adversarial.dpkg.repair_tool()
        report = catalog.harden_host(ubuntu_adversarial)
        assert report.compliance_ratio == 1.0

    def test_protection_loop_reports_failed_repair(self, ubuntu_hardened):
        from repro.core.protection import ProtectionLoop
        from repro.ltl import LtlMonitor, parse_ltl

        loop = ProtectionLoop(
            ubuntu_hardened, default_catalog(),
            {"R": LtlMonitor(parse_ltl("G !drift.package"))},
            {"R": ["V-219157"]},
        ).start()
        ubuntu_hardened.drift_install_package("nis")
        # Re-introduce the drift with a wedged package manager: the
        # re-armed monitor detects it but the repair must fail.
        ubuntu_hardened.dpkg.seed_installed(["nis"])
        ubuntu_hardened.dpkg.break_tool()
        ubuntu_hardened.events.emit("drift.package", name="nis")
        failed = [r for incident in loop.incidents
                  for r in incident.repairs
                  if r.status is EnforcementStatus.FAILURE]
        assert failed
        assert loop.repaired_count() < loop.incident_count()

    def test_compliance_gate_fails_on_broken_host(self, ubuntu_adversarial):
        from repro.core.gates import ComplianceGate
        from repro.core.pipeline import PipelineContext

        ubuntu_adversarial.dpkg.break_tool()
        gate = ComplianceGate(default_catalog(), auto_remediate=True)
        result = gate.evaluate(PipelineContext(hosts=[ubuntu_adversarial]))
        assert not result.passed
