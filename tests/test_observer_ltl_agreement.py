"""Cross-validation: observer automata agree with the LTL mappings.

For a random finite event sequence, build an emitter system that fires
exactly that sequence and then idles.  The zone-graph verdict of the
composed observer must equal the LTLf verdict of the pattern's mapped
formula on the same sequence — two independently implemented semantics
(DBM zone exploration vs finite-trace evaluation) checking each other.

The runtime monitors ride the same suite: the compiled engine must be
pointwise identical to progression on every pattern trace, and a
concluded monitor verdict must agree with the exact LTLf verdict —
three monitoring semantics cross-checked per example.
"""

from hypothesis import given, settings, strategies as st

from repro.ltl import (
    CompiledMonitor,
    LtlMonitor,
    Verdict,
    evaluate_ltlf,
)
from repro.specpatterns import (
    Absence,
    AfterQ,
    AfterQUntilR,
    BeforeR,
    BetweenQAndR,
    Existence,
    Globally,
    Precedence,
    Response,
    ResponseChain,
    build_observer,
    to_ltl,
)
from repro.ta import Edge, Location, Network, TimedAutomaton, \
    ZoneGraphChecker, parse_query

ALPHABET = ("p", "s", "q", "r", "t")


def emitter(actions):
    """Fire *actions* in order (urgent chain), then idle forever."""
    locations = [Location(f"s{i}", urgent=True)
                 for i in range(len(actions))]
    locations.append(Location("end"))
    edges = []
    for index, action in enumerate(actions):
        target = f"s{index + 1}" if index + 1 < len(actions) else "end"
        edges.append(Edge(f"s{index}", target, sync=f"{action}!",
                          action=action))
    return TimedAutomaton(name="Sys", clocks=[], locations=locations,
                          edges=edges)


def observer_verdict(pattern, scope, actions) -> bool:
    observer = build_observer(pattern, scope, extra_channels=ALPHABET)
    network = Network([emitter(actions), observer.automaton])
    result = ZoneGraphChecker(network).check(parse_query(observer.query))
    return result.satisfied


def ltlf_verdict(pattern, scope, actions) -> bool:
    formula = to_ltl(pattern, scope)
    trace = [{action} for action in actions]
    return evaluate_ltlf(formula, trace)


CASES = [
    (Absence(p="p"), Globally()),
    (Absence(p="p"), BeforeR(r="r")),
    (Absence(p="p"), AfterQ(q="q")),
    (Absence(p="p"), BetweenQAndR(q="q", r="r")),
    (Absence(p="p"), AfterQUntilR(q="q", r="r")),
    (Existence(p="p"), Globally()),
    (Precedence(p="p", s="s"), Globally()),
    (Response(p="p", s="s"), Globally()),
    (Response(p="p", s="s"), AfterQ(q="q")),
    (Response(p="p", s="s"), AfterQUntilR(q="q", r="r")),
    (ResponseChain(p="p", s="s", t="t"), Globally()),
]

# BoundedExistence is deliberately absent: its LTL mapping counts
# p-*segments* (state semantics) while the observer counts p-*events*,
# so consecutive p events are one segment but several occurrences —
# a documented semantic divergence, not a bug to reconcile here.


@settings(max_examples=120, deadline=None)
@given(
    case_index=st.integers(min_value=0, max_value=len(CASES) - 1),
    actions=st.lists(st.sampled_from(ALPHABET), min_size=0, max_size=6),
)
def test_observer_agrees_with_ltlf(case_index, actions):
    pattern, scope = CASES[case_index]
    assert observer_verdict(pattern, scope, actions) == \
        ltlf_verdict(pattern, scope, actions), (pattern, scope, actions)


@settings(max_examples=120, deadline=None)
@given(
    case_index=st.integers(min_value=0, max_value=len(CASES) - 1),
    actions=st.lists(st.sampled_from(ALPHABET), min_size=0, max_size=6),
)
def test_compiled_agrees_with_progression_and_ltlf(case_index, actions):
    """Compiled verdicts == progression verdicts == exact LTLf on the
    cross-validation suite (monitors are impartial, so LTLf agreement
    is checked where the prefix verdict concluded; padding steps stand
    in for "any extension")."""
    pattern, scope = CASES[case_index]
    formula = to_ltl(pattern, scope)
    trace = [frozenset({action}) for action in actions]
    compiled = CompiledMonitor(formula)
    reference = LtlMonitor(formula)
    for step in trace:
        assert compiled.observe(step) is reference.observe(step)
        assert compiled.obligation is reference.obligation
    verdict = compiled.verdict
    assert verdict is reference.verdict
    padding = [frozenset()] * 3
    if verdict is Verdict.TRUE:
        assert evaluate_ltlf(formula, trace + padding)
    elif verdict is Verdict.FALSE:
        assert not evaluate_ltlf(formula, trace + padding)
