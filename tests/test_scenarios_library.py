"""The scenario library: registry, seed-legacy fixture fidelity,
generated estates, and the ``repro scenarios`` CLI.

The acceptance bar: ``seed-legacy`` reproduces the pre-refactor bench
fixtures byte-for-byte (host names, drift rotation, NL feed,
inventory, E14's plan seed), every generated scenario yields a valid
zoned topology with zone-contiguous shard hints, and the compiled
campaign is a pure function of the scenario seed.
"""

import io
import json

import pytest

from repro.chaos.plan import Campaign, FaultPlan
from repro.cli import main
from repro.scenarios import (
    LEGACY_DRIFTS,
    LEGACY_INVENTORY,
    LEGACY_NL_REQUIREMENTS,
    SCENARIOS,
    Scenario,
    ScenarioError,
    generated_scenarios,
    get_scenario,
    scenario_names,
)


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestRegistry:
    def test_seed_legacy_listed_first(self):
        names = scenario_names()
        assert names[0] == "seed-legacy"
        assert names[1:] == sorted(names[1:])
        assert set(names) == set(SCENARIOS)

    def test_unknown_scenario_raises(self):
        with pytest.raises(ScenarioError, match="registered"):
            get_scenario("no-such-estate")

    def test_generated_scenarios_are_the_zoned_trio(self):
        generated = generated_scenarios()
        assert len(generated) >= 3
        assert all(s.generated for s in generated)
        assert "seed-legacy" not in {s.name for s in generated}

    def test_distinct_seeds(self):
        seeds = [s.seed for s in SCENARIOS.values()]
        assert len(seeds) == len(set(seeds))


class TestSeedLegacyFidelity:
    """The pinned scenario reproduces the old inline fixtures."""

    @pytest.fixture(scope="class")
    def legacy(self):
        return get_scenario("seed-legacy")

    def test_flat_fleet_shape(self, legacy):
        assert not legacy.generated
        assert legacy.kind == "legacy"
        assert legacy.hosts == 32
        assert legacy.shard_hints(4) is None
        with pytest.raises(ValueError, match="no zones"):
            legacy.topology()

    def test_fleet_matches_e12_fixture(self, legacy):
        fleet = legacy.build_fleet(hosts=4, name="e12")
        assert fleet.name == "e12"
        hosts = fleet.hosts()
        assert [h.name for h in hosts] \
            == ["node-00", "node-01", "node-02", "node-03"]
        assert all(h.os_family == "ubuntu" for h in hosts)
        assert fleet.audit().worst_ratio == 1.0     # hardened profile

    def test_build_hosts_matches_e18_fixture(self, legacy):
        hosts = legacy.build_hosts(3, prefix="edge")
        assert [h.name for h in hosts] == ["edge-00", "edge-01", "edge-02"]

    def test_drift_rotation_matches_e12(self, legacy):
        assert legacy.drifts == LEGACY_DRIFTS
        # The (round + host) % len rotation the old storm hardcoded.
        assert legacy.drift_for(0, 0) == ("install", "nis")
        assert legacy.drift_for(0, 1) == ("install", "rsh-server")
        assert legacy.drift_for(1, 2) == ("remove", "aide")
        assert legacy.drift_for(2, 2) == ("install", "nis")

    def test_nl_and_inventory_match_e1(self, legacy):
        assert legacy.nl_requirements == LEGACY_NL_REQUIREMENTS
        assert legacy.inventory == LEGACY_INVENTORY
        inventory = legacy.inventory_for("ubuntu-prod", "ubuntu")
        assert inventory.host_name == "ubuntu-prod"
        assert dict(inventory.products)["openssl"] == "1.0.1f"

    def test_fault_plan_matches_e14(self, legacy):
        # E14's exact construction: seed 14, every site at the rate,
        # stall knobs zero.
        assert legacy.fault_plan(0.05) == FaultPlan(
            seed=14, worker_crash=0.05, worker_hang=0.05,
            session_error=0.05, repair_raise=0.05, repair_noop=0.05,
            event_duplicate=0.05, event_reorder=0.05, event_delay=0.05,
            config_slow=0.05, hang_seconds=0.0, delay_seconds=0.0,
            config_delay_seconds=0.0)
        assert legacy.fault_plan(0.02, max_deliveries=5) \
            .max_deliveries == 5

    def test_legacy_campaign_is_one_quiet_storm_stage(self, legacy):
        campaign = legacy.compile_campaign()
        (stage,) = campaign.stages
        assert stage.name == "storm"
        assert stage.target_hosts == ()     # whole fleet
        assert stage.plan.quiet

    def test_apply_drift_routes_by_platform(self, legacy):
        from repro.environment import (
            hardened_ubuntu_host,
            hardened_windows_host,
        )

        ubuntu = hardened_ubuntu_host("u-00")
        legacy.apply_drift(ubuntu, 0, 0)
        assert ubuntu.dpkg.is_installed("nis")
        windows = hardened_windows_host("w-00")
        before = windows.audit_store.snapshot()
        legacy.apply_drift(windows, 0, 0)
        assert windows.audit_store.snapshot() != before


class TestGeneratedScenarios:
    @pytest.fixture(scope="class", params=[s.name for s
                                           in generated_scenarios()])
    def scenario(self, request):
        return get_scenario(request.param)

    def test_topology_is_valid(self, scenario):
        topology = scenario.topology()
        assert topology.validate() == []
        assert topology.host_count == scenario.hosts
        assert len(topology.zones) == scenario.zones

    def test_topology_is_seed_deterministic(self, scenario):
        first, second = scenario.topology(), scenario.topology()
        assert [z.hosts for z in first.zones] \
            == [z.hosts for z in second.zones]
        assert first.shard_hints(4) == second.shard_hints(4)

    def test_shard_hints_cover_the_fleet(self, scenario):
        hints = scenario.shard_hints(4)
        fleet = scenario.build_fleet()
        assert set(hints) == {h.name for h in fleet.hosts()}
        assert all(0 <= shard < 4 for shard in hints.values())

    def test_campaign_compiles_deterministically(self, scenario):
        first = scenario.compile_campaign()
        second = scenario.compile_campaign()
        assert first == second
        assert first.to_json() == second.to_json()

    def test_campaign_walks_the_zones(self, scenario):
        campaign = scenario.compile_campaign()
        topology = scenario.topology()
        assert [s.name for s in campaign.stages] \
            == ["recon", "exploit", "persist"]
        zoned = {h for zone in topology.zones for h in zone.hosts}
        for stage in campaign.stages:
            assert stage.target_hosts
            assert set(stage.target_hosts) <= zoned
            assert stage.capec_ids
            assert all(c.startswith("CAPEC-") for c in stage.capec_ids)
        # recon hits the outermost zone, persistence the deepest.
        assert set(campaign.stages[0].target_hosts) \
            == set(topology.zones[0].hosts)
        assert set(campaign.stages[-1].target_hosts) \
            == set(topology.zones[-1].hosts)

    def test_campaign_round_trips_through_json(self, scenario):
        campaign = scenario.compile_campaign()
        assert Campaign.from_json(campaign.to_json()) == campaign

    def test_to_dict_carries_topology_and_campaign(self, scenario):
        document = scenario.to_dict()
        assert document["kind"] == "generated"
        assert document["campaign"]["seed"] == scenario.seed
        assert len(document["topology"]["zones"]) == scenario.zones
        json.dumps(document)    # fully serializable


class TestScenariosCli:
    def test_list_tabulates_every_scenario(self):
        code, output = run_cli("scenarios", "list")
        assert code == 0
        for name in scenario_names():
            assert name in output

    def test_list_json(self):
        code, output = run_cli("scenarios", "list", "--json")
        assert code == 0
        rows = json.loads(output)
        assert [row["name"] for row in rows] == scenario_names()

    def test_describe_validates_topology(self):
        code, output = run_cli("scenarios", "describe", "zoned-perimeter")
        assert code == 0
        assert "zoned-perimeter" in output
        assert "recon" in output

    def test_describe_json(self):
        code, output = run_cli("scenarios", "describe", "zoned-depth",
                               "--json")
        assert code == 0
        document = json.loads(output)
        assert document["name"] == "zoned-depth"

    def test_emit_round_trips_the_campaign(self):
        code, output = run_cli("scenarios", "emit", "zoned-estate")
        assert code == 0
        document = json.loads(output[:output.rindex("}") + 1])
        campaign = Campaign.from_dict(document["campaign"])
        assert campaign == get_scenario("zoned-estate").compile_campaign()

    def test_unknown_scenario_aborts(self):
        with pytest.raises(SystemExit, match="no scenario"):
            run_cli("scenarios", "describe", "no-such-estate")
