"""The risk-calculation plane: scoring, the index, and its consumers."""

from repro.reqs.ir import Provenance, Requirement
from repro.reqs.risk import (
    INCIDENT_SATURATION,
    RiskIndex,
    RiskScorer,
    SEVERITY_BASE,
    WEIGHT_EXPOSURE,
    WEIGHT_INCIDENTS,
    WEIGHT_SEVERITY,
)
from repro.vulndb.database import bundled_database


def rec(rid, severity="medium", provenance=None):
    return Requirement(
        rid=rid, title=rid, text=f"requirement {rid}", source="rqcode",
        severity=severity,
        provenance=tuple(provenance or
                         (Provenance("test", rid, "test record"),)))


class TestRiskScorer:
    def test_severity_bands_order(self):
        scorer = RiskScorer()
        scores = [scorer.score(rec(f"R-{band}", severity=band)).score
                  for band in ("low", "medium", "high", "critical")]
        assert scores == sorted(scores)

    def test_cvss_sharpen_within_band(self):
        vulndb = bundled_database()
        scorer = RiskScorer(vulndb=vulndb)
        # Log4Shell (10.0) vs Shellshock (9.8): same band, the exact
        # CVSS blend must order them.
        log4shell = rec("R-a", severity="critical",
                        provenance=[Provenance("cve", "CVE-2021-44228",
                                               "log4shell")])
        shellshock = rec("R-b", severity="critical",
                         provenance=[Provenance("cve", "CVE-2014-6271",
                                                "shellshock")])
        assert scorer.severity_component(log4shell) \
            > scorer.severity_component(shellshock)

    def test_unknown_cve_falls_back_to_band(self):
        scorer = RiskScorer(vulndb=bundled_database())
        record = rec("R-x", severity="high",
                     provenance=[Provenance("cve", "CVE-1900-0000",
                                            "not in the db")])
        assert scorer.severity_component(record) == SEVERITY_BASE["high"]

    def test_exposure_scales_with_fleet(self):
        scorer = RiskScorer(fleet_size=8)
        assert scorer.exposure_component(0) == 0.0
        assert scorer.exposure_component(4) == 0.5
        assert scorer.exposure_component(8) == 1.0
        assert scorer.exposure_component(99) == 1.0

    def test_incident_history_saturates(self):
        scorer = RiskScorer()
        scorer.note_incident("R-1", count=INCIDENT_SATURATION * 3)
        assert scorer.incident_component("R-1") == 1.0
        assert scorer.incident_component("R-quiet") == 0.0

    def test_weights_compose(self):
        scorer = RiskScorer(fleet_size=2)
        scorer.note_incident("R-1", count=INCIDENT_SATURATION)
        score = scorer.score(rec("R-1", severity="critical"),
                             hosts_routed=2)
        expected = (WEIGHT_SEVERITY * SEVERITY_BASE["critical"]
                    + WEIGHT_EXPOSURE * 1.0 + WEIGHT_INCIDENTS * 1.0)
        assert abs(score.score - expected) < 1e-9
        assert 0.0 <= score.score <= 1.0
        assert set(score.to_dict()) == {"rid", "score", "severity",
                                        "exposure", "incidents"}


class TestRiskIndex:
    def test_order_is_risk_descending_and_deterministic(self):
        index = RiskIndex()
        index.put("R-low", 0.2)
        index.put("R-hot", 0.9)
        index.put("R-mid", 0.5)
        index.put("R-tie", 0.5)
        assert index.order(["R-low", "R-tie", "R-hot", "R-mid"]) \
            == ("R-hot", "R-mid", "R-tie", "R-low")

    def test_drift_monitor_resolves_to_base_record(self):
        index = RiskIndex()
        index.put("R-1", 0.7)
        assert index.score_for("R-1/drift") == 0.7
        assert index.score_for("R-unknown/drift", default=0.1) == 0.1

    def test_note_incident_bumps_without_scorer(self):
        index = RiskIndex()
        index.put("R-1", 0.5)
        index.note_incident("R-1/drift")
        assert index.score_for("R-1") \
            == 0.5 + WEIGHT_INCIDENTS / INCIDENT_SATURATION

    def test_note_incident_rescores_with_scorer_and_record(self):
        scorer = RiskScorer(fleet_size=4)
        index = RiskIndex(scorer)
        record = rec("R-1", severity="high")
        index.put("R-1", scorer.score(record, hosts_routed=4).score)
        before = index.score_for("R-1")
        index.note_incident("R-1/drift", record=record, hosts_routed=4)
        assert index.score_for("R-1") > before
        assert scorer.incident_count("R-1") == 1

    def test_discard_and_snapshot(self):
        index = RiskIndex()
        index.put("R-1", 0.3)
        index.put("R-2", 0.6)
        index.discard("R-1")
        assert index.snapshot() == {"R-2": 0.6}


class TestSocIntegration:
    def test_incident_pipeline_feeds_history_back(self):
        """A firing requirement climbs the index via the SOC pipeline."""
        from repro.environment import hardened_ubuntu_host
        from repro.reqs.risk import RiskIndex, RiskScorer
        from repro.rqcode import default_catalog
        from repro.soc.service import SocService
        from repro.soc.rearm import plan_for_records

        catalog = default_catalog()
        fids = [f for f in catalog.finding_ids()
                if catalog.get(f).platform == "ubuntu"]
        record = rec("R-1", severity="high")
        record = Requirement(
            rid="R-1", title="R-1", text="req R-1", source="rqcode",
            severity="high", bindings=tuple(fids[:2]),
            provenance=(Provenance("test", "R-1", "test"),))
        hosts = [hardened_ubuntu_host("web-00")]
        scorer = RiskScorer(fleet_size=1)
        index = RiskIndex(scorer)
        index.put("R-1", scorer.score(record, hosts_routed=1).score)
        before = index.score_for("R-1")
        plans = {h.name: plan_for_records([record], h, catalog)
                 for h in hosts}
        service = SocService(hosts, catalog, plans, shards=1,
                             risk=index).start()
        try:
            hosts[0].drift_install_package("telnetd")
            service.drain()
        finally:
            service.stop()
        assert scorer.incident_count("R-1") >= 1
        assert index.score_for("R-1") >= before
