"""Unit tests for guarded assertions, traces, and the G/A parser."""

import pytest

from repro.tears import (
    GaVerdict,
    GuardedAssertion,
    Sample,
    TimedTrace,
    parse_expr,
    parse_ga,
    parse_ga_file,
)
from repro.tears.parser import GaSyntaxError


def make_ga(within=None, hold_for=None):
    return GuardedAssertion(
        name="brake",
        guard=parse_expr("speed > 50 and brake == 1"),
        assertion=parse_expr("decel >= 2"),
        within=within,
        hold_for=hold_for,
    )


class TestTimedTrace:
    def test_record_and_window(self):
        trace = TimedTrace()
        trace.record(0, a=1)
        trace.record(2, a=2)
        trace.record(5, a=3)
        assert [s.values["a"] for s in trace.window(1, 4)] == [2]
        assert trace.duration == 5

    def test_rejects_time_regression(self):
        trace = TimedTrace()
        trace.record(5, a=1)
        with pytest.raises(ValueError):
            trace.record(4, a=1)

    def test_logdata_round_trip(self):
        trace = TimedTrace()
        trace.record(0, speed=40.5, brake=0)
        trace.record(1.5, speed=60, brake=1)
        parsed = TimedTrace.from_logdata(trace.to_logdata())
        assert len(parsed) == 2
        assert parsed[1].values == {"speed": 60.0, "brake": 1.0}
        assert parsed[1].time == 1.5

    def test_logdata_skips_comments(self):
        trace = TimedTrace.from_logdata("# header\n\n0 a=1\n1 a=2\n")
        assert len(trace) == 2

    def test_logdata_bad_timestamp(self):
        with pytest.raises(ValueError):
            TimedTrace.from_logdata("abc a=1")

    def test_logdata_bad_pair(self):
        with pytest.raises(ValueError):
            TimedTrace.from_logdata("0 a")

    def test_signals_union(self):
        trace = TimedTrace()
        trace.record(0, a=1)
        trace.record(1, b=2)
        assert trace.signals() == ["a", "b"]


class TestGaEvaluation:
    def test_vacuous_when_guard_never_rises(self):
        trace = TimedTrace()
        trace.record(0, speed=30, brake=0, decel=0)
        result = make_ga().evaluate(trace)
        assert result.verdict is GaVerdict.VACUOUS
        assert result.activations == 0

    def test_immediate_assertion_passes(self):
        trace = TimedTrace()
        trace.record(0, speed=60, brake=1, decel=3)
        result = make_ga().evaluate(trace)
        assert result.verdict is GaVerdict.PASSED
        assert result.activations == 1

    def test_immediate_assertion_fails(self):
        trace = TimedTrace()
        trace.record(0, speed=60, brake=1, decel=0)
        result = make_ga().evaluate(trace)
        assert result.verdict is GaVerdict.FAILED
        assert "at activation" in result.failures[0].reason

    def test_within_window_pass_and_fail(self):
        ga = make_ga(within=3)
        passing = TimedTrace()
        passing.record(0, speed=60, brake=1, decel=0)
        passing.record(2.5, speed=55, brake=1, decel=3)
        assert ga.evaluate(passing).verdict is GaVerdict.PASSED

        failing = TimedTrace()
        failing.record(0, speed=60, brake=1, decel=0)
        failing.record(5, speed=55, brake=1, decel=3)  # too late
        assert ga.evaluate(failing).verdict is GaVerdict.FAILED

    def test_hold_for_breaks(self):
        ga = make_ga(within=1, hold_for=2)
        trace = TimedTrace()
        trace.record(0, speed=60, brake=1, decel=3)
        trace.record(1, speed=60, brake=1, decel=0)  # breaks inside hold
        result = ga.evaluate(trace)
        assert result.verdict is GaVerdict.FAILED
        assert "broke" in result.failures[0].reason

    def test_hold_for_sustained(self):
        ga = make_ga(within=1, hold_for=2)
        trace = TimedTrace()
        trace.record(0, speed=60, brake=1, decel=3)
        trace.record(1, speed=60, brake=1, decel=3)
        trace.record(2, speed=60, brake=1, decel=3)
        assert ga.evaluate(trace).verdict is GaVerdict.PASSED

    def test_multiple_activations_counted(self):
        ga = make_ga()
        trace = TimedTrace()
        trace.record(0, speed=60, brake=1, decel=3)   # rise 1: ok
        trace.record(1, speed=60, brake=0, decel=0)   # guard falls
        trace.record(2, speed=60, brake=1, decel=0)   # rise 2: fails
        result = ga.evaluate(trace)
        assert result.activations == 2
        assert result.verdict is GaVerdict.FAILED
        assert len(result.failures) == 1

    def test_sustained_guard_is_one_activation(self):
        ga = make_ga()
        trace = TimedTrace()
        trace.record(0, speed=60, brake=1, decel=3)
        trace.record(1, speed=60, brake=1, decel=3)
        assert ga.evaluate(trace).activations == 1


class TestGaParser:
    TEXT = '''
# braking requirements
GA "brake_response":
    WHEN speed > 50 and brake == 1
    THEN decel >= 2
    WITHIN 3

GA "no_overspeed":
    WHEN engine == 1
    THEN speed <= 120
'''

    def test_parse_file_multiple(self):
        gas = parse_ga_file(self.TEXT)
        assert [ga.name for ga in gas] == ["brake_response", "no_overspeed"]
        assert gas[0].within == 3
        assert gas[1].within is None

    def test_parse_single(self):
        ga = parse_ga('GA "x":\n WHEN a == 1\n THEN b == 1\n FOR 2')
        assert ga.hold_for == 2

    def test_missing_when_raises(self):
        with pytest.raises(GaSyntaxError):
            parse_ga('GA "x":\n THEN b == 1')

    def test_missing_then_raises(self):
        with pytest.raises(GaSyntaxError):
            parse_ga('GA "x":\n WHEN a == 1')

    def test_duplicate_clause_raises(self):
        with pytest.raises(GaSyntaxError):
            parse_ga('GA "x":\n WHEN a == 1\n WHEN b == 1\n THEN c == 1')

    def test_clause_outside_ga_raises(self):
        with pytest.raises(GaSyntaxError):
            parse_ga_file("WHEN a == 1")

    def test_unrecognized_line_raises(self):
        with pytest.raises(GaSyntaxError):
            parse_ga_file('GA "x":\n WHEN a == 1\n THEN b == 1\n garbage')

    def test_round_trip_through_str(self):
        ga = parse_ga('GA "x":\n WHEN a == 1\n THEN b >= 2\n WITHIN 5')
        reparsed = parse_ga(str(ga).replace(": WHEN", ":\nWHEN")
                            .replace(" THEN", "\nTHEN")
                            .replace(" WITHIN", "\nWITHIN"))
        assert reparsed.name == ga.name
        assert reparsed.within == ga.within
