"""Unit tests for the NALABS analyzer and corpus generator."""

import pytest

from repro.nalabs import (
    CorpusGenerator,
    NalabsAnalyzer,
    RequirementText,
    VaguenessMetric,
)


class TestRequirementTextCsv:
    CSV = (
        "REQ ID,Text,Owner\n"
        "R1,The system shall log events.,alice\n"
        "R2,The system may possibly react.,bob\n"
    )

    def test_parses_rows(self):
        records = RequirementText.from_csv(self.CSV)
        assert [r.req_id for r in records] == ["R1", "R2"]
        assert records[0].text == "The system shall log events."

    def test_custom_columns(self):
        csv_text = "id,body\nX,Some text.\n"
        records = RequirementText.from_csv(csv_text, id_column="id",
                                           text_column="body")
        assert records[0].req_id == "X"

    def test_missing_column_raises(self):
        with pytest.raises(KeyError):
            RequirementText.from_csv("a,b\n1,2\n")


class TestAnalyzer:
    def test_analyze_runs_all_metrics(self):
        report = NalabsAnalyzer().analyze(
            RequirementText("R1", "The system shall lock the account."))
        assert len(report.results) == 12
        assert "vagueness" in report.results

    def test_flagged_metrics_and_smelly(self):
        report = NalabsAnalyzer().analyze(
            RequirementText("R1", "The system may be adequate."))
        assert "vagueness" in report.flagged_metrics
        assert "optionality" in report.flagged_metrics
        assert report.smelly

    def test_clean_requirement_not_smelly(self):
        report = NalabsAnalyzer().analyze(RequirementText(
            "R1", "The system shall lock the account after 3 attempts."))
        assert not report.smelly

    def test_custom_metric_set(self):
        analyzer = NalabsAnalyzer(metrics=[VaguenessMetric()])
        report = analyzer.analyze(RequirementText("R1", "adequate"))
        assert list(report.results) == ["vagueness"]

    def test_duplicate_metric_names_rejected(self):
        with pytest.raises(ValueError):
            NalabsAnalyzer(metrics=[VaguenessMetric(), VaguenessMetric()])

    def test_analyze_csv_end_to_end(self):
        report = NalabsAnalyzer().analyze_csv(
            "REQ ID,Text\nR1,The system shall work where possible.\n")
        assert report.total == 1
        assert report.reports[0].value("weakness") == 1

    def test_corpus_summaries(self):
        analyzer = NalabsAnalyzer()
        corpus = analyzer.analyze_corpus([
            RequirementText("R1", "The system shall log events."),
            RequirementText("R2", "The system may be adequate."),
        ])
        assert corpus.total == 2
        assert corpus.smelly_count == 1
        assert corpus.mean_value("optionality") == 0.5
        assert corpus.max_value("vagueness") == 1.0
        rows = corpus.summary_rows()
        assert {row["metric"] for row in rows} >= {"vagueness", "size"}

    def test_empty_corpus(self):
        corpus = NalabsAnalyzer().analyze_corpus([])
        assert corpus.total == 0
        assert corpus.summary_rows() == []
        assert corpus.mean_value("vagueness") == 0.0


class TestCorpusGenerator:
    def test_deterministic_by_seed(self):
        a_reqs, a_truth = CorpusGenerator(seed=7).generate(50)
        b_reqs, b_truth = CorpusGenerator(seed=7).generate(50)
        assert [r.text for r in a_reqs] == [r.text for r in b_reqs]
        assert a_truth.injected == b_truth.injected

    def test_different_seed_differs(self):
        a_reqs, _ = CorpusGenerator(seed=1).generate(50)
        b_reqs, _ = CorpusGenerator(seed=2).generate(50)
        assert [r.text for r in a_reqs] != [r.text for r in b_reqs]

    def test_injection_subsets_disjoint(self):
        _, truth = CorpusGenerator(seed=3).generate(200, injection_rate=0.05)
        all_ids = []
        for ids in truth.injected.values():
            all_ids.extend(ids)
        assert len(all_ids) == len(set(all_ids))

    def test_injection_rate_bounds(self):
        with pytest.raises(ValueError):
            CorpusGenerator().generate(10, injection_rate=1.5)
        with pytest.raises(ValueError):
            CorpusGenerator().generate(10, injection_rate=0.9)

    def test_detectors_perfect_on_injected_corpus(self):
        """The calibration contract behind experiment E4: per-smell
        precision and recall are exactly 1.0 against injected truth."""
        reqs, truth = CorpusGenerator(seed=0).generate(
            300, injection_rate=0.05)
        report = NalabsAnalyzer().analyze_corpus(reqs)
        flagged = report.flagged_by_metric()
        for smell in ("vagueness", "weakness", "optionality",
                      "subjectivity", "references", "imperatives",
                      "conjunctions", "incompleteness"):
            precision, recall = truth.precision_recall(
                smell, flagged.get(smell, []))
            assert precision == 1.0, smell
            assert recall == 1.0, smell

    def test_precision_recall_empty_flags(self):
        _, truth = CorpusGenerator(seed=0).generate(40, injection_rate=0.05)
        precision, recall = truth.precision_recall("vagueness", [])
        assert precision == 1.0
        assert recall == 0.0

    def test_imperative_injection_removes_shall(self):
        generator = CorpusGenerator(seed=0)
        statement = generator.clean_statement()
        degraded = generator.inject(statement, "imperatives")
        assert " shall " not in degraded
