"""Unit tests for the command-line interface."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestAudit:
    def test_hardened_profile_exits_zero(self):
        code, output = run_cli("audit", "--profile", "ubuntu-hardened")
        assert code == 0
        assert "14/14 passing" in output

    def test_default_profile_exits_nonzero(self):
        code, output = run_cli("audit", "--profile", "ubuntu-default")
        assert code == 1
        assert "FAIL" in output

    def test_unknown_profile_aborts(self):
        with pytest.raises(SystemExit):
            run_cli("audit", "--profile", "solaris")


class TestHarden:
    def test_adversarial_profile_remediated(self):
        code, output = run_cli("harden", "--profile", "ubuntu-adversarial")
        assert code == 0
        assert "14 remediated" in output

    def test_windows_adversarial(self):
        code, output = run_cli("harden", "--profile", "win10-adversarial")
        assert code == 0
        assert "12 remediated" in output


class TestSmells:
    CSV = (
        "REQ ID,Text\n"
        "R1,The system shall lock the account after 3 attempts.\n"
        "R2,The system may be adequate where possible.\n"
    )

    def test_flags_smelly_rows(self, tmp_path):
        csv_path = tmp_path / "reqs.csv"
        csv_path.write_text(self.CSV)
        code, output = run_cli("smells", str(csv_path))
        assert code == 1  # 1/2 smelly > default 0.2 ratio
        assert "vagueness" in output
        assert "1/2 requirements smelly" in output

    def test_threshold_can_be_relaxed(self, tmp_path):
        csv_path = tmp_path / "reqs.csv"
        csv_path.write_text(self.CSV)
        code, _ = run_cli("smells", str(csv_path),
                          "--max-smelly-ratio", "0.6")
        assert code == 0


class TestFormalize:
    def test_timed_conditional(self):
        code, output = run_cli(
            "formalize",
            "When intrusion is detected, the gateway shall alert the "
            "operator within 5 seconds.")
        assert code == 0
        assert "boilerplate: B4" in output
        assert "A<>[0,5]" in output

    def test_prose_fails(self):
        code, output = run_cli("formalize", "security is nice to have")
        assert code == 1
        assert "no boilerplate match" in output


class TestScan:
    def test_vulnerable_inventory(self):
        code, output = run_cli(
            "scan", "--product", "bash=4.3", "--product", "openssl=1.0.1f")
        assert code == 0
        assert "requirements" in output
        assert "CVE-" in output

    def test_fail_on_findings(self):
        code, _ = run_cli(
            "scan", "--product", "bash=4.3", "--fail-on-findings")
        assert code == 1

    def test_patched_inventory_clean(self):
        code, output = run_cli(
            "scan", "--product", "bash=5.2", "--fail-on-findings")
        assert code == 0
        assert "0 requirements" in output

    def test_bad_product_spec_aborts(self):
        with pytest.raises(SystemExit):
            run_cli("scan", "--product", "bash")


class TestPipeline:
    def test_default_host_pipeline_passes(self):
        code, output = run_cli("pipeline", "--profile", "ubuntu-default")
        assert code == 0
        assert "pipeline passed" in output
        assert "stig-compliance" in output

    def test_extra_requirements_flow_in(self):
        code, output = run_cli(
            "pipeline", "--profile", "ubuntu-default",
            "--requirement",
            "The audit subsystem shall not transmit passwords.")
        assert code == 0

    def test_smelly_extra_requirement_fails_gate(self):
        code, output = run_cli(
            "pipeline", "--profile", "ubuntu-default",
            "--requirement", "The system may be adequate where possible.",
            "--requirement", "It could possibly react in a timely manner.",
            "--requirement", "Behaviour should be as good as possible.",
            "--requirement", "Results may be satisfactory if practical.",
            "--requirement", "Users might find it nice and friendly.",
            "--requirement", "Optionally it can be robust and flexible.",
            "--requirement", "Possibly it might be efficient and simple.",
            "--requirement", "Where possible it may remain adequate.",
        )
        assert code == 1
        assert "requirements-quality" in output

    def test_json_output_is_pure_json(self):
        import json

        code, output = run_cli(
            "pipeline", "--profile", "ubuntu-default", "--json")
        assert code == 0
        document = json.loads(output)  # parses as-is: pipeable to jq
        assert document["passed"] is True
        assert document["cache"] is None
        assert any(row["gate"] == "verification"
                   for row in document["gates"])

    def test_cache_cold_then_warm(self, tmp_path):
        import json

        cache_dir = str(tmp_path / "vcache")
        code, output = run_cli(
            "pipeline", "--profile", "ubuntu-default", "--json",
            "--cache", cache_dir)
        assert code == 0
        cold = json.loads(output)["cache"]
        assert cold["misses"] > 0
        assert cold["hits"] == 0
        assert cold["stores"] == cold["misses"]

        code, output = run_cli(
            "pipeline", "--profile", "ubuntu-default", "--json",
            "--cache", cache_dir)
        assert code == 0
        warm = json.loads(output)["cache"]
        # A warm re-run performs zero model-checking calls.
        assert warm["misses"] == 0
        assert warm["invalidations"] == 0
        assert warm["hits"] == cold["misses"]

    def test_jobs_flag_runs_parallel_pipeline(self):
        code, output = run_cli(
            "pipeline", "--profile", "ubuntu-default", "--jobs", "4")
        assert code == 0
        assert "pipeline passed" in output

    def test_jobs_must_be_positive(self):
        with pytest.raises(SystemExit, match="--jobs"):
            run_cli("pipeline", "--jobs", "0")

    def test_cache_stats_in_text_output(self, tmp_path):
        code, output = run_cli(
            "pipeline", "--profile", "ubuntu-default",
            "--cache", str(tmp_path))
        assert code == 0
        assert "verification cache:" in output
        assert "misses=6" in output


class TestSoc:
    def test_drift_scenario_runs_end_to_end(self):
        code, output = run_cli(
            "soc", "--hosts", "4", "--shards", "2", "--drifts", "6",
            "--seed", "3")
        assert code == 0
        assert "SOC run over 4 hosts / 2 shards" in output
        assert "-- incidents --" in output
        assert "events_ingested" in output
        assert "posture after run: worst 100%" in output

    def test_seed_makes_incidents_reproducible(self):
        # Queue-lag numbers vary with thread timing, but the incident
        # set (and exit code) must be a pure function of the seed.
        def incidents_section(output):
            return output.split("-- incidents --")[1] \
                .split("-- shards --")[0]

        args = ("soc", "--hosts", "3", "--shards", "2", "--drifts", "5",
                "--seed", "11")
        first_code, first_out = run_cli(*args)
        second_code, second_out = run_cli(*args)
        assert first_code == second_code == 0
        assert incidents_section(first_out) == incidents_section(second_out)

    def test_policy_flag_is_validated(self):
        with pytest.raises(SystemExit):
            run_cli("soc", "--policy", "bogus")

    def test_all_ubuntu_fleet(self):
        code, output = run_cli(
            "soc", "--hosts", "3", "--windows-every", "0",
            "--drifts", "4", "--shards", "1")
        assert code == 0
        assert "win-" not in output

    def test_unrepaired_fleet_exits_nonzero(self, tmp_path):
        # A chaos plan whose repairs always raise leaves the fleet
        # non-compliant; the CLI must fail the job, not shrug.
        plan_path = tmp_path / "plan.json"
        plan_path.write_text('{"seed": 1, "repair_raise": 1.0}')
        code, output = run_cli(
            "soc", "--hosts", "2", "--windows-every", "0",
            "--drifts", "2", "--shards", "1",
            "--chaos-plan", str(plan_path))
        assert code == 1
        assert "chaos plan: seed 1: repair.raise=1" in output
        assert "reconcile:" in output
        assert "worst 100%" not in output

    def test_chaos_plan_reconciles_and_reports_digest(self, tmp_path):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(
            '{"seed": 5, "session_error": 1.0, "max_deliveries": 1}')
        code, output = run_cli(
            "soc", "--hosts", "2", "--windows-every", "0",
            "--drifts", "3", "--shards", "2",
            "--chaos-plan", str(plan_path))
        # Every event dead-letters, but the reconcile sweep restores
        # full compliance: exit zero.
        assert code == 0
        assert "decisions digest" in output
        assert "-- degradation --" in output
        assert "posture after run: worst 100%" in output

    def test_json_report_round_trips(self, tmp_path):
        import json

        plan_path = tmp_path / "plan.json"
        plan_path.write_text('{"seed": 2, "event_duplicate": 0.5}')
        code, output = run_cli(
            "soc", "--hosts", "2", "--windows-every", "0",
            "--drifts", "3", "--shards", "1", "--json",
            "--chaos-plan", str(plan_path))
        assert code == 0
        # --json stdout is the document alone (status lines go to
        # stderr), so it must parse as-is — pipeable to jq.
        document = json.loads(output)
        # Lossless round trip through json, and self-consistent.
        assert json.loads(json.dumps(document)) == document
        assert document["hosts"] == 2
        assert document["events"]["offered"] == \
            document["events"]["ingested"] + document["events"]["rejected"]
        assert document["chaos"]["plan"]["seed"] == 2
        assert len(document["chaos"]["decisions_digest"]) == 64

    def test_malformed_chaos_plan_rejected_with_usable_error(self,
                                                             tmp_path):
        plan_path = tmp_path / "bad.json"
        plan_path.write_text('{"worker_crash": 7}')
        with pytest.raises(SystemExit) as excinfo:
            run_cli("soc", "--chaos-plan", str(plan_path))
        message = str(excinfo.value)
        assert "invalid chaos plan" in message
        assert "worker_crash" in message

    def test_unknown_chaos_field_named_in_error(self, tmp_path):
        plan_path = tmp_path / "bad.json"
        plan_path.write_text('{"disk_full": 0.5}')
        with pytest.raises(SystemExit, match="disk_full"):
            run_cli("soc", "--chaos-plan", str(plan_path))

    def test_unreadable_chaos_plan_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot read chaos plan"):
            run_cli("soc", "--chaos-plan", str(tmp_path / "missing.json"))

    def test_process_backend_runs_end_to_end(self):
        code, output = run_cli(
            "soc", "--hosts", "3", "--shards", "2", "--drifts", "4",
            "--seed", "3", "--backend", "process")
        assert code == 0
        assert "posture after run: worst 100%" in output

    def test_backend_flag_is_validated(self):
        with pytest.raises(SystemExit):
            run_cli("soc", "--backend", "fiber")

    def test_process_backend_rejects_drop_oldest(self):
        with pytest.raises(SystemExit, match="drop-oldest"):
            run_cli("soc", "--backend", "process",
                    "--policy", "drop-oldest")

    def test_backend_env_var_is_honoured(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOC_BACKEND", "process")
        code, output = run_cli(
            "soc", "--hosts", "2", "--windows-every", "0",
            "--drifts", "2", "--shards", "1")
        assert code == 0
        assert "posture after run: worst 100%" in output


class TestGap:
    def test_hardened_full_coverage(self):
        code, output = run_cli("gap", "--profile", "ubuntu-hardened",
                               "--level", "2")
        assert code == 0
        assert "coverage (evidenced SRs): 100%" in output
        assert "UNMAPPED" in output  # gaps stay visible

    def test_default_profile_has_gaps(self):
        code, output = run_cli("gap", "--profile", "ubuntu-default")
        assert code == 1
        assert "UNSATISFIED" in output or "PARTIAL" in output


class TestReport:
    def test_report_to_stdout(self):
        code, output = run_cli("report", "--profile", "ubuntu-default")
        assert code == 0
        assert "# ubuntu-default security report" in output
        assert "## Pipeline: PASSED" in output

    def test_report_to_file(self, tmp_path):
        target = tmp_path / "report.md"
        code, output = run_cli("report", "--profile", "ubuntu-default",
                               "--output", str(target))
        assert code == 0
        assert target.exists()
        assert "## Requirements" in target.read_text()


class TestCacheTiers:
    def test_shared_cache_warms_a_fresh_local_tier(self, tmp_path):
        import json

        shared = str(tmp_path / "shared")
        code, output = run_cli(
            "pipeline", "--profile", "ubuntu-default", "--json",
            "--cache", str(tmp_path / "ci-run-1"), "--shared-cache", shared)
        assert code == 0
        cold = json.loads(output)
        assert cold["cache"]["misses"] > 0
        assert cold["cache_tiers"] == ["memory", "local", "remote"]

        # A *different* machine (fresh local tier) re-runs: every
        # verdict comes off the shared remote, zero model-checking.
        code, output = run_cli(
            "pipeline", "--profile", "ubuntu-default", "--json",
            "--cache", str(tmp_path / "ci-run-2"), "--shared-cache", shared)
        assert code == 0
        warm = json.loads(output)["cache"]
        assert warm["misses"] == 0
        assert warm["remote_hits"] == cold["cache"]["misses"]

    def test_memory_tier_needs_no_directories(self):
        import json

        code, output = run_cli(
            "pipeline", "--profile", "ubuntu-default", "--json",
            "--cache-tier", "memory")
        assert code == 0
        assert json.loads(output)["cache_tiers"] == ["memory"]

    def test_shared_tier_requires_shared_cache_flag(self):
        with pytest.raises(SystemExit, match="--shared-cache"):
            run_cli("pipeline", "--cache-tier", "shared")

    def test_local_tier_requires_cache_flag(self):
        with pytest.raises(SystemExit, match="--cache"):
            run_cli("pipeline", "--cache-tier", "local")


class TestPreventionFleet:
    def test_fleet_json_reports_warm_hit_rate(self, tmp_path):
        import json

        code, output = run_cli(
            "prevention", "fleet", "--runs", "3", "--json",
            "--workdir", str(tmp_path))
        assert code == 0
        document = json.loads(output)
        assert document["runs"] == 3
        assert document["passed"] is True
        assert document["verdicts_identical"] is True
        assert document["warm_hit_rate"] >= 0.9
        assert document["latency_s"]["p50"] <= document["latency_s"]["max"]
        for row in document["per_run"]:
            assert row["misses"] == 0

    def test_fleet_text_output(self, tmp_path):
        code, output = run_cli(
            "prevention", "fleet", "--runs", "2",
            "--workdir", str(tmp_path))
        assert code == 0
        assert "warm-hit rate" in output

    def test_fleet_runs_must_be_positive(self, tmp_path):
        with pytest.raises(SystemExit, match="--runs"):
            run_cli("prevention", "fleet", "--runs", "0",
                    "--workdir", str(tmp_path))
