"""Unit tests for the incident pipeline: retry, backoff, breakers."""

from repro.environment.events import Event
from repro.environment.host import SimulatedHost
from repro.rqcode.catalog import StigCatalog
from repro.rqcode.concepts import CheckStatus, EnforcementStatus
from repro.soc.breaker import BreakerState
from repro.soc.incidents import IncidentPipeline, RetryPolicy
from repro.soc.metrics import MetricsRegistry
from repro.soc.sessions import Detection


def make_requirement_class(name, succeed_after):
    """A finding whose enforcement succeeds only on call N (never, when
    *succeed_after* is None)."""
    calls = {"n": 0}

    class Requirement:
        def __init__(self, host):
            self.host = host

        def check(self):
            if succeed_after is not None and calls["n"] >= succeed_after:
                return CheckStatus.PASS
            return CheckStatus.FAIL

        def enforce(self):
            calls["n"] += 1
            if succeed_after is not None and calls["n"] >= succeed_after:
                return EnforcementStatus.SUCCESS
            return EnforcementStatus.FAILURE

    Requirement.__name__ = name
    Requirement.calls = calls
    return Requirement


def make_pipeline(catalog, *, retry=None, sleeper=None, seed=0,
                  breaker_threshold=3, breaker_cooldown=1):
    metrics = MetricsRegistry()
    pipeline = IncidentPipeline(
        catalog, metrics,
        retry=retry or RetryPolicy(max_attempts=3, backoff_base=0.0001),
        breaker_threshold=breaker_threshold,
        breaker_cooldown=breaker_cooldown,
        seed=seed,
        sleeper=sleeper if sleeper is not None else (lambda _s: None))
    return pipeline, metrics


def detection(time=5, kind="drift.package", req_id="R1"):
    return Detection(req_id=req_id, event=Event(time=time, kind=kind))


class TestRetry:
    def test_flaky_enforcement_retried_to_success(self):
        catalog = StigCatalog()
        catalog.register(make_requirement_class("V_FLAKY", 2), "ubuntu")
        host = SimulatedHost("h1", "ubuntu")
        pipeline, metrics = make_pipeline(catalog)
        incident = pipeline.handle(host, detection(), ["V-FLAKY"])
        repair, = incident.repairs
        assert repair.detail == "enforced; attempts=2; re-check PASS"
        assert incident.effective
        snap = metrics.snapshot()["counters"]
        assert snap["soc.enforce.success"] == 1
        assert snap["soc.enforce.retries"] == 1

    def test_backoff_delays_grow_and_are_seed_deterministic(self):
        def run(seed):
            catalog = StigCatalog()
            catalog.register(make_requirement_class("V_SLOW", None),
                             "ubuntu")
            delays = []
            pipeline, _ = make_pipeline(
                catalog, sleeper=delays.append, seed=seed,
                retry=RetryPolicy(max_attempts=4, backoff_base=0.01,
                                  backoff_factor=2.0, jitter=0.5))
            pipeline.handle(SimulatedHost("h1", "ubuntu"), detection(),
                            ["V-SLOW"])
            return delays

        first = run(seed=7)
        second = run(seed=7)
        other = run(seed=8)
        assert len(first) == 3          # max_attempts - 1 sleeps
        assert first == second          # same seed, same jitter
        assert first != other           # jitter is actually seeded
        # Exponential shape with bounded jitter: each delay lands in
        # [base*2^k, base*2^k*1.5] and therefore strictly grows.
        for index, delay in enumerate(first):
            assert 0.01 * 2 ** index <= delay <= 0.015 * 2 ** index

    def test_exhausted_retries_record_failure(self):
        catalog = StigCatalog()
        catalog.register(make_requirement_class("V_DEAD", None), "ubuntu")
        pipeline, metrics = make_pipeline(catalog)
        incident = pipeline.handle(SimulatedHost("h1", "ubuntu"),
                                   detection(), ["V-DEAD"])
        repair, = incident.repairs
        assert repair.status is EnforcementStatus.FAILURE
        assert repair.detail.endswith("re-check FAIL")
        assert not incident.effective
        assert metrics.snapshot()["counters"]["soc.enforce.failure"] == 1


class TestShortCircuits:
    def test_already_compliant_is_not_enforced(self):
        catalog = StigCatalog()
        catalog.register(make_requirement_class("V_OK", 0), "ubuntu")
        pipeline, _ = make_pipeline(catalog)
        incident = pipeline.handle(SimulatedHost("h1", "ubuntu"),
                                   detection(), ["V-OK"])
        repair, = incident.repairs
        assert repair.detail == "already compliant"
        assert repair.status is EnforcementStatus.SUCCESS

    def test_unknown_finding_fails_cleanly(self):
        pipeline, _ = make_pipeline(StigCatalog())
        incident = pipeline.handle(SimulatedHost("h1", "ubuntu"),
                                   detection(), ["V-MISSING"])
        repair, = incident.repairs
        assert repair.status is EnforcementStatus.FAILURE
        assert repair.detail == "finding not in catalogue"


class TestCircuitBreaker:
    def _failing_setup(self, threshold=2, cooldown=1):
        catalog = StigCatalog()
        catalog.register(make_requirement_class("V_DEAD", None), "ubuntu")
        pipeline, metrics = make_pipeline(
            catalog, breaker_threshold=threshold,
            breaker_cooldown=cooldown,
            retry=RetryPolicy(max_attempts=1))
        return pipeline, metrics, SimulatedHost("h1", "ubuntu")

    def test_repeated_failures_trip_the_breaker(self):
        pipeline, metrics, host = self._failing_setup(threshold=2)
        pipeline.handle(host, detection(), ["V-DEAD"])
        pipeline.handle(host, detection(), ["V-DEAD"])
        breaker = pipeline.breaker_for("h1", "V-DEAD")
        assert breaker.state is BreakerState.OPEN
        assert metrics.snapshot()["counters"]["soc.breaker.trips"] == 1

    def test_open_breaker_skips_enforcement(self):
        pipeline, metrics, host = self._failing_setup(threshold=1,
                                                      cooldown=5)
        pipeline.handle(host, detection(), ["V-DEAD"])   # trips
        incident = pipeline.handle(host, detection(), ["V-DEAD"])
        repair, = incident.repairs
        assert repair.status is EnforcementStatus.INCOMPLETE
        assert "circuit breaker open" in repair.detail
        counters = metrics.snapshot()["counters"]
        assert counters["soc.enforce.skipped_by_breaker"] == 1
        # The dead enforcement ran exactly once.
        assert counters["soc.enforce.failure"] == 1

    def test_half_open_trial_after_cooldown(self):
        pipeline, _, host = self._failing_setup(threshold=1, cooldown=1)
        pipeline.handle(host, detection(), ["V-DEAD"])   # trips
        pipeline.handle(host, detection(), ["V-DEAD"])   # absorbed
        breaker = pipeline.breaker_for("h1", "V-DEAD")
        assert breaker.state is BreakerState.HALF_OPEN
        pipeline.handle(host, detection(), ["V-DEAD"])   # trial fails
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 2

    def test_breakers_are_per_host_and_finding(self):
        pipeline, _, host = self._failing_setup(threshold=1)
        pipeline.handle(host, detection(), ["V-DEAD"])
        assert pipeline.breaker_for(
            "h1", "V-DEAD").state is BreakerState.OPEN
        assert pipeline.breaker_for(
            "h2", "V-DEAD").state is BreakerState.CLOSED
        assert pipeline.breaker_states()["h1/V-DEAD"] == "open"


class TestRepairEchoFlag:
    def test_in_repair_is_set_only_while_enforcing(self):
        catalog = StigCatalog()
        catalog.register(make_requirement_class("V_FLAKY", 2), "ubuntu")
        observed = []

        def sleeper(_delay):
            observed.append(pipeline.in_repair())

        pipeline, _ = make_pipeline(catalog, sleeper=sleeper)
        assert not pipeline.in_repair()
        pipeline.handle(SimulatedHost("h1", "ubuntu"), detection(),
                        ["V-FLAKY"])
        assert observed == [True]
        assert not pipeline.in_repair()


class TestIncidentStore:
    def test_incidents_ordered_by_time_then_host(self):
        catalog = StigCatalog()
        catalog.register(make_requirement_class("V_OK", 0), "ubuntu")
        pipeline, _ = make_pipeline(catalog)
        beta = SimulatedHost("beta", "ubuntu")
        alpha = SimulatedHost("alpha", "ubuntu")
        pipeline.handle(beta, detection(time=3), ["V-OK"])
        pipeline.handle(alpha, detection(time=3), ["V-OK"])
        pipeline.handle(beta, detection(time=1), ["V-OK"])
        ordered = pipeline.incidents()
        assert [(i.detected_at) for i in ordered] == [1, 3, 3]
        assert pipeline.incidents_for("alpha")[0].detected_at == 3
        assert pipeline.incidents_for("unknown") == []
