"""Property tests for the canonical Requirement IR.

The IR's load-bearing promises: adapter-lowered records serialize and
deserialize byte-identically, fingerprints are a pure function of
content (dict insertion order and process identity never leak in), the
content fingerprint ignores exactly id + provenance, and the registry
lint rejects provenance-free records at the adapter boundary.
"""

import json
import random
from dataclasses import replace

import pytest

from repro.reqs.ir import (
    Formalization,
    IrError,
    Provenance,
    Requirement,
    SEVERITIES,
    TARGET_KINDS,
    dedupe,
)
from repro.reqs.registry import (
    AdapterContractError,
    ProvenanceError,
    default_registry,
    lint_requirements,
)
from repro.reqs.schema import IR_SCHEMA, schema_drift, validate_record
from repro.specpatterns.patterns import TimedResponse, Universality
from repro.specpatterns.scopes import Globally


def golden_requirement() -> Requirement:
    return Requirement(
        rid="GOLD-001",
        title="Golden requirement",
        text="The system shall remain compliant continuously.",
        source="rqcode",
        provenance=(Provenance("stig", "V-000001", "golden fixture"),),
        target_kind="host",
        severity="high",
        formalization=Formalization.from_objects(
            Universality(p="compliant_golden"), Globally(),
            ltl="G (compliant_golden)", tctl="A[] compliant_golden"),
        tags=("fixture",),
        bindings=("V-000001",),
    )


def shuffled_payload(payload, rng):
    """The same payload with every dict's insertion order permuted."""
    if isinstance(payload, dict):
        keys = list(payload)
        rng.shuffle(keys)
        return {key: shuffled_payload(payload[key], rng) for key in keys}
    if isinstance(payload, list):
        return [shuffled_payload(item, rng) for item in payload]
    return payload


class TestRoundTrip:
    """Lower -> serialize -> deserialize -> serialize is the identity."""

    def test_every_bundled_record_round_trips_byte_identically(self):
        corpora = default_registry().lower_all_bundled()
        assert sorted(corpora) == [
            "capec", "cwe", "nalabs", "resa", "rqcode", "standards",
            "vulndb"]
        for irs in corpora.values():
            assert irs, "bundled corpus must not be empty"
            for record in irs:
                wire = record.canonical_json()
                restored = Requirement.from_dict(json.loads(wire))
                assert restored.canonical_json() == wire
                assert restored == record
                assert restored.fingerprint() == record.fingerprint()

    def test_round_trip_through_to_dict(self):
        record = golden_requirement()
        assert Requirement.from_dict(record.to_dict()) == record

    def test_formalization_objects_round_trip(self):
        pattern = TimedResponse(p="a", s="b", bound=60)
        formalization = Formalization.from_objects(pattern, Globally())
        raised_pattern, raised_scope = formalization.to_objects()
        assert raised_pattern == pattern
        assert raised_scope == Globally()


class TestFingerprintStability:
    # Recorded once; a change here means previously cached verdicts
    # and persisted fingerprints silently stop matching across runs.
    GOLDEN_FULL = "3e4791a0d0a719c119c1b44c82434480"
    GOLDEN_CONTENT = "605c3549bef7c3bacbc95f69d38c37f7"

    def test_fingerprint_survives_process_restarts(self):
        record = golden_requirement()
        assert record.fingerprint() == self.GOLDEN_FULL
        assert record.content_fingerprint() == self.GOLDEN_CONTENT

    def test_fingerprint_ignores_dict_insertion_order(self):
        rng = random.Random(7)
        for record in default_registry().lower_bundled("vulndb"):
            for _ in range(5):
                scrambled = Requirement.from_dict(
                    shuffled_payload(record.to_dict(), rng))
                assert scrambled.fingerprint() == record.fingerprint()

    def test_fingerprint_ignores_tuple_construction_route(self):
        record = golden_requirement()
        rebuilt = Requirement(
            rid=record.rid, title=record.title, text=record.text,
            source=record.source,
            provenance=list(record.provenance),     # list, not tuple
            target_kind=record.target_kind, severity=record.severity,
            formalization=record.formalization,
            tags=list(record.tags), bindings=list(record.bindings))
        assert rebuilt.fingerprint() == record.fingerprint()

    def test_content_changes_change_the_fingerprint(self):
        record = golden_requirement()
        for mutation in (
            {"text": "The system shall do something else."},
            {"severity": "low"},
            {"bindings": ("V-999999",)},
            {"tags": ("other",)},
        ):
            payload = record.to_dict()
            payload.update(mutation)
            assert Requirement.from_dict(payload).fingerprint() \
                != record.fingerprint()


class TestContentFingerprint:
    def test_excludes_rid_and_provenance_only(self):
        record = golden_requirement()
        payload = record.to_dict()
        payload["rid"] = "OTHER-999"
        payload["provenance"] = [
            {"kind": "cve", "ref": "CVE-2014-0160", "detail": "same req"}]
        twin = Requirement.from_dict(payload)
        assert twin.fingerprint() != record.fingerprint()
        assert twin.content_fingerprint() == record.content_fingerprint()

    def test_normative_differences_separate(self):
        record = golden_requirement()
        payload = record.to_dict()
        payload["text"] = "A different obligation."
        assert Requirement.from_dict(payload).content_fingerprint() \
            != record.content_fingerprint()

    def test_dedupe_is_order_preserving_and_cross_source(self):
        record = golden_requirement()
        payload = record.to_dict()
        payload["rid"] = "DUP-001"
        payload["provenance"] = [{"kind": "cve", "ref": "CVE-1", "detail": ""}]
        twin = Requirement.from_dict(payload)
        other_payload = record.to_dict()
        other_payload["rid"] = "UNIQ-001"
        other_payload["text"] = "A genuinely different obligation."
        other = Requirement.from_dict(other_payload)
        assert dedupe([record, twin, other]) == [record, other]


class TestValidation:
    def test_empty_rid_rejected(self):
        with pytest.raises(IrError):
            Requirement(rid="", title="t", text="x", source="resa")

    def test_empty_text_rejected(self):
        with pytest.raises(IrError):
            Requirement(rid="R-1", title="t", text="", source="resa")

    def test_bad_severity_rejected(self):
        with pytest.raises(IrError):
            Requirement(rid="R-1", title="t", text="x", source="resa",
                        severity="catastrophic")

    def test_bad_target_kind_rejected(self):
        with pytest.raises(IrError):
            Requirement(rid="R-1", title="t", text="x", source="resa",
                        target_kind="cloud")

    def test_vocabularies_are_closed(self):
        assert SEVERITIES == ("low", "medium", "high", "critical")
        assert TARGET_KINDS == ("host", "monitor", "document", "system")


class TestProvenanceLint:
    def ok(self):
        return golden_requirement()

    def test_clean_records_pass_through(self):
        records = [self.ok()]
        assert lint_requirements(records) == records

    def test_empty_chain_rejected(self):
        bare = Requirement(rid="R-1", title="t", text="x", source="resa")
        with pytest.raises(ProvenanceError, match="empty provenance"):
            lint_requirements([bare], frontend="resa")

    def test_blank_link_rejected(self):
        record = Requirement(
            rid="R-1", title="t", text="x", source="resa",
            provenance=(Provenance("", "", ""),))
        with pytest.raises(ProvenanceError, match="lacks kind/ref"):
            lint_requirements([record])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(AdapterContractError, match="duplicate"):
            lint_requirements([self.ok(), self.ok()])

    def test_legacy_provenance_string(self):
        assert self.ok().legacy_provenance() == "golden fixture"
        detail_free = Requirement(
            rid="R-1", title="t", text="x", source="resa",
            provenance=(Provenance("resa", "REQ-9"),))
        assert detail_free.legacy_provenance() == "resa:REQ-9"


class TestSchema:
    def test_every_bundled_record_is_schema_valid(self):
        for irs in default_registry().lower_all_bundled().values():
            for record in irs:
                assert validate_record(record.to_dict()) == []

    def test_missing_required_key_reported(self):
        payload = golden_requirement().to_dict()
        del payload["provenance"]
        assert any("provenance" in error
                   for error in validate_record(payload))

    def test_wrong_type_reported(self):
        payload = golden_requirement().to_dict()
        payload["tags"] = "not-a-list"
        assert validate_record(payload)

    def test_enum_violation_reported(self):
        payload = golden_requirement().to_dict()
        payload["severity"] = "catastrophic"
        assert validate_record(payload)

    def test_checked_in_schema_matches_embedded(self):
        with open("schemas/requirement-ir.schema.json") as handle:
            checked_in = json.load(handle)
        assert not schema_drift(checked_in)
        assert checked_in == IR_SCHEMA


class TestProvenanceDigests:
    def test_one_digest_per_link_chained(self):
        ir = golden_requirement()
        digests = ir.provenance_digests()
        assert len(digests) == len(ir.provenance)
        assert len(set(digests)) == len(digests)
        assert all(len(digest) == 32 for digest in digests)
        assert ir.provenance_chain_digest() == digests[-1]

    def test_digest_commits_to_every_upstream_link(self):
        chain = (Provenance("stig", "V-1", "first"),
                 Provenance("cve", "CVE-2024-1", "second"))
        ir = replace(golden_requirement(), provenance=chain)
        reordered = replace(ir, provenance=tuple(reversed(chain)))
        assert (ir.provenance_chain_digest()
                != reordered.provenance_chain_digest())
        # The first link's digest is chain-position dependent too.
        assert (ir.provenance_digests()[0]
                != reordered.provenance_digests()[0])

    def test_empty_chain_digest_is_empty(self):
        bare = Requirement(rid="R-1", title="t", text="x", source="resa",
                           provenance=(Provenance("resa", "REQ-1"),))
        assert bare.provenance_digests()
        assert replace(bare, provenance=()).provenance_chain_digest() == ""

    def test_deterministic_across_instances(self):
        assert (golden_requirement().provenance_digests()
                == golden_requirement().provenance_digests())


class TestSchemaVersioning:
    def test_schema_id_carries_version(self):
        from repro.reqs.schema import SCHEMA_ID, SCHEMA_VERSION

        assert f".v{SCHEMA_VERSION}." in SCHEMA_ID
        assert IR_SCHEMA["$id"] == SCHEMA_ID

    def test_bare_record_still_valid_and_migratable(self):
        """Emitters of the v1 wire shape stay valid unchanged."""
        from repro.reqs.schema import SCHEMA_VERSION, migrate_record

        payload = golden_requirement().to_dict()
        assert "ir_version" not in payload      # emitters unchanged
        assert validate_record(payload) == []
        migrated = migrate_record(payload)
        assert migrated is not payload          # stamped copy
        assert migrated["ir_version"] == SCHEMA_VERSION
        assert validate_record(migrated) == []
        assert "ir_version" not in payload      # original untouched

    def test_current_record_passes_through(self):
        from repro.reqs.schema import SCHEMA_VERSION, migrate_record

        payload = dict(golden_requirement().to_dict(),
                       ir_version=SCHEMA_VERSION)
        assert migrate_record(payload) is payload

    def test_future_version_refused(self):
        from repro.reqs.ir import IrError
        from repro.reqs.schema import SCHEMA_VERSION, migrate_record

        payload = dict(golden_requirement().to_dict(),
                       ir_version=SCHEMA_VERSION + 1)
        with pytest.raises(IrError, match="newer"):
            migrate_record(payload)

    def test_wrong_version_stamp_fails_validation(self):
        from repro.reqs.schema import SCHEMA_VERSION

        payload = dict(golden_requirement().to_dict(), ir_version=999)
        assert validate_record(payload)
        assert validate_record(dict(payload,
                                    ir_version=SCHEMA_VERSION)) == []

    def test_version_stamp_does_not_change_fingerprints(self):
        """Journal-embedded fingerprints agree with bare emitters."""
        ir = golden_requirement()
        assert "ir_version" not in ir.to_dict()
        assert ir.fingerprint() == golden_requirement().fingerprint()
