"""Unit tests for the host profile factories (environment/profiles.py)."""

import pytest

from repro.environment.profiles import (
    UBUNTU_PROHIBITED_PACKAGES,
    UBUNTU_REQUIRED_PACKAGES,
    adversarial_ubuntu_host,
    adversarial_windows_host,
    default_ubuntu_host,
    default_windows_host,
    hardened_ubuntu_host,
    hardened_windows_host,
)
from repro.rqcode import default_catalog


class TestUbuntuProfiles:
    def test_hardened_is_fully_compliant(self):
        report = default_catalog().check_host(hardened_ubuntu_host())
        assert report.compliance_ratio == 1.0

    def test_hardened_has_required_packages_and_services(self):
        host = hardened_ubuntu_host()
        for package in UBUNTU_REQUIRED_PACKAGES:
            assert host.dpkg.is_installed(package), package
        for prohibited in UBUNTU_PROHIBITED_PACKAGES:
            assert not host.dpkg.is_installed(prohibited), prohibited
        assert host.services.known("ssh")

    def test_default_is_partially_compliant(self):
        report = default_catalog().check_host(default_ubuntu_host())
        assert 0.0 < report.compliance_ratio < 1.0
        # The stock image ships a legacy prohibited package.
        assert default_ubuntu_host().dpkg.is_installed("nis")

    def test_adversarial_violates_and_hardens_back(self):
        host = adversarial_ubuntu_host()
        catalog = default_catalog()
        before = catalog.check_host(host)
        assert before.compliance_ratio == 0.0
        after = catalog.harden_host(host)
        assert after.compliance_ratio == 1.0

    def test_profiles_accept_custom_names(self):
        assert hardened_ubuntu_host("edge-1").name == "edge-1"
        assert default_ubuntu_host("edge-2").name == "edge-2"


class TestWindowsProfiles:
    def test_hardened_is_fully_compliant(self):
        report = default_catalog().check_host(hardened_windows_host())
        assert report.compliance_ratio == 1.0

    def test_default_audits_out_of_box_subcategories(self):
        host = default_windows_host()
        setting = host.audit_store.get("Logon")
        assert setting.success and not setting.failure
        report = default_catalog().check_host(host)
        assert report.compliance_ratio < 1.0

    def test_adversarial_disables_all_auditing(self):
        host = adversarial_windows_host()
        assert all(not setting.success and not setting.failure
                   for _, _, setting in host.audit_store.items())

    def test_adversarial_hardens_back(self):
        host = adversarial_windows_host()
        report = default_catalog().harden_host(host)
        assert report.compliance_ratio == 1.0


class TestProfileIndependence:
    def test_factories_return_fresh_hosts(self):
        first = hardened_ubuntu_host()
        second = hardened_ubuntu_host()
        assert first is not second
        first.drift_install_package("nis")
        assert not second.dpkg.is_installed("nis")

    def test_os_families(self):
        assert hardened_ubuntu_host().os_family == "ubuntu"
        assert hardened_windows_host().os_family == "windows"

    @pytest.mark.parametrize("factory", [
        default_ubuntu_host, hardened_ubuntu_host, adversarial_ubuntu_host,
        default_windows_host, hardened_windows_host,
        adversarial_windows_host,
    ])
    def test_every_profile_starts_with_quiet_monitoring_state(self, factory):
        host = factory()
        # Building a profile must not leave drift events behind — the
        # protection loop would otherwise fire on arm.
        assert not host.events.of_kind("drift")
