"""Live delta re-arming: equivalence with cold re-arm, state
preservation, zero detection gaps, and the REARM wire protocol.

The E18 property at the heart of the streaming fast path: a service
re-armed *live* from a sequence of deltas must end with exactly the
same final verdicts as a cold service armed from the resulting IR set
— on both backends, with and without chaos.
"""

import pytest

from repro.chaos import ChaosController, FaultPlan
from repro.environment import hardened_ubuntu_host, hardened_windows_host
from repro.ltl.parser import parse_ltl
from repro.reqs.ir import Formalization, Provenance, Requirement
from repro.reqs.risk import RiskIndex, RiskScorer
from repro.reqs.stream import ReqStream
from repro.rqcode import default_catalog
from repro.soc.rearm import (
    Rearmer,
    drift_atom,
    monitor_entries,
    plan_for_records,
)
from repro.soc.service import SocService

CATALOG = default_catalog()
UBUNTU_FINDINGS = [f for f in CATALOG.finding_ids()
                   if CATALOG.get(f).platform == "ubuntu"]
WINDOWS_FINDINGS = [f for f in CATALOG.finding_ids()
                    if CATALOG.get(f).platform == "windows"]


def rec(rid, fids=(), severity="high"):
    return Requirement(
        rid=rid, title=rid, text=f"requirement {rid}", source="rqcode",
        severity=severity, bindings=tuple(fids),
        provenance=(Provenance("test", rid, "test record"),))


def ltl_rec(rid, ltl):
    return Requirement(
        rid=rid, title=rid, text=f"requirement {rid}", source="resa",
        severity="high", formalization=Formalization(ltl=ltl),
        provenance=(Provenance("test", rid, "test record"),))


def build_hosts(ubuntu=3, windows=0):
    hosts = [hardened_ubuntu_host(f"web-{i:02d}") for i in range(ubuntu)]
    hosts += [hardened_windows_host(f"console-{i:02d}")
              for i in range(windows)]
    return hosts


def arm(records, hosts, backend="thread", shards=2, chaos_plan=None,
        **kwargs):
    plans = {h.name: plan_for_records(records, h, CATALOG) for h in hosts}
    chaos = ChaosController(chaos_plan) if chaos_plan else None
    return SocService(hosts, CATALOG, plans, shards=shards, seed=3,
                      backend=backend, chaos=chaos, **kwargs).start()


# -- planning: one rule, two consumers ----------------------------------------


class TestPlanning:
    def test_drift_atom_matches_orchestrator_rule(self):
        from repro.core.orchestrator import VeriDevOpsOrchestrator

        orchestrator = VeriDevOpsOrchestrator(catalog=CATALOG)
        for fids in ([UBUNTU_FINDINGS[0]], UBUNTU_FINDINGS[:4],
                     [WINDOWS_FINDINGS[0]],
                     [UBUNTU_FINDINGS[0], WINDOWS_FINDINGS[0]]):
            assert orchestrator._drift_atom(fids) \
                == drift_atom(CATALOG, fids)

    def test_standard_record_arms_platform_filtered_drift(self):
        record = rec("R-1", UBUNTU_FINDINGS[:2] + WINDOWS_FINDINGS[:1])
        host = hardened_ubuntu_host("u-host")
        entries = monitor_entries(record, host, CATALOG)
        assert len(entries) == 1
        req_id, monitor, bindings = entries[0]
        assert req_id == "R-1/drift"
        assert set(bindings) == set(UBUNTU_FINDINGS[:2])
        assert monitor.formula is parse_ltl(
            f"G !{drift_atom(CATALOG, UBUNTU_FINDINGS[:2])}")

    def test_record_with_no_applicable_findings_arms_nothing(self):
        record = rec("R-1", WINDOWS_FINDINGS[:2])
        host = hardened_ubuntu_host("u-host")
        assert monitor_entries(record, host, CATALOG) == []

    def test_event_compatible_ltl_arms_under_own_rid(self):
        record = ltl_rec("R-L", "G !custom.bad")
        host = hardened_ubuntu_host("u-host")
        entries = monitor_entries(record, host, CATALOG)
        assert [(e[0], e[2]) for e in entries] == [("R-L", ())]

    def test_state_style_universality_is_filtered(self):
        # ``G p`` demands p on every step; event streams cannot satisfy
        # it and the cold planner drops it — the live planner must too.
        record = ltl_rec("R-G", "G custom.flag")
        host = hardened_ubuntu_host("u-host")
        assert monitor_entries(record, host, CATALOG) == []

    def test_plan_for_records_collects_per_host(self):
        records = [rec("R-1", UBUNTU_FINDINGS[:2]),
                   ltl_rec("R-L", "G !custom.bad")]
        host = hardened_ubuntu_host("u-host")
        monitors, bindings = plan_for_records(records, host, CATALOG)
        assert set(monitors) == {"R-1/drift", "R-L"}
        assert set(bindings) == {"R-1/drift"}


# -- the E18 equivalence property ---------------------------------------------


def run_live(backend, chaos_plan=None):
    """Arm 2 records, drift, apply an add+change+remove delta mid-
    stream, drift again; return final verdicts."""
    records = [rec("R-1", UBUNTU_FINDINGS[:2]),
               rec("R-2", UBUNTU_FINDINGS[2:4])]
    hosts = build_hosts(ubuntu=4)
    soc = arm(records, hosts, backend=backend, chaos_plan=chaos_plan)
    stream = ReqStream()
    stream.commit(stream.diff(records))
    hosts[0].drift_install_package("telnetd")
    soc.drain()
    delta = stream.diff([rec("R-2", UBUNTU_FINDINGS[4:6]),
                         rec("R-3", UBUNTU_FINDINGS[6:8])],
                        remove_rids=["R-1"])
    report = Rearmer(soc).apply(delta)
    stream.commit(delta)
    hosts[1].drift_install_package("nis")
    soc.drain()
    soc.stop()
    final_records = sorted(stream.armed(), key=lambda r: r.rid)
    return soc.final_verdicts(), final_records, report


def run_cold(backend, final_records, chaos_plan=None):
    """The reference: a cold service armed from the final IR set, fed
    the same drift scenario."""
    hosts = build_hosts(ubuntu=4)
    soc = arm(final_records, hosts, backend=backend,
              chaos_plan=chaos_plan)
    hosts[0].drift_install_package("telnetd")
    soc.drain()
    hosts[1].drift_install_package("nis")
    soc.drain()
    soc.stop()
    return soc.final_verdicts()


class TestEquivalence:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_delta_rearm_matches_cold_rearm(self, backend):
        live, final_records, report = run_live(backend)
        assert sorted(r.rid for r in final_records) == ["R-2", "R-3"]
        assert report.summary()["added"] > 0
        assert run_cold(backend, final_records) == live

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_delta_rearm_matches_cold_rearm_under_chaos(self, backend):
        plan = FaultPlan(seed=5, session_error=0.3, event_duplicate=0.2,
                         max_deliveries=3)
        live, final_records, _ = run_live(backend, chaos_plan=plan)
        assert run_cold(backend, final_records, chaos_plan=plan) == live

    def test_rearm_survives_worker_crashes(self):
        # Process backend: the REARM delta must land exactly once even
        # when workers crash and are restarted mid-protocol.
        plan = FaultPlan(seed=21, worker_crash=0.4, max_deliveries=4)
        live, final_records, _ = run_live("process", chaos_plan=plan)
        assert {key[1] for key in live} == {"R-2/drift", "R-3/drift"}

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_new_atom_vocabulary_grows_in_place(self, backend):
        # A delta can introduce formulas over atoms unseen at arm time;
        # the process backend must extend the wire vocabulary without
        # a restart (and the thread backend just reindexes).
        records = [rec("R-1", UBUNTU_FINDINGS[:2])]
        hosts = build_hosts(ubuntu=3)
        soc = arm(records, hosts, backend=backend)
        stream = ReqStream()
        stream.commit(stream.diff(records))
        delta = stream.diff([ltl_rec("R-L", "G !custom.probe")])
        Rearmer(soc).apply(delta)
        stream.commit(delta)
        hosts[0].events.emit("custom.probe")
        soc.drain()
        soc.stop()
        verdicts = soc.final_verdicts()
        by_req = {k[1] for k in verdicts}
        assert "R-L" in by_req
        # Identical across hosts (the violating host's monitor reset
        # to the same G-state after its detection).
        values = {v for k, v in verdicts.items() if k[1] == "R-L"}
        assert len(values) == 1


# -- obligation-state preservation --------------------------------------------


class TestStatePreservation:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_unrelated_rearm_keeps_progressed_state(self, backend):
        # web-00's Existence monitor goes TRUE before the re-arm; a
        # fresh monitor would be INCONCLUSIVE again, so TRUE after the
        # re-arm proves the obligation survived it.
        records = [ltl_rec("R-F", "F custom.done"),
                   rec("R-1", UBUNTU_FINDINGS[:2])]
        hosts = build_hosts(ubuntu=2)
        soc = arm(records, hosts, backend=backend)
        stream = ReqStream()
        stream.commit(stream.diff(records))
        hosts[0].events.emit("custom.done")
        soc.drain()
        delta = stream.diff([rec("R-1", UBUNTU_FINDINGS[2:4])])
        report = Rearmer(soc).apply(delta)
        stream.commit(delta)
        assert report.summary()["rebound"] + report.summary()["added"] > 0
        soc.drain()
        soc.stop()
        verdicts = soc.final_verdicts()
        assert verdicts[("web-00", "R-F")][0] == "TRUE"
        assert verdicts[("web-01", "R-F")][0] == "INCONCLUSIVE"

    def test_rebind_keeps_monitor_object_thread_backend(self):
        packages = [f for f in UBUNTU_FINDINGS
                    if drift_atom(CATALOG, [f]) == "drift.package"]
        records = [rec("R-1", packages[:2])]
        hosts = build_hosts(ubuntu=1)
        soc = arm(records, hosts, shards=1)
        stream = ReqStream()
        stream.commit(stream.diff(records))
        session = soc.sessions["web-00"]
        before = session.monitors["R-1/drift"]
        # Same drift atom (both package findings) -> same interned
        # formula -> rebind, not replace.
        delta = stream.diff([rec("R-1", packages[:1])])
        report = Rearmer(soc).apply(delta)
        stream.commit(delta)
        soc.stop()
        assert report.summary()["rebound"] == 1
        assert report.summary()["added"] == 0
        assert session.monitors["R-1/drift"] is before
        assert session.bindings["R-1/drift"] == [packages[0]]

    def test_changed_formula_rearms_fresh(self):
        records = [ltl_rec("R-L", "G !custom.one")]
        hosts = build_hosts(ubuntu=1)
        soc = arm(records, hosts, shards=1)
        stream = ReqStream()
        stream.commit(stream.diff(records))
        before = soc.sessions["web-00"].monitors["R-L"]
        delta = stream.diff([ltl_rec("R-L", "G !custom.two")])
        report = Rearmer(soc).apply(delta)
        stream.commit(delta)
        soc.stop()
        assert report.summary()["added"] == 1
        after = soc.sessions["web-00"].monitors["R-L"]
        assert after is not before
        assert after.formula is parse_ltl("G !custom.two")


# -- zero detection gaps ------------------------------------------------------


class TestZeroGap:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_no_gap_across_a_rearm(self, backend):
        # Drift injected *before* the re-arm (still queued) and *after*
        # it must both be detected and repaired: the patch rides the
        # event stream, so no window exists in which either bank is
        # down.
        records = [rec("R-1", UBUNTU_FINDINGS[:2])]
        hosts = build_hosts(ubuntu=3)
        soc = arm(records, hosts, backend=backend)
        stream = ReqStream()
        stream.commit(stream.diff(records))
        for host in hosts:
            host.drift_install_package("telnetd")   # in flight...
        delta = stream.diff([rec("R-2", UBUNTU_FINDINGS[2:4])])
        Rearmer(soc).apply(delta)                   # ...while patching
        stream.commit(delta)
        for host in hosts:
            host.drift_install_package("nis")       # after the patch
        soc.drain()
        soc.stop()
        incidents = soc.incidents()
        assert len(incidents) >= 2 * len(hosts)
        for host in hosts:
            assert not host.dpkg.is_installed("telnetd")
            assert not host.dpkg.is_installed("nis")

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_removed_requirement_stops_detecting(self, backend):
        records = [rec("R-1", UBUNTU_FINDINGS[:2]),
                   rec("R-2", UBUNTU_FINDINGS[2:4])]
        hosts = build_hosts(ubuntu=2)
        soc = arm(records, hosts, backend=backend)
        stream = ReqStream()
        stream.commit(stream.diff(records))
        delta = stream.diff([], remove_rids=["R-1"])
        Rearmer(soc).apply(delta)
        stream.commit(delta)
        hosts[0].drift_install_package("telnetd")
        soc.drain()
        soc.stop()
        assert all(incident.req_id != "R-1/drift"
                   for incident in soc.incidents())
        assert ("web-00", "R-1/drift") not in soc.final_verdicts()


# -- the Rearmer itself -------------------------------------------------------


class TestRearmer:
    def test_empty_delta_is_a_noop(self):
        records = [rec("R-1", UBUNTU_FINDINGS[:2])]
        hosts = build_hosts(ubuntu=1)
        soc = arm(records, hosts, shards=1)
        stream = ReqStream()
        stream.commit(stream.diff(records))
        report = Rearmer(soc).apply(stream.diff([rec("R-1",
                                                     UBUNTU_FINDINGS[:2])]))
        soc.stop()
        assert report.hosts_patched == 0
        assert report.summary()["added"] == 0

    def test_plans_stay_authoritative(self):
        records = [rec("R-1", UBUNTU_FINDINGS[:2])]
        hosts = build_hosts(ubuntu=2)
        soc = arm(records, hosts)
        stream = ReqStream()
        stream.commit(stream.diff(records))
        delta = stream.diff([rec("R-2", UBUNTU_FINDINGS[2:4])],
                            remove_rids=["R-1"])
        Rearmer(soc).apply(delta)
        stream.commit(delta)
        soc.stop()
        for host in hosts:
            monitors, bindings = soc.plans[host.name]
            assert set(monitors) == {"R-2/drift"}
            assert set(bindings) == {"R-2/drift"}

    def test_risk_index_refreshed_by_delta(self):
        records = [rec("R-1", UBUNTU_FINDINGS[:2], severity="low")]
        hosts = build_hosts(ubuntu=2)
        soc = arm(records, hosts)
        scorer = RiskScorer(fleet_size=len(hosts))
        index = RiskIndex(scorer)
        rearmer = Rearmer(soc, risk=index)
        stream = ReqStream()
        delta = stream.diff(records
                            + [rec("R-2", UBUNTU_FINDINGS[2:4],
                                   severity="critical")])
        rearmer.apply(delta)
        stream.commit(delta)
        delta2 = stream.diff([], remove_rids=["R-1"])
        rearmer.apply(delta2)
        stream.commit(delta2)
        soc.stop()
        snapshot = index.snapshot()
        assert "R-1" not in snapshot
        assert snapshot["R-2"] > 0.0

    def test_patch_tokens_are_unique_across_applies(self):
        records = [rec("R-1", UBUNTU_FINDINGS[:2])]
        hosts = build_hosts(ubuntu=2)
        soc = arm(records, hosts)
        rearmer = Rearmer(soc)
        stream = ReqStream()
        stream.commit(stream.diff(records))
        tokens = []
        for step, fids in enumerate((UBUNTU_FINDINGS[2:4],
                                     UBUNTU_FINDINGS[4:6])):
            delta = stream.diff([rec(f"R-{step + 2}", fids)])
            tokens.extend(Rearmer.apply(rearmer, delta).tokens)
            stream.commit(delta)
        soc.stop()
        assert len(tokens) == len(set(tokens)) == 4
