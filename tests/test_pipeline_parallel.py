"""Tests for the parallel pipeline engine: wave planning, thread
safety of the shared context, and serial/parallel equivalence."""

import threading
import time

import pytest

from repro.core.gates import VerificationGate
from repro.core.pipeline import (
    ConcurrentWriteError,
    Job,
    Pipeline,
    PipelineContext,
    Stage,
    plan_waves,
)
from repro.prevention import bundled_verification_tasks


def job(name, fn=None, reads=(), writes=()):
    return Job(name, fn or (lambda context: ""), reads=reads, writes=writes)


class TestWavePlanning:
    def test_disjoint_jobs_share_a_wave(self):
        waves = plan_waves([
            job("a", writes=("x",)),
            job("b", writes=("y",)),
            job("c", reads=("z",)),
        ])
        assert [[j.name for j in wave] for wave in waves] == [["a", "b", "c"]]

    def test_write_write_conflict_splits(self):
        waves = plan_waves([
            job("a", writes=("x",)),
            job("b", writes=("x",)),
        ])
        assert [[j.name for j in wave] for wave in waves] == [["a"], ["b"]]

    def test_read_after_write_splits(self):
        waves = plan_waves([
            job("w", writes=("x",)),
            job("r", reads=("x",)),
        ])
        assert [[j.name for j in wave] for wave in waves] == [["w"], ["r"]]

    def test_write_after_read_splits(self):
        waves = plan_waves([
            job("r", reads=("x",)),
            job("w", writes=("x",)),
        ])
        assert [[j.name for j in wave] for wave in waves] == [["r"], ["w"]]

    def test_undeclared_job_is_a_barrier(self):
        waves = plan_waves([
            job("a", writes=("x",)),
            job("legacy"),
            job("b", writes=("y",)),
        ])
        assert [[j.name for j in wave] for wave in waves] == \
            [["a"], ["legacy"], ["b"]]

    def test_declaration_order_is_preserved_across_waves(self):
        waves = plan_waves([
            job("a", writes=("x",)),
            job("b", reads=("x",)),
            job("c", reads=("x",)),
        ])
        assert [[j.name for j in wave] for wave in waves] == \
            [["a"], ["b", "c"]]


class TestConcurrentWrites:
    def test_same_key_writers_in_one_wave_are_rejected(self):
        # Both jobs *claim* disjoint writes, then write the same key:
        # the guard must stop the run with a clear error, never
        # silently interleave.
        barrier = threading.Barrier(2, timeout=5)

        def write_shared(context):
            barrier.wait()
            context.put("shared", threading.get_ident())
            return ""

        pipeline = Pipeline([Stage("s", jobs=[
            job("liar-one", write_shared, writes=("a",)),
            job("liar-two", write_shared, writes=("b",)),
        ])])
        with pytest.raises(ConcurrentWriteError) as excinfo:
            pipeline.run(max_workers=2)
        message = str(excinfo.value)
        assert "shared" in message
        assert "liar" in message

    def test_declared_conflicting_writers_are_serialized(self):
        order = []

        def writer(tag):
            def run(context):
                order.append(tag)
                context.put("key", tag)
                return ""
            return run

        pipeline = Pipeline([Stage("s", jobs=[
            job("first", writer("first"), writes=("key",)),
            job("second", writer("second"), writes=("key",)),
        ])])
        run = pipeline.run(max_workers=4)
        assert run.passed
        assert order == ["first", "second"]
        assert run.context.get("key") == "second"

    def test_context_puts_are_thread_safe(self):
        context = PipelineContext()

        def hammer(index):
            for i in range(200):
                context.put(f"key-{index}-{i}", i)

        threads = [threading.Thread(target=hammer, args=(n,))
                   for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(context.keys()) == 4 * 200


class TestParallelExecution:
    def test_independent_jobs_overlap(self):
        # Four latency-bound jobs (external tool calls) on 4 workers
        # must take ~1 sleep, not 4.
        delay = 0.05

        def slow(key):
            def run(context):
                time.sleep(delay)
                context.put(key, True)
                return ""
            return run

        jobs = [job(f"j{i}", slow(f"k{i}"), writes=(f"k{i}",))
                for i in range(4)]
        pipeline = Pipeline([Stage("s", jobs=jobs)])
        started = time.perf_counter()
        run = pipeline.run(max_workers=4)
        elapsed = time.perf_counter() - started
        assert run.passed
        assert elapsed < 4 * delay
        assert all(run.context.get(f"k{i}") for i in range(4))

    def test_serial_and_parallel_runs_agree(self):
        def make_pipeline():
            return Pipeline([
                Stage("s", jobs=[
                    job("a", lambda c: c.put("a", 1) or "", writes=("a",)),
                    job("b", lambda c: c.put("b", 2) or "", writes=("b",)),
                ]),
            ])

        serial = make_pipeline().run()
        parallel = make_pipeline().run(max_workers=4)
        assert serial.passed and parallel.passed
        assert serial.context.keys() == parallel.context.keys()
        names = [r.name for r in serial.stage_results[0].job_results]
        assert names == \
            [r.name for r in parallel.stage_results[0].job_results]

    def test_failing_wave_stops_the_pipeline(self):
        def boom(context):
            raise RuntimeError("job exploded")

        pipeline = Pipeline([
            Stage("first", jobs=[
                job("ok", writes=("x",)),
                job("bad", boom, writes=("y",)),
            ]),
            Stage("second", jobs=[job("never", writes=("z",))]),
        ])
        run = pipeline.run(max_workers=2)
        assert not run.passed
        assert run.failed_stage == "first"
        assert len(run.stage_results) == 1
        details = {r.name: r.detail
                   for r in run.stage_results[0].job_results}
        assert "job exploded" in details["bad"]


class TestParallelVerificationGate:
    def test_parallel_and_serial_verdicts_match(self):
        tasks = bundled_verification_tasks()
        serial = PipelineContext(verification_tasks=tasks)
        serial_outcome = VerificationGate().evaluate(serial)
        parallel = PipelineContext(verification_tasks=tasks)
        parallel_outcome = VerificationGate(
            max_workers=4).evaluate(parallel)
        assert serial_outcome.passed == parallel_outcome.passed

        def summary(context):
            return [(label, result.satisfied, result.states_explored,
                     result.query)
                    for label, result
                    in context.require("verification_results")]

        assert summary(serial) == summary(parallel)
