"""Unit tests for the simulated auditpol tool and policy store."""

import pytest

from repro.environment.auditpol import (
    AuditPolicyStore,
    AuditSetting,
    SimulatedAuditPol,
)
from repro.environment.errors import CommandError, UnknownSubcategoryError
from repro.environment.events import EventLog


class TestAuditSetting:
    @pytest.mark.parametrize("success,failure,expected", [
        (False, False, "No Auditing"),
        (True, False, "Success"),
        (False, True, "Failure"),
        (True, True, "Success and Failure"),
    ])
    def test_render(self, success, failure, expected):
        assert AuditSetting(success, failure).render() == expected

    @pytest.mark.parametrize("text", [
        "No Auditing", "Success", "Failure", "Success and Failure",
        "  success and failure  ",
    ])
    def test_parse_round_trip(self, text):
        setting = AuditSetting.parse(text)
        reparsed = AuditSetting.parse(setting.render())
        assert reparsed == setting

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            AuditSetting.parse("Sometimes")


class TestAuditPolicyStore:
    def test_defaults_to_no_auditing(self):
        store = AuditPolicyStore()
        assert store.get("Logon").render() == "No Auditing"

    def test_set_and_get(self):
        store = AuditPolicyStore()
        store.set("Logon", success=True)
        assert store.get("Logon").render() == "Success"
        store.set("Logon", failure=True)
        assert store.get("Logon").render() == "Success and Failure"

    def test_set_none_leaves_flag(self):
        store = AuditPolicyStore()
        store.set("Logon", success=True, failure=True)
        store.set("Logon", failure=False)
        assert store.get("Logon").render() == "Success"

    def test_unknown_subcategory_raises(self):
        store = AuditPolicyStore()
        with pytest.raises(UnknownSubcategoryError):
            store.get("Totally Made Up")

    def test_category_of(self):
        store = AuditPolicyStore()
        assert store.category_of("Logon") == "Logon/Logoff"
        assert store.category_of("User Account Management") == \
            "Account Management"

    def test_snapshot_covers_all_subcategories(self):
        store = AuditPolicyStore()
        snapshot = store.snapshot()
        assert "Logon" in snapshot
        assert "Sensitive Privilege Use" in snapshot
        assert all(value == "No Auditing" for value in snapshot.values())


class TestSimulatedAuditPol:
    def test_get_subcategory_output_format(self):
        tool = SimulatedAuditPol()
        tool.store.set("Logon", success=True, failure=True)
        output = tool.run('/get /subcategory:"Logon"')
        assert output.splitlines()[0] == "System audit policy"
        assert "Logon/Logoff" in output
        assert "Success and Failure" in output

    def test_set_then_get_round_trip(self):
        tool = SimulatedAuditPol()
        result = tool.run(
            '/set /subcategory:"Logon" /success:enable /failure:enable')
        assert "successfully" in result
        output = tool.run('/get /subcategory:"Logon"')
        assert "Success and Failure" in output

    def test_get_category_lists_all_subcategories(self):
        tool = SimulatedAuditPol()
        output = tool.run('/get /category:"Privilege Use"')
        assert "Sensitive Privilege Use" in output
        assert "Non Sensitive Privilege Use" in output

    def test_get_star_lists_everything(self):
        tool = SimulatedAuditPol()
        output = tool.run("/get /category:*")
        assert "Account Management" in output
        assert "System" in output

    def test_accepts_argv_list_and_tool_name(self):
        tool = SimulatedAuditPol()
        output = tool.run(["auditpol", "/get", '/subcategory:"Logon"'])
        assert "Logon" in output

    def test_set_disable(self):
        tool = SimulatedAuditPol()
        tool.run('/set /subcategory:"Logon" /success:enable')
        tool.run('/set /subcategory:"Logon" /success:disable')
        assert tool.store.get("Logon").render() == "No Auditing"

    def test_missing_verb_raises(self):
        tool = SimulatedAuditPol()
        with pytest.raises(CommandError):
            tool.run("")

    def test_bad_verb_raises(self):
        tool = SimulatedAuditPol()
        with pytest.raises(CommandError):
            tool.run("/delete /subcategory:Logon")

    def test_get_without_target_raises(self):
        tool = SimulatedAuditPol()
        with pytest.raises(CommandError):
            tool.run("/get")

    def test_set_without_flags_raises(self):
        tool = SimulatedAuditPol()
        with pytest.raises(CommandError):
            tool.run('/set /subcategory:"Logon"')

    def test_set_bad_flag_value_raises(self):
        tool = SimulatedAuditPol()
        with pytest.raises(CommandError):
            tool.run('/set /subcategory:"Logon" /success:maybe')

    def test_unknown_subcategory_raises(self):
        tool = SimulatedAuditPol()
        with pytest.raises(UnknownSubcategoryError):
            tool.run('/get /subcategory:"Nonexistent"')

    def test_set_emits_event(self):
        log = EventLog()
        tool = SimulatedAuditPol(event_log=log)
        tool.run('/set /subcategory:"Logon" /success:enable')
        event = log.last("audit.policy_changed")
        assert event is not None
        assert event.payload["subcategory"] == "Logon"
        assert event.payload["before"] == "No Auditing"
        assert event.payload["after"] == "Success"
