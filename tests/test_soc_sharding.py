"""Unit tests for consistent hashing of hosts onto shards."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soc.sharding import HashRing, stable_hash


class TestStableHash:
    def test_process_independent(self):
        # blake2b is keyless and unsalted: the value is a constant of
        # the key, which is what run-to-run determinism hangs on.
        assert stable_hash("host-00") == stable_hash("host-00")
        assert stable_hash("host-00") != stable_hash("host-01")


class TestHashRing:
    def test_same_key_same_shard_across_instances(self):
        first = HashRing(4)
        second = HashRing(4)
        for index in range(50):
            key = f"host-{index:02d}"
            assert first.shard_for(key) == second.shard_for(key)

    def test_shards_in_range(self):
        ring = HashRing(4)
        keys = [f"host-{i}" for i in range(100)]
        assert set(ring.assignment(keys).values()) <= {0, 1, 2, 3}

    def test_single_shard_takes_everything(self):
        ring = HashRing(1)
        assert ring.load(f"h{i}" for i in range(10)) == {0: 10}

    def test_load_is_reasonably_balanced(self):
        ring = HashRing(4, replicas=128)
        load = ring.load(f"host-{i:03d}" for i in range(400))
        assert sum(load.values()) == 400
        # Consistent hashing is not perfectly uniform, but no shard
        # should be starved or take the majority at 100 keys/shard.
        assert min(load.values()) >= 30
        assert max(load.values()) <= 200

    def test_growing_the_ring_moves_few_keys(self):
        keys = [f"host-{i:03d}" for i in range(200)]
        before = HashRing(4).assignment(keys)
        after = HashRing(5).assignment(keys)
        moved = sum(1 for key in keys if before[key] != after[key])
        # Naive modulo hashing would move ~80% of keys; consistent
        # hashing moves roughly 1/5th.  Allow generous slack.
        assert moved <= len(keys) // 2

    def test_invalid_parameters(self):
        import pytest

        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, replicas=0)


#: Host-name-shaped keys: arbitrary text, deduplicated.
_KEYS = st.lists(
    st.text(alphabet=st.characters(codec="utf-8",
                                   blacklist_categories=("Cs",)),
            min_size=1, max_size=32),
    min_size=1, max_size=80, unique=True)


class TestPlacementProperties:
    """Property tests for the two guarantees the SOC leans on:
    placement is a pure function of (key, ring config), and growing
    the ring relocates only a small fraction of keys — all of them
    onto the new shard."""

    @given(keys=_KEYS, shards=st.integers(min_value=1, max_value=9))
    @settings(max_examples=60, deadline=None)
    def test_placement_is_deterministic_across_instances(self, keys,
                                                         shards):
        first = HashRing(shards).assignment(keys)
        second = HashRing(shards).assignment(sorted(keys, reverse=True))
        assert first == second
        assert set(first.values()) <= set(range(shards))

    @given(keys=_KEYS, shards=st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_growing_the_ring_moves_keys_only_onto_the_new_shard(
            self, keys, shards):
        before = HashRing(shards).assignment(keys)
        after = HashRing(shards + 1).assignment(keys)
        moved = [key for key in keys if before[key] != after[key]]
        # The defining consistent-hashing property: a key either keeps
        # its shard or is captured by the ring's newest member — keys
        # never shuffle between pre-existing shards.
        assert all(after[key] == shards for key in moved)

    def test_relocation_fraction_is_bounded(self):
        # Expected relocation when going N -> N+1 is ~1/(N+1); with
        # 2000 keys allow 2x slack for hash-placement variance.
        keys = [f"host-{index:04d}" for index in range(2000)]
        for shards in (2, 4, 8):
            before = HashRing(shards).assignment(keys)
            after = HashRing(shards + 1).assignment(keys)
            moved = sum(1 for key in keys if before[key] != after[key])
            assert moved <= 2 * len(keys) / (shards + 1), (
                f"{moved} of {len(keys)} keys moved going "
                f"{shards} -> {shards + 1} shards")
            assert moved > 0    # the new shard took *something*
