"""Unit tests for TIGER-style concretization (rules, generator, scripts)."""

import pytest

from repro.gwt import (
    MappingRule,
    ScriptCreator,
    Signal,
    read_signals_xml,
)
from repro.gwt import TestGenerator as TigerGenerator
from repro.gwt.generator import ConcreteTest, read_datamodels_json
from repro.gwt.model import AbstractStep, DataModel

SIGNALS_XML = """
<signals>
  <signal name="attempts" kind="input" type="int" min="0" max="10"/>
  <signal name="locked" kind="output" type="bool" unit=""/>
</signals>
"""


class TestXmlReader:
    def test_parses_signals(self):
        signals = read_signals_xml(SIGNALS_XML)
        assert [s.name for s in signals] == ["attempts", "locked"]
        assert signals[0].maximum == 10
        assert signals[1].kind == "output"

    def test_defaults(self):
        signals = read_signals_xml('<signals><signal name="x"/></signals>')
        assert signals[0].data_type == "float"
        assert signals[0].kind == "input"


class TestJsonReading:
    def test_list_payload(self):
        cases = read_datamodels_json(
            '[{"id": 1, "name": "t", "steps": [{"action": "a"}]}]')
        assert cases[0].test_id == "1"

    def test_wrapped_payload(self):
        cases = read_datamodels_json('{"tests": [{"id": "x", "steps": []}]}')
        assert cases[0].test_id == "x"


class TestMappingRule:
    def test_binding_placeholder(self):
        rule = MappingRule("fail_n_times",
                           ["for _ in range(int({param1})): fail()"])
        lines = rule.render({"param1": 3.0}, {})
        assert lines == ["for _ in range(int(3)): fail()"]

    def test_signal_placeholder(self):
        rule = MappingRule("probe", ["read('{signal:attempts}')"])
        signals = {"attempts": Signal("attempts")}
        assert rule.render({}, signals) == ["read('attempts')"]

    def test_unbound_placeholder_raises(self):
        rule = MappingRule("a", ["use {missing}"])
        with pytest.raises(KeyError):
            rule.render({}, {})

    def test_unknown_signal_raises(self):
        rule = MappingRule("a", ["use {signal:ghost}"])
        with pytest.raises(KeyError):
            rule.render({}, {})

    def test_unclosed_placeholder_raises(self):
        rule = MappingRule("a", ["use {oops"])
        with pytest.raises(ValueError):
            rule.render({}, {})


class TestTigerGenerator:
    def _generator(self):
        rules = [
            MappingRule("login", ["system.login()"]),
            MappingRule("fail", ["system.fail({param1})"]),
        ]
        return TigerGenerator(rules, read_signals_xml(SIGNALS_XML))

    def test_concretize(self):
        generator = self._generator()
        case = DataModel("t1", "demo", [
            AbstractStep("login"),
            AbstractStep("fail", {"param1": 2.0}),
        ])
        concrete = generator.concretize(case)
        assert concrete.lines == ["system.login()", "system.fail(2)"]

    def test_unmapped_action_raises(self):
        generator = self._generator()
        case = DataModel("t1", "demo", [AbstractStep("ghost")])
        with pytest.raises(KeyError):
            generator.concretize(case)

    def test_duplicate_rules_rejected(self):
        with pytest.raises(ValueError):
            TigerGenerator([MappingRule("a", []), MappingRule("a", [])])

    def test_concretize_all(self):
        generator = self._generator()
        cases = [DataModel("t1", "x", [AbstractStep("login")]),
                 DataModel("t2", "y", [AbstractStep("login")])]
        assert len(generator.concretize_all(cases)) == 2


class TestScriptCreator:
    def test_default_pytest_script(self):
        creator = ScriptCreator()
        script = creator.render([
            ConcreteTest("case-1", "demo", ["system.login()",
                                            "assert system.ok"]),
        ])
        assert "import pytest" in script
        assert "def test_case_1(system):" in script
        assert "    system.login()" in script
        compile(script, "<generated>", "exec")  # must be valid Python

    def test_empty_test_gets_pass(self):
        script = ScriptCreator().render([ConcreteTest("e", "empty", [])])
        assert "    pass" in script

    def test_customised_creator(self):
        class ShellCreator(ScriptCreator):
            def header(self):
                return ["#!/bin/sh"]

            def render_test(self, test):
                return [f"# {test.test_id}"] + test.lines

        script = ShellCreator().render(
            [ConcreteTest("t", "x", ["echo hello"])])
        assert script.splitlines()[0] == "#!/bin/sh"
        assert "echo hello" in script
