"""Property suite for the tiered CAS verification cache.

The load-bearing contract: for any sequence of lookup/store/save/
reopen operations, the tiered store (memory LRU -> local buckets ->
optional shared remote) is *observably identical* to the flat-era
single-file JSON cache — byte-identical verdicts on every lookup and
identical hit/miss/invalidation/store accounting — because the first
tier that knows a label decides the outcome with flat semantics.
Hypothesis drives arbitrary label/fingerprint/verdict sequences
against a reference model implementing the flat cache's exact
behavior (including its persistence quirks: unsaved stores are lost
on reopen, unsaved invalidations resurrect).

Eviction has its own guarantee: compaction never drops below the size
bound's reachability promise — after any eviction pass the bound's
worth of most-recently-used entries still hit.
"""

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.prevention import VerificationCache, bucket_prefix
from repro.prevention.cas.store import BucketStore

LABELS = ["alpha", "beta", "gamma", "delta", "epsilon"]
FINGERPRINTS = ["fp-one", "fp-two", "fp-three"]


class FlatReferenceCache:
    """The flat-era cache's exact observable semantics, as a model.

    Mirrors the single-JSON-file implementation this repo shipped
    before the CAS promotion: one entry per label, invalidation on a
    moved fingerprint, persistence only on save, per-lifetime stats.
    """

    def __init__(self, persisted=None):
        self.entries = dict(persisted or {})
        self.persisted = dict(persisted or {})
        self.stats = {"hits": 0, "misses": 0, "invalidations": 0,
                      "stores": 0}

    def lookup(self, label, fp):
        entry = self.entries.get(label)
        if entry is None:
            self.stats["misses"] += 1
            return None
        if entry["fingerprint"] != fp:
            del self.entries[label]
            self.stats["invalidations"] += 1
            self.stats["misses"] += 1
            return None
        self.stats["hits"] += 1
        return entry["verdict"]

    def store(self, label, fp, verdict):
        self.entries[label] = {"fingerprint": fp, "verdict": verdict}
        self.stats["stores"] += 1

    def save(self):
        self.persisted = {label: dict(entry)
                          for label, entry in self.entries.items()}

    def reopen(self):
        return FlatReferenceCache(self.persisted)


def verdict_for(label, fp, salt):
    """A deterministic, structured verdict payload."""
    return {"satisfied": salt % 2 == 0, "query": f"E<> {label}.{fp}",
            "states_explored": salt, "witness": [label, fp]}


operations = st.lists(
    st.one_of(
        st.tuples(st.just("lookup"), st.sampled_from(LABELS),
                  st.sampled_from(FINGERPRINTS)),
        st.tuples(st.just("store"), st.sampled_from(LABELS),
                  st.sampled_from(FINGERPRINTS),
                  st.integers(min_value=0, max_value=99)),
        st.tuples(st.just("save")),
        st.tuples(st.just("reopen")),
    ),
    min_size=1, max_size=40,
)


def run_equivalence(ops, tmp_path, shared):
    """Drive both implementations through *ops*, comparing at each
    observable point."""
    kwargs = {"shared": tmp_path / "remote"} if shared else {}
    tiered = VerificationCache(tmp_path / "local", **kwargs)
    flat = FlatReferenceCache()
    for op in ops:
        if op[0] == "lookup":
            _, label, fp = op
            got = tiered.lookup(label, fp)
            want = flat.lookup(label, fp)
            assert (got is None) == (want is None), (op, got, want)
            if got is not None:
                assert json.dumps(got, sort_keys=True) == \
                    json.dumps(want, sort_keys=True), op
        elif op[0] == "store":
            _, label, fp, salt = op
            verdict = verdict_for(label, fp, salt)
            tiered.store(label, fp, verdict)
            flat.store(label, fp, verdict)
        elif op[0] == "save":
            tiered.save()
            flat.save()
        else:  # reopen: unsaved state is lost in both worlds
            tiered = VerificationCache(tmp_path / "local", **kwargs)
            flat = flat.reopen()
        stats = tiered.stats_dict()
        for key, value in flat.stats.items():
            assert stats[key] == value, \
                (op, key, stats[key], flat.stats)
    # Final reachability agrees too (reopen to drop unsaved state).
    tiered.save()
    flat.save()
    assert set(VerificationCache(tmp_path / "local", **kwargs).labels()) \
        == set(flat.reopen().entries)


class TestFlatEquivalence:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(ops=operations)
    def test_local_tier_stack_matches_flat_cache(self, ops, tmp_path):
        run = len(list(tmp_path.iterdir())) if tmp_path.exists() else 0
        root = tmp_path / f"case-{run}-{abs(hash(tuple(ops))) % 10 ** 8}"
        root.mkdir(parents=True)
        run_equivalence(ops, root, shared=False)

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(ops=operations)
    def test_shared_tier_stack_matches_flat_cache(self, ops, tmp_path):
        run = len(list(tmp_path.iterdir())) if tmp_path.exists() else 0
        root = tmp_path / f"case-{run}-{abs(hash(tuple(ops))) % 10 ** 8}"
        root.mkdir(parents=True)
        run_equivalence(ops, root, shared=True)


class TestSharding:
    def test_bucket_prefix_is_stable_and_bounded(self):
        for label in LABELS:
            prefix = bucket_prefix(label)
            assert prefix == bucket_prefix(label)
            assert len(prefix) == 2
            assert all(c in "0123456789abcdef" for c in prefix)

    def test_entries_shard_across_bucket_files(self, tmp_path):
        store = BucketStore(tmp_path)
        entries = {f"label-{i}": {"fingerprint": f"fp{i}",
                                  "verdict": {"i": i}, "stored_at": 0,
                                  "writer_id": "t"}
                   for i in range(64)}
        store.put_many(entries)
        files = list((tmp_path / "buckets").glob("*.json"))
        assert len(files) > 1              # sharded, not one global file
        assert len(store) == 64
        for label in entries:
            assert store.get(label)["verdict"] == entries[label]["verdict"]


class TestEvictionReachability:
    def test_compaction_never_drops_below_the_bound(self, tmp_path):
        """After eviction, the `max_entries` most recently used labels
        are all still reachable, and the store fits the bound."""
        bound = 8
        store = BucketStore(tmp_path, max_entries=bound)
        for index in range(30):
            store.put_many({f"label-{index}": {
                "fingerprint": f"fp{index}", "verdict": {"i": index},
                "stored_at": index + 1, "writer_id": "t"}})
        evicted = store.compact()
        assert evicted == 30 - bound
        assert len(store) == bound
        survivors = {f"label-{index}" for index in range(30 - bound, 30)}
        assert set(store.labels()) == survivors

    def test_recency_outranks_store_order(self, tmp_path):
        """An old entry the process kept hitting survives compaction
        ahead of never-read newer ones."""
        bound = 4
        store = BucketStore(tmp_path, max_entries=bound)
        for index in range(10):
            store.put_many({f"label-{index}": {
                "fingerprint": f"fp{index}", "verdict": {"i": index},
                "stored_at": index + 1, "writer_id": "t"}})
        store.compact(recency={"label-0": 10 ** 9})
        assert "label-0" in store.labels()
        assert len(store) == bound

    def test_memory_lru_eviction_falls_through_to_local(self, tmp_path):
        """A memory-tier eviction is invisible: the local tier still
        answers, so the hit accounting only moves between tiers."""
        cache = VerificationCache(tmp_path, memory_entries=2)
        for index in range(6):
            cache.store(f"label-{index}", f"fp{index}", {"i": index})
        cache.save()
        for index in range(6):
            got = cache.lookup(f"label-{index}", f"fp{index}")
            assert got == {"i": index}
        stats = cache.stats_dict()
        assert stats["hits"] == 6
        assert stats["misses"] == 0
        assert stats["local_hits"] >= 4    # evicted from memory, not lost


class TestProvenance:
    def test_hits_carry_tier_writer_and_stamp(self, tmp_path):
        writer = VerificationCache(tmp_path / "a", shared=tmp_path / "s",
                                   writer_id="ci-writer-1")
        writer.store("lab", "fp", {"satisfied": True})
        writer.save()
        reader = VerificationCache(tmp_path / "b", shared=tmp_path / "s",
                                   writer_id="ci-reader-2")
        assert reader.lookup("lab", "fp") == {"satisfied": True}
        provenance = reader.provenance_dict()
        assert provenance["tier_hits"]["remote"] == 1
        assert provenance["last_hit"]["tier"] == "remote"
        assert provenance["last_hit"]["writer_id"] == "ci-writer-1"
        assert provenance["last_hit"]["stored_at"] >= 1
        # Second lookup answers from memory; provenance follows.
        reader.lookup("lab", "fp")
        assert reader.provenance_dict()["last_hit"]["tier"] == "memory"

    def test_remote_hit_writes_back_to_local_tier(self, tmp_path):
        writer = VerificationCache(tmp_path / "a", shared=tmp_path / "s")
        writer.store("lab", "fp", {"satisfied": True})
        writer.save()
        reader = VerificationCache(tmp_path / "b", shared=tmp_path / "s")
        reader.lookup("lab", "fp")
        reader.save()
        # A later lifetime without the remote still hits locally.
        local_only = VerificationCache(tmp_path / "b")
        assert local_only.lookup("lab", "fp") == {"satisfied": True}
        assert local_only.stats_dict()["local_hits"] == 1
