"""The binary event plane: codec round-trips, rings, and the
thread/process equivalence suite.

The equivalence contract is the whole point of the process backend:
for identical scenarios, both backends must produce identical incident
sets and identical final monitor verdicts.  The suite runs the same
seeded drift storm through each backend and compares the full
surfaces; chaos variants additionally exercise crash/restart and
quarantine carryover across worker processes.
"""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fleet import Fleet
from repro.environment import (
    hardened_ubuntu_host,
    hardened_windows_host,
)
from repro.ltl.compile import formula_text, obligation_id, parse_formula_text
from repro.ltl.parser import parse_ltl
from repro.rqcode import default_catalog
from repro.soc.procplane.codec import (
    EventCodec,
    MergeCodec,
    REASONS,
    Tag,
    slot_size,
)
from repro.soc.procplane.rings import RingFull, SpscRing
from repro.soc.service import SocService, resolve_backend


# -- formula text as the wire format ------------------------------------------


class TestFormulaWire:
    def test_parse_of_text_is_the_interned_formula(self):
        formula = parse_ltl("G (drift -> F repaired)")
        assert parse_formula_text(formula_text(formula)) is formula

    def test_obligation_id_is_stable_across_equivalent_spellings(self):
        left = parse_ltl("G (a -> F b)")
        right = parse_ltl("G ((a) -> (F (b)))")
        assert left is right
        assert obligation_id(left) == obligation_id(right)

    def test_distinct_formulas_get_distinct_ids(self):
        assert obligation_id(parse_ltl("G !a")) \
            != obligation_id(parse_ltl("G !b"))


# -- codec round-trips --------------------------------------------------------


ATOM_POOL = [f"atom.{index}" for index in range(70)]   # spans >1 word


@st.composite
def vocab_and_step(draw):
    vocab = draw(st.lists(st.sampled_from(ATOM_POOL), min_size=1,
                          max_size=70, unique=True))
    step = draw(st.lists(st.sampled_from(ATOM_POOL + ["other.kind"]),
                         max_size=8, unique=True))
    return sorted(vocab), frozenset(step)


class TestEventCodec:
    @given(vocab_and_step())
    @settings(max_examples=200, deadline=None)
    def test_project_unproject_is_vocabulary_intersection(self, case):
        vocab, step = case
        codec = EventCodec(vocab)
        bits = codec.project(step)
        assert codec.unproject(bits) == step & set(vocab)

    @given(vocab_and_step(), st.integers(0, 2 ** 32 - 1),
           st.integers(0, 2 ** 32 - 1), st.integers(0, 2 ** 60))
    @settings(max_examples=200, deadline=None)
    def test_event_record_round_trip(self, case, host_id, kind_id, time):
        vocab, step = case
        codec = EventCodec(vocab)
        buffer = bytearray(codec.slot)
        codec.pack_event(buffer, 0, host_id, kind_id, time,
                         codec.project(step))
        got_host, got_kind, got_time, got_bits = codec.unpack_event(
            buffer, 0)
        assert (got_host, got_kind, got_time) == (host_id, kind_id, time)
        assert codec.unproject(got_bits) == step & set(vocab)

    def test_slot_covers_every_record(self):
        # The fixed slot must hold the largest record of either plane.
        assert slot_size(1) >= 22                 # VERDICT: 6 + digest
        assert slot_size(2) >= 17 + 16            # EVENT with 2 words
        assert slot_size(1) % 8 == 0

    def test_duplicate_atoms_rejected(self):
        with pytest.raises(ValueError):
            EventCodec(["a", "a"])


class TestMergeCodec:
    def setup_method(self):
        self.buffer = bytearray(slot_size(2))

    def test_detection_round_trip(self):
        MergeCodec.pack_detection(self.buffer, 0, 7, 11, 3, 99)
        assert self.buffer[0] == Tag.DETECTION
        assert MergeCodec.unpack_detection(self.buffer, 0) == (7, 11, 3, 99)

    def test_progress_round_trip(self):
        MergeCodec.pack_progress(self.buffer, 0, 10, 20, 3, 1)
        assert MergeCodec.unpack_progress(self.buffer, 0) == (10, 20, 3, 1)

    def test_strike_round_trip_both_tags(self):
        for tag in (Tag.STRIKE, Tag.DEAD_LETTER):
            MergeCodec.pack_strike(self.buffer, 0, tag, 5, 2, 3, 42, 1)
            assert self.buffer[0] == tag
            assert MergeCodec.unpack_strike(self.buffer, 0) \
                == (5, 2, 3, 42, 1)

    def test_verdict_round_trip(self):
        digest = obligation_id(parse_ltl("G !drift"))
        MergeCodec.pack_verdict(self.buffer, 0, 9, "INCONCLUSIVE", digest)
        assert MergeCodec.unpack_verdict(self.buffer, 0) \
            == (9, "INCONCLUSIVE", digest)

    def test_flush_round_trip(self):
        MergeCodec.pack_flush(self.buffer, 0, 17)
        assert self.buffer[0] == Tag.FLUSH
        assert MergeCodec.unpack_flushed(self.buffer, 0) == 17
        MergeCodec.pack_flushed(self.buffer, 0, 18)
        assert self.buffer[0] == Tag.FLUSHED
        assert MergeCodec.unpack_flushed(self.buffer, 0) == 18

    def test_reason_codes_are_total(self):
        assert len(set(REASONS)) == len(REASONS)

    def test_rearm_chunk_round_trip(self):
        payload = b'{"adds": [["web-00", "R-1/drift"]]}'
        MergeCodec.pack_rearm_chunk(self.buffer, 0, 3, 1, 4, payload)
        assert self.buffer[0] == Tag.REARM
        assert MergeCodec.unpack_rearm_chunk(self.buffer, 0) \
            == (3, 1, 4, payload)

    def test_rearm_payload_capacity_fills_the_slot(self):
        slot = slot_size(2)
        capacity = MergeCodec.rearm_payload_capacity(slot)
        assert 0 < capacity < slot
        payload = b"x" * capacity
        buffer = bytearray(slot)
        MergeCodec.pack_rearm_chunk(buffer, 0, 1, 0, 1, payload)
        assert MergeCodec.unpack_rearm_chunk(buffer, 0)[3] == payload

    def test_rearmed_round_trip(self):
        MergeCodec.pack_rearmed(self.buffer, 0, 42)
        assert self.buffer[0] == Tag.REARMED
        assert MergeCodec.unpack_rearmed(self.buffer, 0) == 42


class TestVocabularyGrowth:
    def test_reserve_provisions_spare_bit_capacity(self):
        codec = EventCodec(["a", "b"], reserve=70)
        assert codec.capacity >= 70
        assert codec.words == (70 + 63) // 64

    def test_extend_preserves_existing_bits(self):
        codec = EventCodec(["a", "b"], reserve=8)
        before = codec.project(frozenset(["a", "b"]))
        appended = codec.extend(["c", "a"])     # "a" already known
        assert appended == ["c"]
        assert codec.project(frozenset(["a", "b"])) == before
        bits = codec.project(frozenset(["a", "c"]))
        assert codec.unproject(bits) == {"a", "c"}

    def test_extend_past_capacity_raises(self):
        # Capacity is whole bit words: 64 atoms fill one word exactly.
        codec = EventCodec([f"atom.{index}" for index in range(64)])
        assert codec.capacity == 64
        with pytest.raises(ValueError):
            codec.extend(["atom.overflow"])


# -- rings --------------------------------------------------------------------


class TestSpscRing:
    def _ring(self, capacity=4, slot=32):
        ring = SpscRing(capacity, slot, create=True)
        ring.sync_consumer()
        return ring

    def test_fifo_order_and_depth(self):
        ring = self._ring()
        try:
            for value in range(3):
                offset = ring.reserve()
                ring.buf[offset] = value + 1
                ring.publish()
            assert ring.depth == 3
            seen = []
            while ring.poll():
                seen.append(ring.buf[ring.peek_offset()])
                ring.advance()
            assert seen == [1, 2, 3]
            assert ring.depth == 0
        finally:
            ring.destroy()

    def test_full_ring_raises_and_frees_after_advance(self):
        ring = self._ring(capacity=2)
        try:
            ring.reserve(); ring.publish()
            ring.reserve(); ring.publish()
            with pytest.raises(RingFull):
                ring.reserve()
            ring.poll()
            ring.advance()
            ring.reserve()          # slot freed
        finally:
            ring.destroy()

    def test_attach_by_name_sees_published_records(self):
        ring = self._ring()
        try:
            offset = ring.reserve()
            ring.buf[offset] = 0xAB
            ring.publish()
            other = SpscRing(ring.capacity, ring.slot, name=ring.name)
            other.sync_consumer()
            assert other.poll() == 1
            assert other.buf[other.peek_offset()] == 0xAB
            other.advance()
            other.detach()
            assert ring.depth == 0   # head advance visible to creator
        finally:
            ring.destroy()

    def test_wraparound_past_capacity(self):
        ring = self._ring(capacity=3)
        try:
            for value in range(10):
                offset = ring.reserve()
                ring.buf[offset] = value % 251
                ring.publish()
                ring.poll()
                assert ring.buf[ring.peek_offset()] == value % 251
                ring.advance()
        finally:
            ring.destroy()

    def test_closed_flag(self):
        ring = self._ring()
        try:
            assert not ring.closed
            ring.close_producer()
            assert ring.closed
        finally:
            ring.destroy()


# -- backend knob -------------------------------------------------------------


class TestBackendKnob:
    def test_default_is_thread(self, monkeypatch):
        monkeypatch.delenv("REPRO_SOC_BACKEND", raising=False)
        assert resolve_backend(None) == "thread"

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOC_BACKEND", "process")
        assert resolve_backend(None) == "process"

    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOC_BACKEND", "process")
        assert resolve_backend("thread") == "thread"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown SOC backend"):
            resolve_backend("fiber")

    def test_process_backend_refuses_drop_oldest(self):
        host = hardened_ubuntu_host("po-host")
        from repro.ltl.monitor import LtlMonitor

        plans = {host.name: ({"R/d": LtlMonitor(parse_ltl("G !drift"))},
                             {"R/d": []})}
        with pytest.raises(ValueError, match="drop-oldest"):
            SocService([host], default_catalog(), plans, shards=1,
                       policy="drop-oldest", backend="process")


# -- thread/process equivalence ----------------------------------------------


DRIFT_PACKAGES = ("nis", "rsh-server", "telnetd")


def build_fleet(ubuntu=3, windows=1):
    fleet = Fleet("procplane-test", default_catalog())
    for index in range(ubuntu):
        fleet.add(hardened_ubuntu_host(f"web-{index:02d}"))
    for index in range(windows):
        fleet.add(hardened_windows_host(f"console-{index:02d}"))
    return fleet


def run_scenario(backend, rounds=2, shards=2, seed=7, chaos_plan=None,
                 noise=2):
    fleet = build_fleet()
    chaos = None
    if chaos_plan is not None:
        from repro.chaos import ChaosController

        chaos = ChaosController(chaos_plan)
    service = fleet.arm_soc(shards=shards, seed=seed, chaos=chaos,
                            backend=backend)
    try:
        for round_index in range(rounds):
            for host in fleet.hosts():
                for _ in range(noise):
                    host.events.emit("app.heartbeat")
                if host.os_family == "windows":
                    host.drift_audit_policy("Logon")
                else:
                    host.drift_install_package(
                        DRIFT_PACKAGES[round_index % len(DRIFT_PACKAGES)])
            service.drain()
    finally:
        service.stop()
    incidents = [
        (incident.detected_at, incident.req_id, incident.trigger_kind,
         incident.violation_time,
         tuple((repair.finding_id, repair.status.value, repair.detail)
               for repair in incident.repairs))
        for incident in service.incidents()
    ]
    posture = fleet.audit().worst_ratio
    return incidents, service.final_verdicts(), posture, service


class TestEquivalence:
    def test_incidents_and_verdicts_match_across_backends(self):
        thread_inc, thread_verdicts, thread_posture, _ = \
            run_scenario("thread")
        proc_inc, proc_verdicts, proc_posture, _ = run_scenario("process")
        assert proc_inc == thread_inc
        assert proc_verdicts == thread_verdicts
        assert thread_posture == proc_posture == 1.0
        assert len(thread_verdicts) > 0

    def test_equivalence_under_chaos_session_errors(self):
        from repro.chaos import FaultPlan

        plan = FaultPlan(seed=5, session_error=0.3, event_duplicate=0.2,
                         max_deliveries=3)
        thread_inc, thread_verdicts, _, thread_service = \
            run_scenario("thread", chaos_plan=plan)
        proc_inc, proc_verdicts, _, proc_service = \
            run_scenario("process", chaos_plan=plan)
        assert proc_inc == thread_inc
        assert proc_verdicts == thread_verdicts
        thread_counters = thread_service.metrics_snapshot()["counters"]
        proc_counters = proc_service.metrics_snapshot()["counters"]
        for key in ("soc.events.ingested",
                    "soc.events.duplicates_suppressed",
                    "soc.events.dead_lettered"):
            assert proc_counters.get(key, 0) \
                == thread_counters.get(key, 0), key

    def test_process_event_accounting_matches_thread(self):
        _, _, _, thread_service = run_scenario("thread", rounds=1)
        _, _, _, proc_service = run_scenario("process", rounds=1)
        thread_counters = thread_service.metrics_snapshot()["counters"]
        proc_counters = proc_service.metrics_snapshot()["counters"]
        assert proc_counters["soc.events.ingested"] \
            == thread_counters["soc.events.ingested"]
        shards_processed = lambda counters: sum(
            value for key, value in counters.items()
            if key.startswith("soc.shard.") and key.endswith(".processed"))
        assert shards_processed(proc_counters) \
            == shards_processed(thread_counters)


# -- process-backend degradation ---------------------------------------------


class TestProcessDegradation:
    def test_worker_crash_loop_quarantines_and_drain_terminates(self):
        from repro.chaos import ChaosController, FaultPlan

        plan = FaultPlan(seed=21, worker_crash=1.0, max_deliveries=2)
        fleet = build_fleet(ubuntu=2, windows=0)
        service = fleet.arm_soc(shards=1, chaos=ChaosController(plan),
                                backend="process")
        try:
            for host in fleet.hosts():
                host.drift_install_package("telnetd")
            service.drain()
        finally:
            service.stop()
        counters = service.metrics_snapshot()["counters"]
        # Every delivery crashes; each event burns its budget (two
        # crash-strikes) then is dead-lettered on redelivery.
        assert counters["soc.worker.crashes"] >= 1
        assert counters["soc.worker.restarts"] >= 1
        assert counters["soc.events.dead_lettered"] \
            == len(service.dead_letters.letters())
        assert counters["soc.events.dead_lettered"] >= 1

    def test_reconcile_repairs_what_crashes_ate(self):
        from repro.chaos import ChaosController, FaultPlan

        plan = FaultPlan(seed=21, worker_crash=1.0, max_deliveries=2)
        fleet = build_fleet(ubuntu=2, windows=0)
        service = fleet.arm_soc(shards=1, chaos=ChaosController(plan),
                                backend="process")
        try:
            for host in fleet.hosts():
                host.drift_install_package("telnetd")
            service.drain()
        finally:
            service.stop()
        service.reconcile()
        assert fleet.audit().worst_ratio == 1.0

    def test_lifecycle_is_idempotent(self):
        fleet = build_fleet(ubuntu=1, windows=0)
        service = fleet.arm_soc(shards=1, backend="process")
        assert service.start() is service
        service.stop()
        service.stop()
        assert not service.running
        host = fleet.hosts()[0]
        assert host.events.subscriber_count == 0
        host.events.emit("drift.package")      # must not raise

    def test_queue_stats_shape_matches_thread_backend(self):
        _, _, _, proc_service = run_scenario("process", rounds=1)
        stats = proc_service.queue_stats()
        assert [sorted(entry) for entry in stats] == [
            ["depth", "dropped", "peak_depth", "rejected", "shard"]
            for _ in stats]
        assert all(entry["depth"] == 0 for entry in stats)
