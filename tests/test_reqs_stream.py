"""Streaming ingestion: incremental lowering, the diff engine, and the
shared backpressure budget."""

import threading
import time

import pytest

from repro.reqs import default_registry
from repro.reqs.ir import Provenance, Requirement
from repro.reqs.registry import RejectedNative
from repro.reqs.stream import (
    BudgetExhausted,
    IngestBudget,
    ReqStream,
    StreamDelta,
)


def rec(rid, text="the system shall do the thing", severity="medium",
        bindings=()):
    return Requirement(
        rid=rid, title=rid, text=text, source="rqcode",
        severity=severity, bindings=tuple(bindings),
        provenance=(Provenance("test", rid, "test record"),))


# -- IngestBudget -------------------------------------------------------------


class TestIngestBudget:
    def test_acquire_release_roundtrip(self):
        budget = IngestBudget(limit=3)
        budget.acquire(2)
        assert budget.in_flight == 2
        budget.release(2)
        assert budget.in_flight == 0
        assert budget.acquired_total == 2

    def test_acquire_blocks_until_release(self):
        budget = IngestBudget(limit=1)
        budget.acquire()
        acquired = threading.Event()

        def consumer():
            budget.acquire(timeout=5.0)
            acquired.set()

        thread = threading.Thread(target=consumer)
        thread.start()
        try:
            assert not acquired.wait(0.05)
            budget.release()
            assert acquired.wait(5.0)
        finally:
            thread.join()
        assert budget.blocked_total == 1

    def test_timeout_raises_budget_exhausted(self):
        budget = IngestBudget(limit=1)
        budget.acquire()
        with pytest.raises(BudgetExhausted):
            budget.acquire(timeout=0.01)

    def test_release_never_overfills(self):
        budget = IngestBudget(limit=2)
        budget.release(10)
        assert budget.in_flight == 0

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            IngestBudget(limit=0)


# -- ReqStream diff engine ----------------------------------------------------


class TestReqStream:
    def test_first_batch_is_all_adds(self):
        stream = ReqStream()
        delta = stream.diff([rec("R-1"), rec("R-2")])
        assert delta.summary() == {"generation": 1, "added": 2,
                                   "changed": 0, "removed": 0,
                                   "unchanged": 0, "rejected": 0}

    def test_diff_does_not_mutate_until_commit(self):
        stream = ReqStream()
        delta = stream.diff([rec("R-1")])
        assert "R-1" not in stream
        assert stream.generation == 0
        stream.commit(delta)
        assert "R-1" in stream
        assert stream.generation == 1

    def test_resent_identical_record_is_unchanged(self):
        stream = ReqStream()
        stream.commit(stream.diff([rec("R-1")]))
        delta = stream.diff([rec("R-1")])
        assert delta.empty
        assert delta.unchanged == 1

    def test_content_change_pairs_old_and_new(self):
        stream = ReqStream()
        old = rec("R-1", text="old text")
        stream.commit(stream.diff([old]))
        new = rec("R-1", text="new text")
        delta = stream.diff([new])
        assert delta.changed == ((old, new),)

    def test_removal_is_idempotent_and_upsert_wins(self):
        stream = ReqStream()
        stream.commit(stream.diff([rec("R-1")]))
        # Unknown rid: ignored.  Rid both upserted and removed in one
        # batch: the upsert wins.
        delta = stream.diff([rec("R-1", text="v2")],
                            remove_rids=["R-1", "R-ghost"])
        assert not delta.removed
        assert len(delta.changed) == 1

    def test_last_mention_wins_within_batch(self):
        stream = ReqStream()
        delta = stream.diff([rec("R-1", text="first"),
                             rec("R-1", text="second")])
        assert len(delta.added) == 1
        assert delta.added[0].text == "second"

    def test_commit_folds_removals(self):
        stream = ReqStream()
        stream.commit(stream.diff([rec("R-1"), rec("R-2")]))
        stream.commit(stream.diff([], remove_rids=["R-1"]))
        assert sorted(r.rid for r in stream.armed()) == ["R-2"]

    def test_rejections_ride_the_delta(self):
        stream = ReqStream()
        marker = RejectedNative(frontend="test", index=3,
                                native="bad", error="boom")
        delta = stream.diff([rec("R-1"), marker])
        assert delta.rejected == (marker,)
        assert "rejected: boom" in marker.render()

    def test_generation_is_monotonic(self):
        stream = ReqStream()
        first = stream.diff([rec("R-1")])
        stream.commit(first)
        second = stream.diff([rec("R-2")])
        assert second.generation == 2
        stream.commit(second)
        # Re-committing an old delta never rolls the generation back.
        stream.commit(first)
        assert stream.generation == 2


# -- incremental lowering (lower_iter) ----------------------------------------


class TestLowerIter:
    def test_yields_incrementally_per_batch(self):
        registry = default_registry()
        seen_at = []

        def feed():
            for index in range(4):
                seen_at.append(("produced", index))
                yield f"The system shall log event number {index} fully."

        for item in registry.lower_iter("resa", feed(), batch_size=2):
            seen_at.append(("lowered", item.rid))
        produced = [entry for entry in seen_at if entry[0] == "produced"]
        first_lowered = seen_at.index(("lowered", "RESA-001"))
        # The first batch lowers before the feed finishes producing.
        assert seen_at.index(produced[-1]) > first_lowered

    def test_matches_batch_path_output(self):
        registry = default_registry()
        natives = list(registry.get("resa").discover())
        batch = registry.lower("resa", natives)
        streamed = [item for item in
                    registry.lower_iter("resa", natives, batch_size=3)]
        assert [r.rid for r in streamed] == [r.rid for r in batch]
        assert all(isinstance(r, Requirement) for r in streamed)

    def test_malformed_native_rejected_without_poisoning_batch(self):
        registry = default_registry()
        # The nalabs adapter requires RequirementText/report objects; a
        # plain integer blows up inside the adapter.  Its batch-mates
        # must still lower.
        natives = list(registry.get("nalabs").discover())
        poisoned = natives[:2] + [12345] + natives[2:4]
        items = list(registry.lower_iter("nalabs", poisoned, batch_size=5))
        rejected = [i for i in items if isinstance(i, RejectedNative)]
        lowered = [i for i in items if isinstance(i, Requirement)]
        assert len(rejected) == 1
        assert rejected[0].index == 2
        assert rejected[0].frontend == "nalabs"
        assert len(lowered) == 4

    def test_duplicate_rid_across_batches_is_rejected(self):
        registry = default_registry()
        natives = list(registry.get("nalabs").discover())[:2]
        # Same natives again in a later batch -> same deterministic
        # rids -> streaming duplicate rejection (the batch path would
        # raise for the whole sequence).
        items = list(registry.lower_iter("nalabs", natives + natives,
                                         batch_size=2))
        lowered = [i for i in items if isinstance(i, Requirement)]
        rejected = [i for i in items if isinstance(i, RejectedNative)]
        assert len(lowered) == 2
        assert len(rejected) == 2
        assert all("duplicate requirement id" in r.error for r in rejected)

    def test_budget_credits_one_per_record(self):
        registry = default_registry()
        budget = IngestBudget(limit=64)
        natives = list(registry.get("resa").discover())[:5]
        lowered = [item for item in
                   registry.lower_iter("resa", natives, budget=budget)
                   if isinstance(item, Requirement)]
        assert budget.in_flight == len(lowered)
        assert budget.acquired_total == len(lowered)

    def test_budget_backpressure_blocks_the_feed(self):
        registry = default_registry()
        budget = IngestBudget(limit=2)
        natives = ["The system shall emit heartbeat one.",
                   "The system shall emit heartbeat two.",
                   "The system shall emit heartbeat three."]
        results = []
        done = threading.Event()

        def producer():
            for item in registry.lower_iter("resa", natives, batch_size=1,
                                            budget=budget):
                results.append(item)
            done.set()

        thread = threading.Thread(target=producer)
        thread.start()
        try:
            deadline = time.time() + 5.0
            while len(results) < 2 and time.time() < deadline:
                time.sleep(0.01)
            assert len(results) == 2      # third record is stuck
            assert not done.wait(0.05)
            budget.release()              # consumer catches up
            assert done.wait(5.0)
        finally:
            budget.release(3)
            thread.join()
        assert len(results) == 3
