"""Risk-aware wave planning: ``plan_waves(jobs, risk)`` and the serial
pipeline's risk re-ordering.

Satellite regression for the risk wiring: without a risk index the
planner (and the serial engine) are byte-identical to the historical
greedy form; with one, high-risk jobs run as early as their declared
conflicts allow and lead their wave.
"""

from repro.core import VeriDevOpsOrchestrator
from repro.core.pipeline import (
    Job,
    Pipeline,
    PipelineContext,
    Stage,
    plan_waves,
)
from repro.reqs.risk import RiskIndex, RiskScorer


class StubRisk:
    """score_for() from a plain dict — the full protocol the planner
    needs."""

    def __init__(self, scores):
        self.scores = scores

    def score_for(self, name, default=0.0):
        return self.scores.get(name, default)


def job(name, reads=(), writes=()):
    return Job(name, lambda context: name, reads=tuple(reads),
               writes=tuple(writes))


class TestPlanWavesWithoutRisk:
    def test_none_risk_matches_historical_greedy(self):
        jobs = [job("a", writes=["x"]), job("b", writes=["y"]),
                job("c", reads=["x"]), job("d", writes=["z"]),
                job("bar"), job("e", writes=["x"])]
        assert plan_waves(jobs) == plan_waves(jobs, None)
        waves = plan_waves(jobs)
        # Greedy flush: c conflicts with a -> new wave; bar is a solo
        # barrier; e restarts after it.
        assert [[j.name for j in wave] for wave in waves] \
            == [["a", "b"], ["c", "d"], ["bar"], ["e"]]


class TestPlanWavesWithRisk:
    def test_high_risk_job_leads_its_wave(self):
        jobs = [job("cold", writes=["x"]), job("hot", writes=["y"])]
        waves = plan_waves(jobs, StubRisk({"hot": 9.0, "cold": 1.0}))
        assert [[j.name for j in wave] for wave in waves] \
            == [["hot", "cold"]]

    def test_earliest_legal_wave_placement(self):
        # Greedy flushes "late" into the last wave because the a/b/c
        # chain kept forcing flushes; earliest-legal pulls it back to
        # wave 0, where nothing conflicts with it.
        jobs = [job("a", writes=["x"]), job("b", reads=["x"]),
                job("c", writes=["x"]), job("late", writes=["q"])]
        greedy = plan_waves(jobs)
        assert [[j.name for j in wave] for wave in greedy] \
            == [["a"], ["b"], ["c", "late"]]
        risky = plan_waves(jobs, StubRisk({"late": 5.0}))
        assert [[j.name for j in wave] for wave in risky] \
            == [["late", "a"], ["b"], ["c"]]

    def test_conflicts_still_respected(self):
        # A high score never lets a job jump its data dependencies.
        jobs = [job("produce", writes=["x"]),
                job("consume", reads=["x"])]
        waves = plan_waves(jobs, StubRisk({"consume": 99.0}))
        assert [[j.name for j in wave] for wave in waves] \
            == [["produce"], ["consume"]]

    def test_barriers_stay_solo_and_ordered(self):
        jobs = [job("a", writes=["x"]), job("bar"),
                job("b", writes=["y"])]
        waves = plan_waves(jobs, StubRisk({"b": 9.0}))
        assert [[j.name for j in wave] for wave in waves] \
            == [["a"], ["bar"], ["b"]]

    def test_ties_break_by_declaration_order(self):
        jobs = [job("first", writes=["x"]), job("second", writes=["y"])]
        waves = plan_waves(jobs, StubRisk({}))
        assert [j.name for j in waves[0]] == ["first", "second"]


class TestSerialPipelineRiskOrder:
    def make_pipeline(self, order):
        def record(name):
            def run(context):
                order.append(name)
            return run

        return Pipeline([Stage("s", jobs=[
            Job("cold", record("cold"), writes=("x",)),
            Job("hot", record("hot"), writes=("y",)),
        ])])

    def test_without_risk_declaration_order_is_untouched(self):
        order = []
        run = self.make_pipeline(order).run(PipelineContext())
        assert run.passed
        assert order == ["cold", "hot"]

    def test_risk_index_reorders_serial_execution(self):
        order = []
        context = PipelineContext()
        context.put("risk_index", StubRisk({"hot": 9.0}))
        run = self.make_pipeline(order).run(context)
        assert run.passed
        assert order == ["hot", "cold"]
        assert [r.name for r in run.stage_results[0].job_results] \
            == ["hot", "cold"]


class TestRunPreventionRiskPlumbing:
    def test_risk_lands_in_context_and_run_passes(self):
        from repro.environment import hardened_ubuntu_host

        orchestrator = VeriDevOpsOrchestrator()
        orchestrator.ingest_standards("ubuntu")
        index = RiskIndex(RiskScorer(fleet_size=1))
        for record in orchestrator.repository.all():
            index.put(record.req_id, 1.0)
        run = orchestrator.run_prevention(
            [hardened_ubuntu_host("risky-00")], risk=index)
        assert run.passed
        assert run.context.get("risk_index") is index
