"""The ``repro reqs`` subcommand and the shared ``--json`` contract."""

import contextlib
import io
import json
import sys

import pytest

from repro.cli import main
from repro.reqs.schema import validate_record


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestReqsList:
    def test_tabulates_all_frontends(self):
        code, output = run_cli("reqs", "list")
        assert code == 0
        assert "114 requirements from 7 front-end(s)" in output
        for name in ("capec=15", "cwe=28", "nalabs=10", "resa=4",
                     "rqcode=26", "standards=25", "vulndb=6"):
            assert name in output

    def test_json_is_schema_valid(self):
        code, output = run_cli("reqs", "list", "--json")
        assert code == 0
        records = json.loads(output)
        assert len(records) == 114
        for payload in records:
            assert validate_record(payload) == []

    def test_frontend_filter(self):
        code, output = run_cli("reqs", "list", "--frontend", "vulndb",
                               "--json")
        assert code == 0
        records = json.loads(output)
        assert records and all(r["source"] == "vulndb" for r in records)

    def test_unknown_frontend_aborts(self):
        with pytest.raises(SystemExit, match="unknown front-end"):
            run_cli("reqs", "list", "--frontend", "attck")


class TestReqsShow:
    def test_shows_one_record(self):
        code, output = run_cli("reqs", "show", "RQC-V-219149")
        assert code == 0
        assert "rid       : RQC-V-219149" in output
        assert "stig:V-219149" in output
        assert "G (compliant_V_219149)" in output

    def test_json_round_trips(self):
        code, output = run_cli("reqs", "show", "RQC-V-219149", "--json")
        assert code == 0
        payload = json.loads(output)
        assert validate_record(payload) == []
        assert payload["bindings"] == ["V-219149"]

    def test_unknown_rid_aborts(self):
        with pytest.raises(SystemExit, match="no requirement"):
            run_cli("reqs", "show", "NOPE-999")


class TestReqsLower:
    def test_prints_fingerprints(self):
        code, output = run_cli("reqs", "lower", "vulndb")
        assert code == 0
        assert "6 requirements lowered from 'vulndb'" in output

    def test_fingerprints_stable_across_invocations(self):
        _, first = run_cli("reqs", "lower", "standards", "--json")
        _, second = run_cli("reqs", "lower", "standards", "--json")
        assert first == second
        for payload in json.loads(first):
            assert len(payload["fingerprint"]) == 32

    def test_unknown_frontend_aborts(self):
        with pytest.raises(SystemExit, match="unknown front-end"):
            run_cli("reqs", "lower", "attck")


class TestReqsLowerStream:
    FEED = [
        '"The system shall log every authentication failure."',
        '"While in maintenance mode, the system shall disable '
        'remote logins."',
    ]

    def run_stream(self, lines, *extra):
        out = io.StringIO()
        stdin = io.StringIO("\n".join(lines) + "\n")
        with contextlib.redirect_stderr(io.StringIO()) as err:
            old = sys.stdin
            sys.stdin = stdin
            try:
                code = main(["reqs", "lower", "--stream", *extra, "resa"],
                            out=out)
            finally:
                sys.stdin = old
        return code, out.getvalue(), err.getvalue()

    def test_emits_ir_json_lines_with_fingerprints(self):
        code, output, status = self.run_stream(self.FEED)
        assert code == 0
        payloads = [json.loads(line) for line in output.splitlines()]
        assert len(payloads) == 2
        for payload in payloads:
            assert payload["source"] == "resa"
            assert len(payload["fingerprint"]) == 32
            assert validate_record(
                {k: v for k, v in payload.items()
                 if k != "fingerprint"}) == []
        assert "2 requirements lowered from 'resa', 0 rejected" in status

    def test_bad_json_line_rejected_individually(self):
        code, output, status = self.run_stream(
            [self.FEED[0], "this is not json", self.FEED[1]])
        assert code == 0
        payloads = [json.loads(line) for line in output.splitlines()]
        rejected = [p for p in payloads if "rejected" in p]
        lowered = [p for p in payloads if "rid" in p]
        assert len(rejected) == 1
        assert rejected[0]["rejected"]["line"] == 1
        assert "bad JSON" in rejected[0]["rejected"]["error"]
        assert len(lowered) == 2
        assert "1 rejected" in status

    def test_batch_flag_controls_lowering_granularity(self):
        code, output, _ = self.run_stream(self.FEED * 2, "--batch", "1")
        assert code == 0
        lowered = [json.loads(line) for line in output.splitlines()]
        assert [p["rid"] for p in lowered] \
            == ["RESA-001", "RESA-002", "RESA-003", "RESA-004"]

    def test_unknown_frontend_aborts_before_reading_stdin(self):
        out = io.StringIO()
        with pytest.raises(SystemExit, match="unknown front-end"):
            main(["reqs", "lower", "--stream", "attck"], out=out)


class TestReqsTrace:
    def test_traces_source_to_artifact(self):
        code, output = run_cli("reqs", "trace", "RQC-V-219149")
        assert code == 0
        assert "stig:V-219149" in output
        assert "IR digest" in output
        assert "artifacts" in output

    def test_json_names_raised_artifacts(self):
        code, output = run_cli("reqs", "trace", "RQC-V-219149", "--json")
        assert code == 0
        payload = json.loads(output)
        assert payload["artifacts"] == ["V_219149"]
        assert payload["provenance"][0]["kind"] == "stig"

    def test_monitor_record_raises_no_host_artifacts(self):
        code, output = run_cli("reqs", "trace", "RESA-002", "--json")
        assert code == 0
        payload = json.loads(output)
        assert payload["artifacts"] == []
        assert payload["ltl"]


class TestSharedJsonHelper:
    def test_pipeline_json_still_clean(self):
        code, output = run_cli("pipeline", "--profile", "ubuntu-default",
                               "--json")
        assert code == 0
        document = json.loads(output)
        assert document["passed"] is True
        assert len(document["gates"]) == 5
