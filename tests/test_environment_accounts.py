"""Unit tests for the account store and the lockout STIG findings."""

import pytest

from repro.environment import SimulatedHost
from repro.environment.accounts import AccountStore, LockoutPolicy
from repro.environment.events import EventLog
from repro.rqcode.concepts import CheckStatus
from repro.rqcode.win10_accounts import V_63405, V_63409


@pytest.fixture
def store():
    return AccountStore(EventLog(), LockoutPolicy(threshold=3))


class TestAccountStore:
    def test_add_and_get(self, store):
        store.add("alice", privileged=True)
        assert store.get("alice").privileged
        assert store.names() == ["alice"]

    def test_duplicate_add_rejected(self, store):
        store.add("alice")
        with pytest.raises(ValueError):
            store.add("alice")

    def test_unknown_account_raises(self, store):
        with pytest.raises(KeyError):
            store.get("ghost")

    def test_successful_logon_resets_counter(self, store):
        store.add("alice")
        store.logon("alice", success=False)
        store.logon("alice", success=False)
        assert store.logon("alice", success=True)
        assert store.get("alice").failed_attempts == 0

    def test_lockout_at_threshold(self, store):
        store.add("alice")
        for _ in range(3):
            store.logon("alice", success=False)
        assert store.get("alice").locked
        # Even a correct password is refused now.
        assert not store.logon("alice", success=True)

    def test_threshold_zero_never_locks(self):
        store = AccountStore(EventLog(), LockoutPolicy(threshold=0))
        store.add("alice")
        for _ in range(50):
            store.logon("alice", success=False)
        assert not store.get("alice").locked

    def test_admin_unlock(self, store):
        store.add("alice")
        for _ in range(3):
            store.logon("alice", success=False)
        store.unlock("alice")
        assert not store.get("alice").locked
        assert store.logon("alice", success=True)

    def test_events_emitted(self):
        log = EventLog()
        store = AccountStore(log, LockoutPolicy(threshold=2))
        store.add("alice")
        store.logon("alice", success=False)
        store.logon("alice", success=False)
        kinds = [event.kind for event in log]
        assert kinds == ["account.created", "logon.failure",
                         "logon.failure", "account.locked"]
        assert log.last("account.locked").payload["after_attempts"] == 2


class TestLockoutFindings:
    def test_v63409_threshold_band(self, win_default):
        finding = V_63409(win_default)
        # Default policy has lockout disabled: a finding.
        assert finding.check() is CheckStatus.FAIL
        win_default.accounts.policy.threshold = 3
        assert finding.check() is CheckStatus.PASS
        win_default.accounts.policy.threshold = 5  # too lenient
        assert finding.check() is CheckStatus.FAIL

    def test_v63405_duration_minimum(self, win_default):
        finding = V_63405(win_default)
        assert finding.check() is CheckStatus.FAIL
        win_default.accounts.policy.duration_minutes = 30
        assert finding.check() is CheckStatus.PASS

    def test_hardened_profile_compliant(self, win_hardened):
        assert V_63409(win_hardened).check() is CheckStatus.PASS
        assert V_63405(win_hardened).check() is CheckStatus.PASS

    def test_enforcement_changes_real_behaviour(self, win_default):
        """The point of the behavioural substrate: before enforcement a
        password-guessing attack runs forever; after enforcement the
        third failure locks the account."""
        host = win_default
        host.accounts.add("admin", privileged=True)

        for _ in range(10):
            host.accounts.logon("admin", success=False)
        assert not host.accounts.get("admin").locked  # attack unnoticed

        V_63409(host).enforce()
        host.accounts.unlock("admin")
        for _ in range(3):
            host.accounts.logon("admin", success=False)
        assert host.accounts.get("admin").locked       # attack stopped
        assert host.events.last("account.locked") is not None

    def test_lockout_event_feeds_protection_monitors(self, win_hardened):
        """The lockout event stream is monitorable: an LTL response
        monitor concludes once the lockout follows the failures."""
        from repro.ltl import LtlMonitor, Verdict, parse_ltl

        host = win_hardened
        host.accounts.add("admin")
        monitor = LtlMonitor(parse_ltl("F account.locked"))
        host.events.subscribe(
            lambda event: monitor.observe(
                [event.kind, event.kind.split(".")[0]]))
        for _ in range(3):
            host.accounts.logon("admin", success=False)
        assert monitor.verdict is Verdict.TRUE
