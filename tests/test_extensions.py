"""Tests for the extension features: UPPAAL export, host telemetry,
RESA document ingestion."""

import xml.etree.ElementTree as ET

import pytest

from repro.core import VeriDevOpsOrchestrator
from repro.environment import hardened_ubuntu_host
from repro.environment.telemetry import HostSampler, signal_name
from repro.rqcode import default_catalog
from repro.specpatterns import TimedResponse, build_observer
from repro.ta import Edge, Location, Network, TimedAutomaton, parse_guard
from repro.ta.uppaal_export import to_uppaal_queries, to_uppaal_xml
from repro.tears import GaVerdict, GuardedAssertion, parse_expr


def sample_network():
    system = TimedAutomaton(
        name="Sys", clocks=["x"],
        locations=[
            Location("run"),
            Location("resp", invariant=parse_guard("x <= 5"),
                     urgent=False),
        ],
        edges=[
            Edge("run", "resp", sync="violation!", resets=("x",),
                 action="violate"),
            Edge("resp", "run", guard=parse_guard("x >= 1"),
                 sync="alert!", action="alert"),
        ],
    )
    observer = build_observer(TimedResponse(p="violation", s="alert",
                                            bound=10))
    return Network([system, observer.automaton]), observer


class TestUppaalExport:
    def test_document_is_well_formed_xml(self):
        network, _ = sample_network()
        xml_text = to_uppaal_xml(network)
        root = ET.fromstring(xml_text)
        assert root.tag == "nta"

    def test_templates_and_system_block(self):
        network, _ = sample_network()
        root = ET.fromstring(to_uppaal_xml(network))
        names = [t.findtext("name") for t in root.findall("template")]
        assert names == ["Sys", "Obs"]
        system = root.findtext("system")
        assert "P_Sys = Sys();" in system
        assert "system P_Sys, P_Obs;" in system

    def test_channels_declared_globally(self):
        network, _ = sample_network()
        root = ET.fromstring(to_uppaal_xml(network))
        declaration = root.findtext("declaration")
        assert "chan alert, violation;" == declaration

    def test_clock_declarations_per_template(self):
        network, _ = sample_network()
        root = ET.fromstring(to_uppaal_xml(network))
        sys_template = root.findall("template")[0]
        assert sys_template.findtext("declaration") == "clock x;"

    def test_labels_present(self):
        network, _ = sample_network()
        xml_text = to_uppaal_xml(network)
        assert 'kind="invariant">x &lt;= 5' in xml_text
        assert 'kind="synchronisation">violation!' in xml_text
        assert 'kind="assignment">x = 0' in xml_text
        assert 'kind="guard">x &gt;= 1' in xml_text

    def test_urgent_locations_marked(self):
        auto = TimedAutomaton(
            "U", [], [Location("go", urgent=True)], [])
        xml_text = to_uppaal_xml(Network([auto]))
        assert "<urgent/>" in xml_text

    def test_initial_location_referenced(self):
        network, _ = sample_network()
        root = ET.fromstring(to_uppaal_xml(network))
        template = root.findall("template")[0]
        init_ref = template.find("init").attrib["ref"]
        location_ids = [loc.attrib["id"]
                        for loc in template.findall("location")]
        assert init_ref in location_ids

    def test_query_rewriting(self):
        network, observer = sample_network()
        queries = to_uppaal_queries([observer.query], network)
        assert "P_Obs.err" in queries
        assert "Obs.err" not in queries.replace("P_Obs.err", "")


class TestHostTelemetry:
    def test_sampler_tracks_drift_and_repair(self):
        host = hardened_ubuntu_host()
        catalog = default_catalog()
        sampler = HostSampler(host, catalog)

        sampler.sample(0)
        host.drift_install_package("nis")
        sampler.sample(1)
        catalog.harden_host(host)
        sampler.sample(2)

        trace = sampler.trace
        nis_signal = signal_name("V-219157")
        assert [s.values[nis_signal] for s in trace] == [1.0, 0.0, 1.0]
        assert trace[0].values["compliance"] == 1.0
        assert trace[1].values["compliance"] < 1.0
        assert trace[2].values["compliance"] == 1.0

    def test_tears_judges_recovery_from_telemetry(self):
        host = hardened_ubuntu_host()
        catalog = default_catalog()
        sampler = HostSampler(host, catalog)
        sampler.sample(0)
        host.drift_install_package("nis")
        sampler.sample(1)
        catalog.harden_host(host)
        sampler.sample(2)

        ga = GuardedAssertion(
            name="compliance_recovers",
            guard=parse_expr("compliance < 1"),
            assertion=parse_expr("compliance == 1"),
            within=5,
        )
        result = ga.evaluate(sampler.trace)
        assert result.verdict is GaVerdict.PASSED

    def test_monotone_timestamps_without_clock_motion(self):
        host = hardened_ubuntu_host()
        sampler = HostSampler(host, default_catalog())
        sampler.sample()
        sampler.sample()  # logical clock unchanged; must not raise
        assert len(sampler.trace) == 2
        assert sampler.trace[1].time > sampler.trace[0].time


class TestResaIngestion:
    DOCUMENT = """
REQ-1: The authentication service shall lock the account.
REQ-2: When 3 consecutive failures occur, the session manager
       shall alert the operator within 5 seconds.
REQ-3: unstructured prose that matches nothing
"""

    def test_matched_statements_ingested_with_patterns(self):
        orchestrator = VeriDevOpsOrchestrator()
        records = orchestrator.ingest_resa_document(self.DOCUMENT)
        assert len(records) == 2
        assert all(r.pattern is not None for r in records)
        assert records[0].provenance.startswith("REQ-1")
        assert "boilerplate B1" in records[0].provenance

    def test_ingested_records_flow_through_pipeline(self, ubuntu_default):
        orchestrator = VeriDevOpsOrchestrator()
        orchestrator.ingest_resa_document(self.DOCUMENT)
        run = orchestrator.run_prevention([ubuntu_default])
        assert run.passed
        formalized = orchestrator.repository.formalized()
        assert len(formalized) == 2
