"""Unit tests for the operations-time protection loops."""

import pytest

from repro.core.protection import (
    PollingProtection,
    ProtectionLoop,
    event_propositions,
)
from repro.environment.events import Event
from repro.ltl import LtlMonitor, parse_ltl
from repro.rqcode import default_catalog
from repro.rqcode.concepts import CheckStatus, EnforcementStatus


class TestEventPropositions:
    def test_prefix_expansion(self):
        event = Event(time=0, kind="drift.package")
        assert event_propositions(event) == ["drift", "drift.package"]

    def test_single_segment(self):
        assert event_propositions(Event(time=0, kind="boot")) == ["boot"]


@pytest.fixture
def armed_loop(ubuntu_hardened):
    catalog = default_catalog()
    monitors = {
        "REQ-NIS": LtlMonitor(parse_ltl("G !drift.package")),
        "REQ-CONF": LtlMonitor(parse_ltl("G !drift.config")),
    }
    bindings = {"REQ-NIS": ["V-219157"], "REQ-CONF": ["V-219312"]}
    loop = ProtectionLoop(ubuntu_hardened, catalog, monitors, bindings)
    return loop.start()


class TestProtectionLoop:
    def test_detects_and_repairs_package_drift(self, armed_loop,
                                               ubuntu_hardened):
        ubuntu_hardened.drift_install_package("nis")
        assert armed_loop.incident_count() == 1
        incident = armed_loop.incidents[0]
        assert incident.req_id == "REQ-NIS"
        assert incident.detection_latency == 0
        assert incident.effective
        assert not ubuntu_hardened.dpkg.is_installed("nis")

    def test_unrelated_monitor_not_triggered(self, armed_loop,
                                             ubuntu_hardened):
        ubuntu_hardened.drift_install_package("nis")
        req_ids = {incident.req_id for incident in armed_loop.incidents}
        assert "REQ-CONF" not in req_ids

    def test_config_drift_repaired(self, armed_loop, ubuntu_hardened):
        ubuntu_hardened.drift_config_value(
            "/etc/ssh/sshd_config", "PermitEmptyPasswords", "yes")
        assert ubuntu_hardened.config.get(
            "/etc/ssh/sshd_config", "PermitEmptyPasswords") == "no"
        assert armed_loop.repaired_count() == 1

    def test_monitor_rearms_after_incident(self, armed_loop,
                                           ubuntu_hardened):
        ubuntu_hardened.drift_install_package("nis")
        ubuntu_hardened.drift_install_package("rsh-server")
        assert armed_loop.incident_count() == 2
        # rsh-server is not bound to REQ-NIS, so the second repair
        # re-checks V-219157 (already compliant after repair #1).
        second = armed_loop.incidents[1]
        assert second.repairs[0].finding_id == "V-219157"

    def test_repair_events_do_not_retrigger(self, armed_loop,
                                            ubuntu_hardened):
        ubuntu_hardened.drift_install_package("nis")
        # The repair emitted package.removed while detached; only the
        # drift event itself produced an incident.
        assert armed_loop.incident_count() == 1

    def test_stop_detaches(self, armed_loop, ubuntu_hardened):
        armed_loop.stop()
        ubuntu_hardened.drift_install_package("nis")
        assert armed_loop.incident_count() == 0
        # nis stays installed: nobody is watching.
        assert ubuntu_hardened.dpkg.is_installed("nis")

    def test_unknown_binding_reports_failure(self, ubuntu_hardened):
        loop = ProtectionLoop(
            ubuntu_hardened, default_catalog(),
            {"R": LtlMonitor(parse_ltl("G !drift"))},
            {"R": ["V-00000"]},
        ).start()
        ubuntu_hardened.drift_install_package("nis")
        repair = loop.incidents[0].repairs[0]
        assert repair.status is EnforcementStatus.FAILURE
        assert "not in catalogue" in repair.detail


class TestPollingProtection:
    def test_poll_repairs_all_drift(self, ubuntu_hardened):
        protection = PollingProtection(ubuntu_hardened, default_catalog())
        ubuntu_hardened.drift_install_package("nis")
        ubuntu_hardened.drift_config_value(
            "/etc/ssh/sshd_config", "PermitEmptyPasswords", "yes")
        incidents = protection.poll()
        assert {i.req_id for i in incidents} == {"V-219157", "V-219312"}
        assert not ubuntu_hardened.dpkg.is_installed("nis")

    def test_poll_latency_positive(self, ubuntu_hardened):
        protection = PollingProtection(ubuntu_hardened, default_catalog())
        ubuntu_hardened.drift_install_package("nis")
        ubuntu_hardened.events.advance(10)  # time passes before the poll
        incident = protection.poll()[0]
        assert incident.detection_latency >= 10

    def test_clean_poll_detects_nothing(self, ubuntu_hardened):
        protection = PollingProtection(ubuntu_hardened, default_catalog())
        assert protection.poll() == []
        assert protection.polls == 1

    def test_event_driven_beats_polling_latency(self, ubuntu_hardened):
        """The E2 ablation in miniature: polling latency is bounded
        below by the poll period, event-driven detection is immediate."""
        catalog = default_catalog()
        loop = ProtectionLoop(
            ubuntu_hardened, catalog,
            {"R": LtlMonitor(parse_ltl("G !drift.package"))},
            {"R": ["V-219157"]},
        ).start()
        polling_host_events = ubuntu_hardened.events
        ubuntu_hardened.drift_install_package("nis")
        event_latency = loop.incidents[0].detection_latency
        assert event_latency == 0

        # Polling on a second host with the same drift plus idle time.
        from repro.environment import hardened_ubuntu_host
        other = hardened_ubuntu_host("poll-host")
        polling = PollingProtection(other, catalog)
        other.drift_install_package("nis")
        other.events.advance(25)
        poll_latency = polling.poll()[0].detection_latency
        assert poll_latency > event_latency
