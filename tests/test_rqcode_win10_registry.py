"""Unit tests for the Win10 registry-value STIG patterns."""

import pytest

from repro.rqcode.concepts import CheckStatus, EnforcementStatus
from repro.rqcode.win10_registry import (
    REGISTRY_FINDINGS,
    RegistryValueRequirement,
    V_63351,
    V_63519,
    V_63591,
    V_63797,
)


class TestCheckSemantics:
    def test_missing_value_fails(self, win_default):
        assert V_63351(win_default).check() is CheckStatus.FAIL

    def test_exact_match_passes(self, win_hardened):
        assert V_63519(win_hardened).check() is CheckStatus.PASS
        assert V_63351(win_hardened).check() is CheckStatus.PASS

    def test_exact_mismatch_fails(self, win_adversarial):
        assert V_63519(win_adversarial).check() is CheckStatus.FAIL

    def test_minimum_comparison(self, win_default):
        finding = V_63797(win_default)
        # Default profile sets LmCompatibilityLevel=3 < 5.
        assert finding.check() is CheckStatus.FAIL
        win_default.set_setting("registry.LmCompatibilityLevel", "5")
        assert finding.check() is CheckStatus.PASS
        # Exceeding the minimum also passes.
        win_default.set_setting("registry.LmCompatibilityLevel", "6")
        assert finding.check() is CheckStatus.PASS

    def test_minimum_with_garbage_is_incomplete(self, win_default):
        win_default.set_setting("registry.LmCompatibilityLevel", "high")
        assert V_63797(win_default).check() is CheckStatus.INCOMPLETE


class TestEnforceSemantics:
    def test_enforce_writes_value(self, win_adversarial):
        finding = V_63591(win_adversarial)
        assert finding.check() is CheckStatus.FAIL
        assert finding.enforce() is EnforcementStatus.SUCCESS
        assert finding.check() is CheckStatus.PASS
        assert win_adversarial.get_setting(
            "registry.RestrictAnonymous") == "1"

    def test_enforce_emits_setting_event(self, win_adversarial):
        V_63519(win_adversarial).enforce()
        event = win_adversarial.events.last("setting.changed")
        assert event.payload["key"] == "registry.LegalNoticeText"

    def test_all_registry_findings_remediable(self, win_adversarial):
        for cls in REGISTRY_FINDINGS:
            finding = cls(win_adversarial)
            before, enforcement, after = finding.check_enforce_check()
            assert after is CheckStatus.PASS, finding.finding_id()


class TestCatalogIntegration:
    def test_registered_in_default_catalog(self, catalog):
        for cls in REGISTRY_FINDINGS:
            finding_id = cls.__name__.replace("_", "-")
            assert finding_id in catalog

    def test_hardened_windows_passes_registry_slice(self, catalog,
                                                    win_hardened):
        report = catalog.check_host(win_hardened)
        assert report.compliance_ratio == 1.0

    def test_severity_from_metadata(self, win_default):
        assert V_63797(win_default).severity() == "high"
        assert V_63519(win_default).severity() == "medium"


class TestProtectionIntegration:
    def test_registry_drift_detected_and_repaired(self, win_hardened):
        from repro.core import VeriDevOpsOrchestrator

        orchestrator = VeriDevOpsOrchestrator()
        orchestrator.ingest_standards("windows")
        run = orchestrator.run_prevention([win_hardened])
        assert run.passed
        loop = orchestrator.start_protection(win_hardened, run)
        win_hardened.drift_registry_value("LmCompatibilityLevel", "0")
        effective = [i for i in loop.incidents if i.effective]
        assert effective
        assert win_hardened.get_setting(
            "registry.LmCompatibilityLevel") == "5"
