"""Unit tests for SimulatedHost and the profile factories."""

import pytest

from repro.environment import SimulatedHost
from repro.environment.profiles import (
    UBUNTU_PROHIBITED_PACKAGES,
    UBUNTU_REQUIRED_PACKAGES,
)


class TestSimulatedHost:
    def test_rejects_unknown_os_family(self):
        with pytest.raises(ValueError):
            SimulatedHost("h", "macos")

    def test_settings_round_trip_and_event(self):
        host = SimulatedHost("h", "windows")
        host.set_setting("registry.Foo", "1")
        assert host.get_setting("registry.Foo") == "1"
        event = host.events.last("setting.changed")
        assert event.payload == {"key": "registry.Foo",
                                 "before": None, "after": "1"}

    def test_setting_rewrite_same_value_emits_nothing(self):
        host = SimulatedHost("h", "windows")
        host.set_setting("k", "v")
        before = len(host.events)
        host.set_setting("k", "v")
        assert len(host.events) == before

    def test_get_setting_default(self):
        host = SimulatedHost("h", "ubuntu")
        assert host.get_setting("missing", "d") == "d"

    def test_drift_audit_policy(self):
        host = SimulatedHost("h", "windows")
        host.audit_store.set("Logon", success=True, failure=True)
        host.drift_audit_policy("Logon")
        assert host.audit_store.get("Logon").render() == "No Auditing"
        event = host.events.last("drift.audit")
        assert event.payload["subcategory"] == "Logon"
        assert event.payload["before"] == "Success and Failure"

    def test_drift_install_and_remove_package(self):
        host = SimulatedHost("h", "ubuntu")
        host.drift_install_package("nis")
        assert host.dpkg.is_installed("nis")
        assert host.events.last("drift.package") is not None
        host.drift_remove_package("nis")
        assert not host.dpkg.is_installed("nis")

    def test_drift_config_value(self):
        host = SimulatedHost("h", "ubuntu")
        host.config.set("/f", "K", "good")
        host.drift_config_value("/f", "K", "bad")
        assert host.config.get("/f", "K") == "bad"
        event = host.events.last("drift.config")
        assert event.payload["before"] == "good"

    def test_drift_stop_service(self):
        host = SimulatedHost("h", "ubuntu")
        host.services.register("ssh", enabled=True, active=True)
        host.drift_stop_service("ssh")
        assert not host.services.is_active("ssh")
        assert host.events.last("drift.service") is not None

    def test_windows_host_has_package_db_too(self):
        host = SimulatedHost("h", "windows")
        assert not host.dpkg.is_installed("nis")


class TestProfiles:
    def test_hardened_windows_meets_audit_requirements(self, win_hardened):
        assert win_hardened.audit_store.get(
            "User Account Management").render() == "Success and Failure"
        assert win_hardened.audit_store.get(
            "Sensitive Privilege Use").render() == "Success and Failure"

    def test_adversarial_windows_audits_nothing(self, win_adversarial):
        snapshot = win_adversarial.audit_store.snapshot()
        assert all(value == "No Auditing" for value in snapshot.values())

    def test_default_windows_partial_auditing(self, win_default):
        assert win_default.audit_store.get("Logon").render() == "Success"
        assert win_default.audit_store.get(
            "Sensitive Privilege Use").render() == "No Auditing"

    def test_hardened_ubuntu_has_required_packages(self, ubuntu_hardened):
        for package in UBUNTU_REQUIRED_PACKAGES:
            assert ubuntu_hardened.dpkg.is_installed(package), package

    def test_hardened_ubuntu_lacks_prohibited_packages(self, ubuntu_hardened):
        for package in UBUNTU_PROHIBITED_PACKAGES:
            assert not ubuntu_hardened.dpkg.is_installed(package), package

    def test_adversarial_ubuntu_violates_everything(self, ubuntu_adversarial):
        for package in UBUNTU_PROHIBITED_PACKAGES:
            assert ubuntu_adversarial.dpkg.is_installed(package), package
        assert ubuntu_adversarial.config.get(
            "/etc/ssh/sshd_config", "PermitEmptyPasswords") == "yes"

    def test_default_ubuntu_has_legacy_package(self, ubuntu_default):
        assert ubuntu_default.dpkg.is_installed("nis")

    def test_profiles_have_distinct_names(self, ubuntu_default,
                                          ubuntu_hardened,
                                          ubuntu_adversarial):
        names = {ubuntu_default.name, ubuntu_hardened.name,
                 ubuntu_adversarial.name}
        assert len(names) == 3
