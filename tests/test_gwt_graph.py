"""Unit tests for graph models and abstract test generation."""

import pytest

from repro.gwt.graph import (
    GraphModel,
    edge_coverage_of,
    edge_coverage_paths,
    random_walk,
    shortest_path_to,
    vertex_coverage_paths,
)


@pytest.fixture
def login_model():
    model = GraphModel("login", "logged_out")
    model.add_state("logged_in")
    model.add_state("locked")
    model.add_action("logged_out", "logged_in", "login_ok")
    model.add_action("logged_out", "logged_out", "login_fail")
    model.add_action("logged_out", "locked", "lockout", param1=3)
    model.add_action("locked", "logged_out", "unlock")
    model.add_action("logged_in", "logged_out", "logout")
    return model


class TestGraphModel:
    def test_states_and_actions(self, login_model):
        assert login_model.states == ["locked", "logged_in", "logged_out"]
        assert len(login_model.actions) == 5

    def test_validate_detects_unreachable(self):
        model = GraphModel("m", "a")
        model.add_state("island")
        with pytest.raises(ValueError):
            model.validate()

    def test_json_round_trip(self, login_model):
        text = login_model.to_json()
        reloaded = GraphModel.from_json(text)
        assert reloaded.states == login_model.states
        assert reloaded.actions == login_model.actions
        # Bindings survive the round trip.
        case = shortest_path_to(reloaded, "locked")
        assert case.steps[0].bindings == {"param1": 3.0}

    def test_from_graphml(self):
        graphml = """<?xml version="1.0" encoding="UTF-8"?>
<graphml xmlns="http://graphml.graphdrawing.org/xmlns">
  <key id="action" for="edge" attr.name="action" attr.type="string"/>
  <graph edgedefault="directed">
    <node id="a"/><node id="b"/>
    <edge source="a" target="b"><data key="action">go</data></edge>
    <edge source="b" target="a"><data key="action">back</data></edge>
  </graph>
</graphml>"""
        model = GraphModel.from_graphml(graphml, name="m", start="a")
        assert model.states == ["a", "b"]
        assert {action for _, _, action in model.actions} == {"go", "back"}


class TestGenerators:
    def test_edge_coverage_reaches_all_edges(self, login_model):
        case = edge_coverage_paths(login_model)
        assert edge_coverage_of(login_model, [case]) == 1.0

    def test_edge_coverage_is_deterministic(self, login_model):
        first = edge_coverage_paths(login_model)
        second = edge_coverage_paths(login_model)
        assert first.actions == second.actions

    def test_edge_coverage_is_connected_path(self, login_model):
        case = edge_coverage_paths(login_model)
        current = login_model.start
        by_action = {}
        for u, v, data in login_model.graph.edges(data=True):
            by_action.setdefault(data["action"], []).append((u, v))
        for step in case.steps:
            candidates = [t for s, t in by_action[step.action]
                          if s == current]
            assert candidates, (current, step.action)
            current = candidates[0]

    def test_vertex_coverage_visits_all_states(self, login_model):
        case = vertex_coverage_paths(login_model)
        visited = {login_model.start}
        current = login_model.start
        for step in case.steps:
            edges = [
                (u, v) for u, v, data in login_model.graph.edges(data=True)
                if data["action"] == step.action and u == current
            ]
            current = edges[0][1]
            visited.add(current)
        assert visited == set(login_model.states)

    def test_random_walk_deterministic_by_seed(self, login_model):
        first = random_walk(login_model, seed=5, max_steps=30)
        second = random_walk(login_model, seed=5, max_steps=30)
        assert first.actions == second.actions

    def test_random_walk_stops_at_coverage(self, login_model):
        case = random_walk(login_model, seed=1, max_steps=10_000,
                           edge_coverage=1.0)
        assert len(case.steps) < 10_000
        assert edge_coverage_of(login_model, [case]) == 1.0

    def test_random_walk_respects_step_budget(self, login_model):
        case = random_walk(login_model, seed=1, max_steps=7)
        assert len(case.steps) <= 7

    def test_random_walk_stops_at_sink(self):
        model = GraphModel("m", "a")
        model.add_state("sink")
        model.add_action("a", "sink", "go")
        case = random_walk(model, seed=0, max_steps=100)
        assert case.actions == ["go"]

    def test_shortest_path(self, login_model):
        case = shortest_path_to(login_model, "locked")
        assert case.actions == ["lockout"]

    def test_coverage_of_empty_case_list(self, login_model):
        assert edge_coverage_of(login_model, []) == 0.0

    def test_parallel_edges_with_same_action_count_once(self):
        model = GraphModel("m", "a")
        model.add_state("b")
        model.add_action("a", "b", "go")
        model.add_action("a", "b", "go")  # parallel duplicate
        model.add_action("b", "a", "back")
        case = edge_coverage_paths(model)
        assert edge_coverage_of(model, [case]) == 1.0


class TestEdgeCoverageSuite:
    def test_tree_model_needs_restarts(self):
        from repro.gwt.graph import edge_coverage_suite

        model = GraphModel("tree", "root")
        for state in ("l", "r", "ll", "lr"):
            model.add_state(state)
        model.add_action("root", "l", "go_l")
        model.add_action("root", "r", "go_r")
        model.add_action("l", "ll", "go_ll")
        model.add_action("l", "lr", "go_lr")
        cases = edge_coverage_suite(model)
        assert len(cases) >= 2
        assert edge_coverage_of(model, cases) == 1.0

    def test_strongly_connected_model_single_case(self, login_model):
        from repro.gwt.graph import edge_coverage_suite

        cases = edge_coverage_suite(login_model)
        assert len(cases) == 1
        assert edge_coverage_of(login_model, cases) == 1.0
