"""Journaled prevention runs: crash-resume invariants and the CLI."""

import io
import json

import pytest

from repro.chaos import ChaosController, FaultPlan
from repro.cli import main
from repro.sched.journal import Journal
from repro.sched.runner import (JournaledPreventionRun, RunPlanError,
                                ir_manifest)
from repro.sched.scheduler import SchedulerCrash

PROFILE = "ubuntu-hardened"


def _host():
    from repro.cli import PROFILES

    return PROFILES[PROFILE]()


def _uninterrupted(tmp_path, jobs=1):
    run = JournaledPreventionRun(
        str(tmp_path / "reference.jsonl"), _host(), PROFILE, jobs=jobs)
    return run.execute()


class TestJournaledPreventionRun:
    def test_fresh_run_records_plan_and_verdict(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        verdict = JournaledPreventionRun(
            path, _host(), PROFILE, jobs=2).execute()
        assert verdict["passed"] and not verdict["replayed"]
        journal = Journal(path)
        plan = journal.plan()
        assert plan["profile"] == PROFILE and plan["jobs"] == 2
        assert plan["ir"]["fingerprints"]       # the IR manifest rode along
        assert journal.finished()["passed"] is True
        assert all(count == 1 for count
                   in journal.completion_counts().values())

    def test_finished_journal_replays_without_executing(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        first = JournaledPreventionRun(path, _host(), PROFILE).execute()
        entries = len(Journal(path))
        replay = JournaledPreventionRun(path, _host(), PROFILE).execute()
        assert replay["replayed"]
        assert replay["gates"] == first["gates"]
        assert len(Journal(path)) == entries    # nothing appended

    def test_profile_mismatch_refused(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with pytest.raises(SchedulerCrash):
            JournaledPreventionRun(path, _host(), PROFILE,
                                   crash_after=1).execute()
        from repro.cli import PROFILES

        other = PROFILES["ubuntu-default"]()
        with pytest.raises(RunPlanError, match="profile"):
            JournaledPreventionRun(path, other,
                                   "ubuntu-default").execute()

    def test_manifest_mismatch_refused(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with pytest.raises(SchedulerCrash):
            JournaledPreventionRun(path, _host(), PROFILE,
                                   crash_after=1).execute()
        journal = Journal(path)
        plan = journal.plan()
        plan["ir"]["fingerprints"][0]["fingerprint"] = "0" * 32
        # Rebuild the journal with the tampered plan but a valid chain.
        rewritten = Journal(str(tmp_path / "tampered.jsonl"))
        rewritten.append("run.plan", data=plan)
        for entry in journal.entries[1:]:
            rewritten.append(entry.kind, task=entry.task, data=entry.data)
        with pytest.raises(RunPlanError, match="manifest"):
            JournaledPreventionRun(rewritten.path, _host(),
                                   PROFILE).execute()

    def test_crash_resume_verdicts_byte_identical(self, tmp_path):
        """The issue's acceptance invariant, with the deterministic seam."""
        reference = _uninterrupted(tmp_path)
        path = str(tmp_path / "crashy.jsonl")
        crashes = 0
        while True:
            try:
                verdict = JournaledPreventionRun(
                    path, _host(), PROFILE, crash_after=2).execute()
                break
            except SchedulerCrash:
                crashes += 1
                assert crashes < 20
        assert crashes >= 1
        assert json.dumps(verdict["gates"], sort_keys=True) == \
            json.dumps(reference["gates"], sort_keys=True)
        assert verdict["passed"] == reference["passed"]
        journal = Journal(path)
        assert all(count == 1 for count
                   in journal.completion_counts().values())
        assert journal.resumes() == crashes

    def test_chaos_plan_crash_resume_converges(self, tmp_path):
        reference = _uninterrupted(tmp_path)
        path = str(tmp_path / "chaotic.jsonl")
        plan = FaultPlan(seed=11, sched_crash=0.5, sched_truncate=0.4)
        for _ in range(40):
            try:
                verdict = JournaledPreventionRun(
                    path, _host(), PROFILE, jobs=2,
                    chaos=ChaosController(plan)).execute()
                break
            except SchedulerCrash:
                continue
        else:
            pytest.fail("chaos crash-resume loop never converged")
        assert verdict["gates"] == reference["gates"]
        assert all(count == 1 for count
                   in Journal(path).completion_counts().values())

    def test_parallel_run_matches_serial_verdicts(self, tmp_path):
        serial = _uninterrupted(tmp_path)
        parallel = JournaledPreventionRun(
            str(tmp_path / "par.jsonl"), _host(), PROFILE,
            jobs=4).execute()
        assert parallel["gates"] == serial["gates"]

    def test_ir_manifest_is_versioned(self):
        from repro.core import VeriDevOpsOrchestrator
        from repro.reqs.schema import SCHEMA_ID, SCHEMA_VERSION

        orchestrator = VeriDevOpsOrchestrator()
        orchestrator.ingest_standards("ubuntu")
        manifest = ir_manifest(orchestrator.repository)
        assert manifest["schema_id"] == SCHEMA_ID
        assert manifest["ir_version"] == SCHEMA_VERSION
        assert all(set(row) == {"rid", "fingerprint", "content"}
                   for row in manifest["fingerprints"])


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestSchedCli:
    def test_run_status_replay_resume_cycle(self, tmp_path):
        journal = str(tmp_path / "j.jsonl")
        code, _ = run_cli("sched", "run", "--journal", journal,
                          "--profile", PROFILE, "--jobs", "2",
                          "--crash-after", "2")
        assert code == 3                      # injected crash

        code, output = run_cli("sched", "status", "--journal", journal)
        assert code == 0
        assert "finished" in output and "False" in output

        code, output = run_cli("sched", "resume", "--journal", journal)
        assert code == 0
        assert "adopted=2" in output

        code, output = run_cli("sched", "status", "--journal", journal,
                               "--json")
        document = json.loads(output)
        assert document["finished"] and document["passed"]
        assert document["duplicated_completions"] == []
        assert document["resumes"] == 1
        assert document["chain_ok"]

        code, output = run_cli("sched", "replay", "--journal", journal)
        assert code == 0
        assert "run.plan" in output and "run.finished" in output
        assert "chain ok" in output

    def test_run_json_document(self, tmp_path):
        journal = str(tmp_path / "j.jsonl")
        code, output = run_cli("sched", "run", "--journal", journal,
                               "--profile", PROFILE, "--json")
        assert code == 0
        document = json.loads(output)
        assert document["passed"] and document["profile"] == PROFILE
        assert document["journal"] == journal
        assert {"stage", "gate", "verdict", "detail"} == set(
            document["gates"][0])

    def test_rerun_replays_finished_journal(self, tmp_path):
        journal = str(tmp_path / "j.jsonl")
        run_cli("sched", "run", "--journal", journal,
                "--profile", PROFILE)
        code, output = run_cli("sched", "run", "--journal", journal,
                               "--profile", PROFILE, "--json")
        assert code == 0
        assert json.loads(output)["replayed"]

    def test_resume_without_plan_aborts(self, tmp_path):
        journal = str(tmp_path / "empty.jsonl")
        with pytest.raises(SystemExit, match="no recorded plan"):
            run_cli("sched", "resume", "--journal", journal)

    def test_reqs_trace_carries_provenance_chain(self):
        code, output = run_cli("reqs", "list", "--json")
        assert code == 0
        rid = json.loads(output)[0]["rid"]
        code, output = run_cli("reqs", "trace", rid, "--json")
        assert code == 0
        document = json.loads(output)
        assert document["provenance_chain"]
        assert all(len(digest) == 32
                   for digest in document["provenance_chain"])
