"""Crash and chaos suite for the tiered CAS verification cache.

Three failure families, each with a recovery obligation:

* ``cache.lock_timeout`` — a bucket flush times out on its advisory
  lock.  The write must stay pending (nothing lost, nothing torn) and
  a later save must drain it, because the seam draws per *attempt*.
* ``cache.stale_read`` — the shared tier pretends an entry is absent.
  The cost is one redundant recompute, never a wrong verdict and
  never a phantom hit.
* A writer killed mid-compaction.  Survivors reopen the store, torn
  temp files are swept as debris, a corrupt bucket is counted
  (``corrupt_loads``) and re-verified rather than trusted, and every
  entry that *does* parse is byte-identical to what was stored.
"""

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.chaos import ChaosController, FaultPlan
from repro.prevention import VerificationCache
from repro.prevention.cas.store import BucketStore, bucket_prefix


def controller(**rates):
    return ChaosController(FaultPlan(seed=7, **rates))


class TestLockTimeout:
    def test_timed_out_flush_stays_pending_and_memory_still_answers(
            self, tmp_path):
        cache = VerificationCache(tmp_path / "c",
                                  chaos=controller(cache_lock_timeout=1.0))
        cache.store("lab", "fp", {"satisfied": True})
        assert cache.save() is False
        assert cache.stats_dict()["lock_timeouts"] >= 1
        # Nothing reached disk...
        assert len(BucketStore(tmp_path / "c" / "cas")) == 0
        # ...but the memory tier still serves the verdict, unharmed.
        assert cache.lookup("lab", "fp") == {"satisfied": True}

    def test_repeated_saves_eventually_drain_the_backlog(self, tmp_path):
        """The seam keys on the acquisition *attempt*, so a partial
        injection rate clears on retry instead of wedging forever."""
        cache = VerificationCache(tmp_path / "c",
                                  chaos=controller(cache_lock_timeout=0.7))
        for index in range(5):
            cache.store(f"label-{index}", f"fp{index}", {"i": index})
        for _ in range(60):
            if cache.save():
                pass
            if len(BucketStore(tmp_path / "c" / "cas")) == 5:
                break
        else:
            pytest.fail("backlog never drained")
        assert cache.stats_dict()["lock_timeouts"] >= 1
        reopened = VerificationCache(tmp_path / "c")
        for index in range(5):
            assert reopened.lookup(f"label-{index}", f"fp{index}") == \
                {"i": index}


class TestStaleRead:
    def test_stale_remote_read_recomputes_identically(self, tmp_path):
        writer = VerificationCache(tmp_path / "a", shared=tmp_path / "s")
        verdict = {"satisfied": True, "states_explored": 41}
        writer.store("lab", "fp", verdict)
        writer.save()
        reader = VerificationCache(tmp_path / "b", shared=tmp_path / "s",
                                   chaos=controller(cache_stale_read=1.0))
        # The entry IS in the remote; the seam hides it.  That must
        # surface as an honest miss — not a phantom hit, not an error.
        assert reader.lookup("lab", "fp") is None
        stats = reader.stats_dict()
        assert stats["stale_reads"] == 1
        assert stats["misses"] == 1
        assert stats["hits"] == 0
        # The caller recomputes and stores; bytes match the original.
        reader.store("lab", "fp", dict(verdict))
        reader.save()
        fresh = VerificationCache(tmp_path / "c", shared=tmp_path / "s")
        assert json.dumps(fresh.lookup("lab", "fp"), sort_keys=True) == \
            json.dumps(verdict, sort_keys=True)

    def test_stale_read_never_fires_without_a_remote(self, tmp_path):
        cache = VerificationCache(tmp_path / "c",
                                  chaos=controller(cache_stale_read=1.0))
        cache.store("lab", "fp", {"satisfied": False})
        cache.save()
        assert cache.lookup("lab", "fp") == {"satisfied": False}
        assert cache.stats_dict()["stale_reads"] == 0


def _churn_worker(shared_root, ready_path):
    """Store/save forever with a tiny bound so every save compacts;
    the parent SIGKILLs this process mid-flight."""
    cache = VerificationCache(shared_root, max_entries=4,
                              writer_id="doomed")
    index = 0
    while True:
        cache.store(f"churn-{index}", f"fp{index}", {"i": index})
        cache.save()
        if index == 8:
            ready_path.write_text("ready")
        index += 1


class TestCrashRecovery:
    def test_store_survives_a_writer_killed_mid_compaction(self, tmp_path):
        root = tmp_path / "store"
        ready = tmp_path / "ready"
        context = multiprocessing.get_context("spawn")
        child = context.Process(target=_churn_worker, args=(root, ready))
        child.start()
        try:
            deadline = time.monotonic() + 30
            while not ready.exists():
                assert child.is_alive(), "churn worker died on its own"
                assert time.monotonic() < deadline, "worker never warmed up"
                time.sleep(0.01)
            os.kill(child.pid, signal.SIGKILL)
        finally:
            child.join(timeout=30)
        # The survivor opens the same root: every bucket that parses
        # holds complete entries, byte-identical to what was stored.
        survivor = BucketStore(root / "cas")
        entries = survivor.entries()
        assert entries, "kill erased the whole store"
        for label, entry in entries.items():
            index = int(label.rsplit("-", 1)[1])
            assert entry["verdict"] == {"i": index}
            assert entry["writer_id"] == "doomed"
        # And the high-level cache serves them with no phantom hits:
        # a hit must return the stored verdict, a miss stays a miss.
        cache = VerificationCache(root)
        for label, entry in entries.items():
            assert cache.lookup(label, entry["fingerprint"]) == \
                entry["verdict"]
        assert cache.lookup("never-stored", "fp") is None

    def test_torn_compaction_temp_file_is_swept_as_debris(self, tmp_path):
        store = BucketStore(tmp_path)
        store.put_many({"lab": {"fingerprint": "fp", "verdict": {"ok": 1},
                                "stored_at": 1, "writer_id": "t"}})
        # A writer died between writing its temp file and renaming it.
        torn = store.buckets_dir / "ab.json.tmp.99999"
        torn.write_text('{"entries": {"half-written')
        assert store.compact(max_entries=10) == 0
        assert not torn.exists()
        assert store.get("lab")["verdict"] == {"ok": 1}

    def test_corrupt_bucket_is_counted_and_yields_no_phantom_hits(
            self, tmp_path):
        cache = VerificationCache(tmp_path / "c")
        cache.store("lab", "fp", {"satisfied": True})
        cache.save()
        bucket = (tmp_path / "c" / "cas" / "buckets" /
                  f"{bucket_prefix('lab')}.json")
        bucket.write_text('{"entries": {"lab": {"finge')   # torn mid-write
        reopened = VerificationCache(tmp_path / "c")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert reopened.lookup("lab", "fp") is None    # honest miss
        stats = reopened.stats_dict()
        assert stats["corrupt_loads"] >= 1
        assert stats["hits"] == 0
        # Recompute-and-store heals the bucket in place.
        reopened.store("lab", "fp", {"satisfied": True})
        reopened.save()
        healed = VerificationCache(tmp_path / "c")
        assert healed.lookup("lab", "fp") == {"satisfied": True}
