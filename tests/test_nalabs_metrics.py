"""Unit tests for the NALABS smell metrics."""

import pytest

from repro.nalabs.metrics import (
    ConjunctionMetric,
    ContinuanceMetric,
    ImperativeMetric,
    NonImperativeVerbMetric,
    OptionalityMetric,
    ReadabilityARIMetric,
    ReferenceMetric,
    SizeMetric,
    SubjectivityMetric,
    VaguenessMetric,
    WeaknessMetric,
    phrase_occurrences,
    sentences,
    tokenize,
)

CLEAN = "The system shall lock the account after 3 failed attempts."


class TestTokenizer:
    def test_tokenize_lowercases_and_splits(self):
        assert tokenize("The System SHALL lock.") == \
            ["the", "system", "shall", "lock"]

    def test_tokenize_keeps_hyphenated_words(self):
        assert "user-friendly" in tokenize("A user-friendly tool")

    def test_sentences_split_on_terminators(self):
        assert len(sentences("One. Two! Three?")) == 3

    def test_sentences_never_empty(self):
        assert sentences("no terminator") == ["no terminator"]

    def test_phrase_occurrences_counts_multiplicity(self):
        found = phrase_occurrences("may do this and may do that", ("may",))
        assert found == ["may", "may"]

    def test_phrase_occurrences_whole_words_only(self):
        assert phrase_occurrences("mayhem", ("may",)) == []

    def test_phrase_occurrences_multiword(self):
        found = phrase_occurrences("do this as far as possible now",
                                   ("as far as possible",))
        assert found == ["as far as possible"]


class TestDictionaryMetrics:
    def test_vagueness_detects_and_reports(self):
        result = VaguenessMetric().measure(
            "Provide adequate performance with reasonable latency.")
        assert result.value == 2
        assert result.flagged
        assert "adequate" in result.occurrences

    def test_vagueness_clean_statement(self):
        result = VaguenessMetric().measure(CLEAN)
        assert result.value == 0
        assert not result.flagged

    def test_weakness(self):
        result = WeaknessMetric().measure(
            "The parser shall be capable of recovery where possible.")
        assert result.value == 2
        assert result.flagged

    def test_optionality(self):
        result = OptionalityMetric().measure(
            "The client may retry and could preferably warn the user.")
        assert result.value >= 3
        assert result.flagged

    def test_subjectivity(self):
        result = SubjectivityMetric().measure(
            "The UI shall be intuitive and pleasant.")
        assert result.value == 2

    def test_continuances_threshold(self):
        low = ContinuanceMetric().measure("A and B.")
        assert not low.flagged
        high = ContinuanceMetric().measure(
            "Support the following: A and B and C, in particular D.")
        assert high.flagged

    def test_custom_threshold_overrides_default(self):
        metric = VaguenessMetric(threshold=3)
        result = metric.measure("adequate and reasonable")
        assert result.value == 2
        assert not result.flagged


class TestImperatives:
    def test_clean_statement_has_imperative(self):
        result = ImperativeMetric().measure(CLEAN)
        assert result.value == 1
        assert not result.flagged

    def test_missing_imperative_is_flagged(self):
        result = ImperativeMetric().measure("The system locks the account.")
        assert result.value == 0
        assert result.flagged

    def test_nv_ratio(self):
        result = NonImperativeVerbMetric().measure(
            "The system is available and handles errors and provides logs.")
        assert result.value == 3.0
        assert result.flagged

    def test_nv_ratio_with_imperative_divides(self):
        result = NonImperativeVerbMetric().measure(
            "The system shall ensure the log is complete.")
        assert result.value == 1.0
        assert not result.flagged


class TestReferences:
    def test_dictionary_cues(self):
        result = ReferenceMetric().measure(
            "Operate in accordance with the standard, refer to the manual.")
        assert result.value == 2
        assert result.flagged

    def test_numbered_references_regex(self):
        result = ReferenceMetric().measure(
            "See details in section 3.4.1 and in [12].")
        assert result.value >= 2

    def test_regex_can_be_disabled(self):
        metric = ReferenceMetric(use_regex=False)
        result = metric.measure("Described in section 3.4.1.")
        # "described in" remains a dictionary cue; the bare number match
        # from References2 is gone.
        assert "section 3.4.1" not in result.occurrences


class TestReadabilityAndSize:
    def test_ari_formula(self):
        # One sentence, 4 words, average word length (3+6+5+4)/4 = 4.5:
        # ARI = 4 + 9 * 4.5 = 44.5
        result = ReadabilityARIMetric().measure("The system shall lock.")
        assert result.value == pytest.approx(44.5)

    def test_ari_empty_text(self):
        assert ReadabilityARIMetric().measure("").value == 0.0

    def test_ari_flags_dense_text(self):
        dense = ("The multifunctional interoperability synchronization "
                 "infrastructure necessitates comprehensive "
                 "parameterization notwithstanding organizational "
                 "heterogeneity considerations")
        assert ReadabilityARIMetric().measure(dense).flagged

    def test_size_counts_words(self):
        result = SizeMetric().measure(CLEAN)
        assert result.value == 10
        assert not result.flagged
        assert f"characters={len(CLEAN)}" in result.occurrences

    def test_size_flags_long_requirements(self):
        text = " ".join(["word"] * 70) + "."
        assert SizeMetric().measure(text).flagged

    def test_conjunction_metric(self):
        result = ConjunctionMetric().measure(
            "Do A and B or C but not D, otherwise E and F.")
        assert result.value >= 4
        assert result.flagged


class TestIncompleteness:
    def test_markers_detected(self):
        from repro.nalabs.metrics import IncompletenessMetric

        result = IncompletenessMetric().measure(
            "Thresholds are TBD and limits are to be determined.")
        assert result.value == 2
        assert result.flagged
        assert "tbd" in result.occurrences

    def test_clean_statement_unflagged(self):
        from repro.nalabs.metrics import IncompletenessMetric

        result = IncompletenessMetric().measure(CLEAN)
        assert result.value == 0
        assert not result.flagged

    def test_tbd_requires_word_boundary(self):
        from repro.nalabs.metrics import IncompletenessMetric

        # 'TBD' inside another token must not match.
        result = IncompletenessMetric().measure("the outbound channel")
        assert result.value == 0
