"""Unit tests for the timed-automata simulator."""

import pytest

from repro.ta import Edge, Location, Network, TimedAutomaton, parse_guard
from repro.ta.simulator import Simulator


def ping_pong():
    ping = TimedAutomaton(
        "Ping", ["x"],
        [Location("serve", invariant=parse_guard("x <= 2")),
         Location("wait")],
        [Edge("serve", "wait", sync="ball!", resets=("x",),
              action="serve"),
         Edge("wait", "serve", sync="ball?", resets=("x",),
              action="return")],
    )
    pong = TimedAutomaton(
        "Pong", [],
        [Location("idle")],
        [Edge("idle", "idle", sync="ball?", action="receive"),
         Edge("idle", "idle", sync="ball!", action="send")],
    )
    return Network([ping, pong])


class TestSimulator:
    def test_deterministic_by_seed(self):
        first = Simulator(ping_pong(), seed=4).run(max_actions=20)
        second = Simulator(ping_pong(), seed=4).run(max_actions=20)
        assert first.actions() == second.actions()

    def test_respects_action_budget(self):
        run = Simulator(ping_pong(), seed=1).run(max_actions=5,
                                                 max_time=10_000)
        assert len(run.actions()) <= 5

    def test_invariant_forces_progress(self):
        """Ping's serve location allows at most 2 ticks before the
        invariant forces the serve: no run lingers longer."""
        run = Simulator(ping_pong(), seed=7).run(max_actions=10)
        stay = 0
        longest = 0
        for step in run.steps:
            if step.kind == "delay" and step.locations[0] == "serve":
                stay += 1
                longest = max(longest, stay)
            else:
                stay = 0
        assert longest <= 2

    def test_deadlocked_model_stops(self):
        trap = TimedAutomaton(
            "T", ["x"],
            [Location("a", invariant=parse_guard("x <= 0"))],
            [],
        )
        run = Simulator(Network([trap]), seed=0).run()
        assert run.steps == []  # time-locked immediately, nothing to do

    def test_event_trace_feeds_ltl_monitor(self):
        from repro.ltl import LtlMonitor, Verdict, parse_ltl

        run = Simulator(ping_pong(), seed=2).run(max_actions=10)
        trace = run.event_trace()
        assert trace  # something happened
        monitor = LtlMonitor(parse_ltl("F serve"))
        verdict = monitor.observe_trace(
            [{label.split(" / ")[0]} for label in
             (next(iter(s)) for s in trace)])
        assert verdict is Verdict.TRUE

    def test_timed_samples_monotone(self):
        run = Simulator(ping_pong(), seed=3).run(max_actions=15)
        times = [t for t, _ in run.timed_samples()]
        assert times == sorted(times)

    def test_simulated_run_judged_by_tears(self):
        """Bridge: simulate the model, derive signals, judge with a
        guarded assertion (every serve answered within 3 ticks)."""
        from repro.tears import GaVerdict, GuardedAssertion, TimedTrace, \
            parse_expr

        run = Simulator(ping_pong(), seed=5).run(max_actions=20)
        trace = TimedTrace()
        pending = 0
        last_time = -1
        for time, label in run.timed_samples():
            # Handshake labels join emitter and receiver actions
            # ("serve / receive", "send / return").
            if "serve" in label:
                pending = 1
            elif "return" in label:
                pending = 0
            if time <= last_time:
                time = last_time + 0.25  # stutter within a tick
            last_time = time
            trace.record(time, pending=pending)
        ga = GuardedAssertion(
            name="serve_answered",
            guard=parse_expr("pending == 1"),
            assertion=parse_expr("pending == 0"),
            within=4,
        )
        result = ga.evaluate(trace)
        assert result.verdict in (GaVerdict.PASSED, GaVerdict.VACUOUS)


class TestSimulatorCheckerAgreement:
    """Cross-validation: every discrete state a simulated run visits is
    reachable per the zone-graph checker."""

    def test_visited_states_are_reachable(self):
        from repro.ta import ZoneGraphChecker, parse_query

        network = ping_pong()
        checker = ZoneGraphChecker(network)
        visited = set()
        for seed in range(5):
            run = Simulator(network, seed=seed).run(max_actions=15)
            for step in run.steps:
                visited.add(step.locations)
        assert visited
        for locations in visited:
            atoms = " and ".join(
                f"{automaton.name}.{location}"
                for automaton, location in zip(network.automata,
                                               locations))
            result = checker.check(parse_query(f"E<> {atoms}"))
            assert result.satisfied, locations
