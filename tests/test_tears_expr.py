"""Unit tests for the TEARS signal-expression language."""

import pytest

from repro.tears.expr import ExprParseError, parse_expr


class TestArithmetic:
    def test_constants_and_operators(self):
        assert parse_expr("2 + 3 * 4").evaluate({}) == 14
        assert parse_expr("(2 + 3) * 4").evaluate({}) == 20
        assert parse_expr("10 / 4").evaluate({}) == 2.5
        assert parse_expr("-3 + 5").evaluate({}) == 2

    def test_signals(self):
        assert parse_expr("speed * 2").evaluate({"speed": 21}) == 42

    def test_abs(self):
        assert parse_expr("abs(a - b)").evaluate({"a": 3, "b": 10}) == 7

    def test_unknown_signal_raises_keyerror(self):
        with pytest.raises(KeyError):
            parse_expr("ghost + 1").evaluate({})

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            parse_expr("1 / x").evaluate({"x": 0})


class TestComparisonsAndBooleans:
    @pytest.mark.parametrize("text,expected", [
        ("3 < 4", 1.0), ("4 < 3", 0.0), ("3 <= 3", 1.0), ("3 >= 4", 0.0),
        ("3 == 3", 1.0), ("3 != 3", 0.0),
    ])
    def test_comparisons(self, text, expected):
        assert parse_expr(text).evaluate({}) == expected

    def test_and_or_not(self):
        sample = {"a": 1, "b": 0}
        assert parse_expr("a and not b").holds(sample)
        assert parse_expr("b or a").holds(sample)
        assert not parse_expr("a and b").holds(sample)

    def test_true_false_keywords(self):
        assert parse_expr("true").holds({})
        assert not parse_expr("false").holds({})

    def test_precedence_not_over_and_over_or(self):
        # not a and b or c == ((not a) and b) or c
        assert parse_expr("not a and b or c").holds({"a": 0, "b": 1, "c": 0})
        assert parse_expr("not a and b or c").holds({"a": 1, "b": 0, "c": 1})
        assert not parse_expr("not a and b or c").holds(
            {"a": 1, "b": 1, "c": 0})

    def test_comparison_of_expressions(self):
        assert parse_expr("speed - limit > 10").holds(
            {"speed": 100, "limit": 80})


class TestParsing:
    def test_signals_listing(self):
        expr = parse_expr("speed > 50 and brake == 1")
        assert expr.signals() == ("brake", "speed")

    def test_str_round_trip_source(self):
        assert str(parse_expr("  a + b  ")) == "a + b"

    @pytest.mark.parametrize("bad", ["", "a +", "(a", "a ? b", "1 2 3"])
    def test_malformed_raises(self, bad):
        with pytest.raises(ExprParseError):
            parse_expr(bad)
