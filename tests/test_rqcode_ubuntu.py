"""Unit tests for the Ubuntu STIG requirement classes."""

import pytest

from repro.rqcode.concepts import CheckStatus, EnforcementStatus
from repro.rqcode.ubuntu import (
    ALL_UBUNTU_FINDINGS,
    D27_FINDINGS,
    UbuntuConfigPattern,
    UbuntuPackagePattern,
    UbuntuServicePattern,
    V_219157,
    V_219158,
    V_219161,
    V_219177,
    V_219304,
    instantiate_all,
)


class TestUbuntuPackagePattern:
    def test_prohibited_package_absent_passes(self, ubuntu_hardened):
        pattern = UbuntuPackagePattern(ubuntu_hardened, "nis",
                                       must_be_installed=False)
        assert pattern.check() is CheckStatus.PASS

    def test_prohibited_package_present_fails(self, ubuntu_default):
        pattern = UbuntuPackagePattern(ubuntu_default, "nis",
                                       must_be_installed=False)
        assert pattern.check() is CheckStatus.FAIL

    def test_required_package_enforce_installs(self, ubuntu_default):
        pattern = UbuntuPackagePattern(ubuntu_default, "aide",
                                       must_be_installed=True)
        assert pattern.check() is CheckStatus.FAIL
        assert pattern.enforce() is EnforcementStatus.SUCCESS
        assert pattern.check() is CheckStatus.PASS

    def test_prohibited_package_enforce_removes(self, ubuntu_default):
        pattern = UbuntuPackagePattern(ubuntu_default, "nis",
                                       must_be_installed=False)
        pattern.enforce()
        assert not ubuntu_default.dpkg.is_installed("nis")

    def test_enforce_unknown_package_reports_failure(self, ubuntu_default):
        pattern = UbuntuPackagePattern(ubuntu_default, "no-such-package",
                                       must_be_installed=True)
        assert pattern.enforce() is EnforcementStatus.FAILURE

    def test_str_mentions_polarity(self, ubuntu_default):
        required = UbuntuPackagePattern(ubuntu_default, "aide", True)
        prohibited = UbuntuPackagePattern(ubuntu_default, "nis", False)
        assert "must be installed" in str(required)
        assert "not installed" in str(prohibited)


class TestUbuntuConfigPattern:
    def test_matching_value_passes(self, ubuntu_hardened):
        pattern = UbuntuConfigPattern(ubuntu_hardened, "/etc/login.defs",
                                      "ENCRYPT_METHOD", "SHA512")
        assert pattern.check() is CheckStatus.PASS

    def test_value_comparison_case_insensitive(self, ubuntu_hardened):
        pattern = UbuntuConfigPattern(ubuntu_hardened, "/etc/login.defs",
                                      "ENCRYPT_METHOD", "sha512")
        assert pattern.check() is CheckStatus.PASS

    def test_missing_key_fails(self, ubuntu_default):
        pattern = UbuntuConfigPattern(ubuntu_default, "/etc/ssh/sshd_config",
                                      "PermitEmptyPasswords", "no")
        assert pattern.check() is CheckStatus.FAIL

    def test_enforce_writes_value_and_event(self, ubuntu_default):
        pattern = UbuntuConfigPattern(ubuntu_default, "/etc/ssh/sshd_config",
                                      "PermitEmptyPasswords", "no")
        assert pattern.enforce() is EnforcementStatus.SUCCESS
        assert pattern.check() is CheckStatus.PASS
        assert ubuntu_default.events.last("config.enforced") is not None


class TestUbuntuServicePattern:
    def test_active_enabled_service_passes(self, ubuntu_default):
        pattern = UbuntuServicePattern(ubuntu_default, "ssh")
        assert pattern.check() is CheckStatus.PASS

    def test_unknown_service_fails_then_enforce_registers(self,
                                                          ubuntu_default):
        pattern = UbuntuServicePattern(ubuntu_default, "auditd")
        assert pattern.check() is CheckStatus.FAIL
        assert pattern.enforce() is EnforcementStatus.SUCCESS
        assert pattern.check() is CheckStatus.PASS

    def test_enforce_unmasks_masked_service(self, ubuntu_default):
        ubuntu_default.services.register("auditd", masked=True)
        pattern = UbuntuServicePattern(ubuntu_default, "auditd")
        assert pattern.enforce() is EnforcementStatus.SUCCESS
        assert ubuntu_default.services.is_active("auditd")


class TestConcreteFindings:
    def test_d27_list_matches_deliverable(self):
        ids = [cls.__name__ for cls in D27_FINDINGS]
        assert ids == ["V_219157", "V_219158", "V_219161", "V_219177",
                       "V_219304", "V_219318", "V_219319", "V_219343"]

    def test_v219157_targets_nis(self, ubuntu_default):
        finding = V_219157(ubuntu_default)
        assert finding.package_name == "nis"
        assert not finding.must_be_installed
        assert finding.finding_id() == "V-219157"

    def test_v219158_is_high_severity(self, ubuntu_default):
        assert V_219158(ubuntu_default).severity() == "high"

    def test_v219161_requires_openssh(self, ubuntu_default):
        finding = V_219161(ubuntu_default)
        assert finding.package_name == "openssh-server"
        assert finding.check() is CheckStatus.PASS

    def test_v219177_login_defs(self, ubuntu_adversarial):
        finding = V_219177(ubuntu_adversarial)
        assert finding.check() is CheckStatus.FAIL
        finding.enforce()
        assert ubuntu_adversarial.config.get(
            "/etc/login.defs", "ENCRYPT_METHOD") == "SHA512"

    def test_v219304_requires_vlock(self, ubuntu_hardened):
        assert V_219304(ubuntu_hardened).check() is CheckStatus.PASS

    def test_all_findings_pass_on_hardened(self, ubuntu_hardened):
        for requirement in instantiate_all(ubuntu_hardened):
            assert requirement.check() is CheckStatus.PASS, \
                requirement.finding_id()

    def test_all_findings_remediable_on_adversarial(self, ubuntu_adversarial):
        for requirement in instantiate_all(ubuntu_adversarial):
            before, enforcement, after = requirement.check_enforce_check()
            assert after is CheckStatus.PASS, requirement.finding_id()

    def test_metadata_consistent(self, ubuntu_default):
        for cls in ALL_UBUNTU_FINDINGS:
            requirement = cls(ubuntu_default)
            assert requirement.finding_id().startswith("V-")
            assert requirement.stig().startswith("Canonical Ubuntu")
            assert requirement.description()
