"""Unit tests for the STIG catalogue and compliance reports."""

import pytest

from repro.rqcode.catalog import StigCatalog, default_catalog
from repro.rqcode.concepts import CheckStatus
from repro.rqcode.ubuntu import V_219157
from repro.rqcode.win10 import V_63447


class TestRegistry:
    def test_default_catalog_contents(self, catalog):
        assert len(catalog) == 26
        assert "V-63447" in catalog
        assert "V-219157" in catalog
        assert "V-99999" not in catalog

    def test_finding_ids_by_platform(self, catalog):
        windows = catalog.finding_ids("windows")
        ubuntu = catalog.finding_ids("ubuntu")
        assert len(windows) == 12
        assert len(ubuntu) == 14
        assert set(windows).isdisjoint(ubuntu)

    def test_get_unknown_raises(self, catalog):
        with pytest.raises(KeyError):
            catalog.get("V-00000")

    def test_register_derives_finding_id(self):
        catalog = StigCatalog()
        entry = catalog.register(V_63447, platform="windows")
        assert entry.finding_id == "V-63447"

    def test_instantiate_for_routes_by_platform(self, catalog,
                                                ubuntu_default):
        requirements = catalog.instantiate_for(ubuntu_default)
        assert len(requirements) == 14
        assert all(r.finding_id().startswith("V-219")
                   for r in requirements)


class TestCheckCampaign:
    def test_check_does_not_mutate(self, catalog, ubuntu_default):
        before_nis = ubuntu_default.dpkg.is_installed("nis")
        report = catalog.check_host(ubuntu_default)
        assert ubuntu_default.dpkg.is_installed("nis") == before_nis
        assert report.total == 14
        assert all(r.enforcement is None for r in report.results)

    def test_hardened_host_fully_compliant(self, catalog, ubuntu_hardened):
        report = catalog.check_host(ubuntu_hardened)
        assert report.compliance_ratio == 1.0
        assert report.failing == 0

    def test_adversarial_host_mostly_failing(self, catalog,
                                             ubuntu_adversarial):
        report = catalog.check_host(ubuntu_adversarial)
        assert report.compliance_ratio < 0.3

    def test_severity_from_instance_metadata(self, catalog, ubuntu_default):
        report = catalog.check_host(ubuntu_default)
        severities = {r.finding_id: r.severity for r in report.results}
        assert severities["V-219158"] == "high"
        assert severities["V-219157"] == "medium"


class TestHardenCampaign:
    def test_harden_reaches_full_compliance(self, catalog,
                                            ubuntu_adversarial):
        report = catalog.harden_host(ubuntu_adversarial)
        assert report.compliance_ratio == 1.0
        assert report.remediated > 0

    def test_harden_windows_adversarial(self, catalog, win_adversarial):
        report = catalog.harden_host(win_adversarial)
        assert report.compliance_ratio == 1.0
        assert report.remediated == 12

    def test_harden_is_idempotent(self, catalog, ubuntu_adversarial):
        catalog.harden_host(ubuntu_adversarial)
        second = catalog.harden_host(ubuntu_adversarial)
        assert second.remediated == 0
        assert second.compliance_ratio == 1.0

    def test_rows_shape(self, catalog, ubuntu_default):
        report = catalog.harden_host(ubuntu_default)
        rows = report.rows()
        assert len(rows) == report.total
        assert set(rows[0]) == {"finding", "severity", "before",
                                "enforce", "after"}

    def test_summary_mentions_host(self, catalog, ubuntu_default):
        report = catalog.check_host(ubuntu_default)
        assert "ubuntu-default" in report.summary()


class TestEmptyCatalog:
    def test_empty_catalog_reports_vacuous_compliance(self, ubuntu_default):
        report = StigCatalog().check_host(ubuntu_default)
        assert report.total == 0
        assert report.compliance_ratio == 1.0
