"""Unit tests for the SOC metrics registry."""

import threading

import pytest

from repro.soc.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter()
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_concurrent_increments_are_not_lost(self):
        counter = Counter()

        def bump():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(2.5)
        gauge.dec()
        assert gauge.value == 11.5


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        histogram = Histogram(buckets=(1, 5, 10))
        for value in (0, 1, 3, 7, 100):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 5
        assert snap["sum"] == 111
        assert snap["min"] == 0
        assert snap["max"] == 100
        assert snap["buckets"] == {
            "le_1": 2, "le_5": 3, "le_10": 4, "le_inf": 5}

    def test_empty_histogram_snapshot(self):
        snap = Histogram().snapshot()
        assert snap["count"] == 0
        assert snap["mean"] == 0.0
        assert snap["min"] is None

    def test_mean(self):
        histogram = Histogram()
        histogram.observe(2)
        histogram.observe(4)
        assert histogram.mean == 3.0


class TestMetricsRegistry:
    def test_same_name_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_snapshot_is_plain_data(self):
        import json

        registry = MetricsRegistry()
        registry.counter("events").inc(3)
        registry.gauge("depth").set(7)
        registry.histogram("lag").observe(2)
        snap = registry.snapshot()
        assert snap["counters"] == {"events": 3}
        assert snap["gauges"] == {"depth": 7}
        assert snap["histograms"]["lag"]["count"] == 1
        json.dumps(snap)  # must be JSON-serializable as-is

    def test_snapshot_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("zulu").inc()
        registry.counter("alpha").inc()
        assert list(registry.snapshot()["counters"]) == ["alpha", "zulu"]
