"""Long-horizon stress scenario: a fleet under sustained random abuse.

One seeded pseudo-random campaign interleaves every kind of drift, tool
breakage and repair across a mixed fleet for hundreds of events, then
asserts the global invariants the framework promises:

* with working tooling, the fleet always converges back to 100%
  compliance;
* every effective incident has zero detection latency;
* monitors stay armed (a later drift is still detected);
* the repository and reports remain renderable throughout.
"""

import random

import pytest

from repro.core import VeriDevOpsOrchestrator, report_for_cycle
from repro.core.fleet import Fleet, FleetProtection
from repro.environment import (
    hardened_ubuntu_host,
    hardened_windows_host,
)
from repro.rqcode import default_catalog

UBUNTU_PACKAGE_DRIFT = ("nis", "rsh-server", "telnetd")
UBUNTU_REMOVALS = ("aide", "vlock", "auditd")
CONFIG_DRIFT = (
    ("/etc/ssh/sshd_config", "PermitEmptyPasswords", "yes"),
    ("/etc/ssh/sshd_config", "ClientAliveInterval", "0"),
    ("/etc/login.defs", "ENCRYPT_METHOD", "MD5"),
)
WIN_AUDIT_DRIFT = ("Logon", "User Account Management",
                   "Sensitive Privilege Use")
WIN_REGISTRY_DRIFT = (("LmCompatibilityLevel", "0"),
                      ("RestrictAnonymous", "0"))


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_fleet_survives_sustained_drift_storm(seed):
    rng = random.Random(seed)
    catalog = default_catalog()
    fleet = Fleet("stress", catalog)
    for index in range(3):
        fleet.add(hardened_ubuntu_host(f"u{index}"))
    fleet.add(hardened_windows_host("w0"))
    protection = FleetProtection(fleet).start()

    broken_hosts = set()
    for round_index in range(120):
        host = rng.choice(fleet.hosts())
        action = rng.randrange(8)
        if action == 0 and host.os_family == "ubuntu" \
                and not host.dpkg.broken:
            host.drift_install_package(rng.choice(UBUNTU_PACKAGE_DRIFT))
        elif action == 1 and host.os_family == "ubuntu" \
                and not host.dpkg.broken:
            host.drift_remove_package(rng.choice(UBUNTU_REMOVALS))
        elif action == 2 and host.os_family == "ubuntu":
            host.drift_config_value(*rng.choice(CONFIG_DRIFT))
        elif action == 3 and host.os_family == "ubuntu":
            host.drift_stop_service(rng.choice(("ssh", "rsyslog")))
        elif action == 4 and host.os_family == "windows":
            host.drift_audit_policy(rng.choice(WIN_AUDIT_DRIFT))
        elif action == 5 and host.os_family == "windows":
            host.drift_registry_value(*rng.choice(WIN_REGISTRY_DRIFT))
        elif action == 6 and host.os_family == "windows":
            host.drift_account_policy(threshold=0)
        elif action == 7:
            # Occasionally wedge and un-wedge the package manager.
            if host.name in broken_hosts:
                host.dpkg.repair_tool()
                broken_hosts.discard(host.name)
            elif rng.random() < 0.3:
                host.dpkg.break_tool()
                broken_hosts.add(host.name)

    # Un-wedge everything and run one remediation sweep for whatever
    # failed to repair while tooling was broken.
    for name in list(broken_hosts):
        fleet.host(name).dpkg.repair_tool()
    posture = fleet.harden()
    assert posture.worst_ratio == 1.0, posture.rows()

    incidents = protection.incidents()
    effective = [i for i in incidents if i.effective]
    assert effective, "the storm must have caused real repairs"
    assert all(i.detection_latency == 0 for i in effective)

    # Monitors are still armed: one more drift is detected and fixed.
    probe = fleet.host("u0")
    before = len(protection.incidents())
    probe.drift_install_package("nis")
    assert len(protection.incidents()) > before
    assert not probe.dpkg.is_installed("nis")

    # Reporting still renders end-to-end.
    orchestrator = protection.orchestrator
    markdown = report_for_cycle(
        orchestrator, _dummy_run(), protection.loop_for("u0")).render()
    assert "Operations incidents" in markdown


def _dummy_run():
    from repro.core.pipeline import Pipeline, Stage

    return Pipeline([Stage("noop")]).run()


def test_storm_with_permanently_broken_tooling_reports_honestly():
    """With the package manager wedged for good, the framework must
    report the failure, not mask it."""
    catalog = default_catalog()
    host = hardened_ubuntu_host("wedged")
    host.drift_install_package("nis")
    host.dpkg.break_tool()
    report = catalog.harden_host(host)
    assert report.compliance_ratio < 1.0
    failing = [r for r in report.results if r.finding_id == "V-219157"]
    assert failing[0].after.value == "FAIL"
    assert failing[0].enforcement.value == "FAILURE"
