"""Unit tests for the five security gates."""

import pytest

from repro.core.gates import (
    ComplianceGate,
    FormalizationGate,
    MonitoringGate,
    RequirementsQualityGate,
    VerificationGate,
)
from repro.core.pipeline import PipelineContext
from repro.core.repository import (
    RequirementRecord,
    RequirementRepository,
    RequirementSource,
    RequirementStatus,
)
from repro.rqcode import default_catalog
from repro.specpatterns import Absence, Globally, Response
from repro.ta import Edge, Location, Network, TimedAutomaton


def repository_with(*texts, pattern=None):
    repository = RequirementRepository()
    for index, text in enumerate(texts, start=1):
        repository.add(RequirementRecord(
            req_id=f"R-{index}", text=text,
            source=RequirementSource.NATURAL_LANGUAGE,
            pattern=pattern, scope=Globally() if pattern else None))
    return repository


class TestRequirementsQualityGate:
    def test_passes_clean_requirements(self):
        context = PipelineContext(repository=repository_with(
            "The system shall lock the account after 3 attempts.",
            "The system shall record every privileged operation.",
        ))
        result = RequirementsQualityGate(max_smelly_ratio=0.2).evaluate(
            context)
        assert result.passed
        assert context.get("nalabs_report").total == 2

    def test_fails_smelly_requirements(self):
        context = PipelineContext(repository=repository_with(
            "The system may be adequate where possible.",
            "The system could possibly react in a timely manner.",
        ))
        result = RequirementsQualityGate(max_smelly_ratio=0.2).evaluate(
            context)
        assert not result.passed
        assert result.metrics["smelly_ratio"] == 1.0

    def test_attaches_flags_and_advances_status(self):
        repository = repository_with("The system may be adequate.")
        context = PipelineContext(repository=repository)
        RequirementsQualityGate(max_smelly_ratio=1.0).evaluate(context)
        record = repository.get("R-1")
        assert "vagueness" in record.quality_flags
        assert record.status is RequirementStatus.ANALYZED

    def test_empty_repository_passes(self):
        context = PipelineContext(repository=RequirementRepository())
        assert RequirementsQualityGate().evaluate(context).passed

    def test_duplicate_accounting_in_metrics(self):
        context = PipelineContext(repository=repository_with(
            "The system shall log every privileged operation.",
            "The system shall log every privileged operation.",
            "The system shall lock the account after 3 attempts.",
        ))
        result = RequirementsQualityGate(max_smelly_ratio=1.0).evaluate(
            context)
        assert result.metrics["duplicate_groups"] == 1.0
        assert result.metrics["duplicate_requirements"] == 2.0


class TestFormalizationGate:
    def test_renders_ltl_and_tctl(self):
        repository = repository_with(
            "No exploit shall occur.", pattern=Absence(p="exploit"))
        context = PipelineContext(repository=repository)
        result = FormalizationGate(min_formalized_ratio=1.0).evaluate(
            context)
        assert result.passed
        record = repository.get("R-1")
        assert record.ltl == "G (!(exploit))"
        assert record.tctl == "A[] not exploit"
        assert record.status is RequirementStatus.FORMALIZED

    def test_fails_below_threshold(self):
        repository = repository_with("Free prose without a pattern.")
        context = PipelineContext(repository=repository)
        result = FormalizationGate(min_formalized_ratio=0.5).evaluate(
            context)
        assert not result.passed


class TestVerificationGate:
    def _network(self, safe):
        target = "safe" if safe else "err"
        automaton = TimedAutomaton(
            "M", [], [Location("start"), Location("safe"),
                      Location("err")],
            [Edge("start", target, action="go")],
        )
        return Network([automaton])

    def test_all_tasks_hold(self):
        context = PipelineContext(verification_tasks=[
            ("safety", self._network(safe=True), "A[] not M.err"),
        ])
        result = VerificationGate().evaluate(context)
        assert result.passed
        assert context.get("verification_results")[0][1].satisfied

    def test_failing_task_reports_label(self):
        context = PipelineContext(verification_tasks=[
            ("safety", self._network(safe=False), "A[] not M.err"),
        ])
        result = VerificationGate().evaluate(context)
        assert not result.passed
        assert "safety" in result.detail

    def test_no_tasks_is_vacuous_pass(self):
        assert VerificationGate().evaluate(PipelineContext()).passed

    def test_advances_formalized_records(self):
        repository = repository_with("x", pattern=Absence(p="e"))
        FormalizationGate().evaluate(PipelineContext(repository=repository))
        context = PipelineContext(repository=repository,
                                  verification_tasks=[])
        VerificationGate().evaluate(context)
        assert repository.get("R-1").status is RequirementStatus.VERIFIED

    def test_cache_stats_carry_dedup_accounting(self, tmp_path):
        from repro.prevention import VerificationCache

        repository = repository_with(
            "The system shall log every privileged operation.",
            "The system shall log every privileged operation.",
        )
        context = PipelineContext(
            repository=repository,
            verification_tasks=[
                ("safety", self._network(safe=True), "A[] not M.err"),
            ])
        result = VerificationGate(
            cache=VerificationCache(str(tmp_path / "cache"))).evaluate(
            context)
        stats = context.get("verification_cache_stats")
        assert stats["dedup_groups"] == 1
        assert stats["dedup_requirements"] == 2
        assert result.metrics["cache_dedup_groups"] == 1.0
        assert result.metrics["cache_dedup_requirements"] == 2.0


class TestComplianceGate:
    def test_auto_remediates_adversarial_host(self, ubuntu_adversarial):
        gate = ComplianceGate(default_catalog(), auto_remediate=True)
        context = PipelineContext(hosts=[ubuntu_adversarial])
        result = gate.evaluate(context)
        assert result.passed
        assert context.get("compliance_reports")[0].compliance_ratio == 1.0

    def test_check_only_fails_on_drifted_host(self, ubuntu_adversarial):
        gate = ComplianceGate(default_catalog(), auto_remediate=False)
        context = PipelineContext(hosts=[ubuntu_adversarial])
        result = gate.evaluate(context)
        assert not result.passed
        assert result.metrics["worst_compliance"] < 1.0

    def test_no_hosts_passes(self):
        gate = ComplianceGate(default_catalog())
        assert gate.evaluate(PipelineContext()).passed

    def test_multiple_hosts_worst_case(self, ubuntu_hardened,
                                       ubuntu_adversarial):
        gate = ComplianceGate(default_catalog(), auto_remediate=False,
                              min_compliance=0.9)
        context = PipelineContext(
            hosts=[ubuntu_hardened, ubuntu_adversarial])
        result = gate.evaluate(context)
        assert not result.passed  # the adversarial host drags it down


class TestMonitoringGate:
    def test_arms_monitors_for_ltl_records(self):
        repository = repository_with(
            "responses", pattern=Response(p="req", s="ack"))
        FormalizationGate().evaluate(PipelineContext(repository=repository))
        context = PipelineContext(repository=repository)
        result = MonitoringGate().evaluate(context)
        assert result.passed
        monitors = context.get("monitors")
        assert "R-1" in monitors

    def test_unparseable_ltl_fails_gate(self):
        repository = repository_with("x", pattern=Absence(p="e"))
        FormalizationGate().evaluate(PipelineContext(repository=repository))
        repository.get("R-1").ltl = "G (("  # corrupt the artifact
        context = PipelineContext(repository=repository)
        result = MonitoringGate().evaluate(context)
        assert not result.passed
        assert "R-1" in result.detail
