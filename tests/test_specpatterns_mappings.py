"""Unit tests for the pattern x scope LTL/TCTL mappings.

The LTL mappings are validated *semantically*: each formula is checked
with exact LTLf evaluation against satisfying and violating traces,
which is far stronger than comparing formula strings.
"""

import pytest

from repro.ltl import evaluate_ltlf
from repro.specpatterns import (
    Absence,
    AfterQ,
    AfterQUntilR,
    BeforeR,
    BetweenQAndR,
    BoundedExistence,
    Existence,
    Globally,
    PatternScopeUnsupported,
    Precedence,
    PrecedenceChain,
    Response,
    ResponseChain,
    TimedResponse,
    Universality,
    supported_combinations,
    to_ltl,
    to_tctl,
)


def T(*names):
    """One trace step with the given events true."""
    return set(names)


class TestCoverage:
    def test_support_matrix_size(self):
        combos = supported_combinations()
        assert len(combos) == 29
        # Five core patterns x five scopes...
        core = [c for c in combos if c[0].__name__ in
                ("Absence", "Universality", "Existence", "Precedence",
                 "Response")]
        assert len(core) == 25

    def test_unsupported_combination_raises(self):
        with pytest.raises(PatternScopeUnsupported):
            to_ltl(BoundedExistence(p="p"), BeforeR(r="r"))
        with pytest.raises(PatternScopeUnsupported):
            to_ltl(ResponseChain(p="p", s="s", t="t"), AfterQ(q="q"))


class TestAbsence:
    def test_globally(self):
        formula = to_ltl(Absence(p="p"), Globally())
        assert evaluate_ltlf(formula, [T(), T()])
        assert not evaluate_ltlf(formula, [T(), T("p")])

    def test_before_r(self):
        formula = to_ltl(Absence(p="p"), BeforeR(r="r"))
        assert evaluate_ltlf(formula, [T(), T("r"), T("p")])  # p after r ok
        assert not evaluate_ltlf(formula, [T("p"), T("r")])
        assert evaluate_ltlf(formula, [T("p")])  # r never occurs: vacuous

    def test_after_q(self):
        formula = to_ltl(Absence(p="p"), AfterQ(q="q"))
        assert evaluate_ltlf(formula, [T("p"), T("q"), T()])
        assert not evaluate_ltlf(formula, [T("q"), T("p")])

    def test_between(self):
        formula = to_ltl(Absence(p="p"), BetweenQAndR(q="q", r="r"))
        assert evaluate_ltlf(formula, [T("q"), T(), T("r")])
        assert not evaluate_ltlf(formula, [T("q"), T("p"), T("r")])
        # Interval never closes: no obligation.
        assert evaluate_ltlf(formula, [T("q"), T("p")])

    def test_after_until(self):
        formula = to_ltl(Absence(p="p"), AfterQUntilR(q="q", r="r"))
        # Open-ended: p inside the unclosed segment violates.
        assert not evaluate_ltlf(formula, [T("q"), T("p")])
        assert evaluate_ltlf(formula, [T("q"), T("r"), T("p")])


class TestUniversality:
    def test_globally(self):
        formula = to_ltl(Universality(p="p"), Globally())
        assert evaluate_ltlf(formula, [T("p"), T("p")])
        assert not evaluate_ltlf(formula, [T("p"), T()])

    def test_between(self):
        formula = to_ltl(Universality(p="p"), BetweenQAndR(q="q", r="r"))
        assert evaluate_ltlf(formula, [T("q", "p"), T("p"), T("r")])
        assert not evaluate_ltlf(formula, [T("q", "p"), T(), T("r")])


class TestExistence:
    def test_globally(self):
        formula = to_ltl(Existence(p="p"), Globally())
        assert evaluate_ltlf(formula, [T(), T("p")])
        assert not evaluate_ltlf(formula, [T(), T()])

    def test_before_r(self):
        formula = to_ltl(Existence(p="p"), BeforeR(r="r"))
        assert evaluate_ltlf(formula, [T("p"), T("r")])
        assert not evaluate_ltlf(formula, [T(), T("r"), T("p")])

    def test_after_q(self):
        formula = to_ltl(Existence(p="p"), AfterQ(q="q"))
        assert evaluate_ltlf(formula, [T("q"), T(), T("p")])
        assert not evaluate_ltlf(formula, [T("q"), T()])
        assert evaluate_ltlf(formula, [T(), T()])  # q never occurs


class TestPrecedence:
    def test_globally(self):
        formula = to_ltl(Precedence(p="p", s="s"), Globally())
        assert evaluate_ltlf(formula, [T("s"), T("p")])
        assert not evaluate_ltlf(formula, [T("p")])
        assert evaluate_ltlf(formula, [T(), T()])  # p never occurs

    def test_simultaneous_counts(self):
        formula = to_ltl(Precedence(p="p", s="s"), Globally())
        # p and s at the same instant: s has not strictly preceded,
        # but Dwyer's weak-until form accepts the simultaneous case.
        assert evaluate_ltlf(formula, [T("p", "s")])


class TestResponse:
    def test_globally(self):
        formula = to_ltl(Response(p="p", s="s"), Globally())
        assert evaluate_ltlf(formula, [T("p"), T(), T("s")])
        assert not evaluate_ltlf(formula, [T("p"), T()])
        assert evaluate_ltlf(formula, [T(), T()])

    def test_after_q(self):
        formula = to_ltl(Response(p="p", s="s"), AfterQ(q="q"))
        assert not evaluate_ltlf(formula, [T("q"), T("p")])
        assert evaluate_ltlf(formula, [T("p"), T("q")])  # p before scope


class TestChains:
    def test_response_chain(self):
        formula = to_ltl(ResponseChain(p="p", s="s", t="t"), Globally())
        assert evaluate_ltlf(formula, [T("p"), T("s"), T("t")])
        assert not evaluate_ltlf(formula, [T("p"), T("s")])
        # t must come strictly after s.
        assert not evaluate_ltlf(formula, [T("p"), T("s", "t")])

    def test_precedence_chain(self):
        formula = to_ltl(PrecedenceChain(p="p", s="s", t="t"), Globally())
        assert evaluate_ltlf(formula, [T("s"), T("t"), T("p")])
        assert not evaluate_ltlf(formula, [T("s"), T("p")])
        assert evaluate_ltlf(formula, [T(), T()])  # p never occurs


class TestBoundedExistence:
    def test_at_most_two_segments(self):
        formula = to_ltl(BoundedExistence(p="p"), Globally())
        assert evaluate_ltlf(formula, [T("p"), T(), T("p"), T()])
        assert not evaluate_ltlf(
            formula, [T("p"), T(), T("p"), T(), T("p")])

    def test_non_default_bound_unsupported(self):
        with pytest.raises(PatternScopeUnsupported):
            to_ltl(BoundedExistence(p="p", bound=3), Globally())


class TestTctl:
    def test_timed_response_carries_bound(self):
        text = to_tctl(TimedResponse(p="v", s="a", bound=30))
        assert "A<>[0,30]" in text

    def test_response_is_leads_to(self):
        assert to_tctl(Response(p="p", s="s")) == "p --> s"

    def test_scope_wrapping(self):
        text = to_tctl(Absence(p="p"), BetweenQAndR(q="q", r="r"))
        assert text.startswith("between(q,r):")

    def test_untimed_ltl_abstraction_of_timed_response(self):
        formula = to_ltl(TimedResponse(p="p", s="s", bound=5), Globally())
        assert evaluate_ltlf(formula, [T("p"), T("s")])
