"""Unit tests for the DBM zone algebra."""

import pytest

from repro.ta.dbm import DBM, INF, LE_ZERO, bound_add, bound_str, decode, encode


class TestBoundEncoding:
    @pytest.mark.parametrize("value,strict", [
        (0, False), (0, True), (5, False), (-3, True), (100, False),
    ])
    def test_encode_decode_round_trip(self, value, strict):
        assert decode(encode(value, strict)) == (value, strict)

    def test_strict_is_tighter_than_non_strict(self):
        assert encode(5, True) < encode(5, False)

    def test_le_is_tighter_than_lt_of_next(self):
        assert encode(5, False) < encode(6, True)

    def test_bound_add_strictness(self):
        le2, le3 = encode(2, False), encode(3, False)
        lt2 = encode(2, True)
        assert bound_add(le2, le3) == encode(5, False)
        assert bound_add(lt2, le3) == encode(5, True)

    def test_bound_add_infinity(self):
        assert bound_add(INF, encode(1, False)) == INF

    def test_decode_infinity_raises(self):
        with pytest.raises(ValueError):
            decode(INF)

    def test_bound_str(self):
        assert bound_str(encode(4, False)) == "<=4"
        assert bound_str(encode(4, True)) == "<4"
        assert bound_str(INF) == "<inf"


class TestZoneBasics:
    def test_zero_zone_is_nonempty_point(self):
        zone = DBM.zero(2)
        assert not zone.is_empty()
        # Every clock is exactly 0: x1 <= 0 and x1 >= 0.
        assert zone.satisfies(1, 0, encode(0, False))
        assert zone.satisfies(0, 1, encode(0, False))

    def test_unconstrained_allows_large_values(self):
        zone = DBM.unconstrained(2)
        assert zone.intersects(1, 0, encode(10 ** 6, False))
        # But clocks stay non-negative: no valuation has x1 <= -1.
        assert not zone.intersects(1, 0, encode(-1, False))

    def test_up_removes_upper_bounds(self):
        zone = DBM.zero(2).up()
        assert zone.intersects(1, 0, encode(100, False))
        # Delay keeps differences: x1 - x2 stays 0.
        assert zone.satisfies(1, 2, encode(0, False))
        assert zone.satisfies(2, 1, encode(0, False))

    def test_constrain_then_empty(self):
        zone = DBM.zero(1)
        # x1 >= 5 contradicts x1 == 0.
        zone.constrain(0, 1, encode(-5, False))
        assert zone.is_empty()

    def test_reset_after_delay(self):
        zone = DBM.zero(2).up()
        zone.constrain(1, 0, encode(10, False))   # x1 <= 10
        zone.reset(2)
        # x2 == 0 now, x1 unchanged.
        assert zone.satisfies(2, 0, encode(0, False))
        assert zone.intersects(1, 0, encode(10, False))

    def test_copy_is_independent(self):
        zone = DBM.zero(1)
        copy = zone.copy()
        copy.up()
        assert zone.satisfies(1, 0, encode(0, False))
        assert copy.intersects(1, 0, encode(50, False))


class TestInclusionAndSatisfaction:
    def test_zero_included_in_up(self):
        zero = DBM.zero(2)
        delayed = DBM.zero(2).up()
        assert delayed.includes(zero)
        assert not zero.includes(delayed)

    def test_includes_self(self):
        zone = DBM.zero(2).up()
        assert zone.includes(zone.copy())

    def test_satisfies_versus_intersects(self):
        zone = DBM.zero(1).up()
        zone.constrain(1, 0, encode(10, False))    # 0 <= x1 <= 10
        assert zone.satisfies(1, 0, encode(10, False))     # all <= 10
        assert not zone.satisfies(1, 0, encode(5, False))  # not all <= 5
        assert zone.intersects(1, 0, encode(5, False))     # some <= 5
        assert not zone.intersects(0, 1, encode(-11, False))  # none >= 11

    def test_down_restores_past(self):
        zone = DBM.zero(1).up()
        zone.constrain(0, 1, encode(-5, False))   # x1 >= 5
        zone.down()
        # The past of x1 >= 5 reaches x1 = 0.
        assert zone.intersects(1, 0, encode(0, False))


class TestExtrapolation:
    def test_bounds_above_k_become_infinite(self):
        zone = DBM.zero(1).up()
        zone.constrain(1, 0, encode(100, False))  # x1 <= 100
        zone.extrapolate(10)
        assert zone.bound(1, 0) == INF

    def test_lower_bounds_below_minus_k_relax(self):
        zone = DBM.zero(1).up()
        zone.constrain(0, 1, encode(-100, False))  # x1 >= 100
        zone.extrapolate(10)
        # Now only x1 > 10 is remembered.
        assert zone.intersects(1, 0, encode(11, False))
        assert not zone.intersects(1, 0, encode(10, False))

    def test_small_bounds_untouched(self):
        zone = DBM.zero(1).up()
        zone.constrain(1, 0, encode(5, False))
        key_before = zone.key()
        zone.extrapolate(10)
        assert zone.key() == key_before

    def test_extrapolation_enlarges(self):
        zone = DBM.zero(1).up()
        zone.constrain(1, 0, encode(100, False))
        original = zone.copy()
        zone.extrapolate(10)
        assert zone.includes(original)


def random_canonical_dbm(rng, n):
    """A random non-empty canonical DBM built from feasible constraints."""
    zone = DBM.unconstrained(n)
    for _ in range(rng.randrange(0, 3 * n)):
        i = rng.randrange(0, n + 1)
        j = rng.randrange(0, n + 1)
        if i == j:
            continue
        bound = encode(rng.randrange(-6, 12), strict=bool(rng.getrandbits(1)))
        probe = zone.copy().constrain_full(i, j, bound)
        if not probe.is_empty():
            zone = probe
    return zone


class TestIncrementalClosure:
    """The incremental re-closures must match full Floyd-Warshall."""

    def test_constrain_matches_constrain_full_randomized(self):
        import random
        rng = random.Random(0xD811)
        for trial in range(300):
            n = rng.randrange(1, 5)
            zone = random_canonical_dbm(rng, n)
            i = rng.randrange(0, n + 1)
            j = rng.randrange(0, n + 1)
            if i == j:
                continue
            bound = encode(rng.randrange(-8, 12),
                           strict=bool(rng.getrandbits(1)))
            fast = zone.copy().constrain(i, j, bound)
            full = zone.copy().constrain_full(i, j, bound)
            assert fast.is_empty() == full.is_empty(), \
                f"trial {trial}: emptiness diverged"
            if not full.is_empty():
                assert fast.key() == full.key(), \
                    f"trial {trial}: closure diverged"

    def test_down_matches_full_floyd_warshall_randomized(self):
        import random
        rng = random.Random(0xD822)
        for trial in range(200):
            n = rng.randrange(1, 5)
            zone = random_canonical_dbm(rng, n)
            fast = zone.copy().down()
            # Reference: same row-0 recompute, then a full closure.
            slow = zone.copy()
            dim = slow.dim
            for j in range(1, dim):
                lowest = LE_ZERO
                for i in range(1, dim):
                    if slow.m[i * dim + j] < lowest:
                        lowest = slow.m[i * dim + j]
                slow.m[j] = lowest
            slow.canonicalize()
            assert fast.key() == slow.key(), f"trial {trial}: down diverged"

    def test_extrapolate_fast_matches_full_randomized(self):
        import random
        rng = random.Random(0xD844)
        for trial in range(300):
            n = rng.randrange(1, 5)
            zone = random_canonical_dbm(rng, n)
            k = rng.randrange(1, 8)
            fast = zone.copy().extrapolate_fast(k)
            full = zone.copy().extrapolate(k)
            assert fast.key() == full.key(), \
                f"trial {trial}: extrapolation diverged (k={k})"

    def test_chained_operations_stay_canonical(self):
        import random
        rng = random.Random(0xD833)
        for trial in range(100):
            n = rng.randrange(1, 4)
            zone = random_canonical_dbm(rng, n)
            for _ in range(rng.randrange(1, 6)):
                op = rng.choice(["up", "down", "reset", "constrain"])
                if op == "up":
                    zone.up()
                elif op == "down":
                    zone.down()
                elif op == "reset":
                    zone.reset(rng.randrange(1, n + 1))
                else:
                    i = rng.randrange(0, n + 1)
                    j = rng.randrange(0, n + 1)
                    if i == j:
                        continue
                    bound = encode(rng.randrange(-6, 12),
                                   strict=bool(rng.getrandbits(1)))
                    probe = zone.copy().constrain(i, j, bound)
                    if probe.is_empty():
                        continue
                    zone = probe
            reference = zone.copy().canonicalize()
            assert zone.key() == reference.key(), \
                f"trial {trial}: non-canonical after chained ops"


class TestHashability:
    def test_equal_zones_share_key(self):
        a = DBM.zero(2).up()
        b = DBM.zero(2).up()
        assert a == b
        assert a.key() == b.key()
        assert hash(a) == hash(b)

    def test_repr_renders(self):
        assert "DBM" in repr(DBM.zero(1))
