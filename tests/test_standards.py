"""Unit tests for the IEC 62443 slice and gap analysis."""

import pytest

from repro.standards import (
    DEFAULT_SR_MAPPING,
    FoundationalRequirement,
    GapAnalysis,
    IEC62443_SRS,
    SecurityLevel,
    SrStatus,
    requirements_for_level,
)


class TestRequirementSlice:
    def test_all_seven_frs_represented(self):
        frs = {sr.fr for sr in IEC62443_SRS}
        assert frs == set(FoundationalRequirement)

    def test_sr_ids_unique(self):
        ids = [sr.sr_id for sr in IEC62443_SRS]
        assert len(ids) == len(set(ids))

    def test_levels_are_cumulative(self):
        sl1 = requirements_for_level(SecurityLevel.SL1)
        sl2 = requirements_for_level(SecurityLevel.SL2)
        sl4 = requirements_for_level(SecurityLevel.SL4)
        assert set(sr.sr_id for sr in sl1) <= \
            set(sr.sr_id for sr in sl2) <= \
            set(sr.sr_id for sr in sl4)
        assert len(sl4) == len(IEC62443_SRS)

    def test_sl2_adds_requirements(self):
        sl1_ids = {sr.sr_id for sr in
                   requirements_for_level(SecurityLevel.SL1)}
        assert "SR 6.2" not in sl1_ids
        assert "SR 6.2" in {
            sr.sr_id for sr in requirements_for_level(SecurityLevel.SL2)}

    def test_mapping_references_known_srs(self):
        known = {sr.sr_id for sr in IEC62443_SRS}
        assert set(DEFAULT_SR_MAPPING) <= known


class TestGapAnalysis:
    def test_mapping_finding_ids_exist_in_catalog(self, catalog):
        all_ids = set(catalog.finding_ids())
        for mapping in DEFAULT_SR_MAPPING.values():
            for finding_id in mapping.finding_ids:
                assert finding_id in all_ids, (mapping.sr_id, finding_id)

    def test_hardened_hosts_satisfy_every_evidenced_sr(
            self, catalog, ubuntu_hardened, win_hardened):
        analysis = GapAnalysis(catalog)
        for host in (ubuntu_hardened, win_hardened):
            report = analysis.analyze(host, SecurityLevel.SL2)
            assert report.count(SrStatus.UNSATISFIED) == 0, report.rows()
            assert report.count(SrStatus.PARTIAL) == 0
            assert report.coverage == 1.0

    def test_adversarial_host_fails_evidenced_srs(self, catalog,
                                                  ubuntu_adversarial):
        report = GapAnalysis(catalog).analyze(ubuntu_adversarial)
        assert report.count(SrStatus.UNSATISFIED) > 0
        assert report.coverage < 1.0

    def test_default_host_is_partial(self, catalog, ubuntu_default):
        report = GapAnalysis(catalog).analyze(ubuntu_default)
        statuses = {r.status for r in report.results}
        assert SrStatus.SATISFIED in statuses
        assert (SrStatus.PARTIAL in statuses
                or SrStatus.UNSATISFIED in statuses)

    def test_unmapped_srs_reported_not_hidden(self, catalog,
                                              ubuntu_hardened):
        report = GapAnalysis(catalog).analyze(ubuntu_hardened)
        unmapped = [r.requirement.sr_id for r in report.results
                    if r.status is SrStatus.UNMAPPED]
        assert "SR 5.1" in unmapped  # network segmentation: no evidence

    def test_cross_platform_findings_filtered(self, catalog,
                                              ubuntu_hardened):
        # SR 3.1 maps only to a Windows finding; on Ubuntu it must be
        # UNMAPPED rather than vacuously satisfied.
        report = GapAnalysis(catalog).analyze(ubuntu_hardened)
        sr_31 = next(r for r in report.results
                     if r.requirement.sr_id == "SR 3.1")
        assert sr_31.status is SrStatus.UNMAPPED

    def test_hardening_improves_gap_report(self, catalog,
                                           ubuntu_adversarial):
        analysis = GapAnalysis(catalog)
        before = analysis.analyze(ubuntu_adversarial)
        catalog.harden_host(ubuntu_adversarial)
        after = analysis.analyze(ubuntu_adversarial)
        assert after.coverage > before.coverage
        assert after.count(SrStatus.UNSATISFIED) == 0

    def test_by_fr_histogram(self, catalog, ubuntu_hardened):
        report = GapAnalysis(catalog).analyze(ubuntu_hardened)
        table = report.by_fr()
        assert set(table) == {fr.name for fr in FoundationalRequirement}
        total = sum(sum(h.values()) for h in table.values())
        assert total == len(report.results)

    def test_rows_shape(self, catalog, ubuntu_hardened):
        rows = GapAnalysis(catalog).analyze(ubuntu_hardened).rows()
        assert rows
        assert set(rows[0]) == {"sr", "fr", "name", "status", "evidence"}
