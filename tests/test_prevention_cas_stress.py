"""Multi-writer stress suite for the shared CAS tier.

A CI fleet is N unrelated processes pointed at one shared cache
directory.  The bucket store's whole job is to make that safe with
nothing but the filesystem: advisory per-bucket locks serialize
writers, atomic renames keep readers torn-free, and lamport stamps
make conflicting writes converge last-writer-wins.  This suite hammers
one store root from many threads *and* many spawned processes at once,
then audits the wreckage:

* every bucket file parses (no torn JSON, ever);
* no lost stores — every writer's private label survives the melee;
* conflicting writes to one label converge on the highest stamp.
"""

import json
import multiprocessing
import threading

from repro.prevention import VerificationCache
from repro.prevention.cas.store import BucketStore

WRITERS = 6
ROUNDS = 8


def _stress_worker(shared_root, writer_index, rounds):
    """One fleet member: private labels plus contended ones.

    Module-level so multiprocessing's spawn start method can pickle it.
    """
    cache = VerificationCache(
        shared_root.parent / f"local-{writer_index}", shared=shared_root,
        writer_id=f"stress-w{writer_index}")
    for round_index in range(rounds):
        # A label only this writer touches: must never be lost.
        cache.store(f"private-{writer_index}-{round_index}",
                    f"fp-{writer_index}-{round_index}",
                    {"writer": writer_index, "round": round_index})
        # A label every writer fights over.
        cache.store("contended", f"fp-{writer_index}",
                    {"writer": writer_index, "round": round_index})
        cache.save()
        # Interleave reads with the writes to stress promotion paths.
        cache.lookup(f"private-{writer_index}-{round_index}",
                     f"fp-{writer_index}-{round_index}")
    cache.save()
    return writer_index


def _assert_buckets_parse(shared_root):
    """Every bucket document on disk is complete, valid JSON."""
    buckets_dir = shared_root / "cas" / "buckets"
    bucket_files = sorted(buckets_dir.glob("*.json"))
    assert bucket_files, "stress run produced no buckets"
    for bucket_file in bucket_files:
        document = json.loads(bucket_file.read_text())
        assert isinstance(document, dict)
        assert set(document) == {"entries"}, bucket_file
        for label, entry in document["entries"].items():
            assert set(entry) >= {"fingerprint", "verdict", "stored_at",
                                  "writer_id"}, (bucket_file, label)
    return bucket_files


def _audit(shared_root, writer_count, rounds):
    store = BucketStore(shared_root / "cas")
    # No lost stores: every private label landed.
    for writer_index in range(writer_count):
        for round_index in range(rounds):
            label = f"private-{writer_index}-{round_index}"
            entry = store.get(label)
            assert entry is not None, f"lost store: {label}"
            assert entry["verdict"] == {"writer": writer_index,
                                        "round": round_index}
    # Last-writer-wins on the contended label: whatever fingerprint
    # won, the verdict must be the one stored *with* that fingerprint
    # (no franken-entries mixing two writers), and the winning stamp
    # must be the bucket's maximum for that label's history.
    winner = store.get("contended")
    assert winner is not None
    winning_writer = int(winner["fingerprint"].rsplit("-", 1)[1])
    assert winner["verdict"]["writer"] == winning_writer
    assert winner["writer_id"] == f"stress-w{winning_writer}"
    assert winner["stored_at"] >= 1


class TestThreadStress:
    def test_threads_hammering_one_shared_store(self, tmp_path):
        shared_root = tmp_path / "shared"
        barrier = threading.Barrier(WRITERS)

        def run(writer_index):
            barrier.wait()
            _stress_worker(shared_root, writer_index, ROUNDS)

        threads = [threading.Thread(target=run, args=(i,))
                   for i in range(WRITERS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        _assert_buckets_parse(shared_root)
        _audit(shared_root, WRITERS, ROUNDS)


class TestProcessStress:
    def test_spawned_processes_hammering_one_shared_store(self, tmp_path):
        shared_root = tmp_path / "shared"
        context = multiprocessing.get_context("spawn")
        with context.Pool(processes=WRITERS) as pool:
            results = pool.starmap(
                _stress_worker,
                [(shared_root, writer_index, ROUNDS)
                 for writer_index in range(WRITERS)])
        assert sorted(results) == list(range(WRITERS))
        _assert_buckets_parse(shared_root)
        _audit(shared_root, WRITERS, ROUNDS)


class TestSequencedConflict:
    def test_last_writer_wins_is_deterministic_when_sequenced(
            self, tmp_path):
        """When the race is removed, the later writer always wins —
        even if the earlier writer saves again afterwards with a
        stale in-memory copy (its promotion must not clobber)."""
        shared_root = tmp_path / "shared"
        first = VerificationCache(tmp_path / "a", shared=shared_root,
                                  writer_id="first")
        first.store("lab", "fp-old", {"winner": "first"})
        first.save()
        second = VerificationCache(tmp_path / "b", shared=shared_root,
                                   writer_id="second")
        # Invalidation then fresh store: the flat-compatible sequence.
        assert second.lookup("lab", "fp-new") is None
        second.store("lab", "fp-new", {"winner": "second"})
        second.save()
        # First writer re-saves; its stale entry must not resurrect.
        first.lookup("lab", "fp-old")      # promotes stale copy to memory
        first.save()
        fresh = VerificationCache(tmp_path / "c", shared=shared_root)
        assert fresh.lookup("lab", "fp-new") == {"winner": "second"}
