"""The vulndb poller: catalogue upserts become minimal live deltas.

The live-feed property: polling an unchanged database yields an empty
delta; an upsert that changes what the inventory scan produces yields
exactly the new/changed records; a revision that stops matching the
scan retires its requirement through the delta's remove leg.  The last
test drives a delta into a running :class:`SocService` through the
:class:`Rearmer` — the full catalogue-to-monitor feed path.
"""

import pytest

from repro.environment import hardened_ubuntu_host
from repro.reqs.stream import ReqStream
from repro.soc.rearm import Rearmer, plan_for_records
from repro.soc.service import SocService
from repro.vulndb import (
    AffectedProduct,
    SoftwareInventory,
    VulnDbPoller,
    VulnRecord,
    VulnerabilityDatabase,
    bundled_database,
)

INVENTORY = SoftwareInventory.of(
    "prod", "ubuntu",
    {"openssh-server": "7.6", "bash": "4.3", "openssl": "1.0.1f"})


def relevant_upsert():
    """A revision introducing a new (product, category) pair for the
    reference inventory: a configuration-class CVE against openssl."""
    return VulnRecord(
        "CVE-2026-20002",
        "openssl ships an insecure default configuration.",
        "CWE-16", 7.5,
        (AffectedProduct("openssl", "openssl", None, "1.1.0"),))


def irrelevant_upsert():
    return VulnRecord(
        "CVE-2026-20001",
        "Crafted request bypasses input validation in tomcat.",
        "CWE-79", 9.8,
        (AffectedProduct("apache", "tomcat", None, "9.0.99"),))


class TestPolling:
    def test_first_poll_arms_the_full_scan(self):
        poller = VulnDbPoller(bundled_database(), INVENTORY)
        stream = ReqStream()
        delta = poller.poll(stream)
        assert len(delta.added) > 0
        assert not delta.changed and not delta.removed
        assert all(r.source == "vulndb" for r in delta.added)
        stream.commit(delta)
        assert {r.rid for r in stream.armed()} \
            == {r.rid for r in delta.added}

    def test_steady_state_polls_are_empty(self):
        poller = VulnDbPoller(bundled_database(), INVENTORY)
        stream = ReqStream()
        stream.commit(poller.poll(stream))
        for _ in range(3):
            assert poller.poll(stream).empty
        assert poller.polls == 4

    def test_irrelevant_upsert_yields_empty_delta(self):
        database = bundled_database()
        poller = VulnDbPoller(database, INVENTORY)
        stream = ReqStream()
        stream.commit(poller.poll(stream))
        database.upsert(irrelevant_upsert())
        assert poller.poll(stream).empty

    def test_relevant_upsert_yields_minimal_delta(self):
        database = bundled_database()
        poller = VulnDbPoller(database, INVENTORY)
        stream = ReqStream()
        stream.commit(poller.poll(stream))
        before = {r.rid for r in stream.armed()}
        database.upsert(relevant_upsert())
        delta = poller.poll(stream)
        assert not delta.empty
        stream.commit(delta)
        # The new configuration requirement is armed now...
        armed = stream.armed()
        assert any("CVE-2026-20002" in r.provenance[0].ref
                   for r in armed)
        # ...and the scan grew by exactly the one new pair.
        assert len(armed) == len(before) + 1

    def test_withdrawn_revision_retires_requirements(self):
        database = VulnerabilityDatabase()
        database.add(relevant_upsert())
        poller = VulnDbPoller(database, INVENTORY)
        stream = ReqStream()
        delta = poller.poll(stream)
        assert len(delta.added) == 1
        stream.commit(delta)
        # The revised advisory no longer affects anything we run.
        withdrawn = VulnRecord(
            "CVE-2026-20002", "re-analysis: affects solaris only.",
            "CWE-16", 7.5,
            (AffectedProduct("oracle", "solaris-ssl", None, None),))
        database.upsert(withdrawn)
        retire = poller.poll(stream)
        assert retire.removed
        stream.commit(retire)
        assert stream.armed() == []


class TestLiveFeed:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_poll_into_rearms_a_running_soc(self, backend):
        from repro.rqcode import default_catalog

        catalog = default_catalog()
        database = bundled_database()
        poller = VulnDbPoller(database, INVENTORY)
        stream = ReqStream()
        hosts = [hardened_ubuntu_host("prod")]
        plans = {"prod": plan_for_records([], hosts[0], catalog)}
        soc = SocService(hosts, catalog, plans, shards=1, seed=3,
                         backend=backend).start()
        rearmer = Rearmer(soc)     # one per service: tokens must not repeat
        try:
            delta, report = poller.poll_into(stream, rearmer)
            assert report.summary()["added"] > 0
            database.upsert(relevant_upsert())
            delta2, report2 = poller.poll_into(stream, rearmer)
            assert not delta2.empty
            # An exploit event for a monitored CVE is detected live.
            hosts[0].events.emit("exploit_CVE_2014_6271")
            soc.drain()
        finally:
            soc.stop()
        # Detection raises an incident under the armed rid (the
        # monitor resets to its G-state afterwards, so the final
        # verdict alone would not show it).
        incidents = soc.incidents()
        assert incidents
        assert {incident.req_id for incident in incidents} \
            <= set(soc.plans["prod"][0])
