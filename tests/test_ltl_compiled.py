"""Compiled-engine tests: interning invariants and verdict equivalence.

The compiled monitor must be observationally identical to progression —
not just verdict-equal, but obligation-identical at every step (interned
formulas make that an ``is`` check).  Interning itself carries the
invariants the memo keys rely on: one canonical object per structure,
cached atom sets, and no cross-talk between monitors sharing a formula
(and therefore a transition table).
"""

from hypothesis import given, settings, strategies as st

from repro.ltl import (
    CompiledMonitor,
    LtlMonitor,
    TransitionTable,
    Verdict,
    empty_step_stable,
    evaluate_ltlf,
    parse_ltl,
    step_monitors,
    transition_table,
)
from repro.ltl.formulas import (
    And,
    Atom,
    Eventually,
    FALSE,
    Globally,
    Next,
    Not,
    Or,
    TRUE,
    Until,
    WeakUntil,
    implies,
    land,
    lnot,
    lor,
)

ATOMS = ("a", "b", "c")


def formulas(max_depth=4):
    atoms = st.sampled_from([Atom(name) for name in ATOMS])

    def extend(children):
        return st.one_of(
            children.map(lnot),
            children.map(Next),
            children.map(Eventually),
            children.map(Globally),
            st.tuples(children, children).map(lambda pair: land(*pair)),
            st.tuples(children, children).map(lambda pair: lor(*pair)),
            st.tuples(children, children).map(lambda pair: implies(*pair)),
            st.tuples(children, children).map(lambda pair: Until(*pair)),
            st.tuples(children, children).map(lambda pair: WeakUntil(*pair)),
        )

    return st.recursive(atoms, extend, max_leaves=max_depth)


def steps():
    return st.frozensets(st.sampled_from(ATOMS), max_size=len(ATOMS))


def traces(max_size=8):
    return st.lists(steps(), min_size=0, max_size=max_size)


class TestInterning:
    def test_parse_returns_canonical_object(self):
        assert parse_ltl("G (a -> F b)") is parse_ltl("G (a -> F b)")

    def test_structural_construction_is_identity(self):
        assert Atom("a") is Atom("a")
        assert Not(Atom("a")) is Not(Atom("a"))
        assert And(Atom("a"), Atom("b")) is And(Atom("a"), Atom("b"))
        assert Globally(Not(Atom("x"))) is parse_ltl("G !x")

    def test_distinct_structures_stay_distinct(self):
        assert Atom("a") is not Atom("b")
        assert And(Atom("a"), Atom("b")) is not And(Atom("b"), Atom("a"))
        assert Until(Atom("a"), Atom("b")) is not \
            WeakUntil(Atom("a"), Atom("b"))

    def test_keyword_construction_hits_the_same_cache(self):
        assert Atom(name="a") is Atom("a")
        assert And(left=Atom("a"), right=Atom("b")) is \
            And(Atom("a"), Atom("b"))

    def test_atoms_cached_per_node(self):
        formula = parse_ltl("G (a -> (b U c))")
        assert formula.atoms() == frozenset({"a", "b", "c"})
        assert formula.atoms() is formula.atoms()

    def test_constants_are_singletons(self):
        assert parse_ltl("true") is TRUE
        assert parse_ltl("false") is FALSE
        assert lnot(TRUE) is FALSE

    @settings(max_examples=150, deadline=None)
    @given(formula=formulas())
    def test_roundtrip_through_parser_is_identity(self, formula):
        assert parse_ltl(str(formula)) is formula

    @settings(max_examples=100, deadline=None)
    @given(formula=formulas())
    def test_equality_is_identity(self, formula):
        assert (formula == parse_ltl(str(formula))) == \
            (formula is parse_ltl(str(formula)))


class TestEmptyStepStable:
    def test_drift_detector_is_stable(self):
        assert empty_step_stable(parse_ltl("G !drift.package"))

    def test_eventually_is_stable(self):
        assert empty_step_stable(parse_ltl("F x"))

    def test_next_tail_is_not_stable(self):
        assert not empty_step_stable(parse_ltl("X p"))

    def test_until_obligation_is_not_stable(self):
        # p U q is falsified by an empty step (no q, no p).
        assert not empty_step_stable(parse_ltl("p U q"))


class TestCompiledEquivalence:
    """CompiledMonitor == LtlMonitor pointwise, on random formulas x
    random traces — verdicts and obligations alike."""

    @settings(max_examples=250, deadline=None)
    @given(formula=formulas(), trace=traces())
    def test_verdicts_and_obligations_agree_pointwise(self, formula, trace):
        compiled = CompiledMonitor(formula)
        reference = LtlMonitor(formula)
        for step in trace:
            assert compiled.observe(step) is reference.observe(step)
            assert compiled.obligation is reference.obligation
        assert compiled.verdict is reference.verdict
        assert compiled.steps_observed == reference.steps_observed

    @settings(max_examples=150, deadline=None)
    @given(formula=formulas(), trace=traces())
    def test_observe_many_matches_stepwise_observe(self, formula, trace):
        batched = CompiledMonitor(formula)
        stepwise = CompiledMonitor(formula)
        verdict = batched.observe_many(trace)
        for step in trace:
            if stepwise.observe(step) is not Verdict.INCONCLUSIVE:
                break
        assert verdict is stepwise.verdict
        assert batched.obligation is stepwise.obligation
        assert batched.steps_observed == stepwise.steps_observed

    @settings(max_examples=150, deadline=None)
    @given(formula=formulas(), trace=traces())
    def test_concluded_compiled_verdict_agrees_with_ltlf(self, formula,
                                                         trace):
        monitor = CompiledMonitor(formula)
        consumed = []
        for step in trace:
            consumed.append(step)
            if monitor.observe(step) is not Verdict.INCONCLUSIVE:
                break
        if monitor.verdict is Verdict.TRUE:
            assert evaluate_ltlf(formula, consumed + [frozenset()] * 3)
            assert evaluate_ltlf(formula, consumed + [frozenset(ATOMS)] * 3)
        elif monitor.verdict is Verdict.FALSE:
            assert not evaluate_ltlf(formula, consumed + [frozenset()] * 3)
            assert not evaluate_ltlf(
                formula, consumed + [frozenset(ATOMS)] * 3)


class TestSharedTables:
    def test_same_formula_shares_one_table(self):
        formula = parse_ltl("G (req -> F ack)")
        first = CompiledMonitor(formula)
        second = CompiledMonitor(parse_ltl("G (req -> F ack)"))
        assert first.table is second.table
        assert transition_table(formula) is first.table

    def test_no_cross_talk_between_monitors_sharing_a_table(self):
        formula = parse_ltl("G (req -> F ack)")
        busy = CompiledMonitor(formula)
        idle = CompiledMonitor(formula)
        busy.observe(frozenset({"req"}))
        assert busy.obligation is not formula
        assert idle.obligation is formula
        assert idle.verdict is Verdict.INCONCLUSIVE
        # The idle monitor progresses from its own state, not busy's.
        idle.observe(frozenset({"ack"}))
        assert idle.obligation is formula
        assert busy.obligation is not formula

    def test_reset_only_affects_the_reset_monitor(self):
        formula = parse_ltl("F done")
        done = CompiledMonitor(formula)
        pending = CompiledMonitor(formula)
        done.observe(frozenset({"done"}))
        assert done.verdict is Verdict.TRUE
        done.reset()
        assert done.verdict is Verdict.INCONCLUSIVE
        assert pending.verdict is Verdict.INCONCLUSIVE
        assert pending.steps_observed == 0

    @settings(max_examples=100, deadline=None)
    @given(formula=formulas(), left=traces(max_size=5),
           right=traces(max_size=5))
    def test_interleaved_monitors_match_isolated_runs(self, formula,
                                                      left, right):
        shared_a = CompiledMonitor(formula)
        shared_b = CompiledMonitor(formula)
        for index in range(max(len(left), len(right))):
            if index < len(left):
                shared_a.observe(left[index])
            if index < len(right):
                shared_b.observe(right[index])
        isolated_a = LtlMonitor(formula)
        isolated_b = LtlMonitor(formula)
        for step in left:
            isolated_a.observe(step)
        for step in right:
            isolated_b.observe(step)
        assert shared_a.obligation is isolated_a.obligation
        assert shared_b.obligation is isolated_b.obligation


class TestTransitionTableBounds:
    def test_epoch_eviction_keeps_answers_correct(self):
        formula = parse_ltl("G (a -> F b)")
        table = TransitionTable(formula, max_transitions=2)
        constrained = CompiledMonitor(formula, table=table)
        reference = LtlMonitor(formula)
        trace = [frozenset({"a"}), frozenset(), frozenset({"b"}),
                 frozenset({"a"}), frozenset({"a", "b"}), frozenset()] * 4
        for step in trace:
            assert constrained.observe(step) is reference.observe(step)
            assert constrained.obligation is reference.obligation
        assert table.evictions >= 1
        assert len(table) <= table.max_transitions

    def test_warm_table_stops_missing(self):
        formula = parse_ltl("G !drift.package")
        table = TransitionTable(formula)
        monitor = CompiledMonitor(formula, table=table)
        for _ in range(5):
            monitor.observe(frozenset({"app.heartbeat"}))
        warm_misses = table.misses
        for _ in range(100):
            monitor.observe(frozenset({"app.heartbeat"}))
        assert table.misses == warm_misses  # pure lookups after warmup


class TestStepMonitors:
    def test_returns_tripped_keys_in_insertion_order(self):
        monitors = {
            "drift": CompiledMonitor(parse_ltl("G !drift.package")),
            "quiet": CompiledMonitor(parse_ltl("G !never.seen")),
            "until": CompiledMonitor(parse_ltl("p U q")),
        }
        tripped = step_monitors(monitors, ["drift.package", "drift"])
        assert tripped == ["drift", "until"]
        assert monitors["quiet"].verdict is Verdict.INCONCLUSIVE

    def test_steps_every_monitor_once(self):
        monitors = {
            "a": CompiledMonitor(parse_ltl("G !x")),
            "b": CompiledMonitor(parse_ltl("F y")),
        }
        assert step_monitors(monitors, ["noise"]) == []
        assert all(m.steps_observed == 1 for m in monitors.values())
