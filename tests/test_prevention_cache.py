"""Property tests for the content-addressed verification cache.

The contracts the prevention plane stands on:

* cached verdicts are byte-identical to fresh ones (serialize both,
  compare the bytes);
* mutating any ingested artifact — requirement text, automaton guard,
  query — invalidates exactly the affected cache entries, no more;
* a fully-warm gate evaluation performs zero model-checking calls.
"""

import json
import random

import pytest

from repro.core.gates import VerificationGate, _verdict_to_dict
from repro.core.pipeline import PipelineContext
from repro.prevention import (
    VerificationCache,
    bundled_verification_tasks,
    fingerprint_requirement,
    fingerprint_task,
)
from repro.core.repository import RequirementRecord, RequirementSource
from repro.ta.automaton import Edge, Location, TimedAutomaton, parse_guard
from repro.ta.checker import ZoneGraphChecker
from repro.ta.query import parse_query
from repro.ta.system import Network


def small_network(guard_bound: int = 3) -> Network:
    automaton = TimedAutomaton(
        name="M",
        clocks=["x"],
        locations=[Location("off"),
                   Location("on", invariant=parse_guard("x <= 9"))],
        edges=[
            Edge("off", "on", guard=parse_guard(f"x >= {guard_bound}"),
                 resets=("x",), action="start"),
            Edge("on", "off", guard=parse_guard("x >= 1"), action="stop"),
        ],
    )
    return Network([automaton])


class TestFingerprintStability:
    def test_equal_networks_share_fingerprint(self):
        assert fingerprint_task(small_network(), "E<> M.on") == \
            fingerprint_task(small_network(), "E<> M.on")

    def test_query_whitespace_is_normalized(self):
        assert fingerprint_task(small_network(), "E<>  M.on") == \
            fingerprint_task(small_network(), "E<> M.on")

    def test_guard_change_changes_fingerprint(self):
        assert fingerprint_task(small_network(3), "E<> M.on") != \
            fingerprint_task(small_network(4), "E<> M.on")

    def test_query_change_changes_fingerprint(self):
        assert fingerprint_task(small_network(), "E<> M.on") != \
            fingerprint_task(small_network(), "E<> M.off")

    def test_requirement_text_changes_fingerprint(self):
        def record(text):
            return RequirementRecord(
                req_id="R1", text=text,
                source=RequirementSource.NATURAL_LANGUAGE)
        assert fingerprint_requirement(record("lock after 3 attempts")) != \
            fingerprint_requirement(record("lock after 5 attempts"))
        assert fingerprint_requirement(record("lock after 3 attempts")) == \
            fingerprint_requirement(record("lock after 3 attempts"))


class TestCachedVerdictsAreByteIdentical:
    def test_randomized_task_sets(self, tmp_path):
        rng = random.Random(0xCAC4E)
        for trial in range(10):
            tasks = bundled_verification_tasks(
                ring_size=rng.randrange(2, 5),
                deadline=rng.randrange(2, 9))
            rng.shuffle(tasks)
            tasks = tasks[:rng.randrange(2, len(tasks) + 1)]
            cache = VerificationCache(tmp_path / f"cache-{trial}")

            cold = PipelineContext(verification_tasks=tasks)
            VerificationGate(cache=cache).evaluate(cold)
            warm = PipelineContext(verification_tasks=tasks)
            VerificationGate(cache=cache).evaluate(warm)

            fresh = {
                label: ZoneGraphChecker(network).check(
                    parse_query(query_text))
                for label, network, query_text in tasks
            }
            for run in (cold, warm):
                for label, result in run.require("verification_results"):
                    cached_bytes = json.dumps(
                        _verdict_to_dict(result), sort_keys=True)
                    fresh_bytes = json.dumps(
                        _verdict_to_dict(fresh[label]), sort_keys=True)
                    assert cached_bytes == fresh_bytes, \
                        f"trial {trial}, task {label!r}"
            stats = cache.stats_dict()
            assert stats["misses"] == len(tasks)
            assert stats["hits"] == len(tasks)
            assert stats["invalidations"] == 0

    def test_warm_run_checks_nothing(self, tmp_path, monkeypatch):
        tasks = bundled_verification_tasks()
        cache = VerificationCache(tmp_path)
        VerificationGate(cache=cache).evaluate(
            PipelineContext(verification_tasks=tasks))

        def exploding_check(network, query_text):
            raise AssertionError("warm run must not model-check")

        monkeypatch.setattr(VerificationGate, "_check",
                            staticmethod(exploding_check))
        warm = PipelineContext(verification_tasks=tasks)
        outcome = VerificationGate(cache=cache).evaluate(warm)
        assert outcome.passed
        assert cache.stats_dict()["misses"] == len(tasks)  # cold only


class TestInvalidationIsExact:
    def _evaluate(self, cache, tasks):
        context = PipelineContext(verification_tasks=tasks)
        VerificationGate(cache=cache).evaluate(context)
        return context

    def test_guard_mutation_invalidates_only_affected(self, tmp_path):
        tasks = bundled_verification_tasks(ring_size=3)
        cache = VerificationCache(tmp_path)
        self._evaluate(cache, tasks)
        before = cache.stats_dict()

        # Mutate one automaton guard: rebuild the watchdog tasks with a
        # different deadline; the ring tasks are untouched.
        mutated = bundled_verification_tasks(ring_size=3, deadline=7)
        watchdog_labels = {label for label, _, _ in mutated
                           if label.startswith("watchdog")}
        self._evaluate(cache, mutated)
        after = cache.stats_dict()
        assert after["invalidations"] - before["invalidations"] == \
            len(watchdog_labels)
        assert after["hits"] - before["hits"] == \
            len(mutated) - len(watchdog_labels)

    def test_query_mutation_invalidates_one_entry(self, tmp_path):
        tasks = [("only-task", small_network(), "E<> M.on"),
                 ("other-task", small_network(), "E<> M.off")]
        cache = VerificationCache(tmp_path)
        self._evaluate(cache, tasks)
        mutated = [("only-task", small_network(), "A[] not deadlock"),
                   ("other-task", small_network(), "E<> M.off")]
        self._evaluate(cache, mutated)
        stats = cache.stats_dict()
        assert stats["invalidations"] == 1
        assert stats["hits"] == 1

    def test_invalidated_entry_is_replaced(self, tmp_path):
        cache = VerificationCache(tmp_path)
        tasks = [("t", small_network(3), "E<> M.on")]
        self._evaluate(cache, tasks)
        self._evaluate(cache, [("t", small_network(4), "E<> M.on")])
        # The stale verdict is gone; the new fingerprint now hits.
        fp = fingerprint_task(small_network(4), "E<> M.on")
        assert cache.lookup("t", fp) is not None
        old_fp = fingerprint_task(small_network(3), "E<> M.on")
        assert cache.lookup("t", old_fp) is None


class TestPersistence:
    def test_round_trip_through_disk(self, tmp_path):
        cache = VerificationCache(tmp_path)
        tasks = bundled_verification_tasks()
        context = PipelineContext(verification_tasks=tasks)
        VerificationGate(cache=cache).evaluate(context)
        assert cache.path.exists()

        reloaded = VerificationCache(tmp_path)
        assert len(reloaded) == len(tasks)
        warm = PipelineContext(verification_tasks=tasks)
        VerificationGate(cache=reloaded).evaluate(warm)
        stats = reloaded.stats_dict()
        assert stats["hits"] == len(tasks)
        assert stats["misses"] == 0

    def test_warm_save_is_a_no_op(self, tmp_path):
        cache = VerificationCache(tmp_path)
        tasks = bundled_verification_tasks()
        VerificationGate(cache=cache).evaluate(
            PipelineContext(verification_tasks=tasks))
        snapshot = {path: path.stat().st_mtime_ns
                    for path in sorted(cache.path.rglob("*"))
                    if path.is_file()}
        VerificationGate(cache=cache).evaluate(
            PipelineContext(verification_tasks=tasks))
        after = {path: path.stat().st_mtime_ns
                 for path in sorted(cache.path.rglob("*"))
                 if path.is_file()}
        assert after == snapshot   # not one byte rewritten anywhere

    def test_corrupt_file_is_counted_not_swallowed(self, tmp_path):
        """A corrupt legacy store must not be silently discarded: the
        cache starts empty, but the loss is warned about and surfaced
        in the ``corrupt_loads`` stat so a run summary shows it."""
        path = tmp_path / "verification-cache.json"
        path.write_text("{not json")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            cache = VerificationCache(tmp_path)
        assert len(cache) == 0
        assert cache.stats_dict()["corrupt_loads"] == 1
