"""End-to-end tests for the SOC service: lifecycle, determinism,
backpressure, and fleet integration."""

import threading

from repro.core.fleet import Fleet
from repro.environment import hardened_ubuntu_host, hardened_windows_host
from repro.ltl.monitor import LtlMonitor
from repro.ltl.parser import parse_ltl
from repro.rqcode import default_catalog
from repro.rqcode.catalog import StigCatalog
from repro.rqcode.concepts import CheckStatus, EnforcementStatus
from repro.soc import Backpressure, SocService, render_report


DRIFT_PACKAGES = ("nis", "rsh-server", "telnetd")


def build_fleet(ubuntu=4, windows=1):
    fleet = Fleet("soc-test", default_catalog())
    for index in range(ubuntu):
        fleet.add(hardened_ubuntu_host(f"web-{index:02d}"))
    for index in range(windows):
        fleet.add(hardened_windows_host(f"console-{index:02d}"))
    return fleet


def inject_drift(fleet, rounds=1, service=None):
    """Deterministic drift storm; returns the number of injections.

    When *service* is given the SOC is drained after every round:
    hosts within a round still race across shards, but a host is never
    re-drifted while its own repair is in flight, which pins every
    event timestamp (and so the whole incident set) to the scenario.
    """
    injected = 0
    for round_index in range(rounds):
        for host in fleet.hosts():
            if host.os_family == "windows":
                host.drift_audit_policy("Logon")
            else:
                host.drift_install_package(
                    DRIFT_PACKAGES[(round_index + injected)
                                   % len(DRIFT_PACKAGES)])
            injected += 1
        if service is not None:
            service.drain()
    return injected


class TestFleetProtection:
    def test_drift_storm_is_repaired_across_the_fleet(self):
        fleet = build_fleet(ubuntu=4, windows=1)
        service = fleet.arm_soc(shards=4, seed=1)
        try:
            injected = inject_drift(fleet, rounds=2, service=service)
        finally:
            service.stop()
        assert service.effective_repairs() >= injected
        assert fleet.audit().worst_ratio == 1.0
        for host in fleet.hosts("ubuntu"):
            for package in DRIFT_PACKAGES:
                assert not host.dpkg.is_installed(package)

    def test_metrics_account_for_every_event(self):
        fleet = build_fleet(ubuntu=3, windows=0)
        service = fleet.arm_soc(shards=2)
        try:
            injected = inject_drift(fleet)
            service.drain()
        finally:
            service.stop()
        counters = service.metrics_snapshot()["counters"]
        # Each ubuntu drift emits two events: package.installed from
        # dpkg plus the drift.package marker.
        emitted = 2 * injected
        assert counters["soc.events.ingested"] == emitted
        assert counters["soc.events.dropped"] == 0
        assert counters["soc.events.rejected"] == 0
        # Repairs emit events back into the logs; all suppressed.
        assert counters["soc.events.suppressed"] > 0
        processed = sum(counters[f"soc.shard.{i}.processed"]
                        for i in range(2))
        assert processed == emitted
        assert counters["soc.incidents"] == len(service.incidents())

    def test_incidents_by_host_partition_matches_placement(self):
        fleet = build_fleet(ubuntu=3, windows=1)
        service = fleet.arm_soc(shards=2)
        try:
            inject_drift(fleet)
            service.drain()
        finally:
            service.stop()
        by_host = service.incidents_by_host()
        assert set(by_host) == {host.name for host in fleet.hosts()}
        assert sum(len(v) for v in by_host.values()) == \
            len(service.incidents())
        assert set(service.placement().values()) <= {0, 1}

    def test_report_renders(self):
        fleet = build_fleet(ubuntu=2, windows=0)
        service = fleet.arm_soc(shards=2)
        try:
            inject_drift(fleet)
            service.drain()
        finally:
            service.stop()
        report = render_report(service, title="test run")
        assert "=== test run ===" in report
        assert "events_ingested" in report
        assert "web-00" in report


class TestDeterminism:
    def _run(self, seed):
        fleet = build_fleet(ubuntu=5, windows=2)
        service = fleet.arm_soc(shards=4, seed=seed)
        try:
            inject_drift(fleet, rounds=3, service=service)
        finally:
            service.stop()
        signature = [
            (incident.detected_at, incident.req_id,
             incident.trigger_kind,
             tuple((r.finding_id, r.status.value, r.detail)
                   for r in incident.repairs))
            for incident in service.incidents()
        ]
        return signature, service.metrics_snapshot()["counters"]

    def test_same_scenario_and_seed_same_incidents_and_counts(self):
        first_incidents, first_counters = self._run(seed=42)
        second_incidents, second_counters = self._run(seed=42)
        assert first_incidents == second_incidents
        assert first_counters == second_counters


class GatedRequirement:
    """Test finding whose enforcement blocks until released."""

    entered = None   # type: threading.Event
    release = None   # type: threading.Event

    def __init__(self, host):
        self.host = host

    def check(self):
        if self.release is not None and self.release.is_set():
            return CheckStatus.PASS
        return CheckStatus.FAIL

    def enforce(self):
        type(self).entered.set()
        type(self).release.wait(timeout=5.0)
        return EnforcementStatus.SUCCESS


def gated_service(policy, capacity=1):
    """One host, one shard, one gated finding: lets tests hold the
    worker mid-repair so the queue fills deterministically."""

    class V_GATE(GatedRequirement):
        entered = threading.Event()
        release = threading.Event()

    catalog = StigCatalog()
    catalog.register(V_GATE, "ubuntu")
    host = hardened_ubuntu_host("gated-host")
    plans = {host.name: ({"R/drift": LtlMonitor(parse_ltl("G !drift"))},
                         {"R/drift": ["V-GATE"]})}
    service = SocService([host], catalog, plans, shards=1,
                         queue_capacity=capacity, policy=policy,
                         sleeper=lambda _s: None).start()
    return service, host, V_GATE


class TestBackpressure:
    def test_block_policy_loses_nothing(self):
        service, host, gate = gated_service(Backpressure.BLOCK)
        host.events.emit("drift.config")        # worker picks this up
        assert gate.entered.wait(2.0)           # worker now held
        host.events.emit("drift.config")        # fills the queue
        emitted = threading.Event()

        def emitter():
            host.events.emit("drift.config")    # must block: queue full
            emitted.set()

        thread = threading.Thread(target=emitter, daemon=True)
        thread.start()
        assert not emitted.wait(0.05)
        gate.release.set()                      # un-hold the worker
        assert emitted.wait(2.0)
        thread.join(2.0)
        service.drain()
        service.stop()
        counters = service.metrics_snapshot()["counters"]
        assert counters["soc.events.ingested"] == 3
        assert counters["soc.events.dropped"] == 0
        assert counters["soc.events.rejected"] == 0
        assert len(service.incidents()) == 3

    def test_drop_oldest_policy_keeps_freshest(self):
        service, host, gate = gated_service(Backpressure.DROP_OLDEST)
        host.events.emit("drift.config")
        assert gate.entered.wait(2.0)
        host.events.emit("drift.config")        # queued (time 1)
        host.events.emit("drift.config")        # displaces time 1
        host.events.emit("drift.config")        # displaces time 2
        gate.release.set()
        service.drain()
        service.stop()
        counters = service.metrics_snapshot()["counters"]
        assert counters["soc.events.dropped"] == 2
        # Time 0 (in flight) and time 3 (freshest) were processed.
        assert [i.detected_at for i in service.incidents()] == [0, 3]

    def test_reject_policy_keeps_backlog(self):
        service, host, gate = gated_service(Backpressure.REJECT)
        host.events.emit("drift.config")
        assert gate.entered.wait(2.0)
        host.events.emit("drift.config")        # queued (time 1)
        host.events.emit("drift.config")        # rejected
        host.events.emit("drift.config")        # rejected
        gate.release.set()
        service.drain()
        service.stop()
        counters = service.metrics_snapshot()["counters"]
        assert counters["soc.events.rejected"] == 2
        assert counters["soc.events.ingested"] == 2
        # Time 0 (in flight) and time 1 (accepted backlog) processed.
        assert [i.detected_at for i in service.incidents()] == [0, 1]


class TestLifecycle:
    def test_stop_detaches_ingress(self):
        fleet = build_fleet(ubuntu=2, windows=0)
        service = fleet.arm_soc(shards=2)
        service.stop()
        host = fleet.hosts()[0]
        assert host.events.subscriber_count == 0
        host.events.emit("drift.package")       # must not raise
        counters = service.metrics_snapshot()["counters"]
        assert counters.get("soc.events.ingested", 0) == 0

    def test_stop_is_idempotent_and_start_after_init_is(self):
        fleet = build_fleet(ubuntu=1, windows=0)
        service = fleet.arm_soc(shards=1)
        assert service.running
        assert service.start() is service       # idempotent
        service.stop()
        service.stop()                          # second stop is a no-op
        assert not service.running

    def test_context_manager(self):
        fleet = build_fleet(ubuntu=2, windows=0)
        with SocService.for_fleet(fleet, shards=2) as service:
            inject_drift(fleet)
            service.drain()
            assert service.running
        assert not service.running
        assert fleet.audit().worst_ratio == 1.0

    def test_policy_accepts_plain_string_values(self):
        fleet = build_fleet(ubuntu=1, windows=0)
        service = fleet.arm_soc(shards=1, policy="drop-oldest")
        service.stop()
        assert service.queues[0].policy is Backpressure.DROP_OLDEST

    def test_missing_plan_is_rejected(self):
        import pytest

        host = hardened_ubuntu_host("planless")
        with pytest.raises(ValueError):
            SocService([host], default_catalog(), plans={})


class TestStopSafety:
    """stop()/drain() under concurrency and degradation: the fixes the
    chaos plane depends on."""

    def test_two_threads_stopping_concurrently_both_return(self):
        fleet = build_fleet(ubuntu=3, windows=0)
        service = fleet.arm_soc(shards=2)
        inject_drift(fleet)
        barrier = threading.Barrier(2)
        errors = []

        def stopper():
            barrier.wait()
            try:
                service.stop()
            except Exception as exc:       # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=stopper) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not any(thread.is_alive() for thread in threads)
        assert errors == []
        assert not service.running
        # The single shutdown still drained: posture is clean.
        assert fleet.audit().worst_ratio == 1.0

    def test_stop_after_stop_returns_immediately(self):
        fleet = build_fleet(ubuntu=1, windows=0)
        service = fleet.arm_soc(shards=1)
        service.stop()
        service.stop()
        service.stop(drain=False)
        assert not service.running

    def test_restart_after_stop_is_refused(self):
        import pytest

        fleet = build_fleet(ubuntu=1, windows=0)
        service = fleet.arm_soc(shards=1)
        service.stop()
        with pytest.raises(RuntimeError, match="fresh SocService"):
            service.start()

    def test_dead_worker_during_drain_does_not_deadlock(self):
        # A worker that crashes while holding queued events must be
        # replaced from inside the drain barrier itself: before the
        # supervisor hook, join() waited forever on credits only a dead
        # thread could supply.
        from repro.chaos import ChaosController, FaultPlan

        plan = FaultPlan(seed=21, worker_crash=1.0, max_deliveries=2)
        fleet = build_fleet(ubuntu=2, windows=0)
        # Slow background supervisor: the drain loop itself must do
        # the restarting for this to terminate quickly.
        service = fleet.arm_soc(shards=1, chaos=ChaosController(plan),
                                supervisor_interval=5.0)
        done = threading.Event()

        def run():
            inject_drift(fleet)
            service.drain()
            done.set()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert done.wait(timeout=10.0), "drain deadlocked on dead worker"
        service.stop()
        counters = service.metrics_snapshot()["counters"]
        assert counters["soc.worker.crashes"] >= 1
        assert counters["soc.events.dead_lettered"] >= 1
