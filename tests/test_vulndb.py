"""Unit tests for the vulnerability database and requirement generation."""

import pytest

from repro.vulndb import (
    AffectedProduct,
    CWE_CATALOG,
    RequirementGenerator,
    Severity,
    SoftwareInventory,
    VulnRecord,
    VulnerabilityDatabase,
    bundled_database,
)


class TestSeverity:
    @pytest.mark.parametrize("score,expected", [
        (10.0, Severity.CRITICAL), (9.0, Severity.CRITICAL),
        (8.9, Severity.HIGH), (7.0, Severity.HIGH),
        (6.9, Severity.MEDIUM), (4.0, Severity.MEDIUM),
        (3.9, Severity.LOW), (0.0, Severity.LOW),
    ])
    def test_from_score(self, score, expected):
        assert Severity.from_score(score) is expected


class TestAffectedProduct:
    RANGE = AffectedProduct("openssl", "openssl", "1.0.1", "1.0.1g")

    def test_inside_range(self):
        assert self.RANGE.matches("openssl", "1.0.1f")

    def test_start_inclusive_end_exclusive(self):
        assert self.RANGE.matches("openssl", "1.0.1")
        assert not self.RANGE.matches("openssl", "1.0.1g")

    def test_wrong_product(self):
        assert not self.RANGE.matches("gnutls", "1.0.1f")

    def test_open_bounds(self):
        any_version = AffectedProduct("v", "p")
        assert any_version.matches("p", "0.0.1")
        assert any_version.matches("p", "99.99")

    def test_numeric_version_comparison(self):
        # 1.0.10 > 1.0.9 numerically, not lexicographically.
        bounded = AffectedProduct("v", "p", None, "1.0.10")
        assert bounded.matches("p", "1.0.9")
        assert not bounded.matches("p", "1.0.10")


class TestDatabase:
    def test_bundled_size_and_histogram(self):
        database = bundled_database()
        assert len(database) == 120
        histogram = database.severity_histogram()
        assert sum(histogram.values()) == 120
        assert all(count > 0 for count in histogram.values())

    def test_bundled_is_deterministic(self):
        first = bundled_database()
        second = bundled_database()
        assert [r.cve_id for r in first.all()] == \
            [r.cve_id for r in second.all()]

    def test_duplicate_cve_rejected(self):
        database = VulnerabilityDatabase()
        record = VulnRecord("CVE-2020-0001", "x", "CWE-79", 5.0)
        database.add(record)
        with pytest.raises(ValueError):
            database.add(record)

    def test_unknown_cwe_rejected(self):
        with pytest.raises(ValueError):
            VulnerabilityDatabase([
                VulnRecord("CVE-2020-0002", "x", "CWE-99999", 5.0)])

    def test_query_by_product_and_version(self):
        database = bundled_database()
        hits = database.query(product="bash", version="4.2")
        assert any(r.cve_id == "CVE-2014-6271" for r in hits)
        fixed = database.query(product="bash", version="4.4")
        assert not any(r.cve_id == "CVE-2014-6271" for r in fixed)

    def test_query_by_min_severity(self):
        database = bundled_database()
        high = database.query(min_severity=Severity.HIGH)
        assert high
        assert all(r.severity in (Severity.HIGH, Severity.CRITICAL)
                   for r in high)

    def test_query_by_cwe_category(self):
        database = bundled_database()
        crypto = database.query(cwe_category="cryptography")
        assert crypto
        assert all(r.cwe.category == "cryptography" for r in crypto)

    def test_cwe_catalog_shape(self):
        assert "CWE-79" in CWE_CATALOG
        categories = {entry.category for entry in CWE_CATALOG.values()}
        assert "authentication" in categories
        assert "auditing" in categories


class TestIndexFreshness:
    """Regressions for the product index under interleaved reads and
    writes — the streaming-feed access pattern."""

    @staticmethod
    def record(cve_id, products, cvss=5.0):
        return VulnRecord(cve_id, "synthetic entry", "CWE-79", cvss,
                          tuple(AffectedProduct("vendor", product)
                                for product in products))

    def test_add_after_query_is_visible(self):
        database = VulnerabilityDatabase(
            [self.record("CVE-2020-0001", ["nginx"])])
        # Prime the cached sorted scan, then mutate.
        assert len(database.for_product("nginx")) == 1
        database.add(self.record("CVE-2019-0001", ["nginx"]))
        hits = database.for_product("nginx")
        assert [r.cve_id for r in hits] \
            == ["CVE-2019-0001", "CVE-2020-0001"]
        assert len(database.query(product="nginx")) == 2

    def test_upsert_new_record_behaves_like_add(self):
        database = VulnerabilityDatabase()
        assert database.upsert(
            self.record("CVE-2020-0001", ["nginx"])) is False
        assert "CVE-2020-0001" in database

    def test_upsert_replaces_revision_everywhere(self):
        database = VulnerabilityDatabase(
            [self.record("CVE-2020-0001", ["nginx", "httpd"])])
        database.for_product("nginx")       # prime caches
        database.for_product("httpd")
        # Revision drops httpd, picks up bind, bumps the score.
        replaced = database.upsert(
            self.record("CVE-2020-0001", ["nginx", "bind"], cvss=9.8))
        assert replaced is True
        assert database.get("CVE-2020-0001").cvss == 9.8
        # The dropped product must stop reporting the stale revision...
        assert database.for_product("httpd") == []
        assert database.query(product="httpd") == []
        # ...the kept and gained products see exactly the new one.
        for product in ("nginx", "bind"):
            hits = database.for_product(product)
            assert [r.cve_id for r in hits] == ["CVE-2020-0001"]
            assert hits[0].cvss == 9.8

    def test_upsert_never_duplicates_index_entries(self):
        database = VulnerabilityDatabase()
        for revision in range(3):
            database.upsert(self.record("CVE-2020-0001", ["nginx"],
                                        cvss=float(revision + 1)))
        assert len(database) == 1
        assert len(database.for_product("nginx")) == 1

    def test_for_product_returns_private_copies(self):
        database = VulnerabilityDatabase(
            [self.record("CVE-2020-0001", ["nginx"])])
        hits = database.for_product("nginx")
        hits.clear()
        assert len(database.for_product("nginx")) == 1

    def test_upsert_unknown_cwe_rejected(self):
        database = VulnerabilityDatabase(
            [self.record("CVE-2020-0001", ["nginx"])])
        with pytest.raises(ValueError):
            database.upsert(VulnRecord("CVE-2020-0001", "x",
                                       "CWE-99999", 5.0))


class TestRequirementGenerator:
    @pytest.fixture
    def inventory(self):
        return SoftwareInventory.of("host-a", "ubuntu", {
            "bash": "4.3",
            "openssl": "1.0.1f",
            "nis": "3.17",
        })

    def test_generates_requirements_with_bindings(self, inventory):
        report = RequirementGenerator(bundled_database()).generate(inventory)
        assert report.requirements
        for requirement in report.requirements:
            assert requirement.pattern_family in (
                "Absence", "Existence", "Universality", "Precedence",
                "TimedResponse")
            assert requirement.text
            assert requirement.source_cve.startswith("CVE-")

    def test_dedupes_by_product_and_category(self, inventory):
        report = RequirementGenerator(bundled_database()).generate(inventory)
        keys = [(r.text) for r in report.requirements]
        assert len(keys) == len(set(keys))

    def test_min_severity_filters(self, inventory):
        all_reqs = RequirementGenerator(
            bundled_database(), min_severity=Severity.LOW).generate(inventory)
        critical_only = RequirementGenerator(
            bundled_database(),
            min_severity=Severity.CRITICAL).generate(inventory)
        assert len(critical_only.requirements) < len(all_reqs.requirements)
        assert all(r.severity is Severity.CRITICAL
                   for r in critical_only.requirements)

    def test_empty_inventory_yields_nothing(self):
        inventory = SoftwareInventory.of("bare", "ubuntu", {})
        report = RequirementGenerator(bundled_database()).generate(inventory)
        assert report.requirements == []
        assert report.scanned == 120

    def test_histograms(self, inventory):
        report = RequirementGenerator(bundled_database()).generate(inventory)
        assert sum(report.pattern_histogram().values()) == \
            len(report.requirements)
        assert sum(report.by_severity().values()) == \
            len(report.requirements)

    def test_shellshock_maps_to_input_validation(self, inventory):
        report = RequirementGenerator(bundled_database()).generate(inventory)
        shellshock = [r for r in report.requirements
                      if r.source_cve == "CVE-2014-6271"]
        if shellshock:  # may be shadowed by a higher-severity synth record
            assert shellshock[0].cwe_category == "input-validation"
