"""Unit tests for automata, networks, queries, and the model checkers."""

import pytest

from repro.ta import (
    DiscreteTimeChecker,
    Edge,
    Location,
    Network,
    TimedAutomaton,
    ZoneGraphChecker,
    parse_guard,
    parse_query,
)
from repro.ta.query import parse_state_formula


# -- shared models -----------------------------------------------------------------

def door_automaton():
    """A door that stays open at most 8 units and needs 2 to close."""
    return TimedAutomaton(
        name="Door", clocks=["c"],
        locations=[
            Location("closed"),
            Location("open", invariant=parse_guard("c <= 8")),
        ],
        edges=[
            Edge("closed", "open", resets=("c",), action="open"),
            Edge("open", "closed", guard=parse_guard("c >= 2"),
                 action="close"),
        ],
    )


def lamp_network():
    lamp = TimedAutomaton(
        name="Lamp", clocks=["y"],
        locations=[Location("off"), Location("low"), Location("bright")],
        edges=[
            Edge("off", "low", sync="press?", resets=("y",)),
            Edge("low", "bright", guard=parse_guard("y < 5"), sync="press?"),
            Edge("low", "off", guard=parse_guard("y >= 5"), sync="press?"),
            Edge("bright", "off", sync="press?"),
        ],
    )
    user = TimedAutomaton(
        name="User", clocks=["x"],
        locations=[Location("idle")],
        edges=[Edge("idle", "idle", sync="press!", resets=("x",),
                    action="press")],
    )
    return Network([lamp, user])


class TestAutomatonConstruction:
    def test_guard_parsing(self):
        constraints = parse_guard("x <= 5 & x - y < 3")
        assert len(constraints) == 2
        assert constraints[0].left == "x"
        assert constraints[1].right == "y"
        assert str(constraints[1]) == "x - y < 3"

    def test_empty_guard(self):
        assert parse_guard("  ") == ()

    def test_bad_guard_raises(self):
        with pytest.raises(ValueError):
            parse_guard("x ~ 5")

    def test_duplicate_locations_rejected(self):
        with pytest.raises(ValueError):
            TimedAutomaton("A", [], [Location("a"), Location("a")], [])

    def test_edge_to_unknown_location_rejected(self):
        with pytest.raises(ValueError):
            TimedAutomaton("A", [], [Location("a")],
                           [Edge("a", "ghost")])

    def test_undeclared_clock_rejected(self):
        with pytest.raises(ValueError):
            TimedAutomaton("A", [], [Location("a")],
                           [Edge("a", "a", guard=parse_guard("x < 1"))])

    def test_bad_sync_suffix_rejected(self):
        with pytest.raises(ValueError):
            Edge("a", "b", sync="press")

    def test_max_constant(self):
        assert door_automaton().max_constant() == 8


class TestNetwork:
    def test_clock_namespacing(self):
        network = lamp_network()
        assert network.clock_index == {"Lamp.y": 1, "User.x": 2}

    def test_duplicate_names_rejected(self):
        door = door_automaton()
        with pytest.raises(ValueError):
            Network([door, door_automaton()])

    def test_handshake_requires_both_sides(self):
        # A lone emitter has no discrete steps.
        user = TimedAutomaton(
            "User", [], [Location("idle")],
            [Edge("idle", "idle", sync="press!")])
        network = Network([user])
        steps = list(network.discrete_steps(network.initial_state()))
        assert steps == []

    def test_internal_steps_interleave(self):
        network = Network([door_automaton()])
        steps = list(network.discrete_steps(network.initial_state()))
        assert [s.label for s in steps] == ["open"]


class TestQueryParsing:
    def test_forms(self):
        assert parse_query("E<> Door.open").operator == "E<>"
        assert parse_query("A[] not Door.open").operator == "A[]"
        assert parse_query("A<> Door.closed").operator == "A<>"
        assert parse_query("E[] Door.closed").operator == "E[]"
        leads = parse_query("Door.open --> Door.closed")
        assert leads.operator == "-->"
        assert str(leads.conclusion) == "Door.closed"

    def test_clock_atom(self):
        query = parse_query("E<> Door.open and Door.c >= 3")
        assert not query.formula.location_only()

    def test_negation_flips_comparison(self):
        formula = parse_state_formula("not Door.c > 5")
        assert str(formula) == "Door.c <= 5"

    def test_negated_equality_splits(self):
        formula = parse_state_formula("not Door.c == 5")
        assert "or" in str(formula)

    def test_de_morgan(self):
        formula = parse_state_formula("not (Door.open and Door.closed)")
        assert "or" in str(formula)

    def test_malformed_raises(self):
        with pytest.raises(ValueError):
            parse_query("sometimes Door.open")
        with pytest.raises(ValueError):
            parse_query("E<> open")  # atom without automaton prefix


class TestZoneGraphChecker:
    def test_reachability_with_witness(self):
        checker = ZoneGraphChecker(lamp_network())
        result = checker.check(parse_query("E<> Lamp.bright"))
        assert result.satisfied
        assert len(result.witness) == 2

    def test_timed_reachability_boundary(self):
        checker = ZoneGraphChecker(Network([door_automaton()]))
        at_bound = checker.check(parse_query("E<> Door.open and Door.c >= 8"))
        assert at_bound.satisfied
        past_bound = checker.check(
            parse_query("E<> Door.open and Door.c > 8"))
        assert not past_bound.satisfied

    def test_invariant_never_violated(self):
        checker = ZoneGraphChecker(Network([door_automaton()]))
        result = checker.check(
            parse_query("A[] not (Door.open and Door.c > 8)"))
        assert result.satisfied

    def test_safety_counterexample(self):
        checker = ZoneGraphChecker(lamp_network())
        result = checker.check(parse_query("A[] not Lamp.bright"))
        assert not result.satisfied
        assert result.witness  # path to the violation

    def test_guard_blocks_unreachable_branch(self):
        # Fast presses only: bright requires y < 5 which is reachable;
        # but a guard y > 90 on a fresh clock is not.
        auto = TimedAutomaton(
            "A", ["x"],
            [Location("s", invariant=parse_guard("x <= 10")),
             Location("t")],
            [Edge("s", "t", guard=parse_guard("x > 90"))],
        )
        checker = ZoneGraphChecker(Network([auto]))
        assert not checker.check(parse_query("E<> A.t")).satisfied

    def test_liveness_holds(self):
        checker = ZoneGraphChecker(Network([door_automaton()]))
        # The door may stay closed forever, so A<> open fails...
        result = checker.check(parse_query("A<> Door.open"))
        assert not result.satisfied

    def test_leads_to(self):
        checker = ZoneGraphChecker(Network([door_automaton()]))
        # ...but whenever it opens, the invariant forces a close.
        result = checker.check(parse_query("Door.open --> Door.closed"))
        assert result.satisfied

    def test_leads_to_counterexample(self):
        # A trap state: once in 'stuck' nothing happens; open never
        # leads back to closed.
        auto = TimedAutomaton(
            "T", [],
            [Location("a"), Location("stuck")],
            [Edge("a", "stuck", action="fall")],
        )
        checker = ZoneGraphChecker(Network([auto]))
        result = checker.check(parse_query("T.stuck --> T.a"))
        assert not result.satisfied
        # The clockless trap state can idle forever without reaching a.
        assert result.witness[-1] in ("(deadlock)", "(time divergence)")

    def test_liveness_rejects_clock_formulas(self):
        checker = ZoneGraphChecker(Network([door_automaton()]))
        with pytest.raises(ValueError):
            checker.check(parse_query("A<> Door.c > 3"))

    def test_possibly_always(self):
        checker = ZoneGraphChecker(Network([door_automaton()]))
        result = checker.check(parse_query("E[] Door.closed"))
        assert result.satisfied

    def test_urgent_location_blocks_delay(self):
        auto = TimedAutomaton(
            "U", ["x"],
            [Location("go", urgent=True), Location("done")],
            [Edge("go", "done", action="move")],
        )
        checker = ZoneGraphChecker(Network([auto]))
        # No delay in the urgent location: x stays 0 until the move.
        result = checker.check(parse_query("E<> U.go and U.x > 0"))
        assert not result.satisfied


class TestDiscreteTimeChecker:
    def test_agrees_with_zone_checker_on_reachability(self):
        network = lamp_network()
        zone = ZoneGraphChecker(network)
        discrete = DiscreteTimeChecker(network)
        for text in ("E<> Lamp.bright", "E<> Lamp.low and Lamp.y > 3"):
            query = parse_query(text)
            assert zone.check(query).satisfied == \
                discrete.reachable(query.formula).satisfied, text

    def test_agrees_on_safety(self):
        network = Network([door_automaton()])
        zone = ZoneGraphChecker(network)
        discrete = DiscreteTimeChecker(network)
        query = parse_query("A[] not (Door.open and Door.c > 8)")
        assert zone.check(query).satisfied
        assert discrete.invariantly(query.formula).satisfied

    def test_discrete_explores_more_states(self):
        network = Network([door_automaton()])
        zone_states = ZoneGraphChecker(network).check(
            parse_query("E<> Door.open and Door.c > 100"))
        discrete_states = DiscreteTimeChecker(network).reachable(
            parse_query("E<> Door.open and Door.c > 100").formula)
        assert not zone_states.satisfied
        assert not discrete_states.satisfied
        assert discrete_states.states_explored > zone_states.states_explored


class TestDeadlockAtom:
    def test_deadlock_reachable_in_trap_model(self):
        auto = TimedAutomaton(
            "T", [], [Location("a"), Location("trap")],
            [Edge("a", "trap", action="fall")],
        )
        checker = ZoneGraphChecker(Network([auto]))
        result = checker.check(parse_query("E<> deadlock"))
        assert result.satisfied
        assert result.witness == ["fall"]

    def test_deadlock_free_model(self):
        checker = ZoneGraphChecker(Network([door_automaton()]))
        result = checker.check(parse_query("A[] not deadlock"))
        assert result.satisfied

    def test_deadlock_with_location_conjunction(self):
        auto = TimedAutomaton(
            "T", [], [Location("a"), Location("trap")],
            [Edge("a", "trap", action="fall")],
        )
        checker = ZoneGraphChecker(Network([auto]))
        assert checker.check(
            parse_query("E<> T.trap and deadlock")).satisfied
        assert not checker.check(
            parse_query("E<> T.a and deadlock")).satisfied

    def test_discrete_engine_agrees(self):
        auto = TimedAutomaton(
            "T", [], [Location("a"), Location("trap")],
            [Edge("a", "trap", action="fall")],
        )
        network = Network([auto])
        query = parse_query("E<> deadlock")
        assert DiscreteTimeChecker(network).reachable(
            query.formula).satisfied
        deadlock_free = Network([door_automaton()])
        assert not DiscreteTimeChecker(deadlock_free).reachable(
            query.formula).satisfied

    def test_deadlock_is_liveness_safe(self):
        auto = TimedAutomaton(
            "T", [], [Location("a"), Location("trap")],
            [Edge("a", "trap", action="fall")],
        )
        checker = ZoneGraphChecker(Network([auto]))
        # A<> deadlock: the only maximal behaviour falls into the trap
        # eventually... but the clockless 'a' state can idle forever.
        result = checker.check(parse_query("A<> deadlock"))
        assert not result.satisfied
