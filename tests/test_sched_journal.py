"""Journal unit tests plus the crash-resume truncation properties.

The property suite is the heart of the scheduler's durability story:
for *every* entry boundary of a finished run's journal — and for a torn
(half-written) line after every boundary — resuming from the truncated
journal must reach the same terminal completion history as the
uninterrupted run, without re-executing any adopted task.
"""

import json

import pytest

from repro.sched.journal import GENESIS, Journal, JournalError
from repro.sched.scheduler import Scheduler
from repro.sched.task import Task


class TestJournalBasics:
    def test_append_and_reload_roundtrip(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = Journal(path)
        journal.append("run.plan", data={"profile": "p"})
        journal.append("task.completed", task="a", data={"result": 1})
        journal.append("run.finished", data={"passed": True})

        reloaded = Journal(path)
        assert len(reloaded) == 3
        assert not reloaded.torn_tail
        assert reloaded.verify()
        assert reloaded.head_digest() == journal.head_digest()
        assert [entry.kind for entry in reloaded.entries] == [
            "run.plan", "task.completed", "run.finished"]

    def test_empty_and_missing_files(self, tmp_path):
        missing = Journal(str(tmp_path / "missing.jsonl"))
        assert len(missing) == 0
        assert missing.head_digest() == GENESIS
        empty_path = tmp_path / "empty.jsonl"
        empty_path.write_text("")
        assert len(Journal(str(empty_path))) == 0

    def test_chain_links_previous_digest(self, tmp_path):
        journal = Journal(str(tmp_path / "j.jsonl"))
        first = journal.append("a")
        second = journal.append("b")
        assert first.prev == GENESIS
        assert second.prev == first.digest
        assert second.seq == 1

    def test_queries(self, tmp_path):
        journal = Journal(str(tmp_path / "j.jsonl"))
        journal.append("run.plan", data={"jobs": 2})
        journal.append("task.completed", task="a", data={"result": "x"})
        journal.append("run.resumed", data={"generation": 1})
        journal.append("task.completed", task="b", data={"result": "y"})
        journal.append("run.finished", data={"passed": False})
        assert journal.plan() == {"jobs": 2}
        assert journal.completions() == {"a": {"result": "x"},
                                         "b": {"result": "y"}}
        assert journal.completion_counts() == {"a": 1, "b": 1}
        assert journal.resumes() == 1
        assert journal.finished() == {"passed": False}


class TestJournalCorruption:
    def _journal(self, tmp_path, entries=4):
        path = str(tmp_path / "j.jsonl")
        journal = Journal(path)
        for index in range(entries):
            journal.append("task.completed", task=f"t{index}",
                           data={"result": index})
        return path

    def test_torn_final_line_is_dropped_and_flagged(self, tmp_path):
        path = self._journal(tmp_path)
        raw = open(path, "rb").read()
        open(path, "wb").write(raw[:-10])
        journal = Journal(path)
        assert journal.torn_tail
        assert len(journal) == 3

    def test_tear_tail_helper_produces_torn_journal(self, tmp_path):
        path = self._journal(tmp_path)
        journal = Journal(path)
        journal.tear_tail()
        reloaded = Journal(path)
        assert reloaded.torn_tail
        assert len(reloaded) == 3

    def test_garbage_mid_file_raises(self, tmp_path):
        path = self._journal(tmp_path)
        lines = open(path).read().splitlines()
        lines[1] = "{ not json"
        open(path, "w").write("\n".join(lines) + "\n")
        with pytest.raises(JournalError):
            Journal(path)

    def test_tampered_entry_mid_file_raises(self, tmp_path):
        path = self._journal(tmp_path)
        lines = open(path).read().splitlines()
        tampered = json.loads(lines[1])
        tampered["data"]["result"] = 999
        lines[1] = json.dumps(tampered, sort_keys=True,
                              separators=(",", ":"))
        open(path, "w").write("\n".join(lines) + "\n")
        with pytest.raises(JournalError):
            Journal(path)

    def test_tampered_final_entry_treated_as_torn(self, tmp_path):
        path = self._journal(tmp_path)
        lines = open(path).read().splitlines()
        tampered = json.loads(lines[-1])
        tampered["data"]["result"] = 999
        lines[-1] = json.dumps(tampered, sort_keys=True,
                               separators=(",", ":"))
        open(path, "w").write("\n".join(lines) + "\n")
        journal = Journal(path)
        assert journal.torn_tail
        assert len(journal) == 3


def _tasks(counters, count=6):
    """Effective tasks with side-effect counters, rebuilt per scheduler."""
    return [
        Task(name=f"t{index}",
             run=(lambda i=index: (counters.__setitem__(
                 f"t{i}", counters.get(f"t{i}", 0) + 1) or {"i": i})),
             effective=True)
        for index in range(count)
    ]


def _reference_run(tmp_path, workers=1):
    """One uninterrupted run; returns (journal lines, completions)."""
    path = str(tmp_path / "reference.jsonl")
    counters = {}
    journal = Journal(path)
    scheduler = Scheduler(workers=workers, journal=journal)
    scheduler.run_batch(_tasks(counters))
    assert all(count == 1 for count in counters.values())
    lines = open(path).read().splitlines()
    return lines, journal.completions()


class TestTruncationResumeProperty:
    """Satellite: resume from every truncation point converges."""

    def test_every_entry_boundary(self, tmp_path):
        lines, reference = _reference_run(tmp_path)
        for keep in range(len(lines) + 1):
            path = str(tmp_path / f"cut{keep}.jsonl")
            with open(path, "w") as handle:
                handle.write("".join(line + "\n"
                                     for line in lines[:keep]))
            counters = {}
            journal = Journal(path)
            assert not journal.torn_tail
            assert len(journal) == keep
            scheduler = Scheduler(workers=1, journal=journal)
            report = scheduler.run_batch(_tasks(counters))
            assert report.passed
            # Exactly the tasks beyond the cut re-ran; the rest were
            # adopted without side effects.
            assert sum(counters.values()) == len(reference) - keep
            assert journal.completions() == reference
            assert all(count == 1 for count
                       in journal.completion_counts().values())
            assert journal.verify()

    def test_every_boundary_with_torn_tail(self, tmp_path):
        lines, reference = _reference_run(tmp_path)
        for keep in range(len(lines)):
            path = str(tmp_path / f"torn{keep}.jsonl")
            torn = lines[keep][:max(1, len(lines[keep]) // 2)]
            with open(path, "w") as handle:
                handle.write("".join(line + "\n"
                                     for line in lines[:keep]))
                handle.write(torn)
            counters = {}
            journal = Journal(path)
            assert journal.torn_tail
            assert len(journal) == keep
            scheduler = Scheduler(workers=1, journal=journal)
            report = scheduler.run_batch(_tasks(counters))
            assert report.passed
            # The torn completion lost durability, so it re-runs too.
            assert sum(counters.values()) == len(reference) - keep
            assert journal.completions() == reference

    def test_parallel_resume_matches_serial_reference(self, tmp_path):
        lines, reference = _reference_run(tmp_path)
        keep = len(lines) // 2
        path = str(tmp_path / "parallel.jsonl")
        with open(path, "w") as handle:
            handle.write("".join(line + "\n" for line in lines[:keep]))
        counters = {}
        journal = Journal(path)
        scheduler = Scheduler(workers=4, journal=journal)
        report = scheduler.run_batch(_tasks(counters))
        assert report.passed
        assert sum(counters.values()) == len(reference) - keep
        assert journal.completions() == reference
        assert all(count == 1 for count
                   in journal.completion_counts().values())
