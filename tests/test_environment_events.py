"""Unit tests for the host event log."""

import threading

import pytest

from repro.environment.events import Event, EventLog, Subscription


class TestEvent:
    def test_matches_exact_kind(self):
        event = Event(time=0, kind="package.removed")
        assert event.matches("package.removed")

    def test_matches_prefix(self):
        event = Event(time=0, kind="package.removed")
        assert event.matches("package")

    def test_does_not_match_partial_word(self):
        event = Event(time=0, kind="packages.removed")
        assert not event.matches("package")

    def test_does_not_match_sibling(self):
        event = Event(time=0, kind="package.removed")
        assert not event.matches("service")


class TestEventLog:
    def test_starts_empty(self):
        log = EventLog()
        assert len(log) == 0
        assert log.clock == 0
        assert log.last() is None

    def test_emit_assigns_increasing_times(self):
        log = EventLog()
        first = log.emit("a")
        second = log.emit("b")
        assert first.time == 0
        assert second.time == 1
        assert log.clock == 2

    def test_emit_carries_payload(self):
        log = EventLog()
        event = log.emit("package.removed", name="nis", version="3.17")
        assert event.payload == {"name": "nis", "version": "3.17"}

    def test_advance_moves_clock_without_events(self):
        log = EventLog()
        log.advance(5)
        assert log.clock == 5
        assert len(log) == 0
        event = log.emit("late")
        assert event.time == 5

    def test_advance_rejects_negative(self):
        log = EventLog()
        with pytest.raises(ValueError):
            log.advance(-1)

    def test_since_filters_by_time(self):
        log = EventLog()
        log.emit("a")
        log.emit("b")
        log.emit("c")
        assert [e.kind for e in log.since(1)] == ["b", "c"]

    def test_of_kind_prefix_and_since(self):
        log = EventLog()
        log.emit("package.removed")
        log.emit("service.stopped")
        log.emit("package.installed")
        kinds = [e.kind for e in log.of_kind("package")]
        assert kinds == ["package.removed", "package.installed"]
        assert [e.kind for e in log.of_kind("package", since=1)] == [
            "package.installed"]

    def test_last_with_kind(self):
        log = EventLog()
        log.emit("package.removed")
        log.emit("service.stopped")
        assert log.last("package").kind == "package.removed"
        assert log.last().kind == "service.stopped"
        assert log.last("missing") is None

    def test_subscribers_receive_events(self):
        log = EventLog()
        seen = []
        log.subscribe(seen.append)
        log.emit("a")
        log.emit("b")
        assert [e.kind for e in seen] == ["a", "b"]

    def test_unsubscribe_stops_delivery(self):
        log = EventLog()
        seen = []
        unsubscribe = log.subscribe(seen.append)
        log.emit("a")
        unsubscribe()
        log.emit("b")
        assert [e.kind for e in seen] == ["a"]

    def test_unsubscribe_is_idempotent(self):
        log = EventLog()
        unsubscribe = log.subscribe(lambda e: None)
        unsubscribe()
        unsubscribe()  # must not raise

    def test_getitem_and_iteration(self):
        log = EventLog()
        log.emit("a")
        log.emit("b")
        assert log[0].kind == "a"
        assert [e.kind for e in log] == ["a", "b"]


class TestSubscriptionHandle:
    def test_subscribe_returns_a_handle(self):
        log = EventLog()
        subscription = log.subscribe(lambda e: None)
        assert isinstance(subscription, Subscription)
        assert subscription.active
        assert log.subscriber_count == 1

    def test_cancel_detaches(self):
        log = EventLog()
        seen = []
        subscription = log.subscribe(seen.append)
        subscription.cancel()
        assert not subscription.active
        assert log.subscriber_count == 0
        log.emit("a")
        assert seen == []

    def test_unsubscribe_method_accepts_handle(self):
        log = EventLog()
        subscription = log.subscribe(lambda e: None)
        log.unsubscribe(subscription)
        log.unsubscribe(subscription)  # idempotent
        assert log.subscriber_count == 0


class TestDispatchHardening:
    """Mutating the subscriber list *during* dispatch must never skip,
    double-call, or corrupt iteration — the concurrent SOC runtime
    subscribes and cancels while hosts keep emitting."""

    def test_unsubscribing_a_peer_mid_dispatch_skips_it(self):
        log = EventLog()
        calls = []
        late = None

        def early(event):
            calls.append("early")
            late.cancel()

        log.subscribe(early)
        late = log.subscribe(lambda e: calls.append("late"))
        log.emit("a")
        # ``late`` was cancelled before its turn in a's dispatch: it
        # must be skipped for a and for every later event, and the
        # remaining iteration must not be corrupted.
        log.emit("b")
        assert calls == ["early", "early"]

    def test_subscriber_added_during_dispatch_misses_current_event(self):
        log = EventLog()
        seen = []

        def adder(event):
            log.subscribe(seen.append)

        log.subscribe(adder)
        log.emit("first")
        assert seen == []          # snapshot: not called for "first"
        log.emit("second")
        assert [e.kind for e in seen] == ["second"]

    def test_self_unsubscribe_during_dispatch(self):
        log = EventLog()
        seen = []

        def once(event):
            seen.append(event.kind)
            subscription.cancel()

        subscription = log.subscribe(once)
        log.emit("a")
        log.emit("b")
        assert seen == ["a"]

    def test_subscriber_emitting_reentrantly_does_not_deadlock(self):
        log = EventLog()
        kinds = []

        def chain(event):
            kinds.append(event.kind)
            if event.kind == "trigger":
                log.emit("echo")

        log.subscribe(chain)
        log.emit("trigger")
        assert kinds == ["trigger", "echo"]
        assert [e.kind for e in log] == ["trigger", "echo"]

    def test_concurrent_subscribe_unsubscribe_and_emit(self):
        log = EventLog()
        received = []
        log.subscribe(received.append)
        stop = threading.Event()
        errors = []

        def churn():
            try:
                while not stop.is_set():
                    subscription = log.subscribe(lambda e: None)
                    subscription.cancel()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=churn, daemon=True)
                   for _ in range(4)]
        for thread in threads:
            thread.start()
        for index in range(200):
            log.emit("tick", index=index)
        stop.set()
        for thread in threads:
            thread.join(2.0)
        assert not errors
        # The stable subscriber saw every event exactly once, in order.
        assert [e.payload["index"] for e in received] == list(range(200))

    def test_emit_from_many_threads_keeps_timestamps_unique(self):
        log = EventLog()

        def emitter():
            for _ in range(100):
                log.emit("t")

        threads = [threading.Thread(target=emitter) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        times = [event.time for event in log]
        assert len(times) == 400
        assert len(set(times)) == 400
        assert log.clock == 400
