"""Unit tests for the host event log."""

import pytest

from repro.environment.events import Event, EventLog


class TestEvent:
    def test_matches_exact_kind(self):
        event = Event(time=0, kind="package.removed")
        assert event.matches("package.removed")

    def test_matches_prefix(self):
        event = Event(time=0, kind="package.removed")
        assert event.matches("package")

    def test_does_not_match_partial_word(self):
        event = Event(time=0, kind="packages.removed")
        assert not event.matches("package")

    def test_does_not_match_sibling(self):
        event = Event(time=0, kind="package.removed")
        assert not event.matches("service")


class TestEventLog:
    def test_starts_empty(self):
        log = EventLog()
        assert len(log) == 0
        assert log.clock == 0
        assert log.last() is None

    def test_emit_assigns_increasing_times(self):
        log = EventLog()
        first = log.emit("a")
        second = log.emit("b")
        assert first.time == 0
        assert second.time == 1
        assert log.clock == 2

    def test_emit_carries_payload(self):
        log = EventLog()
        event = log.emit("package.removed", name="nis", version="3.17")
        assert event.payload == {"name": "nis", "version": "3.17"}

    def test_advance_moves_clock_without_events(self):
        log = EventLog()
        log.advance(5)
        assert log.clock == 5
        assert len(log) == 0
        event = log.emit("late")
        assert event.time == 5

    def test_advance_rejects_negative(self):
        log = EventLog()
        with pytest.raises(ValueError):
            log.advance(-1)

    def test_since_filters_by_time(self):
        log = EventLog()
        log.emit("a")
        log.emit("b")
        log.emit("c")
        assert [e.kind for e in log.since(1)] == ["b", "c"]

    def test_of_kind_prefix_and_since(self):
        log = EventLog()
        log.emit("package.removed")
        log.emit("service.stopped")
        log.emit("package.installed")
        kinds = [e.kind for e in log.of_kind("package")]
        assert kinds == ["package.removed", "package.installed"]
        assert [e.kind for e in log.of_kind("package", since=1)] == [
            "package.installed"]

    def test_last_with_kind(self):
        log = EventLog()
        log.emit("package.removed")
        log.emit("service.stopped")
        assert log.last("package").kind == "package.removed"
        assert log.last().kind == "service.stopped"
        assert log.last("missing") is None

    def test_subscribers_receive_events(self):
        log = EventLog()
        seen = []
        log.subscribe(seen.append)
        log.emit("a")
        log.emit("b")
        assert [e.kind for e in seen] == ["a", "b"]

    def test_unsubscribe_stops_delivery(self):
        log = EventLog()
        seen = []
        unsubscribe = log.subscribe(seen.append)
        log.emit("a")
        unsubscribe()
        log.emit("b")
        assert [e.kind for e in seen] == ["a"]

    def test_unsubscribe_is_idempotent(self):
        log = EventLog()
        unsubscribe = log.subscribe(lambda e: None)
        unsubscribe()
        unsubscribe()  # must not raise

    def test_getitem_and_iteration(self):
        log = EventLog()
        log.emit("a")
        log.emit("b")
        assert log[0].kind == "a"
        assert [e.kind for e in log] == ["a", "b"]
