"""Front-end adapters, the registry, and the IR-native consumers.

The acceptance bar this file holds: all seven bundled front-ends lower
through the registry with intact provenance, prevention-cache
fingerprints agree between the native ingestion API and the explicit
IR path, and repository/persistence round-trip the IR content.
"""

import pytest

from repro.core import (
    PipelineContext,
    RequirementRepository,
    RequirementSource,
    VeriDevOpsOrchestrator,
    gate_repository,
    repository_from_json,
    repository_to_json,
)
from repro.core.repository import RequirementRecord
from repro.environment import default_ubuntu_host, default_windows_host
from repro.prevention import fingerprint_ir, fingerprint_requirement
from repro.reqs import default_registry
from repro.reqs.adapters import ResaAdapter, RqcodeAdapter
from repro.rqcode.catalog import default_catalog


@pytest.fixture(scope="module")
def registry():
    return default_registry()


@pytest.fixture(scope="module")
def corpora(registry):
    return registry.lower_all_bundled()


class TestRegistry:
    def test_seven_bundled_frontends(self, registry):
        assert registry.names() == [
            "capec", "cwe", "nalabs", "resa", "rqcode",
            "standards", "vulndb"]

    def test_unknown_frontend_raises(self, registry):
        with pytest.raises(KeyError, match="registered"):
            registry.get("attck")

    def test_every_bundled_corpus_lowers_with_provenance(self, corpora):
        for name, irs in corpora.items():
            assert irs, f"{name} lowered nothing"
            for record in irs:
                assert record.source == name
                assert record.provenance
                assert all(link.kind and link.ref
                           for link in record.provenance)

    def test_rids_are_source_derived_and_stable(self, corpora):
        again = default_registry().lower_all_bundled()
        for name, irs in corpora.items():
            assert [r.rid for r in irs] == [r.rid for r in again[name]]
            assert [r.fingerprint() for r in irs] \
                == [r.fingerprint() for r in again[name]]


class TestResaAdapter:
    def test_statement_match_attaches_formalization(self):
        irs = ResaAdapter().lower(
            ["The authentication service shall lock the account "
             "after 3 consecutive failures."])
        (record,) = irs
        assert record.formalization is not None
        assert record.target_kind == "monitor"
        assert record.provenance[0].kind == "resa"
        assert "boilerplate" in record.legacy_provenance()

    def test_freeform_statement_still_lowers(self):
        (record,) = ResaAdapter().lower(["Entirely freeform prose."])
        assert record.formalization is None
        assert record.target_kind == "document"
        assert record.legacy_provenance() \
            == "free-form (no boilerplate match)"


class TestRqcodeAdapter:
    def test_raise_artifacts_round_trip(self):
        adapter = RqcodeAdapter()
        host = default_ubuntu_host()
        ubuntu_entries = [entry for entry in adapter.discover()
                          if entry.platform == "ubuntu"]
        (record,) = adapter.lower(ubuntu_entries[:1])
        artifacts = adapter.raise_artifacts(record, host)
        assert len(artifacts) == 1
        assert artifacts[0].check() is not None

    def test_raise_artifacts_filters_platform(self):
        adapter = RqcodeAdapter()
        windows_entries = [entry for entry in adapter.discover()
                           if entry.platform == "windows"]
        (record,) = adapter.lower(windows_entries[:1])
        assert adapter.raise_artifacts(record, default_ubuntu_host()) == []
        assert adapter.raise_artifacts(record, default_windows_host())


class TestFingerprintParity:
    """A requirement fingerprints identically however it entered."""

    def test_native_standards_vs_registry_path(self, registry):
        native = VeriDevOpsOrchestrator()
        native.ingest_standards("ubuntu")

        explicit = VeriDevOpsOrchestrator()
        irs = registry.lower("rqcode",
                             explicit.catalog.entries_for("ubuntu"),
                             ids=explicit._ids("STD"))
        explicit.ingest_ir(irs)

        native_records = native.repository.all()
        explicit_records = explicit.repository.all()
        assert len(native_records) == len(explicit_records)
        for ours, theirs in zip(native_records, explicit_records):
            assert fingerprint_requirement(ours) \
                == fingerprint_requirement(theirs)
            assert ours.to_ir() == theirs.to_ir()

    def test_native_nl_vs_registry_path(self, registry):
        statements = [
            "When intrusion is detected, the gateway shall alert "
            "the operator within 5 seconds.",
            "Entirely freeform prose.",
        ]
        native = VeriDevOpsOrchestrator()
        native.ingest_natural_language(statements)

        explicit = VeriDevOpsOrchestrator()
        explicit.ingest_ir(registry.lower("resa", statements,
                                          ids=explicit._ids("NL")))
        for ours, theirs in zip(native.repository.all(),
                                explicit.repository.all()):
            assert fingerprint_requirement(ours) \
                == fingerprint_requirement(theirs)

    def test_record_and_ir_share_the_digest(self):
        orchestrator = VeriDevOpsOrchestrator()
        (record, *_rest) = orchestrator.ingest_standards("ubuntu")
        assert fingerprint_requirement(record) \
            == fingerprint_ir(record.to_ir()) \
            == record.to_ir().fingerprint()


class TestOrchestratorFrontends:
    def test_ingest_frontend_bundled(self):
        orchestrator = VeriDevOpsOrchestrator()
        records = orchestrator.ingest_frontend("standards")
        assert records
        assert all(r.source is RequirementSource.STANDARD
                   for r in records)
        assert all(r.frontend == "standards" for r in records)

    def test_ingest_frontend_unknown_raises(self):
        with pytest.raises(KeyError):
            VeriDevOpsOrchestrator().ingest_frontend("attck")

    def test_legacy_provenance_strings_survive(self):
        orchestrator = VeriDevOpsOrchestrator()
        orchestrator.ingest_iec62443("ubuntu")
        record = orchestrator.repository.get("IEC-001")
        assert record.provenance.startswith("IEC 62443-3-3 ")


class TestRepositoryIr:
    def test_add_ir_get_ir_round_trip(self, registry):
        irs = registry.lower_bundled("vulndb")
        repository = RequirementRepository.from_irs(irs)
        assert len(repository) == len(irs)
        for ir in irs:
            assert repository.get_ir(ir.rid) == ir
        assert repository.irs() == sorted(irs, key=lambda r: r.rid)

    def test_from_frontend_filters(self, registry):
        repository = RequirementRepository.from_irs(
            registry.lower_bundled("vulndb")
            + registry.lower_bundled("resa"))
        vulndb = repository.from_frontend("vulndb")
        assert vulndb and all(r.frontend == "vulndb" for r in vulndb)
        assert repository.from_frontend("rqcode") == []

    def test_duplicate_groups_cross_source(self, registry):
        (record,) = registry.lower_bundled("vulndb")[:1]
        payload = record.to_dict()
        payload["rid"] = "TWIN-001"
        payload["provenance"] = [
            {"kind": "stig", "ref": "V-0", "detail": "same obligation"}]
        from repro.reqs.ir import Requirement

        twin = Requirement.from_dict(payload)
        repository = RequirementRepository.from_irs([record, twin])
        groups = repository.duplicate_groups()
        assert list(groups.values()) == [sorted([record.rid, "TWIN-001"])]

    def test_persistence_keeps_ir_content(self, registry):
        repository = RequirementRepository.from_irs(
            registry.lower_bundled("standards"))
        restored = repository_from_json(repository_to_json(repository))
        for before, after in zip(repository.all(), restored.all()):
            assert after.title == before.title
            assert after.frontend == before.frontend
            assert after.tags == before.tags
            assert after.provenance_chain == before.provenance_chain
            assert after.to_ir() == before.to_ir()
            assert fingerprint_requirement(after) \
                == fingerprint_requirement(before)

    def test_hand_built_record_still_canonicalizes(self):
        record = RequirementRecord(
            req_id="NL-001",
            text="The system shall log all access.",
            source=RequirementSource.NATURAL_LANGUAGE,
            provenance="handwritten")
        ir = record.to_ir()
        assert ir.source == "resa"
        assert ir.provenance[0].kind == "legacy"
        assert ir.legacy_provenance() == "handwritten"


class TestGateIrEntry:
    def test_requirements_ir_materializes_repository(self, registry):
        context = PipelineContext()
        context.put("requirements_ir", registry.lower_bundled("rqcode"))
        repository = gate_repository(context)
        assert len(repository) == 26
        assert context.get("repository") is repository
        assert gate_repository(context) is repository

    def test_missing_both_raises(self):
        with pytest.raises(KeyError):
            gate_repository(PipelineContext())
        assert gate_repository(PipelineContext(), required=False) is None

    def test_pipeline_runs_from_ir_collection(self, registry):
        from repro.core import (
            FormalizationGate,
            MonitoringGate,
            Pipeline,
            Stage,
        )

        context = PipelineContext()
        context.put("requirements_ir",
                    registry.lower_bundled("rqcode"))
        pipeline = Pipeline([
            Stage("formalize", gates=[FormalizationGate()]),
            Stage("monitor", gates=[MonitoringGate()]),
        ])
        run = pipeline.run(context)
        assert run.passed
        assert context.get("monitors")


class TestSocRouting:
    def test_for_fleet_frontends_param(self):
        from repro.core.fleet import Fleet
        from repro.environment import hardened_ubuntu_host
        from repro.soc import SocService

        fleet = Fleet("reqs-soc", default_catalog())
        fleet.add(hardened_ubuntu_host("host-00"))
        service = SocService.for_fleet(fleet, frontends=["standards"])
        try:
            (plan,) = [service.sessions["host-00"]]
            assert plan.bindings
        finally:
            service.stop()
