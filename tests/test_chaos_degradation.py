"""Targeted degradation tests: each rung of the ladder in isolation.

The invariant suite (test_chaos_invariants) proves conservation under
randomized fault mixes; these tests pin down the *mechanism* of each
hardening path — supervisor restarts, hang deposition, poison
quarantine, dead-letter bounding, repair-exception escalation through
the breaker, and the slow-config seam — with fault rates of 1.0 so the
behaviour is fully deterministic.
"""

import pytest

from repro.chaos import (
    ChaosController,
    FaultPlan,
    build_chaos_fleet,
    run_chaos_scenario,
)
from repro.soc.breaker import BreakerState


def counters_of(result):
    return result.service.metrics_snapshot()["counters"]


class TestWorkerCrashes:
    def test_crash_loop_parks_everything_and_loses_nothing(self):
        # Every delivery crashes the worker; after max_deliveries
        # strikes the event is dead-lettered.  The supervisor keeps
        # restarting, the drain barrier completes, nothing is lost,
        # and the reconcile sweep still repairs the fleet.
        plan = FaultPlan(seed=3, worker_crash=1.0, max_deliveries=2,
                         dead_letter_capacity=256)
        result = run_chaos_scenario(plan, hosts=2, rounds=1)
        result.invariants.raise_if_violated()
        counters = counters_of(result)
        assert counters["soc.worker.crashes"] >= 1
        # Every crash is replaced, except possibly each shard's last
        # one (a worker whose dying act parked the final queued event
        # has nothing left to be replaced for).
        assert counters["soc.worker.restarts"] >= \
            counters["soc.worker.crashes"] - result.service.shards
        assert counters["soc.worker.restarts"] >= 1
        # Every scenario event burned its delivery budget.
        assert counters["soc.events.dead_lettered"] == \
            result.events_emitted
        assert len(result.service.incidents()) == 0
        # The event-driven path saw nothing, so coverage came entirely
        # from the ladder's last rung.
        assert result.reconcile_repairs > 0
        assert result.fully_repaired

    def test_partial_crash_rate_still_fully_repairs(self):
        plan = FaultPlan(seed=5, worker_crash=0.3)
        result = run_chaos_scenario(plan)
        result.invariants.raise_if_violated()
        assert result.fully_repaired
        counters = counters_of(result)
        assert counters["soc.worker.restarts"] >= \
            counters.get("soc.worker.crashes", 0) - result.service.shards


class TestHangDeposition:
    def test_hung_worker_is_deposed_and_replaced(self):
        # Injected hangs far longer than hang_timeout: the supervisor
        # deposes the stuck worker, a replacement resumes the queue,
        # and redeliveries strike the event into the dead-letter queue.
        plan = FaultPlan(seed=1, worker_hang=1.0, hang_seconds=0.15,
                         hang_timeout=0.02, max_deliveries=2)
        fleet = build_chaos_fleet(hosts=1)
        controller = ChaosController(plan)
        service = fleet.arm_soc(shards=1, chaos=controller,
                                supervisor_interval=0.005)
        try:
            fleet.hosts()[0].drift_install_package("nis")
            service.drain()
        finally:
            service.stop()
        counters = service.metrics_snapshot()["counters"]
        assert counters["soc.worker.hangs"] >= 1
        assert counters["soc.worker.deposed"] >= 1
        assert counters["soc.worker.restarts"] >= \
            counters["soc.worker.deposed"]
        # Both drift events exhausted their budget mid-hang.
        assert counters["soc.events.dead_lettered"] == 2
        assert service.reconcile() > 0
        assert fleet.audit().worst_ratio == 1.0

    def test_hangs_without_timeout_are_latency_not_loss(self):
        plan = FaultPlan(seed=2, worker_hang=0.5, hang_seconds=0.001)
        result = run_chaos_scenario(plan, hosts=2, rounds=1)
        result.invariants.raise_if_violated()
        counters = counters_of(result)
        assert counters["soc.worker.hangs"] >= 1
        assert counters.get("soc.worker.deposed", 0) == 0
        assert counters.get("soc.events.dead_lettered", 0) == 0
        assert result.fully_repaired


class TestPoisonQuarantine:
    def test_poison_event_parks_after_max_deliveries(self):
        plan = FaultPlan(seed=4, session_error=1.0, max_deliveries=3,
                         dead_letter_capacity=256)
        result = run_chaos_scenario(plan, hosts=2, rounds=1)
        result.invariants.raise_if_violated()
        counters = counters_of(result)
        # Worker thread survives session errors: no crashes.
        assert counters.get("soc.worker.crashes", 0) == 0
        assert counters["soc.session.errors"] == 3 * result.events_emitted
        assert counters["soc.events.dead_lettered"] == \
            result.events_emitted
        for letter in result.service.dead_letters.letters():
            assert letter.strikes == 3
            assert letter.reason == "session error"
        assert result.fully_repaired       # reconcile covered the loss

    def test_dead_letter_queue_is_bounded_and_counts_eviction(self):
        plan = FaultPlan(seed=6, session_error=1.0, max_deliveries=1,
                         dead_letter_capacity=2)
        result = run_chaos_scenario(plan, hosts=2, rounds=2)
        result.invariants.raise_if_violated()
        dlq = result.service.dead_letters
        assert dlq.parked_total == result.events_emitted
        assert len(dlq) == 2                       # capacity bound held
        assert dlq.evicted == dlq.parked_total - 2


class TestRepairFaults:
    def test_raising_repairs_escalate_through_the_breaker(self):
        # Every enforcement attempt raises, forever: event-path repairs
        # and all 25 reconcile sweeps fail, so the per-finding breakers
        # trip and keep absorbing — and the worker threads never die.
        plan = FaultPlan(seed=7, repair_raise=1.0)
        result = run_chaos_scenario(plan, hosts=2, rounds=1)
        result.invariants.raise_if_violated()
        counters = counters_of(result)
        assert counters["soc.enforce.exception"] >= 1
        assert counters.get("soc.worker.crashes", 0) == 0
        assert counters["soc.breaker.trips"] >= 1
        assert not result.fully_repaired   # at rate 1.0 nothing can land
        assert result.reconcile_repairs == 0
        states = result.service.pipeline.breaker_states()
        assert any(state != BreakerState.CLOSED.value
                   for state in states.values())

    def test_noop_repairs_fail_the_recheck_and_burn_retries(self):
        plan = FaultPlan(seed=8, repair_noop=1.0)
        result = run_chaos_scenario(plan, hosts=2, rounds=1,
                                    reconcile=False)
        result.invariants.raise_if_violated()
        counters = counters_of(result)
        assert counters.get("soc.enforce.exception", 0) == 0
        assert counters["soc.enforce.failure"] >= 1
        assert not result.fully_repaired
        # No repair ever took effect, so no incident may claim one.
        assert result.service.effective_repairs() == 0

    def test_intermittent_repair_faults_converge(self):
        plan = FaultPlan(seed=9, repair_raise=0.3, repair_noop=0.3)
        result = run_chaos_scenario(plan)
        result.invariants.raise_if_violated()
        assert result.fully_repaired


class TestConfigSlow:
    def test_slow_read_hook_installed_and_removed(self):
        plan = FaultPlan(seed=10, config_slow=1.0,
                         config_delay_seconds=0.0)
        fleet = build_chaos_fleet(hosts=1)
        controller = ChaosController(plan)
        service = fleet.arm_soc(shards=1, chaos=controller)
        host = fleet.hosts()[0]
        try:
            host.config.get("/etc/ssh/sshd_config", "PermitRootLogin")
            counters = service.metrics_snapshot()["counters"]
            assert counters["chaos.config.slow"] == 1
        finally:
            service.stop()
        # stop() removes the hook: further reads draw no decisions.
        host.config.get("/etc/ssh/sshd_config", "PermitRootLogin")
        counters = service.metrics_snapshot()["counters"]
        assert counters["chaos.config.slow"] == 1


class TestIdempotentDelivery:
    def test_duplicates_suppressed_exactly_once(self):
        # 100% duplication: every scenario event enters the queue
        # twice, but the session seen-set suppresses every second copy
        # before it reaches the monitors (or draws a worker fault).
        plan = FaultPlan(seed=15, event_duplicate=1.0)
        result = run_chaos_scenario(plan, hosts=2, rounds=2)
        result.invariants.raise_if_violated()
        counters = counters_of(result)
        assert counters["chaos.ingress.duplicate"] == \
            result.events_emitted
        assert counters["soc.events.duplicates_suppressed"] == \
            result.events_emitted
        assert result.fully_repaired

    def test_suppression_preserves_incident_stream(self):
        # At-least-once ingress must be invisible downstream: the
        # incident stream under full duplication matches the fault-free
        # stream of the same scenario exactly.
        noisy = run_chaos_scenario(
            FaultPlan(seed=16, event_duplicate=1.0), hosts=2, rounds=2)
        clean = run_chaos_scenario(FaultPlan(seed=16), hosts=2, rounds=2)
        noisy.invariants.raise_if_violated()
        assert noisy.signature() == clean.signature()


class TestChaosAccounting:
    def test_injections_land_in_metrics_registry(self):
        plan = FaultPlan(seed=11, session_error=1.0, max_deliveries=1)
        result = run_chaos_scenario(plan, hosts=1, rounds=1)
        counters = counters_of(result)
        assert counters["chaos.session.error"] == \
            result.service.chaos.injection_count()
        assert result.injections == counters["chaos.session.error"]

    def test_quiet_plan_records_no_chaos_counters(self):
        result = run_chaos_scenario(FaultPlan(seed=12))
        assert not any(name.startswith("chaos.")
                       for name in counters_of(result))


class TestReportIncludesDegradation:
    def test_text_report_gains_degradation_section(self):
        from repro.soc import render_report

        plan = FaultPlan(seed=13, session_error=1.0, max_deliveries=1)
        result = run_chaos_scenario(plan, hosts=1, rounds=1)
        report = render_report(result.service, title="chaos run")
        assert "-- degradation --" in report
        assert "-- dead letters --" in report
        assert "-- chaos injections --" in report
        assert "chaos.session.error" in report

    def test_clean_run_report_omits_degradation(self):
        from repro.soc import render_report

        result = run_chaos_scenario(FaultPlan(seed=14), reconcile=False)
        report = render_report(result.service)
        assert "-- degradation --" not in report
        assert "-- chaos injections --" not in report
