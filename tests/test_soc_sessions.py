"""Unit tests for per-host monitor sessions and their sound routing."""

from repro.environment.events import Event
from repro.environment.host import SimulatedHost
from repro.ltl.monitor import LtlMonitor, Verdict
from repro.ltl.parser import parse_ltl
from repro.soc.sessions import MonitorSession


def make_session(formulas, bindings=None):
    host = SimulatedHost("s-host", "ubuntu")
    monitors = {req_id: LtlMonitor(parse_ltl(text))
                for req_id, text in formulas.items()}
    return host, MonitorSession(host, monitors, bindings or {})


def event(time, kind):
    return Event(time=time, kind=kind)


class TestFormulaAtoms:
    """Sessions lean on the cached ``Formula.atoms()`` (the old local
    ``formula_atoms`` re-implementation is gone)."""

    def test_collects_all_atoms(self):
        formula = parse_ltl("G (a -> (b U c))")
        assert formula.atoms() == {"a", "b", "c"}

    def test_constants_have_no_atoms(self):
        assert parse_ltl("true").atoms() == frozenset()

    def test_atoms_are_cached_per_interned_node(self):
        formula = parse_ltl("G (a -> (b U c))")
        assert formula.atoms() is formula.atoms()
        assert formula is parse_ltl("G (a -> (b U c))")


class TestSelectiveRouting:
    def test_benign_event_skips_stable_monitors(self):
        _, session = make_session({"R1/drift": "G !drift.package"})
        session.observe(event(0, "app.heartbeat"))
        assert session.monitors_stepped == 0
        assert session.events_seen == 1

    def test_matching_event_reaches_the_monitor(self):
        _, session = make_session({"R1/drift": "G !drift.package"})
        detections = session.observe(event(0, "drift.package"))
        assert [d.req_id for d in detections] == ["R1/drift"]

    def test_prefix_proposition_reaches_coarse_monitor(self):
        # ``G !drift`` must trip on the nested kind drift.config.
        _, session = make_session({"R1/drift": "G !drift"})
        detections = session.observe(event(0, "drift.config"))
        assert len(detections) == 1

    def test_tripped_monitor_is_rearmed(self):
        _, session = make_session({"R1/drift": "G !drift.package"})
        session.observe(event(0, "drift.package"))
        assert session.monitors[
            "R1/drift"].verdict is Verdict.INCONCLUSIVE
        detections = session.observe(event(1, "drift.package"))
        assert len(detections) == 1  # detects again after re-arm


class TestRoutingSoundness:
    """Selective routing must agree with running every monitor on
    every event — including formulas whose obligation becomes
    empty-step-sensitive mid-trace."""

    def test_next_obligation_sees_unrelated_event(self):
        # G(a -> X b): after an ``a`` event the obligation demands b at
        # the very next step; an unrelated event must falsify it even
        # though it mentions neither a nor b.
        _, session = make_session({"R": "G (a -> X b)"})
        assert session.observe(event(0, "a")) == []
        detections = session.observe(event(1, "unrelated"))
        assert [d.req_id for d in detections] == ["R"]

    def test_agrees_with_unindexed_monitor_on_mixed_trace(self):
        trace = ["a", "noise", "b", "drift.package", "noise", "a", "b"]
        reference = LtlMonitor(parse_ltl("G (a -> X b)"))
        _, session = make_session({"R": "G (a -> X b)"})
        for time, kind in enumerate(trace):
            session_detected = bool(session.observe(event(time, kind)))
            parts = kind.split(".")
            step = {".".join(parts[:i + 1]) for i in range(len(parts))}
            reference_detected = reference.observe(step) is Verdict.FALSE
            if reference_detected:
                reference.reset()
            assert session_detected == reference_detected, kind

    def test_eventually_monitor_stays_stable(self):
        # F x is a fixed point under irrelevant steps: no work, no
        # verdict, until x arrives.
        _, session = make_session({"R": "F x"})
        for time in range(5):
            assert session.observe(event(time, "noise")) == []
        assert session.monitors_stepped == 0
        session.observe(event(5, "x"))
        assert session.monitors["R"].verdict is Verdict.TRUE


class TestBindings:
    def test_bindings_are_copied_per_session(self):
        host = SimulatedHost("b-host", "ubuntu")
        bindings = {"R": ["V-1"]}
        session = MonitorSession(host, {}, bindings)
        bindings["R"].append("V-2")
        assert session.bindings == {"R": ["V-1"]}
