"""Unit tests for the bounded shard queues and backpressure policies."""

import threading
import time

import pytest

from repro.soc.queues import Backpressure, PutResult, QueueClosed, ShardQueue


class TestBasics:
    def test_fifo_order(self):
        queue = ShardQueue(capacity=4)
        for item in ("a", "b", "c"):
            assert queue.put(item) is PutResult.ACCEPTED
        assert queue.get() == "a"
        assert queue.get() == "b"
        assert queue.get() == "c"

    def test_depth_and_peak(self):
        queue = ShardQueue(capacity=4)
        queue.put(1)
        queue.put(2)
        assert queue.depth == 2
        queue.get()
        assert queue.depth == 1
        assert queue.peak_depth == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ShardQueue(capacity=0)

    def test_get_returns_none_when_closed_and_empty(self):
        queue = ShardQueue()
        queue.put("last")
        queue.close()
        assert queue.get() == "last"
        assert queue.get() is None

    def test_put_into_closed_queue_raises(self):
        queue = ShardQueue()
        queue.close()
        with pytest.raises(QueueClosed):
            queue.put("x")


class TestBlockPolicy:
    def test_put_blocks_until_consumer_frees_a_slot(self):
        queue = ShardQueue(capacity=1, policy=Backpressure.BLOCK)
        queue.put("first")
        unblocked = threading.Event()

        def producer():
            queue.put("second")
            unblocked.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        assert not unblocked.wait(0.05)     # still blocked: queue full
        assert queue.get() == "first"
        assert unblocked.wait(1.0)          # freed slot admits the put
        thread.join(1.0)
        assert queue.get() == "second"
        assert queue.dropped == 0 and queue.rejected == 0

    def test_close_wakes_blocked_producer(self):
        queue = ShardQueue(capacity=1, policy=Backpressure.BLOCK)
        queue.put("first")
        failed = threading.Event()

        def producer():
            try:
                queue.put("second")
            except QueueClosed:
                failed.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.02)
        queue.close()
        assert failed.wait(1.0)
        thread.join(1.0)


class TestDropOldestPolicy:
    def test_full_queue_evicts_oldest(self):
        queue = ShardQueue(capacity=2, policy=Backpressure.DROP_OLDEST)
        queue.put("a")
        queue.put("b")
        assert queue.put("c") is PutResult.DISPLACED
        assert queue.dropped == 1
        assert queue.get() == "b"
        assert queue.get() == "c"

    def test_join_accounts_for_dropped_items(self):
        # A dropped item is never task_done()d by a worker; the queue
        # must settle its accounting itself or join() hangs forever.
        queue = ShardQueue(capacity=1, policy=Backpressure.DROP_OLDEST)
        queue.put("a")
        queue.put("b")  # evicts "a"
        assert queue.get() == "b"
        queue.task_done()
        queue.join()  # must not hang


class TestRejectPolicy:
    def test_full_queue_refuses_new_items(self):
        queue = ShardQueue(capacity=2, policy=Backpressure.REJECT)
        queue.put("a")
        queue.put("b")
        assert queue.put("c") is PutResult.REJECTED
        assert queue.rejected == 1
        assert queue.get() == "a"
        assert queue.get() == "b"
        assert queue.depth == 0


class TestDrain:
    def test_join_waits_for_task_done(self):
        queue = ShardQueue()
        queue.put("work")
        done = threading.Event()

        def worker():
            item = queue.get()
            assert item == "work"
            time.sleep(0.02)
            queue.task_done()
            done.set()

        thread = threading.Thread(target=worker, daemon=True)
        thread.start()
        queue.join()
        assert done.is_set()
        thread.join(1.0)

    def test_task_done_without_get_raises(self):
        with pytest.raises(ValueError):
            ShardQueue().task_done()
