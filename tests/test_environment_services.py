"""Unit tests for the service manager."""

import pytest

from repro.environment.errors import UnknownServiceError
from repro.environment.events import EventLog
from repro.environment.services import ServiceManager, ServiceState


@pytest.fixture
def manager():
    return ServiceManager()


class TestRegistration:
    def test_register_defaults(self, manager):
        record = manager.register("ssh")
        assert not record.enabled
        assert record.state is ServiceState.INACTIVE
        assert not record.masked

    def test_register_active_enabled(self, manager):
        manager.register("ssh", enabled=True, active=True)
        assert manager.is_active("ssh")
        assert manager.is_enabled("ssh")

    def test_unknown_service_raises(self, manager):
        with pytest.raises(UnknownServiceError):
            manager.get("ghost")

    def test_is_active_on_unknown_is_false(self, manager):
        assert not manager.is_active("ghost")

    def test_names_sorted(self, manager):
        manager.register("zz")
        manager.register("aa")
        assert manager.names() == ["aa", "zz"]


class TestVerbs:
    def test_start_stop(self, manager):
        manager.register("ssh")
        manager.start("ssh")
        assert manager.is_active("ssh")
        manager.stop("ssh")
        assert not manager.is_active("ssh")

    def test_enable_disable(self, manager):
        manager.register("ssh")
        manager.enable("ssh")
        assert manager.is_enabled("ssh")
        manager.disable("ssh")
        assert not manager.is_enabled("ssh")

    def test_mask_stops_and_disables(self, manager):
        manager.register("rsh", enabled=True, active=True)
        manager.mask("rsh")
        assert manager.is_masked("rsh")
        assert not manager.is_active("rsh")
        assert not manager.is_enabled("rsh")

    def test_masked_service_cannot_start(self, manager):
        manager.register("rsh", masked=True)
        with pytest.raises(UnknownServiceError):
            manager.start("rsh")

    def test_masked_service_cannot_enable(self, manager):
        manager.register("rsh", masked=True)
        with pytest.raises(UnknownServiceError):
            manager.enable("rsh")

    def test_unmask_allows_start(self, manager):
        manager.register("rsh", masked=True)
        manager.unmask("rsh")
        manager.start("rsh")
        assert manager.is_active("rsh")

    def test_fail_sets_failed_state(self, manager):
        manager.register("ssh", active=True)
        manager.fail("ssh")
        assert manager.get("ssh").state is ServiceState.FAILED
        assert not manager.is_active("ssh")


class TestEvents:
    def test_lifecycle_emits_events(self):
        log = EventLog()
        manager = ServiceManager(event_log=log)
        manager.register("ssh")
        manager.enable("ssh")
        manager.start("ssh")
        manager.stop("ssh")
        kinds = [e.kind for e in log]
        assert kinds == ["service.enabled", "service.started",
                         "service.stopped"]

    def test_idempotent_verbs_emit_once(self):
        log = EventLog()
        manager = ServiceManager(event_log=log)
        manager.register("ssh")
        manager.start("ssh")
        manager.start("ssh")
        assert len(log.of_kind("service.started")) == 1
