"""Unit tests for the GWT feature parser and domain model."""

import pytest

from repro.gwt import GherkinParseError, Signal, parse_feature
from repro.gwt.model import DataModel

FEATURE = """
Feature: Account lockout
  Locks accounts after repeated failures.

  @security @logon
  Scenario: lock after three failures
    Given the account "alice" is active
    When 3 consecutive logons fail
    Then the account is locked
    And an "account.locked" event is emitted within 5 seconds

  Scenario: unlock by administrator
    Given the account "bob" is locked
    When the administrator unlocks it
    Then the account is active
"""


class TestParser:
    def test_feature_name_and_description(self):
        feature = parse_feature(FEATURE)
        assert feature.name == "Account lockout"
        assert "repeated failures" in feature.description

    def test_scenarios_and_tags(self):
        feature = parse_feature(FEATURE)
        assert len(feature.scenarios) == 2
        assert feature.scenarios[0].tags == ["security", "logon"]
        assert feature.scenarios[1].tags == []

    def test_steps_with_keywords(self):
        scenario = parse_feature(FEATURE).scenarios[0]
        assert [step.keyword for step in scenario.steps] == \
            ["Given", "When", "Then", "And"]

    def test_and_resolves_to_preceding_keyword(self):
        scenario = parse_feature(FEATURE).scenarios[0]
        then_steps = scenario.steps_for("Then")
        assert len(then_steps) == 2

    def test_numeric_bindings_extracted(self):
        scenario = parse_feature(FEATURE).scenarios[0]
        when = scenario.steps_for("When")[0]
        assert when.bindings["param1"] == 3.0

    def test_scenario_lookup(self):
        feature = parse_feature(FEATURE)
        assert feature.scenario("unlock by administrator").steps
        with pytest.raises(KeyError):
            feature.scenario("missing")

    def test_comments_ignored(self):
        feature = parse_feature(
            "Feature: X\n# comment\nScenario: s\nGiven a thing\n")
        assert len(feature.scenarios) == 1

    def test_missing_feature_raises(self):
        with pytest.raises(GherkinParseError):
            parse_feature("Scenario: orphan\nGiven x\n")

    def test_step_outside_scenario_raises(self):
        with pytest.raises(GherkinParseError):
            parse_feature("Feature: X\nGiven early step\nScenario: s\n")

    def test_empty_scenario_raises(self):
        with pytest.raises(GherkinParseError):
            parse_feature("Feature: X\nScenario: empty\n")

    def test_scenario_starting_with_and_raises(self):
        with pytest.raises(GherkinParseError):
            parse_feature("Feature: X\nScenario: s\nAnd dangling\n")


class TestSignal:
    def test_validation(self):
        with pytest.raises(ValueError):
            Signal("s", kind="both")
        with pytest.raises(ValueError):
            Signal("s", data_type="string")
        with pytest.raises(ValueError):
            Signal("s", minimum=2, maximum=1)

    def test_clamp(self):
        signal = Signal("s", minimum=0, maximum=10)
        assert signal.clamp(-5) == 0
        assert signal.clamp(5) == 5
        assert signal.clamp(50) == 10


class TestDataModel:
    def test_json_round_trip(self):
        case = DataModel.from_json_obj({
            "id": "t1", "name": "demo",
            "steps": [{"action": "login", "bindings": {"param1": 3}}],
        })
        assert case.actions == ["login"]
        assert case.steps[0].bindings == {"param1": 3.0}
        assert DataModel.from_json_obj(case.to_json_obj()).actions == \
            case.actions
