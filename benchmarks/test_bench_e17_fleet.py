"""E17 — the CI fleet sharing one remote verification cache.

The distributed payoff of the content-addressed cache: one cold run
seeds a shared remote tier, then N concurrent runs — each with a
fresh, empty local tier, as N CI machines would have — verify the same
workload simultaneously.  Gates:

1. **Warm-hit rate >= 0.9 across the fleet.**  The concurrent runs
   answer (almost) everything from the shared tier; with the bundled
   workload the rate is exactly 1.0 — zero model-checking calls
   fleet-wide after the seed.
2. **Byte-identical verdicts** on every run, cached or not.
3. **Tail latency bounded by the cold run.**  A warm fleet member's
   p95 must beat the cold seeding run — cache reads cost less than
   model checking.

Results land in the ``fleet`` section of ``BENCH_prevention.json``
(merged, so the E15 sections survive).
"""

from repro.prevention import simulate_fleet

from bench_utils import merge_bench_json
from conftest import print_table
from test_bench_e15_prevention import heavy_verification_tasks

FLEET_RUNS = 4
WARM_HIT_RATE_MIN = 0.9


def test_bench_e17_fleet_warm_hit_rate(tmp_path):
    report = simulate_fleet(
        runs=FLEET_RUNS,
        workdir=tmp_path,
        tasks=heavy_verification_tasks(),
        mode="thread",
        seed_cold=True,
    )
    document = report.to_dict()
    latency = document["latency_s"]

    rows = [{"run": row["run_id"], "seconds": round(row["seconds"], 4),
             "hits": row["hits"], "misses": row["misses"],
             "remote_hits": row["remote_hits"]}
            for row in document["per_run"]]
    rows.append({"run": "cold (seed)",
                 "seconds": round(document["cold_s"], 4),
                 "hits": 0, "misses": "-", "remote_hits": "-"})
    print_table(
        f"E17 CI fleet ({FLEET_RUNS} concurrent runs, shared remote)",
        rows)

    assert report.all_passed
    assert report.verdicts_identical
    assert document["warm_hit_rate"] >= WARM_HIT_RATE_MIN, (
        f"fleet warm-hit rate {document['warm_hit_rate']:.2f} below "
        f"{WARM_HIT_RATE_MIN}")
    # Every fleet member was served by the shared tier, and nobody
    # fell back to model checking.
    for row in document["per_run"]:
        assert row["misses"] == 0
        assert row["remote_hits"] > 0
    # Cache reads cost less than model checking: a warm member's tail
    # beats the cold seeding run outright.
    assert latency["p95"] < document["cold_s"], (
        f"warm p95 {latency['p95']:.3f}s not under cold "
        f"{document['cold_s']:.3f}s")

    test_bench_e17_fleet_warm_hit_rate.result = {
        **document,
        "gates": {
            "warm_hit_rate_min": WARM_HIT_RATE_MIN,
            "verdicts_identical": True,
            "warm_p95_under_cold": True,
        },
    }


def test_bench_e17_write_json():
    """Merge the fleet section into BENCH_prevention.json (runs last;
    fails loudly if the gate test did not complete)."""
    path = merge_bench_json(
        "prevention", "fleet", test_bench_e17_fleet_warm_hit_rate.result)
    assert path.exists()
