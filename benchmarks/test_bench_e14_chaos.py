"""E14 — SOC graceful degradation under deterministic fault injection.

Drives the same fleet drift storm through the SOC runtime at mixed
fault rates {0%, 1%, 5%, 20%} — every fault site (worker crashes,
hangs, session errors, raising/no-op repairs, duplicated/reordered/
delayed events, slow config reads) firing at the sweep rate from one
seeded plan — and measures what degradation costs:

* **throughput** — scenario events per second, emission through the
  drain barrier (restarts, requeues, retries, and injected stalls all
  inside the measured window);
* **eventual repair coverage** — worst-host compliance after the run
  plus the reconcile sweep (the degradation ladder's last rung);
* **degradation work** — dead letters, worker restarts, reconcile
  repairs: how much the ladder had to absorb.

Headline numbers land in ``BENCH_chaos.json`` at the repo root.

Expected shape: coverage stays at 100% at every rate (conservation +
reconcile guarantee it), while throughput decays gracefully — the 20%
run must retain at least half the fault-free figure.
"""

import time

from repro.chaos import FaultPlan, run_campaign, run_chaos_scenario
from repro.scenarios import generated_scenarios, get_scenario
from repro.soc import RetryPolicy

from bench_utils import write_bench_json
from conftest import print_table

#: The pinned scenario: its seed (14) is the fault-plan seed the bench
#: always used, so decision digests — and therefore every replayed
#: number — match the pre-refactor figures.
SCENARIO = get_scenario("seed-legacy")
HOSTS = 10
ROUNDS = 2
NOISE_PER_DRIFT = 8
SHARDS = 4
# Per drift: NOISE heartbeats + package.installed + drift.package.
SCENARIO_EVENTS = HOSTS * ROUNDS * (NOISE_PER_DRIFT + 2)
FAULT_RATES = (0.0, 0.01, 0.05, 0.20)
REPS = 3  # best-of-N to damp scheduler noise


def plan_at(rate: float) -> FaultPlan:
    """Every fault site at *rate*, zero-length injected stalls.

    Stall knobs are pinned to zero so the bench measures the runtime's
    own degradation machinery (restarts, requeues, retries, quarantine)
    rather than echoing the configured sleep times back — a nonzero
    stall would just add ``rate x stall`` to the figure by definition.
    Every stall site still *fires* (the decision, metrics, and code
    path are exercised); it just costs a scheduler yield.  The
    scenario owns this shape now (:meth:`Scenario.fault_plan`).
    """
    return SCENARIO.fault_plan(rate)


#: Immediate retries, same zero-stall reasoning as the plan knobs: the
#: bench measures the runtime's own degradation cost, not the (tunable)
#: retry schedule's sleeps.
RETRY = RetryPolicy(backoff_base=0.0)


def run_at(rate: float):
    best = None
    for _ in range(REPS):
        result = run_chaos_scenario(
            plan_at(rate), hosts=HOSTS, rounds=ROUNDS,
            noise_per_drift=NOISE_PER_DRIFT, shards=SHARDS,
            retry=RETRY)
        result.invariants.raise_if_violated()
        assert result.fully_repaired, (
            f"coverage lost at fault rate {rate:.0%}: "
            f"worst posture {result.posture_ratio:.0%}")
        if best is None or result.storm_seconds < best.storm_seconds:
            best = result
    return best


def test_bench_e14_chaos_degradation():
    results = {}
    rows = []
    for rate in FAULT_RATES:
        started = time.perf_counter()
        result = run_at(rate)
        total_seconds = time.perf_counter() - started
        counters = result.service.metrics_snapshot()["counters"]
        throughput = SCENARIO_EVENTS / result.storm_seconds
        results[rate] = {
            "result": result,
            "throughput": throughput,
            "seconds": result.storm_seconds,
            "total_seconds": total_seconds,
            "dead_lettered": counters.get("soc.events.dead_lettered", 0),
            "restarts": counters.get("soc.worker.restarts", 0),
        }
        rows.append({
            "fault_rate": f"{rate:.0%}",
            "events_per_sec": f"{throughput:,.0f}",
            "injections": result.injections,
            "dead_lettered": results[rate]["dead_lettered"],
            "restarts": results[rate]["restarts"],
            "reconcile_repairs": result.reconcile_repairs,
            "coverage": f"{result.posture_ratio:.0%}",
        })
    print_table(
        f"E14 chaos degradation ({HOSTS} hosts, "
        f"{SCENARIO_EVENTS} events)", rows)

    baseline = results[0.0]["throughput"]
    path = write_bench_json("chaos", {
        "scenario": {
            "hosts": HOSTS,
            "rounds": ROUNDS,
            "noise_per_drift": NOISE_PER_DRIFT,
            "shards": SHARDS,
            "events": SCENARIO_EVENTS,
            "plan_seed": 14,
        },
        "rates": {
            f"{rate:g}": {
                "events_per_sec": round(data["throughput"], 1),
                "seconds": round(data["seconds"], 6),
                "retention_vs_fault_free": round(
                    data["throughput"] / baseline, 3),
                "injections": data["result"].injections,
                "dead_lettered": data["dead_lettered"],
                "worker_restarts": data["restarts"],
                "reconcile_repairs": data["result"].reconcile_repairs,
                "repair_coverage": data["result"].posture_ratio,
                "decisions_digest": data["result"].digest,
            }
            for rate, data in results.items()
        },
    })
    print(f"wrote {path}")

    # The acceptance bars: full eventual coverage at every rate (already
    # asserted per-run above), and graceful throughput decay — the
    # heaviest fault mix keeps at least half the fault-free throughput.
    for rate in FAULT_RATES:
        assert results[rate]["result"].posture_ratio >= 1.0
    retention = results[0.20]["throughput"] / baseline
    assert retention >= 0.5, (
        f"throughput retention {retention:.0%} at 20% faults "
        f"(limit 50%)")


def test_bench_e14_generated_campaigns():
    """Every generated scenario's compiled campaign survives the full
    invariant harness: stage-scoped fault mixes, zone-targeted drifts,
    per-stage detection/repair attribution — and coverage still ends
    at 100% after reconcile."""
    results = {}
    rows = []
    for scenario in generated_scenarios():
        campaign = scenario.compile_campaign()
        started = time.perf_counter()
        result = run_campaign(campaign,
                              fleet=scenario.build_fleet(),
                              shards=SHARDS,
                              drift=scenario.apply_drift,
                              placement=scenario.shard_hints(SHARDS),
                              retry=RETRY)
        seconds = time.perf_counter() - started
        result.invariants.raise_if_violated()
        result.stage_invariants.raise_if_violated()
        assert result.fully_repaired, (
            f"{scenario.name}: coverage lost "
            f"(worst posture {result.posture_ratio:.0%})")
        results[scenario.name] = {
            "hosts": len(result.fleet.hosts()),
            "stages": result.stage_summary(),
            "rounds": result.rounds_run,
            "drifts": result.drifts,
            "injections": result.injections,
            "reconcile_repairs": result.reconcile_repairs,
            "decisions_digest": result.digest,
            "seconds": round(seconds, 6),
        }
        rows.append({
            "scenario": scenario.name,
            "rounds": result.rounds_run,
            "drifts": result.drifts,
            "injections": result.injections,
            "coverage": f"{result.posture_ratio:.0%}",
            "digest": result.digest[:12],
        })
    print_table("E14 generated campaigns (invariant-checked)", rows)
    path = write_bench_json("chaos_campaigns", {
        "shards": SHARDS,
        "campaigns": results,
    })
    print(f"wrote {path}")
    assert len(results) >= 3
