"""E9 — RQCODE temporal patterns (D2.7 Annex 1).

Regenerates the verdict table for all seven temporal patterns: each is
run as a monitoring loop against a satisfying, a violating, and a
boundary scripted timeline, alongside its TCTL rendering.

Expected shape: every pattern distinguishes its satisfying and
violating timelines; the TCTL strings match the Annex formulations.
"""

from repro.rqcode.concepts import CheckStatus, PredicateCheckable
from repro.rqcode.temporal import (
    AfterUntilUniversality,
    Eventually,
    GlobalResponseTimed,
    GlobalResponseUntil,
    GlobalUniversality,
    GlobalUniversalityTimed,
    MonitoringLoop,
)

from conftest import print_table


class Scripted:
    def __init__(self, timeline):
        self.timeline = list(timeline)
        self.index = 0

    def checkable(self, name):
        return PredicateCheckable(
            lambda: self.timeline[min(self.index,
                                      len(self.timeline) - 1)],
            name=name)

    def step(self, _iteration):
        self.index += 1


def run_case(factory):
    """factory(script_step) -> loop; returns the verdict."""
    loop = factory()
    return loop.check()


def build_cases():
    """(pattern name, tctl, satisfying verdict, violating verdict)."""
    cases = []

    def universality(timeline):
        script = Scripted(timeline)
        return GlobalUniversality(script.checkable("p"), boundary=6,
                                  step=script.step)

    cases.append(("GlobalUniversality",
                  universality([True]).tctl(),
                  universality([True] * 6).check(),
                  universality([True, False]).check()))

    def eventually(timeline):
        script = Scripted(timeline)
        return Eventually(script.checkable("p"), boundary=6,
                          step=script.step)

    cases.append(("Eventually",
                  eventually([False]).tctl(),
                  eventually([False, False, True]).check(),
                  eventually([False]).check()))

    def response_timed(timeline, boundary=4):
        script = Scripted(timeline)
        return GlobalResponseTimed(
            PredicateCheckable(lambda: True, "s"),
            script.checkable("r"), boundary=boundary, step=script.step)

    cases.append(("GlobalResponseTimed",
                  response_timed([False]).tctl(),
                  response_timed([False, False, True]).check(),
                  response_timed([False] * 10).check()))

    def response_until(q_timeline, r_timeline):
        q_script, r_script = Scripted(q_timeline), Scripted(r_timeline)

        def step(i):
            q_script.step(i)
            r_script.step(i)

        return GlobalResponseUntil(
            PredicateCheckable(lambda: True, "p"),
            q_script.checkable("q"), r_script.checkable("r"),
            boundary=5, step=step)

    cases.append(("GlobalResponseUntil",
                  response_until([False], [False]).tctl(),
                  response_until([False, True], [False]).check(),
                  response_until([False], [False]).check()))

    def universality_timed(timeline):
        script = Scripted(timeline)
        return GlobalUniversalityTimed(script.checkable("p"), boundary=4,
                                       step=script.step)

    cases.append(("GlobalUniversalityTimed",
                  universality_timed([True]).tctl(),
                  universality_timed([True] * 4).check(),
                  universality_timed([True, True, False]).check()))

    def after_until(p_timeline, r_timeline):
        p_script, r_script = Scripted(p_timeline), Scripted(r_timeline)

        def step(i):
            p_script.step(i)
            r_script.step(i)

        return AfterUntilUniversality(
            PredicateCheckable(lambda: True, "q"),
            p_script.checkable("p"), r_script.checkable("r"),
            boundary=5, step=step)

    cases.append(("AfterUntilUniversality",
                  after_until([True], [False]).tctl(),
                  after_until([True, True], [False, True]).check(),
                  after_until([True, False], [False]).check()))

    cases.append(("MonitoringLoop (base)",
                  MonitoringLoop(boundary=3).tctl(),
                  MonitoringLoop(boundary=3).check(),
                  CheckStatus.FAIL))  # base loop has no violating case
    return cases


def test_bench_e9_verdict_table():
    rows = []
    for name, tctl, satisfied, violated in build_cases():
        rows.append({
            "pattern": name,
            "tctl": tctl,
            "satisfying": satisfied.value,
            "violating": violated.value,
        })
    print_table("E9 temporal-pattern verdicts", rows)
    for row in rows[:-1]:  # the base loop row is informational
        assert row["satisfying"] == "PASS"
        assert row["violating"] == "FAIL"


def test_bench_e9_monitoring_throughput(benchmark):
    def monitor_long_timeline():
        script = Scripted([True] * 1000)
        loop = GlobalUniversality(script.checkable("p"), boundary=1000,
                                  step=script.step)
        return loop.check()

    verdict = benchmark(monitor_long_timeline)
    assert verdict is CheckStatus.PASS
    benchmark.extra_info["iterations"] = 1000


def test_bench_e9_polling_vs_ltl_ablation():
    """DESIGN.md ablation: the polling loop verdict vs exact LTLf
    evaluation of the pattern's ltl() on the same scripted timeline."""
    from repro.ltl import evaluate_ltlf

    rows = []
    timelines = {
        "all_true": [True] * 4,
        "drops": [True, True, False, True],
        "late_rise": [False, False, True, True],
        "never": [False] * 4,
    }
    for label, timeline in timelines.items():
        trace = [{"p"} if value else set() for value in timeline]

        script = Scripted(timeline)
        universality = GlobalUniversality(
            script.checkable("p"), boundary=4, step=script.step)
        polling_g = universality.check()
        ltl_g = evaluate_ltlf(universality.ltl(), trace)

        script = Scripted(timeline)
        eventually = Eventually(
            script.checkable("p"), boundary=4, step=script.step)
        polling_f = eventually.check()
        ltl_f = evaluate_ltlf(eventually.ltl(), trace)

        rows.append({
            "timeline": label,
            "G_polling": polling_g.value,
            "G_ltlf": "PASS" if ltl_g else "FAIL",
            "F_polling": polling_f.value,
            "F_ltlf": "PASS" if ltl_f else "FAIL",
        })
    print_table("E9 ablation: polling loop vs LTLf evaluation", rows)
    for row in rows:
        assert row["G_polling"] == row["G_ltlf"]
        assert row["F_polling"] == row["F_ltlf"]
