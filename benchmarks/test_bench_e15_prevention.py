"""E15 — the incremental, parallel prevention plane.

Three speedup gates, all with verdict-equality checks across modes:

1. **Warm cache ≥ 10x cold.**  A verification-heavy pipeline run
   (token rings of growing size plus watchdog models, full-exploration
   safety queries) against an empty content-addressed cache, then the
   same run warm.  The warm run performs zero model-checking calls
   (asserted via the cache miss counter) — it only re-fingerprints the
   artifacts.
2. **Parallel ≥ 2x serial on 4 workers.**  A stage of independent
   verification jobs, each modelling an external verification-tool
   invocation (the checker run plus the tool's invocation latency —
   UPPAAL-style subprocess round trip).  On one core the CPU slices
   serialize under the GIL; the wave scheduler overlaps the latency,
   which is where the wall-clock goes.
3. **Zone-graph checker ≥ 3x baseline on the largest E6 ablation
   point** (token_ring(5)).  A verification session — one checker per
   engine answering the E6 queries repeatedly, as CI re-verification
   does — amortized per check.  ``fast=False`` routes through the
   seed implementation (full Floyd-Warshall per constraint, fresh
   enumeration per visit, linear inclusion scans).

Results land in ``BENCH_prevention.json`` stamped with the git commit.
"""

import time

from repro.core.pipeline import Job, Pipeline, PipelineContext, Stage
from repro.core.gates import VerificationGate, _verdict_to_dict
from repro.core.orchestrator import VeriDevOpsOrchestrator
from repro.prevention import VerificationCache, bundled_verification_tasks
from repro.prevention.tasks import _token_ring, _watchdog
from repro.ta.checker import ZoneGraphChecker
from repro.ta.query import parse_query

from bench_utils import merge_bench_json
from conftest import print_table


def _worker_pool(count: int):
    """*count* independent cyclic workers: a tiny serialization with an
    exponentially interleaved (2^count) discrete state space — checking
    cost dwarfs fingerprinting cost, as real models do."""
    from repro.ta.automaton import Edge, Location, TimedAutomaton, \
        parse_guard
    from repro.ta.system import Network

    workers = []
    for index in range(count):
        workers.append(TimedAutomaton(
            name=f"W{index}",
            clocks=["t"],
            locations=[
                Location("rest", invariant=parse_guard("t <= 3")),
                Location("work", invariant=parse_guard("t <= 5")),
            ],
            edges=[
                Edge("rest", "work", guard=parse_guard("t >= 1"),
                     resets=("t",), action=f"start{index}"),
                Edge("work", "rest", guard=parse_guard("t >= 2"),
                     resets=("t",), action=f"done{index}"),
            ],
        ))
    return Network(workers)


def heavy_verification_tasks():
    """A verification-dominated workload: full-exploration queries over
    rings of growing size, interleaved worker pools, and the watchdog
    models."""
    tasks = []
    for size in (4, 5, 6, 7, 8):
        ring = _token_ring(size)
        tasks.append((f"ring{size}-mutex", ring,
                      "A[] not (S0.busy and S1.busy)"))
        tasks.append((f"ring{size}-progress", ring,
                      f"E<> S{size - 1}.busy"))
        tasks.append((f"ring{size}-token-returns", ring,
                      "S1.busy --> S0.busy"))
    for count in (3, 4):
        pool = _worker_pool(count)
        tasks.append((f"pool{count}-all-working", pool,
                      "E<> " + " and ".join(f"W{i}.work"
                                            for i in range(count))))
    tasks.append(("pool3-no-deadlock", _worker_pool(3),
                  "A[] not deadlock"))
    for deadline in (3, 5, 8):
        tasks.append((f"watchdog{deadline}-handled", _watchdog(deadline),
                      "Sensor.raised --> Watchdog.watch"))
    return tasks


def _verdict_table(run):
    return sorted(
        (label, _verdict_to_dict(result))
        for label, result in run.context.require("verification_results")
    )


def test_bench_e15_warm_cache_vs_cold(tmp_path):
    orchestrator = VeriDevOpsOrchestrator()
    tasks = heavy_verification_tasks()
    cache = VerificationCache(tmp_path)

    started = time.perf_counter()
    cold_run = orchestrator.run_prevention(
        [], verification_tasks=tasks, cache=cache)
    cold_s = time.perf_counter() - started
    cold_stats = cache.stats_dict()

    started = time.perf_counter()
    warm_run = orchestrator.run_prevention(
        [], verification_tasks=tasks, cache=cache)
    warm_s = time.perf_counter() - started
    warm_stats = cache.stats_dict()

    fresh_run = orchestrator.run_prevention([], verification_tasks=tasks)

    assert cold_run.passed and warm_run.passed and fresh_run.passed
    # Identical verdicts: cached vs fresh, byte for byte.
    assert _verdict_table(cold_run) == _verdict_table(fresh_run)
    assert _verdict_table(warm_run) == _verdict_table(fresh_run)
    # The warm run performed zero model-checking calls.
    assert cold_stats["misses"] == len(tasks)
    assert warm_stats["misses"] == cold_stats["misses"]
    assert warm_stats["hits"] == len(tasks)
    assert warm_stats["invalidations"] == 0

    speedup = cold_s / warm_s
    rows = [
        {"mode": "cold", "seconds": round(cold_s, 4),
         "checks": cold_stats["misses"]},
        {"mode": "warm", "seconds": round(warm_s, 4), "checks": 0},
        {"mode": "speedup", "seconds": round(speedup, 1), "checks": "-"},
    ]
    print_table("E15 content-addressed cache (verification pipeline)",
                rows)
    assert speedup >= 10.0, f"warm cache only {speedup:.1f}x over cold"
    test_bench_e15_warm_cache_vs_cold.result = {
        "cold_s": cold_s, "warm_s": warm_s, "speedup": speedup,
        "tasks": len(tasks),
    }


TOOL_LATENCY_S = 0.03


def _external_tool_jobs():
    """One job per verification task, each paying the external tool's
    invocation latency on top of the in-process check."""
    jobs = []
    for label, network, query_text in bundled_verification_tasks():
        def run(context, network=network, query_text=query_text,
                label=label):
            time.sleep(TOOL_LATENCY_S)  # subprocess round trip
            result = ZoneGraphChecker(network).check(
                parse_query(query_text))
            context.put(f"verdict:{label}", _verdict_to_dict(result))
            return f"{label}: {'sat' if result.satisfied else 'unsat'}"
        jobs.append(Job(f"verify-{label}", run,
                        writes=(f"verdict:{label}",)))
    return jobs


def test_bench_e15_parallel_vs_serial():
    def build():
        return Pipeline([Stage("verification", jobs=_external_tool_jobs())])

    started = time.perf_counter()
    serial_run = build().run(PipelineContext())
    serial_s = time.perf_counter() - started

    started = time.perf_counter()
    parallel_run = build().run(PipelineContext(), max_workers=4)
    parallel_s = time.perf_counter() - started

    assert serial_run.passed and parallel_run.passed
    # Identical verdicts, parallel vs serial.
    keys = [k for k in serial_run.context.keys()
            if k.startswith("verdict:")]
    assert keys == [k for k in parallel_run.context.keys()
                    if k.startswith("verdict:")]
    for key in keys:
        assert serial_run.context.get(key) == parallel_run.context.get(key)

    speedup = serial_s / parallel_s
    print_table("E15 parallel gate fan-out (4 workers)", [
        {"mode": "serial", "seconds": round(serial_s, 4)},
        {"mode": "parallel", "seconds": round(parallel_s, 4)},
        {"mode": "speedup", "seconds": round(speedup, 1)},
    ])
    assert speedup >= 2.0, f"parallel only {speedup:.1f}x over serial"
    test_bench_e15_parallel_vs_serial.result = {
        "serial_s": serial_s, "parallel_s": parallel_s,
        "speedup": speedup, "jobs": len(keys), "workers": 4,
        "tool_latency_s": TOOL_LATENCY_S,
    }


SESSION_CHECKS = 10


def _checker_session(network, queries, fast):
    """One CI verification session: a checker constructed once answers
    the query set *SESSION_CHECKS* times; returns (seconds, verdicts)."""
    started = time.perf_counter()
    checker = ZoneGraphChecker(network, fast=fast)
    verdicts = []
    for _ in range(SESSION_CHECKS):
        verdicts = [
            (str(query), result.satisfied, result.states_explored)
            for query in queries
            for result in [checker.check(query)]
        ]
    return time.perf_counter() - started, verdicts


def test_bench_e15_checker_fast_vs_baseline():
    # The largest E6 ablation point, on the E6 queries plus the
    # full-exploration safety check.
    network = _token_ring(5)
    queries = [parse_query("E<> S4.busy"),
               parse_query("A[] not (S0.busy and S1.busy)")]

    fast_s, fast_verdicts = _checker_session(network, queries, fast=True)
    base_s, base_verdicts = _checker_session(network, queries, fast=False)

    # Identical verdicts and exploration counts, fast vs baseline.
    assert fast_verdicts == base_verdicts
    speedup = base_s / fast_s
    print_table(
        f"E15 zone-graph checker (token_ring(5), "
        f"{SESSION_CHECKS}-check session)",
        [
            {"engine": "baseline (seed)",
             "seconds": round(base_s, 4),
             "per_check_ms": round(1000 * base_s
                                   / (SESSION_CHECKS * len(queries)), 3)},
            {"engine": "fast",
             "seconds": round(fast_s, 4),
             "per_check_ms": round(1000 * fast_s
                                   / (SESSION_CHECKS * len(queries)), 3)},
            {"engine": "speedup", "seconds": round(speedup, 1),
             "per_check_ms": "-"},
        ])
    assert speedup >= 3.0, f"fast checker only {speedup:.1f}x baseline"
    test_bench_e15_checker_fast_vs_baseline.result = {
        "baseline_s": base_s, "fast_s": fast_s, "speedup": speedup,
        "session_checks": SESSION_CHECKS,
        "queries": [str(query) for query in queries],
        "verdicts": [
            {"query": query, "satisfied": satisfied, "states": states}
            for query, satisfied, states in fast_verdicts
        ],
    }


def test_bench_e15_write_json():
    """Collect the three measurements into BENCH_prevention.json.

    Runs last (pytest preserves definition order within a module); if a
    gate test was skipped or failed its attribute is absent and this
    write fails loudly rather than publishing a partial document.
    """
    sections = {
        "cache": test_bench_e15_warm_cache_vs_cold.result,
        "parallel": test_bench_e15_parallel_vs_serial.result,
        "checker": test_bench_e15_checker_fast_vs_baseline.result,
        "gates": {
            "warm_cache_speedup_min": 10.0,
            "parallel_speedup_min": 2.0,
            "checker_speedup_min": 3.0,
        },
    }
    # Merged section by section: E17's fleet bench shares this
    # document, and a whole-file write would clobber it.
    for section, payload in sections.items():
        path = merge_bench_json("prevention", section, payload)
    assert path.exists()
