"""E4 — NALABS smell detection (D2.7 §2.2.1).

Regenerates the smell-metric table over a 500-requirement synthetic
corpus with 5% per-smell injection, across 5 seeds: per-metric mean and
max values, flagged counts, and detector precision/recall against the
injected ground truth.  The ablation arm compares the dictionary-only
reference detector against the regex-augmented one.

Expected shape: precision = recall = 1.0 for every injected smell;
the regex-augmented reference detector flags at least as many
requirements as the dictionary-only arm.
"""

from repro.nalabs import CorpusGenerator, NalabsAnalyzer, ReferenceMetric

from conftest import print_table

SMELLS = ("vagueness", "weakness", "optionality", "subjectivity",
          "references", "imperatives", "conjunctions",
          "incompleteness")


def test_bench_e4_detector_scores():
    rows = []
    for seed in range(5):
        corpus, truth = CorpusGenerator(seed=seed).generate(
            500, injection_rate=0.05)
        report = NalabsAnalyzer().analyze_corpus(corpus)
        flagged = report.flagged_by_metric()
        for smell in SMELLS:
            precision, recall = truth.precision_recall(
                smell, flagged.get(smell, []))
            rows.append({
                "seed": seed,
                "smell": smell,
                "injected": len(truth.ids_for(smell)),
                "flagged": len(flagged.get(smell, [])),
                "precision": round(precision, 3),
                "recall": round(recall, 3),
            })
    print_table("E4 detector precision/recall (seeds 0-4)",
                [r for r in rows if r["seed"] == 0])
    assert all(row["precision"] == 1.0 for row in rows)
    assert all(row["recall"] == 1.0 for row in rows)


def test_bench_e4_metric_summary():
    corpus, _ = CorpusGenerator(seed=0).generate(500, injection_rate=0.05)
    report = NalabsAnalyzer().analyze_corpus(corpus)
    print_table("E4 per-metric summary (500 requirements)",
                report.summary_rows())
    assert report.total == 500
    assert 0 < report.smelly_count < 500


def test_bench_e4_regex_ablation():
    """Dictionary-only vs regex-augmented reference detection."""
    corpus, truth = CorpusGenerator(seed=1).generate(
        500, injection_rate=0.05)
    with_regex = NalabsAnalyzer(
        metrics=[ReferenceMetric(use_regex=True)])
    without_regex = NalabsAnalyzer(
        metrics=[ReferenceMetric(use_regex=False)])
    flagged_with = with_regex.analyze_corpus(corpus).flagged_by_metric()
    flagged_without = without_regex.analyze_corpus(
        corpus).flagged_by_metric()
    p_with, r_with = truth.precision_recall(
        "references", flagged_with.get("references", []))
    p_without, r_without = truth.precision_recall(
        "references", flagged_without.get("references", []))
    print_table("E4 ablation: reference detector arms", [
        {"arm": "dictionary+regex", "precision": round(p_with, 3),
         "recall": round(r_with, 3)},
        {"arm": "dictionary only", "precision": round(p_without, 3),
         "recall": round(r_without, 3)},
    ])
    assert r_with >= r_without  # regex arm can only add recall


def test_bench_e4_throughput(benchmark):
    corpus, _ = CorpusGenerator(seed=2).generate(500, injection_rate=0.05)
    analyzer = NalabsAnalyzer()
    report = benchmark(analyzer.analyze_corpus, corpus)
    assert report.total == 500
    benchmark.extra_info["requirements"] = 500
