"""Shared helpers for the benchmark harness.

Every bench prints the table it regenerates (run with ``-s`` to see it)
and records headline numbers in ``benchmark.extra_info`` so the JSON
output carries them too.
"""

from typing import Dict, List, Sequence


def print_table(title: str, rows: Sequence[Dict[str, object]]) -> None:
    """Render a list of row dicts as an aligned text table."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    columns = list(rows[0])
    widths = {
        column: max(len(str(column)),
                    *(len(str(row[column])) for row in rows))
        for column in columns
    }
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(str(row[c]).ljust(widths[c]) for c in columns))
