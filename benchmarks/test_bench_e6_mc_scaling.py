"""E6 — model-checker substrate scaling (DESIGN.md ablation).

Scales a parametric token-ring of timed stations from N=2 to N=5 and
compares the two engines on the same reachability/safety queries:

* zone-graph (DBM abstraction) — states explored;
* discrete-time (explicit integer clocks) — states explored.

Expected shape: both engines agree on every verdict; the discrete
engine explores more states, and its disadvantage grows with N and
with the clock constants.
"""

import pytest

from repro.ta import (
    DiscreteTimeChecker,
    Edge,
    Location,
    Network,
    TimedAutomaton,
    ZoneGraphChecker,
    parse_guard,
    parse_query,
)

from conftest import print_table


def token_ring(size: int, hold: int = 4) -> Network:
    """A ring of stations passing one token.

    Station i holds the token between ``hold/2`` and ``hold`` time
    units (invariant forces release), then hands it to station i+1.
    """
    stations = []
    for index in range(size):
        has_token = index == 0
        take = f"tok{index}"
        give = f"tok{(index + 1) % size}"
        locations = [
            Location("idle"),
            Location("busy", invariant=parse_guard(f"c <= {hold}")),
        ]
        edges = [
            Edge("idle", "busy", sync=f"{take}?", resets=("c",),
                 action=f"take{index}"),
            Edge("busy", "idle", guard=parse_guard(f"c >= {hold // 2}"),
                 sync=f"{give}!", action=f"give{index}"),
        ]
        stations.append(TimedAutomaton(
            name=f"S{index}", clocks=["c"], locations=locations,
            edges=edges, initial="busy" if has_token else "idle"))
    return Network(stations)


def test_bench_e6_scaling_table():
    rows = []
    for size in (2, 3, 4, 5):
        network = token_ring(size)
        last = f"S{size - 1}"
        query = parse_query(f"E<> {last}.busy")
        zone_result = ZoneGraphChecker(network).check(query)
        discrete_result = DiscreteTimeChecker(network).reachable(
            query.formula)
        assert zone_result.satisfied == discrete_result.satisfied is True
        rows.append({
            "stations": size,
            "zone_states": zone_result.states_explored,
            "discrete_states": discrete_result.states_explored,
            "ratio": round(discrete_result.states_explored
                           / max(1, zone_result.states_explored), 1),
        })
    print_table("E6 engine scaling (token ring, E<> last busy)", rows)
    # The discrete engine's disadvantage grows with model size.
    assert all(row["discrete_states"] > row["zone_states"]
               for row in rows)
    assert rows[-1]["ratio"] >= rows[0]["ratio"]


def test_bench_e6_constant_sensitivity():
    """Zone states are insensitive to the clock constants; discrete
    states grow with them — the core argument for DBMs."""
    rows = []
    for hold in (4, 8, 16):
        network = token_ring(3, hold=hold)
        query = parse_query("E<> S2.busy")
        zone_states = ZoneGraphChecker(network).check(
            query).states_explored
        discrete_states = DiscreteTimeChecker(network).reachable(
            query.formula).states_explored
        rows.append({
            "hold_constant": hold,
            "zone_states": zone_states,
            "discrete_states": discrete_states,
        })
    print_table("E6 constant sensitivity (3 stations)", rows)
    assert rows[0]["zone_states"] == rows[-1]["zone_states"]
    assert rows[-1]["discrete_states"] > rows[0]["discrete_states"]


@pytest.mark.parametrize("engine", ["zone", "discrete"])
def test_bench_e6_engine_throughput(benchmark, engine):
    network = token_ring(3)
    query = parse_query("E<> S2.busy")

    if engine == "zone":
        def check():
            return ZoneGraphChecker(network).check(query)
    else:
        def check():
            return DiscreteTimeChecker(network).reachable(query.formula)

    result = benchmark(check)
    assert result.satisfied
    benchmark.extra_info["states"] = result.states_explored


def test_bench_e6_safety_agreement():
    network = token_ring(3)
    # Mutual exclusion: stations 0 and 1 never both hold the token.
    query = parse_query("A[] not (S0.busy and S1.busy)")
    zone = ZoneGraphChecker(network).check(query)
    discrete = DiscreteTimeChecker(network).invariantly(query.formula)
    assert zone.satisfied
    assert discrete.satisfied
