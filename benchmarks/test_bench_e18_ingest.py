"""E18 — streaming ingestion fast path: delta re-arm vs cold restart.

The batch path re-arms a fleet by restarting it: stop the service,
rebuild every host's protection plan from the full IR set, start a new
service (``arm_soc`` again).  That is O(armed) work for a 1-record
change, and every monitor — including the 99% that didn't change —
loses its obligation state across the gap.  The streaming path diffs
the feed against the armed set (:class:`~repro.reqs.stream.ReqStream`)
and patches only the affected requirements on the affected hosts
through the running service (:class:`~repro.soc.rearm.Rearmer`),
in-stream with host events so there is no detection gap.

Two measurements:

* **delta_rearm** — a 32-host fleet armed with 64 requirements (2,048
  monitors fleet-wide; every ubuntu catalogue finding bound, plus 50
  formalized LTL records).  One record changes its drift class.  Cold:
  stop + rebuild all plans + start.  Delta: ``diff`` + ``Rearmer.apply``
  + ``commit`` on the live service.  The delta path must win by >=10x
  on the thread backend — it does O(changed) planning and ships 32
  session patches instead of tearing down 2,048 monitors.  The process
  backend pays a REARMED echo round trip per application, so its floor
  is structural-but-smaller (>=2x); its cold restart respawns worker
  processes, which is why nobody restarts it per feed batch.
* **live_ingest** — a RESA statement feed lowered incrementally
  (``lower_iter``) through an :class:`~repro.reqs.stream.IngestBudget`
  into a *running* 8-host SOC, the producer thread blocking whenever
  the re-arm plane falls behind (backpressure must engage: blocked > 0).
  A second pass re-announces the identical feed: every record is an
  O(1) fingerprint probe, the delta is empty, and no patches ship.

A zero-gap check rides the delta scenario untimed: drift injected
before the patch and after it is repaired either way.

Wall-clock assertions are best-of-REPS and deliberately loose where a
single shared core makes scheduler noise material; the structural
assertions (patch counts, unchanged counts, backpressure engaging,
repairs landing) always hold.
"""

import os
import queue as queue_mod
import threading
import time

from repro.reqs import default_registry
from repro.scenarios import get_scenario
from repro.reqs.ir import Formalization, Provenance, Requirement
from repro.reqs.registry import RejectedNative
from repro.reqs.stream import IngestBudget, ReqStream
from repro.rqcode import default_catalog
from repro.soc.rearm import Rearmer, drift_atom, plan_for_records
from repro.soc.service import SocService

from bench_utils import merge_bench_json
from conftest import print_table

CATALOG = default_catalog()
UBUNTU_FINDINGS = [f for f in CATALOG.finding_ids()
                   if CATALOG.get(f).platform == "ubuntu"]
#: Fleets come from the pinned scenario (same ``node-NN``/``edge-NN``
#: hardened-Ubuntu farms the bench used to build inline).
SCENARIO = get_scenario("seed-legacy")

HOSTS = 32
SHARDS = 4
FORMALIZED_RECORDS = 50
REPS = 2  # best-of-N to damp scheduler noise (thread backend)
CPUS = os.cpu_count() or 1

FEED_HOSTS = 8
FEED_RECORDS = 192
FEED_BUDGET = 32
FEED_BATCH = 16


def standard_rec(rid, finding_ids):
    return Requirement(
        rid=rid, title=rid, text=f"requirement {rid}", source="rqcode",
        severity="high", bindings=tuple(finding_ids),
        provenance=(Provenance("bench", rid, "e18 record"),))


def ltl_rec(rid, ltl):
    return Requirement(
        rid=rid, title=rid, text=f"requirement {rid}", source="resa",
        severity="medium", formalization=Formalization(ltl=ltl),
        provenance=(Provenance("bench", rid, "e18 record"),))


def build_records():
    """64 armed requirements: every ubuntu finding individually bound
    plus 50 formalized LTL monitors — a realistic mixed fleet load."""
    records = [standard_rec(f"R-{i:03d}", [fid])
               for i, fid in enumerate(UBUNTU_FINDINGS)]
    records += [ltl_rec(f"L-{i:03d}", f"G !custom.bad_{i}")
                for i in range(FORMALIZED_RECORDS)]
    return records


def changed_record():
    """R-000 re-bound from its package finding to a config finding —
    a different drift class, so the monitor re-arms fresh on every
    host (the most expensive delta shape)."""
    config = next(fid for fid in UBUNTU_FINDINGS
                  if drift_atom(CATALOG, [fid]) == "drift.config")
    return standard_rec("R-000", [config])


def build_hosts(count=HOSTS):
    return SCENARIO.build_hosts(count)


def plans_for(records, hosts):
    return {host.name: plan_for_records(records, host, CATALOG)
            for host in hosts}


def start_service(records, hosts, backend):
    return SocService(hosts, CATALOG, plans_for(records, hosts),
                      shards=SHARDS, seed=3, backend=backend).start()


def run_cold_restart(backend):
    """Stop + full plan rebuild + start: the batch path's cost for a
    1-record change."""
    hosts = build_hosts()
    records = build_records()
    service = start_service(records, hosts, backend)
    new_records = [changed_record()] + records[1:]
    started = time.perf_counter()
    service.stop()
    replacement = SocService(hosts, CATALOG, plans_for(new_records, hosts),
                             shards=SHARDS, seed=3, backend=backend).start()
    elapsed = time.perf_counter() - started
    replacement.stop()
    return elapsed


def run_delta_rearm(backend, zero_gap=False):
    """diff + Rearmer.apply + commit on the running service."""
    hosts = build_hosts()
    records = build_records()
    service = start_service(records, hosts, backend)
    stream = ReqStream(records)
    rearmer = Rearmer(service)
    try:
        if zero_gap:
            # Drift lands while the patch is in flight: the re-arm
            # must not open a detection gap.
            hosts[0].drift_install_package("telnetd")
        started = time.perf_counter()
        delta = stream.diff([changed_record()])
        report = rearmer.apply(delta)
        stream.commit(delta)
        elapsed = time.perf_counter() - started
        repaired = 0
        if zero_gap:
            hosts[1].drift_install_package("nis")
            service.drain()
            repaired = service.effective_repairs()
    finally:
        service.stop()
    return elapsed, report, repaired


def test_bench_e18_delta_rearm_vs_cold_restart():
    monitors_per_host = len(
        plans_for(build_records(), build_hosts(1))["node-00"][0])

    results = {}
    rows = []
    for backend, reps in (("thread", REPS), ("process", 1)):
        cold = min(run_cold_restart(backend) for _ in range(reps))
        timed = [run_delta_rearm(backend) for _ in range(reps)]
        delta_seconds, report, _ = min(timed, key=lambda t: t[0])
        speedup = cold / delta_seconds
        results[backend] = {
            "cold_restart_seconds": round(cold, 6),
            "delta_seconds": round(delta_seconds, 6),
            "speedup": round(speedup, 1),
            "hosts_patched": report.hosts_patched,
            "monitors_added": report.monitors_added,
        }
        rows.append({
            "backend": backend,
            "cold_ms": f"{cold * 1000:.2f}",
            "delta_ms": f"{delta_seconds * 1000:.2f}",
            "speedup": f"{speedup:.1f}x",
            "hosts_patched": report.hosts_patched,
        })
    print_table(
        f"E18 delta re-arm vs cold restart ({HOSTS} hosts, "
        f"{monitors_per_host * HOSTS} monitors, {CPUS} cpus)", rows)

    # Zero-gap: drift racing the patch is still detected and repaired.
    _, report, repaired = run_delta_rearm("thread", zero_gap=True)
    assert repaired >= 2, "drift across the re-arm went unrepaired"

    path = merge_bench_json("ingest", "scenario", {
        "hosts": HOSTS,
        "records": len(build_records()),
        "monitors_fleet": monitors_per_host * HOSTS,
        "cpus": CPUS,
    })
    merge_bench_json("ingest", "delta_rearm", dict(
        results, zero_gap={"drifts": 2, "effective_repairs": repaired}))
    print(f"wrote {path}")

    # The delta touches 1 record on 32 hosts; the cold path tears down
    # and rebuilds all 2,048 monitors.  O(changed) vs O(armed).
    for backend in ("thread", "process"):
        assert results[backend]["hosts_patched"] == HOSTS
        assert results[backend]["monitors_added"] == HOSTS
    assert results["thread"]["speedup"] >= 10.0, (
        "delta re-arm lost its >=10x edge over cold restart "
        f"({results['thread']['speedup']}x)")
    # The process backend pays a REARMED round trip; its cold restart
    # respawns workers.  Weaker floor, same direction.
    assert results["process"]["speedup"] >= 2.0, (
        "process-backend delta re-arm under 2x cold restart "
        f"({results['process']['speedup']}x)")


FEED_TEMPLATES = (
    "The system shall log every authentication failure.",
    "While in maintenance mode, the system shall disable remote logins.",
    "The system shall encrypt all stored credentials.",
    "If an intrusion is detected, the system shall alert the operator.",
)


def drive_feed(registry, stream, rearmer, budget):
    """Producer thread lowers the feed; the consumer applies deltas to
    the live SOC and releases budget credits as batches land."""
    natives = [FEED_TEMPLATES[i % len(FEED_TEMPLATES)]
               for i in range(FEED_RECORDS)]
    feed = queue_mod.Queue()

    def produce():
        for item in registry.lower_iter("resa", natives,
                                        batch_size=FEED_BATCH,
                                        budget=budget):
            if not isinstance(item, RejectedNative):
                feed.put(item)
        feed.put(None)

    started = time.perf_counter()
    producer = threading.Thread(target=produce)
    producer.start()
    applied = 0
    done = False
    while not done:
        batch = []
        item = feed.get()
        if item is None:
            done = True
        else:
            batch.append(item)
            while len(batch) < FEED_BATCH:
                try:
                    item = feed.get(timeout=0.002)
                except queue_mod.Empty:
                    break
                if item is None:
                    done = True
                    break
                batch.append(item)
        if batch:
            delta = stream.diff(batch)
            rearmer.apply(delta)
            stream.commit(delta)
            budget.release(len(batch))
            applied += len(batch)
    producer.join()
    return applied, time.perf_counter() - started


def test_bench_e18_live_ingest_under_backpressure():
    registry = default_registry()
    hosts = SCENARIO.build_hosts(FEED_HOSTS, prefix="edge")
    service = SocService(hosts, CATALOG, plans_for([], hosts),
                         shards=2, seed=3).start()
    stream = ReqStream()
    rearmer = Rearmer(service)
    budget = IngestBudget(limit=FEED_BUDGET)
    try:
        applied, elapsed = drive_feed(registry, stream, rearmer, budget)

        # Second pass: the identical feed re-announced.  Every record
        # is one fingerprint probe; nothing ships.
        natives = [FEED_TEMPLATES[i % len(FEED_TEMPLATES)]
                   for i in range(FEED_RECORDS)]
        started = time.perf_counter()
        resent = [item for item in
                  registry.lower_iter("resa", natives,
                                      batch_size=FEED_BATCH)
                  if not isinstance(item, RejectedNative)]
        delta = stream.diff(resent)
        rearmer.apply(delta)
        stream.commit(delta)
        resend_elapsed = time.perf_counter() - started

        armed_per_host = len(service.plans[hosts[0].name][0])
    finally:
        service.stop()

    throughput = applied / elapsed
    rows = [
        {"phase": "initial feed", "records": applied,
         "seconds": f"{elapsed:.4f}",
         "records_per_sec": f"{throughput:,.0f}",
         "blocked": budget.blocked_total,
         "patched": delta.generation - 1},
        {"phase": "resend (unchanged)", "records": len(resent),
         "seconds": f"{resend_elapsed:.4f}",
         "records_per_sec": f"{len(resent) / resend_elapsed:,.0f}",
         "blocked": "-", "patched": 0},
    ]
    print_table(
        f"E18 live stream ingest ({FEED_HOSTS} hosts, "
        f"budget {FEED_BUDGET}, batch {FEED_BATCH})", rows)
    path = merge_bench_json("ingest", "live_ingest", {
        "hosts": FEED_HOSTS,
        "records": applied,
        "budget_limit": FEED_BUDGET,
        "batch": FEED_BATCH,
        "seconds": round(elapsed, 6),
        "records_per_sec": round(throughput, 1),
        "blocked_total": budget.blocked_total,
        "monitors_per_host": armed_per_host,
        "resend_seconds": round(resend_elapsed, 6),
        "resend_unchanged": delta.unchanged,
    })
    print(f"wrote {path}")

    assert applied == FEED_RECORDS
    assert len(stream) == FEED_RECORDS
    # The feed outruns the re-arm plane at least once: the budget is
    # what turns that into blocking instead of unbounded buffering.
    assert budget.blocked_total >= 1, "backpressure never engaged"
    # The resend is pure fingerprint probes — an empty delta, nothing
    # patched, and the armed banks untouched.
    assert delta.empty and delta.unchanged == FEED_RECORDS
    assert armed_per_host > 0
