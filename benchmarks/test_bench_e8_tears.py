"""E8 — TEARS guarded-assertion evaluation over logs.

Regenerates the ANALYSIS-overview-style table: 20 G/As evaluated over
logs of 1e3..1e5 samples, with verdict counts and evaluation
throughput.

Expected shape: verdicts are stable across log sizes (PASSED for the
satisfied assertions, FAILED for the seeded violation, VACUOUS for the
never-triggered guard); evaluation time scales roughly linearly in
samples.
"""

import random

from repro.tears import GaVerdict, GuardedAssertion, TimedTrace, parse_expr

from conftest import print_table


def build_gas():
    """20 G/As over the synthetic plant signals."""
    gas = []
    for index in range(18):
        threshold = 50 + index * 2
        gas.append(GuardedAssertion(
            name=f"pressure_relief_{index}",
            guard=parse_expr(f"pressure > {threshold}"),
            assertion=parse_expr("valve == 1"),
            within=5,
        ))
    # One G/A that the trace violates, one that never triggers.
    gas.append(GuardedAssertion(
        name="impossible_instant_cooling",
        guard=parse_expr("pressure > 95"),
        assertion=parse_expr("temperature < 10"),
    ))
    gas.append(GuardedAssertion(
        name="never_triggered",
        guard=parse_expr("pressure > 1000"),
        assertion=parse_expr("valve == 1"),
    ))
    return gas


def build_trace(samples: int, seed: int = 0) -> TimedTrace:
    """A plant log: pressure ramps, the valve opens above 50."""
    rng = random.Random(seed)
    trace = TimedTrace()
    pressure = 30.0
    for tick in range(samples):
        pressure += rng.uniform(-3, 3.5)
        pressure = max(0.0, min(100.0, pressure))
        valve = 1 if pressure > 45 else 0
        temperature = 20 + pressure / 2
        trace.record(float(tick), pressure=pressure, valve=valve,
                     temperature=temperature)
    return trace


def evaluate_all(gas, trace):
    return [ga.evaluate(trace) for ga in gas]


def test_bench_e8_verdict_table():
    gas = build_gas()
    rows = []
    for samples in (1_000, 10_000):
        trace = build_trace(samples)
        results = evaluate_all(gas, trace)
        counts = {verdict: 0 for verdict in GaVerdict}
        for result in results:
            counts[result.verdict] += 1
        rows.append({
            "samples": samples,
            "gas": len(gas),
            "passed": counts[GaVerdict.PASSED],
            "failed": counts[GaVerdict.FAILED],
            "vacuous": counts[GaVerdict.VACUOUS],
        })
    print_table("E8 G/A verdicts by log size", rows)
    for row in rows:
        assert row["vacuous"] == 1          # the untriggerable guard
        assert row["failed"] >= 1           # the seeded violation
        assert row["passed"] >= 15


def test_bench_e8_failure_details():
    gas = build_gas()
    trace = build_trace(5_000)
    failing = [r for r in evaluate_all(gas, trace)
               if r.verdict is GaVerdict.FAILED]
    assert failing
    sample = failing[0]
    print_table("E8 failure detail sample", [
        {"ga": sample.name, "activations": sample.activations,
         "failures": len(sample.failures),
         "first_reason": sample.failures[0].reason},
    ])


def test_bench_e8_throughput(benchmark):
    gas = build_gas()
    trace = build_trace(10_000)
    results = benchmark(evaluate_all, gas, trace)
    assert len(results) == 20
    benchmark.extra_info["samples"] = 10_000
    benchmark.extra_info["gas"] = 20
