"""E11 — IEC 62443 gap analysis (extension experiment).

The paper names IEC 62443 as a requirements source; this bench
regenerates the standard-coverage tables: per-profile SR status counts
and coverage, the FR breakdown on the default host, and the
hardening delta (gap report before vs after enforcement).

Expected shape: hardened profiles satisfy every evidenced SR;
hardening lifts an adversarial host to full evidenced coverage;
unmapped SRs (no machine-checkable evidence in this framework) are
reported, not hidden.
"""

from repro.environment import (
    adversarial_ubuntu_host,
    default_ubuntu_host,
    hardened_ubuntu_host,
    hardened_windows_host,
)
from repro.rqcode import default_catalog
from repro.standards import GapAnalysis, SecurityLevel, SrStatus

from conftest import print_table


def test_bench_e11_coverage_by_profile():
    catalog = default_catalog()
    analysis = GapAnalysis(catalog)
    rows = []
    for factory in (default_ubuntu_host, hardened_ubuntu_host,
                    adversarial_ubuntu_host, hardened_windows_host):
        host = factory()
        report = analysis.analyze(host, SecurityLevel.SL2)
        rows.append({
            "profile": host.name,
            "srs": len(report.results),
            "satisfied": report.count(SrStatus.SATISFIED),
            "partial": report.count(SrStatus.PARTIAL),
            "unsatisfied": report.count(SrStatus.UNSATISFIED),
            "unmapped": report.count(SrStatus.UNMAPPED),
            "coverage": f"{report.coverage:.0%}",
        })
    print_table("E11 IEC 62443-3-3 gap analysis (SL2)", rows)
    by_profile = {row["profile"]: row for row in rows}
    assert by_profile["ubuntu-hardened"]["coverage"] == "100%"
    assert by_profile["win10-hardened"]["coverage"] == "100%"
    assert by_profile["ubuntu-adversarial"]["unsatisfied"] > 0


def test_bench_e11_fr_breakdown():
    catalog = default_catalog()
    report = GapAnalysis(catalog).analyze(default_ubuntu_host(),
                                          SecurityLevel.SL2)
    rows = [
        {"fr": fr, **histogram}
        for fr, histogram in sorted(report.by_fr().items())
    ]
    print_table("E11 FR breakdown (ubuntu-default, SL2)", rows)
    assert len(rows) == 7


def test_bench_e11_hardening_delta():
    catalog = default_catalog()
    analysis = GapAnalysis(catalog)
    host = adversarial_ubuntu_host()
    before = analysis.analyze(host)
    catalog.harden_host(host)
    after = analysis.analyze(host)
    print_table("E11 hardening delta (ubuntu-adversarial)", [
        {"when": "before", "satisfied": before.count(SrStatus.SATISFIED),
         "unsatisfied": before.count(SrStatus.UNSATISFIED),
         "coverage": f"{before.coverage:.0%}"},
        {"when": "after", "satisfied": after.count(SrStatus.SATISFIED),
         "unsatisfied": after.count(SrStatus.UNSATISFIED),
         "coverage": f"{after.coverage:.0%}"},
    ])
    assert after.coverage == 1.0
    assert before.coverage < after.coverage


def test_bench_e11_orchestrator_ingestion(benchmark):
    from repro.core import VeriDevOpsOrchestrator

    def ingest_and_run():
        orchestrator = VeriDevOpsOrchestrator()
        orchestrator.ingest_iec62443("ubuntu", SecurityLevel.SL2)
        host = default_ubuntu_host()
        return orchestrator, orchestrator.run_prevention([host])

    orchestrator, run = benchmark(ingest_and_run)
    assert run.passed
    bound = [r for r in orchestrator.repository if r.rqcode_findings]
    print_table("E11 ingested SRs with bindings (first 8)", [
        {"req": r.req_id, "provenance": r.provenance,
         "bindings": ",".join(r.rqcode_findings)}
        for r in bound[:8]
    ])
    assert bound
    benchmark.extra_info["srs"] = len(orchestrator.repository)
