"""E1 — Figure 1 (framework overview): the end-to-end flow, measured.

The DATE 2021 paper's central figure promises: requirements from NL,
standards and vulnerability databases flow through quality/formalization
/verification gates into deployment, with monitors handed to operations.
This bench executes that flow for three scenarios and regenerates the
traceability table (one row per requirement: source -> final status),
plus the gate table of the pipeline run.
"""

from repro.core import VeriDevOpsOrchestrator
from repro.environment import default_ubuntu_host, default_windows_host
from repro.scenarios import generated_scenarios, get_scenario
from repro.vulndb import bundled_database

from conftest import print_table

#: The pinned scenario carries E1's exact NL statements and reference
#: inventory, so the legacy traceability/histogram figures reproduce.
SCENARIO = get_scenario("seed-legacy")
NL_REQUIREMENTS = list(SCENARIO.nl_requirements)


def build_and_run(platform: str, scenario=SCENARIO, hosts=None):
    orchestrator = VeriDevOpsOrchestrator()
    orchestrator.ingest_natural_language(list(scenario.nl_requirements))
    orchestrator.ingest_standards(platform)
    inventory = scenario.inventory_for(f"{platform}-prod", platform)
    orchestrator.ingest_vulnerabilities(bundled_database(), inventory)
    if hosts is None:
        hosts = [default_ubuntu_host() if platform == "ubuntu"
                 else default_windows_host()]
    run = orchestrator.run_prevention(hosts)
    return orchestrator, hosts[0], run


def test_bench_e1_end_to_end(benchmark):
    orchestrator, host, run = benchmark(build_and_run, "ubuntu")

    assert run.passed, run.gate_rows()
    print_table("E1 gate results (ubuntu scenario)", run.gate_rows())

    rows = orchestrator.repository.traceability_rows()
    print_table("E1 traceability (first 12 rows)", rows[:12])

    histogram = orchestrator.repository.status_histogram()
    print_table("E1 status histogram", [
        {"status": status, "count": count}
        for status, count in histogram.items()
    ])
    # Shape assertions: standards reach MONITORED, everything formalizes.
    assert histogram["monitored"] >= 14
    assert histogram["elicited"] == 0
    benchmark.extra_info["requirements"] = len(orchestrator.repository)
    benchmark.extra_info["monitored"] = histogram["monitored"]


def test_bench_e1_windows_scenario(benchmark):
    orchestrator, host, run = benchmark(build_and_run, "windows")
    assert run.passed
    standards = [
        row for row in orchestrator.repository.traceability_rows()
        if row["source"] == "standard"
    ]
    assert len(standards) == 12
    print_table("E1 windows standards slice", standards)


def test_bench_e1_generated_scenarios():
    """The same end-to-end flow against every generated scenario: its
    NL feed, its inventory, and hosts drawn from its zoned estate
    (outermost and deepest zone) instead of the fixture profiles."""
    rows = []
    for scenario in generated_scenarios():
        fleet_hosts = scenario.build_fleet().hosts()
        sample = [fleet_hosts[0], fleet_hosts[-1]]
        orchestrator = VeriDevOpsOrchestrator()
        orchestrator.ingest_natural_language(
            list(scenario.nl_requirements))
        for platform in sorted({h.os_family for h in sample}):
            orchestrator.ingest_standards(platform)
        inventory = scenario.inventory_for(
            sample[0].name, sample[0].os_family)
        orchestrator.ingest_vulnerabilities(bundled_database(),
                                            inventory)
        run = orchestrator.run_prevention(sample)
        assert run.passed, (scenario.name, run.gate_rows())
        histogram = orchestrator.repository.status_histogram()
        assert histogram["elicited"] == 0, scenario.name
        rows.append({
            "scenario": scenario.name,
            "hosts": ", ".join(h.name for h in sample),
            "requirements": len(orchestrator.repository),
            "monitored": histogram["monitored"],
        })
    print_table("E1 generated scenarios", rows)
    assert len(rows) >= 3
