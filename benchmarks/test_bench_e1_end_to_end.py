"""E1 — Figure 1 (framework overview): the end-to-end flow, measured.

The DATE 2021 paper's central figure promises: requirements from NL,
standards and vulnerability databases flow through quality/formalization
/verification gates into deployment, with monitors handed to operations.
This bench executes that flow for three scenarios and regenerates the
traceability table (one row per requirement: source -> final status),
plus the gate table of the pipeline run.
"""

from repro.core import VeriDevOpsOrchestrator
from repro.environment import default_ubuntu_host, default_windows_host
from repro.vulndb import SoftwareInventory, bundled_database

from conftest import print_table

NL_REQUIREMENTS = [
    "The authentication service shall lock the account.",
    "When 3 consecutive failures occur, the session manager shall "
    "alert the operator within 5 seconds.",
    "The audit subsystem shall not transmit passwords.",
]


def build_and_run(platform: str):
    orchestrator = VeriDevOpsOrchestrator()
    orchestrator.ingest_natural_language(NL_REQUIREMENTS)
    orchestrator.ingest_standards(platform)
    inventory = SoftwareInventory.of(f"{platform}-prod", platform, {
        "openssh-server": "7.6", "bash": "4.3", "openssl": "1.0.1f",
    })
    orchestrator.ingest_vulnerabilities(bundled_database(), inventory)
    host = (default_ubuntu_host() if platform == "ubuntu"
            else default_windows_host())
    run = orchestrator.run_prevention([host])
    return orchestrator, host, run


def test_bench_e1_end_to_end(benchmark):
    orchestrator, host, run = benchmark(build_and_run, "ubuntu")

    assert run.passed, run.gate_rows()
    print_table("E1 gate results (ubuntu scenario)", run.gate_rows())

    rows = orchestrator.repository.traceability_rows()
    print_table("E1 traceability (first 12 rows)", rows[:12])

    histogram = orchestrator.repository.status_histogram()
    print_table("E1 status histogram", [
        {"status": status, "count": count}
        for status, count in histogram.items()
    ])
    # Shape assertions: standards reach MONITORED, everything formalizes.
    assert histogram["monitored"] >= 14
    assert histogram["elicited"] == 0
    benchmark.extra_info["requirements"] = len(orchestrator.repository)
    benchmark.extra_info["monitored"] = histogram["monitored"]


def test_bench_e1_windows_scenario(benchmark):
    orchestrator, host, run = benchmark(build_and_run, "windows")
    assert run.passed
    standards = [
        row for row in orchestrator.repository.traceability_rows()
        if row["source"] == "standard"
    ]
    assert len(standards) == 12
    print_table("E1 windows standards slice", standards)
