"""E10 — WP2: security requirements from vulnerability databases.

Regenerates the extraction-yield table: the bundled 120-record database
scanned against three platform inventories, reporting matches,
requirements emitted, and the pattern-family distribution.

Expected shape: yield grows with inventory exposure (legacy > patched >
bare); every emitted requirement carries a pattern family and the
distribution covers multiple families.
"""

from repro.vulndb import (
    RequirementGenerator,
    Severity,
    SoftwareInventory,
    bundled_database,
)

from conftest import print_table

INVENTORIES = {
    "legacy-ubuntu": SoftwareInventory.of("legacy-ubuntu", "ubuntu", {
        "bash": "4.2", "openssl": "1.0.1f", "openssh-server": "6.6",
        "nis": "3.17", "rsh-server": "0.17", "telnetd": "0.17",
        "httpd": "2.4.10", "postgresql": "9.6",
    }),
    "patched-ubuntu": SoftwareInventory.of("patched-ubuntu", "ubuntu", {
        "bash": "5.1", "openssl": "3.0.9", "openssh-server": "9.3",
        "httpd": "2.4.57", "postgresql": "15.3",
    }),
    "bare-windows": SoftwareInventory.of("bare-windows", "windows", {
        "smbv1": "1.0", "rdp": "10.0",
    }),
}


def test_bench_e10_yield_table():
    database = bundled_database()
    rows = []
    yields = {}
    for name, inventory in INVENTORIES.items():
        report = RequirementGenerator(database).generate(inventory)
        rows.append({
            "inventory": name,
            "products": len(inventory.products),
            "scanned": report.scanned,
            "matched": len(report.matched),
            "requirements": len(report.requirements),
        })
        yields[name] = len(report.requirements)
    print_table("E10 extraction yield per inventory", rows)
    assert yields["legacy-ubuntu"] > yields["patched-ubuntu"]
    assert yields["bare-windows"] >= 2  # the curated SMB/RDP records


def test_bench_e10_pattern_distribution():
    database = bundled_database()
    report = RequirementGenerator(database).generate(
        INVENTORIES["legacy-ubuntu"])
    histogram = report.pattern_histogram()
    print_table("E10 pattern-family distribution (legacy-ubuntu)", [
        {"pattern_family": family, "requirements": count}
        for family, count in sorted(histogram.items())
    ])
    assert len(histogram) >= 3
    assert sum(histogram.values()) == len(report.requirements)


def test_bench_e10_severity_filtering():
    database = bundled_database()
    rows = []
    for severity in (Severity.LOW, Severity.MEDIUM, Severity.HIGH,
                     Severity.CRITICAL):
        report = RequirementGenerator(
            database, min_severity=severity).generate(
                INVENTORIES["legacy-ubuntu"])
        rows.append({
            "min_severity": severity.value,
            "requirements": len(report.requirements),
        })
    print_table("E10 yield by severity floor", rows)
    counts = [row["requirements"] for row in rows]
    assert counts == sorted(counts, reverse=True)


def test_bench_e10_scan_throughput(benchmark):
    database = bundled_database()
    generator = RequirementGenerator(database)
    report = benchmark(generator.generate, INVENTORIES["legacy-ubuntu"])
    assert report.requirements
    benchmark.extra_info["records"] = len(database)
    benchmark.extra_info["requirements"] = len(report.requirements)
