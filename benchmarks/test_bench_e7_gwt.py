"""E7 — GWT/TIGER test generation.

Regenerates the generation table over three behaviour models (login,
turnstile, vending): abstract steps, action coverage, and generated
script size per strategy (random walk vs coverage-guided — the
DESIGN.md ablation).

Expected shape: coverage-guided reaches 100% action coverage with
fewer steps than a random walk needs for the same coverage.
"""

from repro.gwt import (
    GraphModel,
    MappingRule,
    ScriptCreator,
    edge_coverage_paths,
    random_walk,
    vertex_coverage_paths,
)
from repro.gwt import TestGenerator as TigerGenerator
from repro.gwt.graph import edge_coverage_of

from conftest import print_table


def login_model():
    model = GraphModel("login", "logged_out")
    model.add_state("logged_in")
    model.add_state("locked")
    model.add_action("logged_out", "logged_in", "login_ok")
    model.add_action("logged_out", "logged_out", "login_fail")
    model.add_action("logged_out", "locked", "lockout", param1=3)
    model.add_action("locked", "logged_out", "unlock")
    model.add_action("logged_in", "logged_out", "logout")
    return model


def turnstile_model():
    model = GraphModel("turnstile", "locked")
    model.add_state("unlocked")
    model.add_action("locked", "unlocked", "coin")
    model.add_action("locked", "locked", "push_locked")
    model.add_action("unlocked", "locked", "push")
    model.add_action("unlocked", "unlocked", "coin_again")
    return model


def vending_model():
    model = GraphModel("vending", "idle")
    for state in ("paid", "selected", "dispensing"):
        model.add_state(state)
    model.add_action("idle", "paid", "insert_coin", param1=1)
    model.add_action("paid", "idle", "refund")
    model.add_action("paid", "selected", "select_item")
    model.add_action("selected", "dispensing", "confirm")
    model.add_action("dispensing", "idle", "dispense")
    model.add_action("selected", "paid", "cancel_selection")
    return model


MODELS = {
    "login": login_model,
    "turnstile": turnstile_model,
    "vending": vending_model,
}


def test_bench_e7_generation_table():
    rows = []
    for name, factory in MODELS.items():
        model = factory()
        coverage_case = edge_coverage_paths(model)
        vertex_case = vertex_coverage_paths(model)
        random_case = random_walk(model, seed=0, max_steps=500,
                                  edge_coverage=1.0)
        rows.append({
            "model": name,
            "actions": len(model.actions),
            "edge_cov_steps": len(coverage_case.steps),
            "vertex_cov_steps": len(vertex_case.steps),
            "random_steps_to_full": len(random_case.steps),
        })
    print_table("E7 abstract-test generation per model", rows)
    for row in rows:
        # Coverage-guided needs at most as many steps as random walking.
        assert row["edge_cov_steps"] <= row["random_steps_to_full"]


def test_bench_e7_coverage_vs_budget():
    """Random-walk coverage as a function of the step budget."""
    model = vending_model()
    rows = []
    for budget in (2, 4, 8, 16, 32, 64):
        coverages = []
        for seed in range(10):
            case = random_walk(model, seed=seed, max_steps=budget)
            coverages.append(edge_coverage_of(model, [case]))
        rows.append({
            "budget": budget,
            "mean_coverage": round(sum(coverages) / len(coverages), 3),
        })
    print_table("E7 random-walk coverage vs step budget (vending)", rows)
    assert rows[-1]["mean_coverage"] >= rows[0]["mean_coverage"]


def test_bench_e7_concretization(benchmark):
    model = login_model()
    rules = [
        MappingRule("login_ok", ["system.login('u', 'pw')"]),
        MappingRule("login_fail", ["system.login('u', 'bad')"]),
        MappingRule("lockout",
                    ["for _ in range(int({param1})): "
                     "system.login('u', 'bad')"]),
        MappingRule("unlock", ["system.admin_unlock('u')"]),
        MappingRule("logout", ["system.logout()"]),
    ]
    generator = TigerGenerator(rules)
    creator = ScriptCreator()
    cases = [edge_coverage_paths(model),
             vertex_coverage_paths(model, test_id="vc-0")]

    def generate_script():
        return creator.render(generator.concretize_all(cases))

    script = benchmark(generate_script)
    compile(script, "<generated>", "exec")
    benchmark.extra_info["script_lines"] = len(script.splitlines())


def test_bench_e7_feature_to_tests_chain():
    """Extension: the fully automatic BDD chain — feature text to a
    covering abstract-test suite via the synthesized prefix-tree model."""
    from repro.gwt import parse_feature
    from repro.gwt.dsl import generate_suite
    from repro.gwt.scenario_model import model_from_feature

    feature = parse_feature("""
Feature: Account lockout
  Scenario: lock after failures
    Given the account is active
    When 3 consecutive logons fail
    Then the account is locked

  Scenario: admin recovery
    Given the account is active
    When 3 consecutive logons fail
    Then the account is locked
    And the administrator unlocks the account

  Scenario: normal logon
    Given the account is active
    When the user logs on successfully
    Then a session is created
""")
    model = model_from_feature(feature)
    suite = generate_suite(model, "directed(edge_coverage(100))")
    coverage = edge_coverage_of(model, suite)
    print_table("E7 feature -> synthesized model -> suite", [{
        "scenarios": len(feature.scenarios),
        "model_states": len(model.states),
        "model_actions": len(model.actions),
        "suite_cases": len(suite),
        "action_coverage": f"{coverage:.0%}",
    }])
    assert coverage == 1.0
