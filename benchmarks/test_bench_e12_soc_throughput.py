"""E12 — SOC runtime throughput vs the serial protection loop.

The serial :class:`ProtectionLoop` steps *every* armed monitor on
*every* host event, inline on the emitting thread.  The SOC runtime
shards hosts across workers and routes each event only to the monitors
whose obligations can actually change on it (sound selective routing:
a monitor is skipped iff progressing its obligation over an atom-free
step is a fixed point).

This bench drives the same fleet-wide drift-plus-noise scenario
through both runtimes — 20 hosts, benign heartbeat traffic around
every drift, exactly as an operations event stream looks — and
measures end-to-end throughput (scenario events per second, emission
through repair) and detection lag.  SOC results are swept over shard
counts {1, 2, 4, 8}.  Headline numbers land in ``BENCH_soc.json`` at
the repo root.

Expected shape: routing makes the SOC faster than the serial loop even
at 1 shard on noise-heavy streams; the gap holds as shards scale.
"""

import time

from repro.core.fleet import Fleet, FleetProtection
from repro.environment import hardened_ubuntu_host
from repro.rqcode import default_catalog

from bench_utils import write_bench_json
from conftest import print_table

HOSTS = 20
ROUNDS = 2
NOISE_PER_DRIFT = 30
DRIFT_PACKAGES = ("nis", "rsh-server", "telnetd")
# Per drift: NOISE heartbeats + package.installed + drift.package.
SCENARIO_EVENTS = HOSTS * ROUNDS * (NOISE_PER_DRIFT + 2)
REPS = 2  # best-of-N to damp scheduler noise


def build_fleet():
    fleet = Fleet("e12", default_catalog())
    for index in range(HOSTS):
        fleet.add(hardened_ubuntu_host(f"node-{index:02d}"))
    return fleet


def inject_storm(fleet):
    """Noise-wrapped drift on every host, ROUNDS times over."""
    drifts = 0
    for round_index in range(ROUNDS):
        for host_index, host in enumerate(fleet.hosts()):
            for _ in range(NOISE_PER_DRIFT):
                host.events.emit("app.heartbeat")
            host.drift_install_package(
                DRIFT_PACKAGES[(round_index + host_index)
                               % len(DRIFT_PACKAGES)])
            drifts += 1
    return drifts


def run_serial():
    fleet = build_fleet()
    protection = FleetProtection(fleet).start()
    started = time.perf_counter()
    drifts = inject_storm(fleet)          # handled inline, synchronously
    elapsed = time.perf_counter() - started
    protection.stop()
    effective = sum(1 for i in protection.incidents() if i.effective)
    assert effective >= drifts
    assert fleet.audit().worst_ratio == 1.0
    return elapsed


def run_soc(shards):
    fleet = build_fleet()
    service = fleet.arm_soc(shards=shards, queue_capacity=4096)
    try:
        started = time.perf_counter()
        drifts = inject_storm(fleet)
        service.drain()                   # barrier: every repair landed
        elapsed = time.perf_counter() - started
    finally:
        service.stop()
    assert service.effective_repairs() >= drifts
    assert fleet.audit().worst_ratio == 1.0
    snapshot = service.metrics_snapshot()
    lag = snapshot["histograms"]["soc.detection_lag_events"]
    return elapsed, lag


def test_bench_e12_soc_vs_serial_throughput():
    serial_seconds = min(run_serial() for _ in range(REPS))
    serial_tp = SCENARIO_EVENTS / serial_seconds

    rows = [{
        "runtime": "serial-loop",
        "shards": "-",
        "events_per_sec": f"{serial_tp:,.0f}",
        "seconds": f"{serial_seconds:.4f}",
        "lag_mean_events": "0.00",
    }]
    soc_results = {}
    for shards in (1, 2, 4, 8):
        timed = [run_soc(shards) for _ in range(REPS)]
        seconds, lag = min(timed, key=lambda pair: pair[0])
        throughput = SCENARIO_EVENTS / seconds
        soc_results[shards] = {
            "seconds": round(seconds, 6),
            "events_per_sec": round(throughput, 1),
            "detection_lag_mean_events": round(lag["mean"], 3),
            "detection_lag_max_events": lag["max"],
        }
        rows.append({
            "runtime": "soc",
            "shards": shards,
            "events_per_sec": f"{throughput:,.0f}",
            "seconds": f"{seconds:.4f}",
            "lag_mean_events": f"{lag['mean']:.2f}",
        })
    print_table(
        f"E12 SOC throughput ({HOSTS} hosts, "
        f"{SCENARIO_EVENTS} events)", rows)

    path = write_bench_json("soc", {
        "scenario": {
            "hosts": HOSTS,
            "rounds": ROUNDS,
            "noise_per_drift": NOISE_PER_DRIFT,
            "events": SCENARIO_EVENTS,
        },
        "serial": {
            "seconds": round(serial_seconds, 6),
            "events_per_sec": round(serial_tp, 1),
        },
        "soc": {str(shards): result
                for shards, result in soc_results.items()},
    })
    print(f"wrote {path}")

    # The acceptance bar: at operational shard counts the concurrent
    # runtime must at least match the serial loop on the same stream.
    for shards in (4, 8):
        assert soc_results[shards]["events_per_sec"] >= serial_tp, (
            f"SOC at {shards} shards slower than serial loop")
