"""E12 — SOC runtime throughput: serial loop vs thread vs process backends.

The serial :class:`ProtectionLoop` steps *every* armed monitor on
*every* host event, inline on the emitting thread.  The SOC runtime
shards hosts across workers and routes each event only to the monitors
whose obligations can actually change on it (sound selective routing:
a monitor is skipped iff progressing its obligation over an atom-free
step is a fixed point).  The SOC runtime itself is swept over both
shard execution backends:

* ``thread`` — shard workers as threads over :class:`ShardQueue`
  (shared heap, GIL-interleaved);
* ``process`` — shard workers as processes over the binary event
  plane (fixed-width codec + SPSC shared-memory rings).

This bench drives the same fleet-wide drift-plus-noise scenario
through all three — 32 hosts, 448 armed monitors, benign heartbeat
traffic around every drift, exactly as an operations event stream
looks — and measures end-to-end throughput (scenario events per
second, emission through repair) and detection lag.  Both backends
are swept over shard counts {1, 2, 4, 8}.  Headline numbers land in
``BENCH_soc.json`` at the repo root, stamped with the core count.

Expected shape: routing makes the SOC faster than the serial loop even
at 1 shard on noise-heavy streams.  The process backend's throughput
story is *hardware-conditional* — with real cores it escapes the GIL
plateau the thread backend hits, while on a single-core box wall-clock
is simply the sum of all work and the cross-process transport can only
cost, never win.  Its detection-lag story is structural and holds
everywhere: shard processes drain continuously instead of waiting for
GIL handoffs, so lag stays flat as shards scale.  Assertions are
therefore split: universal invariants always run; scaling wins are
gated on ``os.cpu_count()``.
"""

import os
import time

from repro.chaos import check_invariants
from repro.core.fleet import FleetProtection
from repro.scenarios import generated_scenarios, get_scenario

from bench_utils import write_bench_json
from conftest import print_table

#: The pinned scenario behind the headline sweep: its drift rotation
#: (four *distinct* targets so a host never re-drifts the same package
#: across the four rounds — a repeat would race its first repair
#: against its second install) and its 32-node hardened fleet are the
#: pre-refactor fixtures, byte for byte, so BENCH_soc.json figures
#: stay comparable.
SCENARIO = get_scenario("seed-legacy")
HOSTS = SCENARIO.hosts
ROUNDS = 4
NOISE_PER_DRIFT = 80
# Per drift: NOISE heartbeats + package event + drift event.
SCENARIO_EVENTS = HOSTS * ROUNDS * (NOISE_PER_DRIFT + 2)
SHARD_SWEEP = (1, 2, 4, 8)
BACKENDS = ("thread", "process")
REPS = 2  # best-of-N to damp scheduler noise
CPUS = os.cpu_count() or 1


def build_fleet():
    return SCENARIO.build_fleet(name="e12")


def inject_storm(fleet, scenario=SCENARIO, rounds=ROUNDS,
                 noise_per_drift=NOISE_PER_DRIFT):
    """Noise-wrapped drift on every host, *rounds* times over, the
    rotation drawn from the scenario's drift schedule."""
    drifts = 0
    for round_index in range(rounds):
        for host_index, host in enumerate(fleet.hosts()):
            for _ in range(noise_per_drift):
                host.events.emit("app.heartbeat")
            scenario.apply_drift(host, round_index, host_index)
            drifts += 1
    return drifts


def run_serial():
    fleet = build_fleet()
    protection = FleetProtection(fleet).start()
    started = time.perf_counter()
    drifts = inject_storm(fleet)          # handled inline, synchronously
    elapsed = time.perf_counter() - started
    protection.stop()
    effective = sum(1 for i in protection.incidents() if i.effective)
    assert effective >= drifts
    assert fleet.audit().worst_ratio == 1.0
    return elapsed


def run_soc(backend, shards):
    fleet = build_fleet()
    service = fleet.arm_soc(shards=shards, queue_capacity=4096,
                            backend=backend)
    try:
        started = time.perf_counter()
        drifts = inject_storm(fleet)
        service.drain()                   # barrier: every repair landed
        elapsed = time.perf_counter() - started
    finally:
        service.stop()
    assert service.effective_repairs() >= drifts
    assert fleet.audit().worst_ratio == 1.0
    snapshot = service.metrics_snapshot()
    lag = snapshot["histograms"]["soc.detection_lag_events"]
    return elapsed, lag


def test_bench_e12_soc_vs_serial_throughput():
    serial_seconds = min(run_serial() for _ in range(REPS))
    serial_tp = SCENARIO_EVENTS / serial_seconds

    rows = [{
        "runtime": "serial-loop",
        "shards": "-",
        "events_per_sec": f"{serial_tp:,.0f}",
        "seconds": f"{serial_seconds:.4f}",
        "lag_mean_events": "0.00",
    }]
    results = {backend: {} for backend in BACKENDS}
    for backend in BACKENDS:
        for shards in SHARD_SWEEP:
            timed = [run_soc(backend, shards) for _ in range(REPS)]
            seconds, lag = min(timed, key=lambda pair: pair[0])
            throughput = SCENARIO_EVENTS / seconds
            results[backend][shards] = {
                "seconds": round(seconds, 6),
                "events_per_sec": round(throughput, 1),
                "detection_lag_mean_events": round(lag["mean"], 3),
                "detection_lag_max_events": lag["max"],
            }
            rows.append({
                "runtime": f"soc-{backend}",
                "shards": shards,
                "events_per_sec": f"{throughput:,.0f}",
                "seconds": f"{seconds:.4f}",
                "lag_mean_events": f"{lag['mean']:.2f}",
            })
    print_table(
        f"E12 SOC throughput ({HOSTS} hosts, {SCENARIO_EVENTS} events, "
        f"{CPUS} cpus)", rows)

    path = write_bench_json("soc", {
        "scenario": {
            "hosts": HOSTS,
            "rounds": ROUNDS,
            "noise_per_drift": NOISE_PER_DRIFT,
            "events": SCENARIO_EVENTS,
            "cpus": CPUS,
        },
        "serial": {
            "seconds": round(serial_seconds, 6),
            "events_per_sec": round(serial_tp, 1),
        },
        "soc": {backend: {str(shards): result
                          for shards, result in per_backend.items()}
                for backend, per_backend in results.items()},
    })
    print(f"wrote {path}")

    thread, process = results["thread"], results["process"]

    # -- universal invariants (any core count) ------------------------------
    # Selective routing keeps the thread SOC at least even with the
    # serial loop at operational shard counts (10% tolerance: on a
    # single, shared core the two runs are within scheduler noise of
    # each other — best-of-2 does not fully damp it).
    for shards in (4, 8):
        assert thread[shards]["events_per_sec"] >= 0.9 * serial_tp, (
            f"thread SOC at {shards} shards slower than serial loop")
    # The process backend's transport overhead must stay bounded even
    # where it cannot win wall-clock (single core): no worse than
    # 0.4x the serial loop at operational shard counts (typically
    # 0.7-0.9x here; the slack absorbs single-core scheduler noise).
    for shards in (4, 8):
        assert process[shards]["events_per_sec"] >= 0.4 * serial_tp, (
            f"process SOC at {shards} shards pathologically slow")
    # Detection lag is the process backend's structural win: shard
    # processes drain continuously (no GIL handoff between producer
    # and workers), so lag stays flat as shards scale — the thread
    # backend's lag grows with shard count instead.
    for shards in (4, 8):
        assert process[shards]["detection_lag_mean_events"] <= 5.0, (
            f"process backend lag regressed at {shards} shards")
    assert process[8]["detection_lag_mean_events"] <= \
        thread[8]["detection_lag_mean_events"], \
        "process backend lost its detection-lag advantage at 8 shards"

    # -- scaling wins (hardware-gated) --------------------------------------
    # With real cores the process backend escapes the GIL plateau.
    if CPUS >= 4:
        assert process[4]["events_per_sec"] >= \
            thread[4]["events_per_sec"], \
            "process backend below thread at 4 shards despite >=4 cpus"
        assert process[8]["events_per_sec"] > \
            thread[8]["events_per_sec"], \
            "process backend below thread at 8 shards despite >=4 cpus"
    if CPUS >= 8:
        assert process[8]["events_per_sec"] >= 2.5 * serial_tp, (
            "process backend at 8 shards under 2.5x serial despite "
            ">=8 cpus")


# -- generated scenarios ----------------------------------------------------

GEN_ROUNDS = 2
GEN_NOISE = 8
GEN_SHARDS = 4


def run_generated(scenario):
    """One thread-backend storm over a generated zoned estate, the SOC
    sharded by the topology's conduit-aware placement hints."""
    fleet = scenario.build_fleet()
    service = fleet.arm_soc(shards=GEN_SHARDS, queue_capacity=4096,
                            placement=scenario.shard_hints(GEN_SHARDS))
    try:
        started = time.perf_counter()
        drifts = inject_storm(fleet, scenario=scenario,
                              rounds=GEN_ROUNDS,
                              noise_per_drift=GEN_NOISE)
        service.drain()
        elapsed = time.perf_counter() - started
    finally:
        service.stop()
    check_invariants(service).raise_if_violated()
    assert service.effective_repairs() >= drifts
    assert fleet.audit().worst_ratio == 1.0
    events = len(fleet.hosts()) * GEN_ROUNDS * (GEN_NOISE + 2)
    return {
        "hosts": len(fleet.hosts()),
        "zones": scenario.zones,
        "seconds": round(elapsed, 6),
        "events_per_sec": round(events / elapsed, 1),
        "drifts": drifts,
    }


def test_bench_e12_generated_scenarios():
    """The same storm loop over every generated scenario: correctness
    (full repair coverage, conservation invariants) must hold on any
    seeded estate, not just the pinned fixture fleet."""
    results = {}
    rows = []
    for scenario in generated_scenarios():
        results[scenario.name] = run_generated(scenario)
        rows.append(dict({"scenario": scenario.name},
                         **results[scenario.name]))
    print_table(
        f"E12 generated scenarios (thread backend, {GEN_SHARDS} shards, "
        f"conduit-aware placement)", rows)
    path = write_bench_json("soc_scenarios", {
        "rounds": GEN_ROUNDS,
        "noise_per_drift": GEN_NOISE,
        "shards": GEN_SHARDS,
        "scenarios": results,
    })
    print(f"wrote {path}")
    assert len(results) >= 3
