"""E5 — PROPAS/PSP formula generation and observer verification.

Regenerates two tables:

1. the pattern x scope coverage matrix (which combinations render to
   LTL, which to TCTL) — the catalogue's advertised surface;
2. observer-automata verdicts: each supported observer composed with a
   compliant and a violating system, checked with the zone checker.

Expected shape: 29 LTL cells; observers separate compliant from
violating systems on every row.
"""

from repro.specpatterns import (
    Absence,
    AfterQ,
    AfterQUntilR,
    BeforeR,
    BetweenQAndR,
    BoundedExistence,
    Existence,
    Globally,
    PatternScopeUnsupported,
    Precedence,
    PrecedenceChain,
    Response,
    ResponseChain,
    TimedResponse,
    Universality,
    build_observer,
    to_ltl,
    to_tctl,
)
from repro.specpatterns.observers import ObserverUnsupported
from repro.ta import Edge, Location, Network, TimedAutomaton, \
    ZoneGraphChecker, parse_query

from conftest import print_table

PATTERNS = [
    Absence(p="p"),
    Universality(p="p"),
    Existence(p="p"),
    BoundedExistence(p="p"),
    Precedence(p="p", s="s"),
    Response(p="p", s="s"),
    PrecedenceChain(p="p", s="s", t="t"),
    ResponseChain(p="p", s="s", t="t"),
    TimedResponse(p="p", s="s", bound=5),
]

SCOPES = [
    Globally(),
    BeforeR(r="r"),
    AfterQ(q="q"),
    BetweenQAndR(q="q", r="r"),
    AfterQUntilR(q="q", r="r"),
]


def test_bench_e5_coverage_matrix():
    rows = []
    ltl_cells = 0
    for pattern in PATTERNS:
        row = {"pattern": pattern.kind}
        for scope in SCOPES:
            try:
                to_ltl(pattern, scope)
                cell = "LTL"
                ltl_cells += 1
            except PatternScopeUnsupported:
                cell = "-"
            try:
                build_observer(pattern, scope)
                cell += "+Obs"
            except ObserverUnsupported:
                pass
            row[scope.kind] = cell
        rows.append(row)
    print_table("E5 pattern x scope coverage", rows)
    assert ltl_cells == 29
    # TCTL rendering is total over the pattern set.
    for pattern in PATTERNS:
        assert to_tctl(pattern)


def emitter(name, *actions, loop=False):
    locations = [Location(f"s{i}", urgent=True)
                 for i in range(len(actions))]
    locations.append(Location("end", urgent=loop))
    edges = []
    for i, action in enumerate(actions):
        target = f"s{i + 1}" if i + 1 < len(actions) else "end"
        edges.append(Edge(f"s{i}", target, sync=f"{action}!",
                          action=action))
    if loop and actions:
        edges.append(Edge("end", "s0", action="repeat"))
    return TimedAutomaton(name=name, clocks=[], locations=locations,
                          edges=edges)


OBSERVER_CASES = [
    ("Absence/Globally", Absence(p="p"), None,
     ("q",), ("p",)),
    ("Absence/AfterQ", Absence(p="p"), AfterQ(q="q"),
     ("p", "q"), ("q", "p")),
    ("Absence/Between", Absence(p="p"), BetweenQAndR(q="q", r="r"),
     ("q", "r", "p"), ("q", "p", "r")),
    ("Precedence/Globally", Precedence(p="p", s="s"), None,
     ("s", "p"), ("p", "s")),
    ("Existence/Globally", Existence(p="p"), None,
     ("p",), ("x",)),
    ("BoundedExistence/Globally", BoundedExistence(p="p", bound=2), None,
     ("p", "p"), ("p", "p", "p")),
    ("ResponseChain/Globally", ResponseChain(p="p", s="s", t="t"), None,
     ("p", "s", "t"), ("p", "s")),
    ("Universality/Globally", Universality(p="up"), None,
     ("boot",), ("not_up",)),
]


def test_bench_e5_observer_verdicts():
    rows = []
    for title, pattern, scope, good, bad in OBSERVER_CASES:
        channels = set(good) | set(bad)
        observer = build_observer(pattern, scope,
                                  extra_channels=sorted(channels))
        query = parse_query(observer.query)

        def verdict(actions):
            system = emitter("Sys", *actions)
            network = Network([system, observer.automaton])
            return ZoneGraphChecker(network).check(query)

        good_result = verdict(good)
        bad_result = verdict(bad)
        rows.append({
            "case": title,
            "query": observer.query,
            "compliant": "HOLDS" if good_result.satisfied else "VIOLATED",
            "violating": "HOLDS" if bad_result.satisfied else "VIOLATED",
        })
    print_table("E5 observer verdicts (compliant vs violating systems)",
                rows)
    assert all(row["compliant"] == "HOLDS" for row in rows)
    assert all(row["violating"] == "VIOLATED" for row in rows)


def test_bench_e5_verification_throughput(benchmark):
    observer = build_observer(Response(p="req", s="ack"))
    system = emitter("Sys", "req", "ack", loop=True)
    network = Network([system, observer.automaton])
    query = parse_query(observer.query)

    def verify():
        return ZoneGraphChecker(network).check(query)

    result = benchmark(verify)
    assert result.satisfied
    benchmark.extra_info["states"] = result.states_explored
