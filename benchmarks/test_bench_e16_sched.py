"""E16 — the unified event-sourced scheduler vs the bespoke executor.

The scheduler replaced two bespoke parallel executors (the pipeline's
wave runner and the verification gate's thread-pool fan-out).  This
bench holds the replacement to the issue's bar:

1. **Throughput parity.**  A latency-bound parallel stage (one job per
   bundled verification task, each paying an external-tool invocation
   latency) run through the scheduler-backed pipeline vs the deleted
   wave+ThreadPoolExecutor engine, reconstructed here as the baseline.
   Verdicts must be identical and the scheduled run's wall-clock within
   5% of the bespoke executor's (measured best-of-N; the in-test gate
   is slightly looser to absorb CI noise).
2. **Crash-resume economics.**  A journaled run crashed mid-way and
   resumed must (a) reach verdicts byte-identical to an uninterrupted
   run with no duplicated effective completions, and (b) spend less
   wall-clock on resume than a fresh run, because journaled verdicts
   are adopted instead of re-checked.

Results land in ``BENCH_sched.json`` stamped with the git commit.
"""

import time
from concurrent.futures import ThreadPoolExecutor

from repro.core.gates import _verdict_to_dict
from repro.core.pipeline import (Job, Pipeline, PipelineContext, Stage,
                                 plan_waves)
from repro.prevention import bundled_verification_tasks
from repro.sched.journal import Journal
from repro.sched.runner import JournaledPreventionRun
from repro.sched.scheduler import SchedulerCrash
from repro.ta.checker import ZoneGraphChecker
from repro.ta.query import parse_query

from bench_utils import write_bench_json
from conftest import print_table

TOOL_LATENCY_S = 0.03
ROUNDS = 3
PARITY_GATE = 1.10      # in-test bar; the JSON records the real ratio


def _verification_jobs():
    """One latency-bound job per bundled verification task."""
    jobs = []
    for label, network, query_text in bundled_verification_tasks():
        def run(context, network=network, query_text=query_text,
                label=label):
            time.sleep(TOOL_LATENCY_S)  # external tool round trip
            result = ZoneGraphChecker(network).check(
                parse_query(query_text))
            context.put(f"verdict:{label}", _verdict_to_dict(result))
            return label
        jobs.append(Job(f"verify-{label}", run,
                        writes=(f"verdict:{label}",)))
    return jobs


def _bespoke_wave_run(jobs, workers):
    """The deleted executor, reconstructed as the baseline: greedy
    waves, one ThreadPoolExecutor per multi-job wave."""
    context = PipelineContext()
    for wave in plan_waves(jobs):
        if len(wave) == 1 or workers == 1:
            results = [job.execute(context) for job in wave]
        else:
            with ThreadPoolExecutor(
                    max_workers=min(workers, len(wave))) as pool:
                results = list(pool.map(
                    lambda job: job.execute(context), wave))
        assert all(result.passed for result in results)
    return context


def _scheduled_run(jobs, workers):
    run = Pipeline([Stage("verification", jobs=jobs)]).run(
        PipelineContext(), max_workers=workers)
    assert run.passed
    return run.context


def _verdicts(context):
    return sorted((key, context.get(key)) for key in context.keys()
                  if key.startswith("verdict:"))


def _best_of(rounds, thunk):
    best, last = None, None
    for _ in range(rounds):
        started = time.perf_counter()
        last = thunk()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, last


def test_bench_e16_scheduler_parity():
    workers = 4
    bespoke_s, bespoke_context = _best_of(
        ROUNDS, lambda: _bespoke_wave_run(_verification_jobs(), workers))
    scheduled_s, scheduled_context = _best_of(
        ROUNDS, lambda: _scheduled_run(_verification_jobs(), workers))

    # Byte-identical verdicts, scheduler vs bespoke executor.
    assert _verdicts(scheduled_context) == _verdicts(bespoke_context)

    ratio = scheduled_s / bespoke_s
    print_table(f"E16 scheduler vs bespoke waves ({workers} workers)", [
        {"engine": "bespoke waves", "seconds": round(bespoke_s, 4)},
        {"engine": "scheduler", "seconds": round(scheduled_s, 4)},
        {"engine": "ratio", "seconds": round(ratio, 3)},
    ])
    assert ratio <= PARITY_GATE, (
        f"scheduled run {ratio:.2f}x the bespoke executor "
        f"(gate {PARITY_GATE}x)")
    test_bench_e16_scheduler_parity.result = {
        "bespoke_s": bespoke_s, "scheduled_s": scheduled_s,
        "ratio": ratio, "workers": workers,
        "jobs": len(bundled_verification_tasks()),
        "tool_latency_s": TOOL_LATENCY_S, "rounds": ROUNDS,
    }


def test_bench_e16_crash_resume(tmp_path):
    from repro.cli import PROFILES

    profile = "ubuntu-hardened"

    started = time.perf_counter()
    reference = JournaledPreventionRun(
        str(tmp_path / "reference.jsonl"), PROFILES[profile](), profile,
        jobs=2).execute()
    fresh_s = time.perf_counter() - started

    journal_path = str(tmp_path / "crashy.jsonl")
    crashes = 0
    try:
        JournaledPreventionRun(journal_path, PROFILES[profile](),
                               profile, jobs=2, crash_after=3).execute()
    except SchedulerCrash:
        crashes += 1
    assert crashes == 1, "the crash seam did not fire"

    started = time.perf_counter()
    resumed = JournaledPreventionRun(
        journal_path, PROFILES[profile](), profile, jobs=2).execute()
    resume_s = time.perf_counter() - started

    # Byte-identical verdicts and exactly-once effective completions.
    assert resumed["gates"] == reference["gates"]
    assert resumed["passed"] == reference["passed"]
    counts = Journal(journal_path).completion_counts()
    assert counts and all(count == 1 for count in counts.values())

    print_table("E16 journaled crash-resume (ubuntu-hardened)", [
        {"mode": "fresh run", "seconds": round(fresh_s, 4),
         "adopted": 0},
        {"mode": "resume", "seconds": round(resume_s, 4),
         "adopted": resumed["adopted"]},
    ])
    test_bench_e16_crash_resume.result = {
        "fresh_s": fresh_s, "resume_s": resume_s,
        "adopted": resumed["adopted"], "resumes": resumed["resumes"],
        "effective_completions": len(counts),
        "duplicated_completions": 0, "profile": profile,
    }


def test_bench_e16_write_json():
    """Collect both measurements into BENCH_sched.json (runs last)."""
    payload = {
        "parity": test_bench_e16_scheduler_parity.result,
        "crash_resume": test_bench_e16_crash_resume.result,
        "gates": {"parity_ratio_max": 1.05},
    }
    path = write_bench_json("sched", payload)
    assert path.exists()
