"""Machine-readable benchmark output.

Headline benches dump a small JSON document at the repository root
(``BENCH_<name>.json``) so CI — and the next session — can diff
performance numbers without scraping pytest output.  Every document is
stamped with the git commit it was produced from, so the perf
trajectory stays traceable across PRs.
"""

import json
import platform
import subprocess
import sys
from pathlib import Path
from typing import Dict

REPO_ROOT = Path(__file__).resolve().parent.parent

_COMMIT = None


def git_commit() -> str:
    """The repo's HEAD commit hash, or ``unknown`` outside a checkout."""
    global _COMMIT
    if _COMMIT is None:
        try:
            _COMMIT = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=REPO_ROOT, capture_output=True, text=True, check=True,
            ).stdout.strip() or "unknown"
        except (OSError, subprocess.CalledProcessError):
            _COMMIT = "unknown"
    return _COMMIT


def write_bench_json(name: str, payload: Dict[str, object]) -> Path:
    """Write ``BENCH_<name>.json`` at the repo root and return its path."""
    document = {
        "bench": name,
        "commit": git_commit(),
        "python": sys.version.split()[0],
        "machine": platform.machine(),
    }
    document.update(payload)
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def merge_bench_json(name: str, section: str,
                     payload: Dict[str, object]) -> Path:
    """Merge *payload* into ``BENCH_<name>.json`` under key *section*.

    Benches that share a document (e.g. E15's cache/parallel sections
    and E17's fleet section both live in ``BENCH_prevention.json``) use
    this instead of :func:`write_bench_json`, which would clobber the
    sibling sections.  The header stamps (commit, python, machine) are
    refreshed; everything else is preserved.
    """
    path = REPO_ROOT / f"BENCH_{name}.json"
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        document = {}
    document.update({
        "bench": name,
        "commit": git_commit(),
        "python": sys.version.split()[0],
        "machine": platform.machine(),
    })
    document[section] = payload
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path
