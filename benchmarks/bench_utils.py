"""Machine-readable benchmark output.

Headline benches dump a small JSON document at the repository root
(``BENCH_<name>.json``) so CI — and the next session — can diff
performance numbers without scraping pytest output.  Every document is
stamped with the git commit it was produced from, so the perf
trajectory stays traceable across PRs.
"""

import json
import platform
import subprocess
import sys
from pathlib import Path
from typing import Dict

REPO_ROOT = Path(__file__).resolve().parent.parent

_COMMIT = None


def git_commit() -> str:
    """The repo's HEAD commit hash, or ``unknown`` outside a checkout."""
    global _COMMIT
    if _COMMIT is None:
        try:
            _COMMIT = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=REPO_ROOT, capture_output=True, text=True, check=True,
            ).stdout.strip() or "unknown"
        except (OSError, subprocess.CalledProcessError):
            _COMMIT = "unknown"
    return _COMMIT


def write_bench_json(name: str, payload: Dict[str, object]) -> Path:
    """Write ``BENCH_<name>.json`` at the repo root and return its path."""
    document = {
        "bench": name,
        "commit": git_commit(),
        "python": sys.version.split()[0],
        "machine": platform.machine(),
    }
    document.update(payload)
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path
