"""Machine-readable benchmark output.

Headline benches dump a small JSON document at the repository root
(``BENCH_<name>.json``) so CI — and the next session — can diff
performance numbers without scraping pytest output.
"""

import json
import platform
import sys
from pathlib import Path
from typing import Dict

REPO_ROOT = Path(__file__).resolve().parent.parent


def write_bench_json(name: str, payload: Dict[str, object]) -> Path:
    """Write ``BENCH_<name>.json`` at the repo root and return its path."""
    document = {
        "bench": name,
        "python": sys.version.split()[0],
        "machine": platform.machine(),
    }
    document.update(payload)
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path
