"""E3 — "prevention at development": the STIG compliance gate.

Regenerates the compliance matrix over the full catalogue and the three
host profiles per platform: check-before, remediated, check-after.

Expected shape: hardened profiles are 100% compliant before enforcement;
default profiles are partially compliant; adversarial profiles start
near 0% and reach 100% after enforcement.
"""

import pytest

from repro.environment import (
    adversarial_ubuntu_host,
    adversarial_windows_host,
    default_ubuntu_host,
    default_windows_host,
    hardened_ubuntu_host,
    hardened_windows_host,
)
from repro.rqcode import default_catalog

from conftest import print_table

PROFILES = {
    "win10-default": default_windows_host,
    "win10-hardened": hardened_windows_host,
    "win10-adversarial": adversarial_windows_host,
    "ubuntu-default": default_ubuntu_host,
    "ubuntu-hardened": hardened_ubuntu_host,
    "ubuntu-adversarial": adversarial_ubuntu_host,
}


def test_bench_e3_compliance_matrix():
    catalog = default_catalog()
    rows = []
    for name, factory in PROFILES.items():
        audit_host = factory()
        audit = catalog.check_host(audit_host)
        harden_host = factory()
        hardened = catalog.harden_host(harden_host)
        rows.append({
            "profile": name,
            "findings": audit.total,
            "pass_before": audit.passing,
            "remediated": hardened.remediated,
            "pass_after": hardened.passing,
        })
    print_table("E3 compliance matrix (check / enforce / re-check)", rows)

    by_name = {row["profile"]: row for row in rows}
    # Hardened profiles need no remediation.
    assert by_name["win10-hardened"]["remediated"] == 0
    assert by_name["ubuntu-hardened"]["pass_before"] == \
        by_name["ubuntu-hardened"]["findings"]
    # Adversarial profiles start at zero and end fully compliant.
    assert by_name["ubuntu-adversarial"]["pass_before"] == 0
    assert by_name["ubuntu-adversarial"]["pass_after"] == \
        by_name["ubuntu-adversarial"]["findings"]
    assert by_name["win10-adversarial"]["pass_after"] == 12


@pytest.mark.parametrize("profile", ["ubuntu-adversarial",
                                     "win10-adversarial"])
def test_bench_e3_harden_throughput(benchmark, profile):
    catalog = default_catalog()
    factory = PROFILES[profile]

    def harden_fresh_host():
        return catalog.harden_host(factory())

    report = benchmark(harden_fresh_host)
    assert report.compliance_ratio == 1.0
    benchmark.extra_info["findings"] = report.total
    benchmark.extra_info["remediated"] = report.remediated


def test_bench_e3_audit_throughput(benchmark):
    catalog = default_catalog()
    host = default_ubuntu_host()
    report = benchmark(catalog.check_host, host)
    assert report.total == 14
