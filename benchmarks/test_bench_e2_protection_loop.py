"""E2 — "automated protection ... at operations": detect -> repair.

The paper claims reactive protection at operations time.  This bench
injects K = 1..32 drift events into a deployed host and measures, for
the two protection styles DESIGN.md ablates:

* event-driven (LTL monitors on the event stream): detection latency
  per incident, repairs applied;
* polling (RQCODE MonitoringLoop style): latency bounded below by the
  poll period.

Expected shape: event-driven latency is 0 events regardless of K;
polling latency grows with the injected idle time; both repair 100%.
"""

from repro.core import VeriDevOpsOrchestrator
from repro.core.protection import PollingProtection
from repro.environment import hardened_ubuntu_host
from repro.rqcode import default_catalog

from bench_utils import write_bench_json
from conftest import print_table

DRIFTABLE_PACKAGES = ("nis", "rsh-server", "telnetd")


def run_event_driven(drift_count: int):
    host = hardened_ubuntu_host(f"ops-{drift_count}")
    orchestrator = VeriDevOpsOrchestrator()
    orchestrator.ingest_standards("ubuntu")
    run = orchestrator.run_prevention([host])
    loop = orchestrator.start_protection(host, run)
    for index in range(drift_count):
        host.drift_install_package(
            DRIFTABLE_PACKAGES[index % len(DRIFTABLE_PACKAGES)])
    return host, loop


def test_bench_e2_event_driven(benchmark):
    host, loop = benchmark(run_event_driven, 8)
    effective = [i for i in loop.incidents if i.effective]
    assert len(effective) == 8
    latencies = [i.detection_latency for i in effective]
    assert all(latency == 0 for latency in latencies)
    for package in DRIFTABLE_PACKAGES:
        assert not host.dpkg.is_installed(package)
    benchmark.extra_info["mean_latency_events"] = (
        sum(latencies) / len(latencies))


def test_bench_e2_latency_table():
    """The E2 comparison table (no timing, pure shape)."""
    rows = []
    for drift_count in (1, 4, 16, 32):
        _, loop = run_event_driven(drift_count)
        effective = [i for i in loop.incidents if i.effective]
        event_latency = max(i.detection_latency for i in effective)

        poll_host = hardened_ubuntu_host(f"poll-{drift_count}")
        polling = PollingProtection(poll_host, default_catalog())
        for index in range(drift_count):
            poll_host.drift_install_package(
                DRIFTABLE_PACKAGES[index % len(DRIFTABLE_PACKAGES)])
        poll_host.events.advance(20)  # the poll period, in event time
        incidents = polling.poll()
        poll_latency = max(i.detection_latency for i in incidents)

        rows.append({
            "drifts": drift_count,
            "event_detected": len(effective),
            "event_latency_max": event_latency,
            "poll_detected": len(incidents),
            "poll_latency_max": poll_latency,
        })
    print_table("E2 detection latency: event-driven vs polling", rows)
    write_bench_json("e2", {"latency_table": rows})
    # Shape: event-driven always immediate, polling >= poll period.
    assert all(row["event_latency_max"] == 0 for row in rows)
    assert all(row["poll_latency_max"] >= 20 for row in rows)


def test_bench_e2_polling_throughput(benchmark):
    host = hardened_ubuntu_host("poll-bench")
    protection = PollingProtection(host, default_catalog())
    host.drift_install_package("nis")

    def drift_and_poll():
        host.dpkg.install("nis")
        return protection.poll()

    incidents = benchmark(drift_and_poll)
    assert incidents  # the drifted finding is repaired every cycle


def test_bench_e2_fleet_drift_storm():
    """Fleet extension: drift on every host of a mixed fleet is
    repaired host-locally with zero-event latency."""
    from repro.core.fleet import Fleet, FleetProtection
    from repro.environment import hardened_windows_host

    fleet = Fleet("prod", default_catalog())
    for index in range(4):
        fleet.add(hardened_ubuntu_host(f"web-{index}"))
    fleet.add(hardened_windows_host("console"))
    protection = FleetProtection(fleet).start()

    for index in range(4):
        fleet.host(f"web-{index}").drift_install_package(
            DRIFTABLE_PACKAGES[index % len(DRIFTABLE_PACKAGES)])
    fleet.host("console").drift_audit_policy("Logon")

    effective = [i for i in protection.incidents() if i.effective]
    print_table("E2 fleet drift storm", [{
        "hosts": len(fleet),
        "drift_events": 5,
        "effective_repairs": len(effective),
        "max_latency_events": max(i.detection_latency
                                  for i in effective),
        "posture_after": f"{fleet.audit().worst_ratio:.0%}",
    }])
    assert len(effective) >= 5
    assert all(i.detection_latency == 0 for i in effective)
    assert fleet.audit().worst_ratio == 1.0
