"""E13 — compiled monitor stepping vs formula progression.

The SOC's fleet win (E12) came from *skipping* monitors; this bench
measures making the unskippable steps cheap.  `LtlMonitor` rewrites its
obligation tree on every event; `CompiledMonitor` memoizes progression
behind a shared per-formula transition table, so a warmed step is one
set intersection plus one dict probe.

Workloads sweep formula families (absence drift detector, response,
next-chain, precedence, and a conjunction of patterns) and noise ratios
(fraction of events carrying none of the formula's atoms — operational
streams are noise-heavy).  The headline *steady-state* row arms one
monitor per family — a miniature host monitor bank — and drives the
noise=0.9 stream through all of them per event, tables pre-warmed; this
is the regime the SOC sits in after the first few seconds of traffic.

Monitors that trip FALSE are reset and re-armed inline, exactly as the
protection loop does, so the stream never goes dead.  Headline numbers
land in ``BENCH_ltl.json``.

Expected shape: compiled stepping is >= 5x progression on the warmed
steady-state workload; the gap widens with formula size and survives
across noise ratios.
"""

import random
import time

from repro.ltl import CompiledMonitor, LtlMonitor, Verdict, parse_ltl
from repro.ltl.compile import transition_table

from bench_utils import write_bench_json
from conftest import print_table

FAMILIES = {
    "absence": "G !drift.package",
    "response": "G (auth.request -> F auth.grant)",
    "next-chain": "G (deploy.start -> X deploy.verify)",
    "precedence": "(!session.open) W auth.grant",
    "conjunction": ("G !drift.package & G (auth.request -> F auth.grant) "
                    "& G (deploy.start -> X deploy.verify) "
                    "& F audit.enabled"),
}

#: Event kinds that can appear on the stream (relevant + pure noise).
RELEVANT = ("drift.package", "auth.request", "auth.grant", "deploy.start",
            "deploy.verify", "session.open", "audit.enabled")
NOISE_KINDS = ("app.heartbeat", "net.flow", "cron.tick", "disk.io")

EVENTS = 20000
NOISE_RATIOS = (0.5, 0.9, 0.99)
STEADY_STATE_NOISE = 0.9
REPS = 3  # best-of-N to damp scheduler noise
SEED = 20210426


def make_trace(noise_ratio, events=EVENTS, seed=SEED):
    """A stream of steps: mostly noise, sprinkled with relevant kinds."""
    rng = random.Random(seed)
    trace = []
    for _ in range(events):
        if rng.random() < noise_ratio:
            kind = NOISE_KINDS[rng.randrange(len(NOISE_KINDS))]
        else:
            kind = RELEVANT[rng.randrange(len(RELEVANT))]
        parts = kind.split(".")
        trace.append(frozenset(
            ".".join(parts[:i]) for i in range(1, len(parts) + 1)))
    return trace


def drive(monitors, trace):
    """Step every monitor on every event, re-arming on FALSE — the
    protection-loop contract.  Returns elapsed seconds."""
    started = time.perf_counter()
    for step in trace:
        for monitor in monitors:
            if monitor.observe(step) is Verdict.FALSE:
                monitor.reset()
    return time.perf_counter() - started


def bank(engine):
    """One armed monitor per formula family."""
    return [engine(parse_ltl(text)) for text in FAMILIES.values()]


def measure(build_monitors, trace, reps=REPS):
    """Best-of-*reps* monitor-steps per second for a monitor set."""
    best = min(drive(build_monitors(), trace) for _ in range(reps))
    stepped = len(trace) * len(build_monitors())
    return stepped / best, best


def test_bench_e13_monitor_stepping_throughput():
    rows = []
    families_json = {}
    for name, text in FAMILIES.items():
        formula = parse_ltl(text)
        families_json[name] = {"formula": text, "noise": {}}
        for noise in NOISE_RATIOS:
            trace = make_trace(noise)
            # Warm the shared transition table before timing compiled.
            CompiledMonitor(formula).observe_many(trace)
            compiled_tp, _ = measure(
                lambda: [CompiledMonitor(formula)], trace)
            progression_tp, _ = measure(
                lambda: [LtlMonitor(formula)], trace)
            speedup = compiled_tp / progression_tp
            families_json[name]["noise"][str(noise)] = {
                "progression_steps_per_sec": round(progression_tp, 1),
                "compiled_steps_per_sec": round(compiled_tp, 1),
                "speedup": round(speedup, 2),
            }
            rows.append({
                "family": name,
                "noise": noise,
                "progression/s": f"{progression_tp:,.0f}",
                "compiled/s": f"{compiled_tp:,.0f}",
                "speedup": f"{speedup:.2f}x",
            })
        table = transition_table(formula)
        families_json[name]["table"] = {
            "transitions": len(table),
            "misses": table.misses,
        }
    print_table(
        f"E13 per-family monitor stepping ({EVENTS:,} events)", rows)

    # Steady-state workload: the full family bank over the noise-heavy
    # stream, tables warmed — the SOC's post-warmup regime.
    trace = make_trace(STEADY_STATE_NOISE)
    for monitor in bank(CompiledMonitor):
        monitor.observe_many(trace)          # warm every shared table
    compiled_tp, compiled_s = measure(lambda: bank(CompiledMonitor), trace)
    progression_tp, progression_s = measure(lambda: bank(LtlMonitor), trace)
    steady_speedup = compiled_tp / progression_tp
    print_table("E13 steady-state bank (5 monitors, noise=0.9, warmed)", [{
        "engine": "progression",
        "monitor-steps/s": f"{progression_tp:,.0f}",
        "seconds": f"{progression_s:.4f}",
    }, {
        "engine": "compiled",
        "monitor-steps/s": f"{compiled_tp:,.0f}",
        "seconds": f"{compiled_s:.4f}",
    }, {
        "engine": "speedup",
        "monitor-steps/s": f"{steady_speedup:.2f}x",
        "seconds": "-",
    }])

    path = write_bench_json("ltl", {
        "scenario": {
            "events": EVENTS,
            "noise_ratios": list(NOISE_RATIOS),
            "families": list(FAMILIES),
            "reps": REPS,
        },
        "families": families_json,
        "steady_state": {
            "noise": STEADY_STATE_NOISE,
            "monitors": len(FAMILIES),
            "progression_steps_per_sec": round(progression_tp, 1),
            "compiled_steps_per_sec": round(compiled_tp, 1),
            "speedup": round(steady_speedup, 2),
        },
    })
    print(f"wrote {path}")

    # Acceptance bar: warmed compiled stepping is >= 5x progression on
    # the steady-state workload.
    assert steady_speedup >= 5.0, (
        f"compiled engine only {steady_speedup:.2f}x progression")


def test_bench_e13_verdict_parity_on_bench_traces():
    """The timed workloads themselves are verdict-checked: both engines
    must produce identical trip sequences on every bench trace."""
    for noise in NOISE_RATIOS:
        trace = make_trace(noise, events=2000)
        for text in FAMILIES.values():
            formula = parse_ltl(text)
            compiled = CompiledMonitor(formula)
            reference = LtlMonitor(formula)
            for step in trace:
                cv = compiled.observe(step)
                rv = reference.observe(step)
                assert cv is rv
                if cv is Verdict.FALSE:
                    compiled.reset()
                    reference.reset()
