#!/usr/bin/env python3
"""Operations audit: telemetry, post-hoc judgement, and reporting.

Runs a full drift-and-repair episode on a deployed host while a
telemetry sampler records compliance signals; then (a) judges the
episode post-hoc with a TEARS guarded assertion, (b) renders the
Markdown security report for the cycle, and (c) exports the PROPAS
observer model of the recovery requirement as UPPAAL XML for external
verification.

Run:  python examples/ops_audit.py
"""

from repro.core import VeriDevOpsOrchestrator, report_for_cycle
from repro.environment import hardened_ubuntu_host
from repro.environment.telemetry import HostSampler
from repro.specpatterns import TimedResponse, build_observer
from repro.ta import Edge, Location, Network, TimedAutomaton, parse_guard
from repro.ta.uppaal_export import to_uppaal_queries, to_uppaal_xml
from repro.tears import GuardedAssertion, parse_expr


def main() -> None:
    # -- deploy and arm protection -------------------------------------------
    host = hardened_ubuntu_host("ops-prod")
    orchestrator = VeriDevOpsOrchestrator()
    orchestrator.ingest_standards("ubuntu")
    run = orchestrator.run_prevention([host])
    loop = orchestrator.start_protection(host, run)
    sampler = HostSampler(host, orchestrator.catalog)

    # -- episode 1: event-driven repair is invisible to a sampler ---------------
    sampler.sample(0)
    host.drift_install_package("nis")  # detected and repaired in-event
    sampler.sample(1)                  # already back at 100%
    print(f"event-driven incidents: {loop.incident_count()} "
          f"({sum(1 for i in loop.incidents if i.effective)} effective)")

    # -- episode 2: with the loop down, drift persists until the next poll --------
    loop.stop()
    host.drift_config_value("/etc/ssh/sshd_config",
                            "PermitEmptyPasswords", "yes")
    sampler.sample(2)                  # degradation visible
    from repro.core import PollingProtection
    polling = PollingProtection(host, orchestrator.catalog)
    polling.poll()                     # the scheduled repair
    sampler.sample(3)                  # recovered
    print(f"polling incidents: {len(polling.incidents)}")

    # -- (a) post-hoc judgement with TEARS ----------------------------------------
    ga = GuardedAssertion(
        name="compliance_recovers_fast",
        guard=parse_expr("compliance < 1"),
        assertion=parse_expr("compliance == 1"),
        within=2,
    )
    result = ga.evaluate(sampler.trace)
    print(f"TEARS '{ga.name}': {result.verdict.value} "
          f"({result.activations} activations)")

    # -- (b) the Markdown security report ------------------------------------------
    report = report_for_cycle(orchestrator, run, loop,
                              title="ops-prod security report")
    markdown = report.render()
    print("\n--- report head ---")
    for line in markdown.splitlines()[:14]:
        print(line)

    # -- (c) UPPAAL export of the recovery requirement's observer model ---------------
    pattern = TimedResponse(p="drift", s="repaired", bound=5)
    observer = build_observer(pattern)
    ops_model = TimedAutomaton(
        name="Ops", clocks=["x"],
        locations=[
            Location("steady"),
            Location("repairing", invariant=parse_guard("x <= 1")),
        ],
        edges=[
            Edge("steady", "repairing", sync="drift!", resets=("x",),
                 action="drift"),
            Edge("repairing", "steady", sync="repaired!",
                 action="repaired"),
        ],
    )
    network = Network([ops_model, observer.automaton])
    xml_text = to_uppaal_xml(network)
    queries = to_uppaal_queries([observer.query], network)
    print("\n--- UPPAAL export (first 10 lines) ---")
    for line in xml_text.splitlines()[:10]:
        print(line)
    print(f"query file: {queries.strip()}")


if __name__ == "__main__":
    main()
