#!/usr/bin/env python3
"""Model-based test generation from GWT requirements (the TIGER path).

A Given-When-Then feature motivates a graph model of the account-lockout
behaviour; abstract test cases are generated under three strategies,
concretized through mapping rules against the signal table, and emitted
as a runnable pytest script.  Finally the same behaviour is judged
post-hoc with TEARS guarded assertions over a simulated session log.

Run:  python examples/test_generation.py
"""

from repro.gwt import (
    GraphModel,
    MappingRule,
    ScriptCreator,
    TestGenerator,
    edge_coverage_paths,
    parse_feature,
    random_walk,
    read_signals_xml,
    vertex_coverage_paths,
)
from repro.gwt.graph import edge_coverage_of
from repro.tears import GuardedAssertion, TimedTrace, parse_expr

FEATURE = """
Feature: Account lockout
  Locks accounts after repeated logon failures.

  @security
  Scenario: lock after three failures
    Given the account "alice" is active
    When 3 consecutive logons fail
    Then the account is locked
"""

SIGNALS = """
<signals>
  <signal name="attempts" kind="input" type="int" min="0" max="10"/>
  <signal name="locked" kind="output" type="bool"/>
</signals>
"""


def build_model() -> GraphModel:
    model = GraphModel("lockout", "active")
    model.add_state("locked")
    model.add_action("active", "active", "fail_logon", param1=1)
    model.add_action("active", "locked", "third_failure", param1=3)
    model.add_action("locked", "active", "admin_unlock")
    model.add_action("active", "active", "successful_logon")
    return model


def main() -> None:
    feature = parse_feature(FEATURE)
    scenario = feature.scenarios[0]
    print(f"feature: {feature.name}")
    print(f"scenario: {scenario.name} (tags: {scenario.tags})")
    for step in scenario.steps:
        print(f"  {step}")

    model = build_model()
    print(f"\nmodel: {len(model.states)} states, "
          f"{len(model.actions)} actions")

    cases = [
        edge_coverage_paths(model),
        vertex_coverage_paths(model, test_id="vc-0"),
        random_walk(model, seed=11, max_steps=12, test_id="rw-0"),
    ]
    print("\nabstract test cases:")
    for case in cases:
        coverage = edge_coverage_of(model, [case])
        print(f"  {case.test_id:<5} ({case.name}): "
              f"{len(case.steps)} steps, {coverage:.0%} action coverage")
        print(f"        {' -> '.join(case.actions)}")

    rules = [
        MappingRule("fail_logon",
                    ["system.logon('alice', 'wrong-password')"]),
        MappingRule("third_failure",
                    ["for _ in range(int({param1})):",
                     "    system.logon('alice', 'wrong-password')",
                     "assert system.is_locked('alice')"]),
        MappingRule("admin_unlock",
                    ["system.admin_unlock('alice')",
                     "assert not system.is_locked('alice')"]),
        MappingRule("successful_logon",
                    ["system.logon('alice', 'correct-password')",
                     "assert system.session_active('alice')"]),
    ]
    generator = TestGenerator(rules, read_signals_xml(SIGNALS))
    concrete = generator.concretize_all(cases)
    script = ScriptCreator().render(concrete)
    print("\ngenerated script (first 25 lines):")
    for line in script.splitlines()[:25]:
        print(f"  {line}")

    # Post-hoc judgement of an execution log with TEARS.
    trace = TimedTrace()
    trace.record(0, failures=0, locked=0)
    trace.record(1, failures=3, locked=0)
    trace.record(2, failures=3, locked=1)
    ga = GuardedAssertion(
        name="lock_after_three_failures",
        guard=parse_expr("failures >= 3"),
        assertion=parse_expr("locked == 1"),
        within=2,
    )
    result = ga.evaluate(trace)
    print(f"\nTEARS verdict for '{ga.name}': {result.verdict.value} "
          f"({result.activations} activation)")


if __name__ == "__main__":
    main()
