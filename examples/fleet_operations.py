#!/usr/bin/env python3
"""Fleet operations: posture, protection, and a drift storm.

Builds a mixed fleet (Ubuntu web tier + a Windows operations console),
audits the fleet posture, arms per-host protection, injects a drift
storm across every machine, and shows the fleet healing itself —
finishing with the aggregated posture table and incident log.

Run:  python examples/fleet_operations.py
"""

from repro.core import Fleet, FleetProtection
from repro.environment import (
    default_ubuntu_host,
    hardened_ubuntu_host,
    hardened_windows_host,
)
from repro.rqcode import default_catalog


def print_rows(title, rows):
    print(f"\n=== {title} ===")
    if not rows:
        print("(none)")
        return
    columns = list(rows[0])
    widths = {c: max(len(str(c)), *(len(str(r[c])) for r in rows))
              for c in columns}
    print("  ".join(str(c).ljust(widths[c]) for c in columns))
    for row in rows:
        print("  ".join(str(row[c]).ljust(widths[c]) for c in columns))


def main() -> None:
    fleet = Fleet("prod", default_catalog())
    fleet.add(hardened_ubuntu_host("web-1"))
    fleet.add(hardened_ubuntu_host("web-2"))
    fleet.add(default_ubuntu_host("web-3"))      # joined unhardened
    fleet.add(hardened_windows_host("console"))

    print_rows("initial posture (audit)", fleet.audit().rows())

    # Bring the stray host up to baseline, then arm protection.
    posture = fleet.harden()
    print_rows("posture after fleet hardening", posture.rows())

    protection = FleetProtection(fleet).start()
    print("\nprotection armed on", len(fleet), "hosts; drift storm...")

    fleet.host("web-1").drift_install_package("nis")
    fleet.host("web-2").drift_config_value(
        "/etc/ssh/sshd_config", "PermitEmptyPasswords", "yes")
    fleet.host("web-3").drift_stop_service("rsyslog")
    fleet.host("console").drift_audit_policy("Logon")
    fleet.host("console").drift_account_policy(threshold=0)

    effective = [i for i in protection.incidents() if i.effective]
    print_rows("effective repairs", [
        {
            "t": incident.detected_at,
            "requirement": incident.req_id,
            "trigger": incident.trigger_kind,
            "repaired": ", ".join(r.finding_id for r in incident.repairs),
        }
        for incident in effective
    ])

    print_rows("final posture", fleet.audit().rows())
    print(f"\n{protection.effective_repairs()} effective repairs, "
          f"worst ratio {fleet.audit().worst_ratio:.0%}")


if __name__ == "__main__":
    main()
