#!/usr/bin/env python3
"""Quickstart: the full VeriDevOps loop in one script.

Requirements come in from three sources (natural language, the STIG
standard catalogue, a vulnerability database scan); the prevention
pipeline quality-checks, formalizes, verifies and deploys them against
a simulated Ubuntu host; the protection loop then detects and repairs
configuration drift at "operations" time.

Run:  python examples/quickstart.py
"""

from repro.core import VeriDevOpsOrchestrator
from repro.environment import default_ubuntu_host
from repro.vulndb import SoftwareInventory, bundled_database


def main() -> None:
    orchestrator = VeriDevOpsOrchestrator()

    # -- WP2: ingest requirements -------------------------------------------
    orchestrator.ingest_natural_language([
        "The authentication service shall lock the account.",
        "When 3 consecutive failures occur, the session manager shall "
        "alert the operator within 5 seconds.",
        "The audit subsystem shall not transmit passwords.",
    ])
    orchestrator.ingest_standards("ubuntu")
    inventory = SoftwareInventory.of("ubuntu-prod", "ubuntu", {
        "openssh-server": "7.6",
        "bash": "4.3",
        "openssl": "1.0.1f",
    })
    orchestrator.ingest_vulnerabilities(bundled_database(), inventory)
    print(f"ingested {len(orchestrator.repository)} requirements")

    # -- WP4: prevention pipeline --------------------------------------------
    host = default_ubuntu_host("ubuntu-prod")
    run = orchestrator.run_prevention([host])
    print(run.summary())
    for row in run.gate_rows():
        print(f"  [{row['verdict']}] {row['stage']}/{row['gate']}: "
              f"{row['detail']}")

    # -- WP3: protection at operations ----------------------------------------
    loop = orchestrator.start_protection(host, run)
    print("\nprotection armed; injecting drift...")
    host.drift_install_package("rsh-server")
    host.drift_config_value("/etc/ssh/sshd_config",
                            "PermitEmptyPasswords", "yes")

    for incident in loop.incidents:
        if incident.effective:
            repairs = ", ".join(r.finding_id for r in incident.repairs)
            print(f"  detected {incident.trigger_kind} at "
                  f"t={incident.detected_at} (latency "
                  f"{incident.detection_latency} events) -> repaired "
                  f"{repairs}")

    print("\nfinal status histogram:",
          orchestrator.repository.status_histogram())
    print("rsh-server installed:", host.dpkg.is_installed("rsh-server"))
    print("PermitEmptyPasswords:",
          host.config.get("/etc/ssh/sshd_config", "PermitEmptyPasswords"))


if __name__ == "__main__":
    main()
