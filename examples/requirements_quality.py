#!/usr/bin/env python3
"""Requirements quality and formalization: NALABS + RESA + patterns.

Analyzes a small requirements document for bad smells (NALABS), matches
each statement against the RESA boilerplates, and renders the formal
artifacts (specification pattern, LTL, TCTL) for the ones that match —
the WP2 path from prose to formalism.

Run:  python examples/requirements_quality.py
"""

from repro.nalabs import NalabsAnalyzer, RequirementText
from repro.resa import BoilerplateMatchError, match_boilerplate, to_pattern
from repro.specpatterns import to_ltl, to_tctl
from repro.specpatterns.ltl_mappings import PatternScopeUnsupported

DOCUMENT = [
    ("SEC-1", "The authentication service shall lock the account."),
    ("SEC-2", "When 3 consecutive failures occur, the session manager "
              "shall alert the operator within 5 seconds."),
    ("SEC-3", "The audit subsystem shall not transmit passwords."),
    ("SEC-4", "The gateway shall provide adequate performance and may "
              "possibly be user-friendly where possible."),
    ("SEC-5", "While the session is idle, the session manager shall "
              "enforce the baseline."),
    ("SEC-6", "The update client handles certificates as described in "
              "section 4.2 and in [7]."),
]


def main() -> None:
    analyzer = NalabsAnalyzer()

    print("=== NALABS smell analysis ===")
    corpus = analyzer.analyze_corpus(
        [RequirementText(req_id, text) for req_id, text in DOCUMENT])
    for report in corpus.reports:
        flags = ", ".join(report.flagged_metrics) or "clean"
        print(f"{report.req_id}: {flags}")
    print(f"\n{corpus.smelly_count}/{corpus.total} requirements smelly")
    print("\nper-metric summary:")
    for row in corpus.summary_rows():
        print(f"  {row['metric']:<16} mean={row['mean']:<8} "
              f"max={row['max']:<8} flagged={row['flagged']}")

    print("\n=== RESA formalization ===")
    for req_id, text in DOCUMENT:
        try:
            structured = match_boilerplate(req_id, text)
        except BoilerplateMatchError:
            print(f"{req_id}: no boilerplate match — needs rewriting")
            continue
        pattern, scope = to_pattern(structured)
        print(f"{req_id}: {structured.boilerplate_id} -> ({pattern}) "
              f"({scope})")
        try:
            print(f"   LTL : {to_ltl(pattern, scope)}")
        except PatternScopeUnsupported:
            print("   LTL : (outside the catalogue's LTL table)")
        print(f"   TCTL: {to_tctl(pattern, scope)}")


if __name__ == "__main__":
    main()
