#!/usr/bin/env python3
"""Formal verification with observer automata (the PROPAS path).

Builds a small intrusion-response gateway as a timed automaton, then
verifies three security properties against it by composing generated
observer automata and running the zone-graph model checker — including
one property that *fails*, with its counterexample trace.

Run:  python examples/formal_verification.py
"""

from repro.specpatterns import (
    Absence,
    AfterQUntilR,
    Precedence,
    TimedResponse,
    build_observer,
)
from repro.ta import (
    Edge,
    Location,
    Network,
    TimedAutomaton,
    ZoneGraphChecker,
    parse_guard,
    parse_query,
)


def gateway(alert_latency: int) -> TimedAutomaton:
    """An intrusion-response gateway.

    After an intrusion it must raise an alert (the invariant forces it
    within *alert_latency*), then it locks down; once locked down no
    traffic is forwarded until an operator reset.
    """
    return TimedAutomaton(
        name="GW", clocks=["x"],
        locations=[
            Location("run"),
            Location("alerting",
                     invariant=parse_guard(f"x <= {alert_latency}")),
            Location("lockdown"),
        ],
        edges=[
            Edge("run", "run", sync="forward!", action="forward"),
            Edge("run", "alerting", sync="intrusion!", resets=("x",),
                 action="intrusion"),
            Edge("alerting", "lockdown", sync="alert!", action="alert"),
            Edge("lockdown", "run", sync="reset!", action="reset"),
        ],
    )


#: Every channel the gateway emits; observers receive the ones outside
#: their pattern so the binary handshake never blocks the system.
GATEWAY_CHANNELS = ("forward", "intrusion", "alert", "reset")


def check(title, pattern, system, scope=None) -> None:
    observer = build_observer(pattern, scope,
                              extra_channels=GATEWAY_CHANNELS)
    network = Network([system, observer.automaton])
    result = ZoneGraphChecker(network).check(parse_query(observer.query))
    verdict = "HOLDS" if result.satisfied else "VIOLATED"
    print(f"{verdict:<9} {title}")
    print(f"          query: {observer.query}, "
          f"states explored: {result.states_explored}")
    if not result.satisfied and result.witness:
        print(f"          counterexample: {' -> '.join(result.witness)}")


def main() -> None:
    print("=== fast gateway (alert within 3) ===")
    fast = gateway(alert_latency=3)
    check("alert responds to intrusion within 10",
          TimedResponse(p="intrusion", s="alert", bound=10), fast)
    check("no forwarding after an intrusion until reset",
          Absence(p="forward"),
          fast, scope=AfterQUntilR(q="intrusion", r="reset"))

    print("\n=== slow gateway (alert within 30) ===")
    slow = gateway(alert_latency=30)
    check("alert responds to intrusion within 10",
          TimedResponse(p="intrusion", s="alert", bound=10), slow)

    print("\n=== order property ===")
    check("every alert is preceded by an intrusion",
          Precedence(p="alert", s="intrusion"), gateway(3))


if __name__ == "__main__":
    main()
