#!/usr/bin/env python3
"""STIG compliance campaigns across host profiles (RQCODE in action).

Audits and hardens the six bundled host profiles (default / hardened /
adversarial, on Windows 10 and Ubuntu 18.04) against the RQCODE
catalogue, printing the per-finding check/enforce/check table — the
same shape experiment E3 benchmarks.

Run:  python examples/stig_compliance.py
"""

from repro.environment import (
    adversarial_ubuntu_host,
    adversarial_windows_host,
    default_ubuntu_host,
    default_windows_host,
    hardened_ubuntu_host,
    hardened_windows_host,
)
from repro.rqcode import default_catalog


def print_report(title, report) -> None:
    print(f"\n=== {title}: {report.summary()} ===")
    header = f"{'finding':<10} {'sev':<7} {'before':<11} " \
             f"{'enforce':<11} {'after':<6}"
    print(header)
    print("-" * len(header))
    for row in report.rows():
        print(f"{row['finding']:<10} {row['severity']:<7} "
              f"{row['before']:<11} {row['enforce']:<11} {row['after']:<6}")


def main() -> None:
    catalog = default_catalog()
    print(f"catalogue: {len(catalog)} findings "
          f"({len(catalog.finding_ids('windows'))} windows, "
          f"{len(catalog.finding_ids('ubuntu'))} ubuntu)")

    profiles = [
        default_windows_host(), hardened_windows_host(),
        adversarial_windows_host(), default_ubuntu_host(),
        hardened_ubuntu_host(), adversarial_ubuntu_host(),
    ]

    # Audit-only pass: how compliant is each profile out of the box?
    print("\n--- audit (check only) ---")
    for host in profiles:
        report = catalog.check_host(host)
        bar = "#" * int(report.compliance_ratio * 20)
        print(f"{host.name:<22} {report.passing:>2}/{report.total:<2} "
              f"[{bar:<20}]")

    # Remediation pass on the adversarial Ubuntu host, with details.
    adversarial = adversarial_ubuntu_host("ubuntu-adv-2")
    report = catalog.harden_host(adversarial)
    print_report("hardening ubuntu-adversarial", report)

    # One finding end-to-end, showing the STIG document rendering.
    from repro.rqcode.ubuntu import V_219158
    finding = V_219158(default_ubuntu_host("doc-demo"))
    print("\n--- finding document (V-219158) ---")
    print(finding.to_document()[:400])


if __name__ == "__main__":
    main()
