"""repro — VeriDevOps reproduction.

Automated Protection and Prevention to Meet Security Requirements in
DevOps Environments (DATE 2021), reproduced as a pure-Python monorepo.

Subpackages:

* :mod:`repro.core` — the VeriDevOps orchestrator, DevOps pipeline
  engine, security gates, and the operations-time protection loop.
* :mod:`repro.rqcode` — Requirements as Code: checkable/enforceable
  requirement classes, temporal patterns, STIG catalogue.
* :mod:`repro.environment` — simulated Windows/Ubuntu hosts (auditpol,
  dpkg, config files, services, event log).
* :mod:`repro.nalabs` — natural-language requirement bad-smell metrics.
* :mod:`repro.specpatterns` — Dwyer-style specification patterns with
  LTL/MTL/TCTL mappings and PROPAS observer-automata generation.
* :mod:`repro.ta` — timed automata and a DBM zone-graph model checker.
* :mod:`repro.ltl` — LTL over finite traces (3-valued runtime monitor).
* :mod:`repro.tears` — TEARS guarded assertions over timed logs.
* :mod:`repro.gwt` — Given-When-Then scenarios and graph-model test
  generation (TIGER-style concretization).
* :mod:`repro.resa` — boilerplate-constrained requirements (EAST-ADL).
* :mod:`repro.vulndb` — vulnerability records and requirement generation.
"""

__version__ = "1.0.0"
