"""IEC 62443-3-3 system requirements (slice).

IEC 62443-3-3 organizes *system requirements* (SRs) under seven
*foundational requirements* (FRs) and tags each SR with the security
levels (SL 1-4) whose capability it contributes to.  The slice below
covers the SRs that the VeriDevOps security patterns touch — identifi-
cation/authentication, use control, system integrity, data confidenti-
ality, restricted data flow, timely response to events, and resource
availability — with paraphrased one-line intents (the full normative
text is not reproduced).
"""

import enum
from dataclasses import dataclass
from typing import List, Tuple


class FoundationalRequirement(enum.Enum):
    """The seven FRs of IEC 62443."""

    IAC = "FR 1 - Identification and authentication control"
    UC = "FR 2 - Use control"
    SI = "FR 3 - System integrity"
    DC = "FR 4 - Data confidentiality"
    RDF = "FR 5 - Restricted data flow"
    TRE = "FR 6 - Timely response to events"
    RA = "FR 7 - Resource availability"


class SecurityLevel(enum.IntEnum):
    """Target security levels SL 1-4."""

    SL1 = 1
    SL2 = 2
    SL3 = 3
    SL4 = 4


@dataclass(frozen=True)
class SystemRequirement:
    """One SR: id, FR, intent, and the lowest SL that requires it."""

    sr_id: str
    name: str
    fr: FoundationalRequirement
    baseline_level: SecurityLevel
    intent: str

    def required_at(self, level: SecurityLevel) -> bool:
        return level >= self.baseline_level


IEC62443_SRS: Tuple[SystemRequirement, ...] = (
    # FR 1 — Identification and authentication control
    SystemRequirement(
        "SR 1.1", "Human user identification and authentication",
        FoundationalRequirement.IAC, SecurityLevel.SL1,
        "Identify and authenticate all human users on all interfaces."),
    SystemRequirement(
        "SR 1.5", "Authenticator management",
        FoundationalRequirement.IAC, SecurityLevel.SL1,
        "Initialize, change and protect all authenticators."),
    SystemRequirement(
        "SR 1.7", "Strength of password-based authentication",
        FoundationalRequirement.IAC, SecurityLevel.SL1,
        "Enforce configurable password strength."),
    SystemRequirement(
        "SR 1.11", "Unsuccessful login attempts",
        FoundationalRequirement.IAC, SecurityLevel.SL1,
        "Limit consecutive invalid access attempts and lock out."),
    SystemRequirement(
        "SR 1.13", "Access via untrusted networks",
        FoundationalRequirement.IAC, SecurityLevel.SL1,
        "Monitor and control all access over untrusted networks."),
    SystemRequirement(
        "SR 1.14", "Strength of symmetric-key authentication",
        FoundationalRequirement.IAC, SecurityLevel.SL2,
        "Protect symmetric keys used for authentication."),
    # FR 2 — Use control
    SystemRequirement(
        "SR 2.1", "Authorization enforcement",
        FoundationalRequirement.UC, SecurityLevel.SL1,
        "Enforce authorizations on all users for all actions."),
    SystemRequirement(
        "SR 2.8", "Auditable events",
        FoundationalRequirement.UC, SecurityLevel.SL1,
        "Generate audit records for security-relevant events."),
    SystemRequirement(
        "SR 2.9", "Audit storage capacity",
        FoundationalRequirement.UC, SecurityLevel.SL1,
        "Allocate sufficient audit record storage."),
    SystemRequirement(
        "SR 2.10", "Response to audit processing failures",
        FoundationalRequirement.UC, SecurityLevel.SL1,
        "Respond to audit processing failures without losing events."),
    SystemRequirement(
        "SR 2.11", "Timestamps",
        FoundationalRequirement.UC, SecurityLevel.SL1,
        "Timestamp audit records from a reliable time source."),
    SystemRequirement(
        "SR 2.12", "Non-repudiation",
        FoundationalRequirement.UC, SecurityLevel.SL3,
        "Determine whether a given user took a given action."),
    # FR 3 — System integrity
    SystemRequirement(
        "SR 3.1", "Communication integrity",
        FoundationalRequirement.SI, SecurityLevel.SL1,
        "Protect the integrity of transmitted information."),
    SystemRequirement(
        "SR 3.3", "Security functionality verification",
        FoundationalRequirement.SI, SecurityLevel.SL1,
        "Verify the intended operation of security functions."),
    SystemRequirement(
        "SR 3.4", "Software and information integrity",
        FoundationalRequirement.SI, SecurityLevel.SL1,
        "Detect unauthorized changes to software and information."),
    SystemRequirement(
        "SR 3.5", "Input validation",
        FoundationalRequirement.SI, SecurityLevel.SL1,
        "Validate the syntax and content of all inputs."),
    # FR 4 — Data confidentiality
    SystemRequirement(
        "SR 4.1", "Information confidentiality",
        FoundationalRequirement.DC, SecurityLevel.SL1,
        "Protect the confidentiality of information at rest and in "
        "transit."),
    SystemRequirement(
        "SR 4.3", "Use of cryptography",
        FoundationalRequirement.DC, SecurityLevel.SL1,
        "Use cryptographic mechanisms per accepted practice."),
    # FR 5 — Restricted data flow
    SystemRequirement(
        "SR 5.1", "Network segmentation",
        FoundationalRequirement.RDF, SecurityLevel.SL1,
        "Segment control-system networks from other networks."),
    SystemRequirement(
        "SR 5.2", "Zone boundary protection",
        FoundationalRequirement.RDF, SecurityLevel.SL1,
        "Monitor and control communication at zone boundaries."),
    # FR 6 — Timely response to events
    SystemRequirement(
        "SR 6.1", "Audit log accessibility",
        FoundationalRequirement.TRE, SecurityLevel.SL1,
        "Make audit logs accessible to authorized tools and users."),
    SystemRequirement(
        "SR 6.2", "Continuous monitoring",
        FoundationalRequirement.TRE, SecurityLevel.SL2,
        "Continuously monitor security mechanism behaviour to detect "
        "and report breaches in a timely manner."),
    # FR 7 — Resource availability
    SystemRequirement(
        "SR 7.1", "Denial-of-service protection",
        FoundationalRequirement.RA, SecurityLevel.SL1,
        "Operate in a degraded mode during a DoS event."),
    SystemRequirement(
        "SR 7.6", "Network and security configuration settings",
        FoundationalRequirement.RA, SecurityLevel.SL1,
        "Apply and report network/security configuration settings "
        "per guidelines."),
    SystemRequirement(
        "SR 7.7", "Least functionality",
        FoundationalRequirement.RA, SecurityLevel.SL1,
        "Prohibit and restrict unnecessary functions, ports and "
        "services."),
)


def requirements_for_level(level: SecurityLevel
                           ) -> List[SystemRequirement]:
    """The SRs a system targeting *level* must provide."""
    return [sr for sr in IEC62443_SRS if sr.required_at(level)]
