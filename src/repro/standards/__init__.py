"""Security standards: IEC 62443 requirement slice and gap analysis.

The paper names IEC 62443 as a source of security requirements ("as,
for example, indicated in standards such as IEC 62443 and Security
Technical Implementation Guides").  This package carries a slice of the
IEC 62443-3-3 system requirements (SRs grouped under the seven
foundational requirements, with security-level capability tags), a
mapping from SRs onto the RQCODE STIG catalogue and specification-
pattern families, and a gap analysis that grades a host against a
target security level.

* :mod:`repro.standards.iec62443` — the requirement records and the
  bundled SR slice.
* :mod:`repro.standards.mapping` — SR -> findings/patterns mapping and
  :class:`~repro.standards.mapping.GapAnalysis`.
"""

from repro.standards.iec62443 import (
    FoundationalRequirement,
    IEC62443_SRS,
    SecurityLevel,
    SystemRequirement,
    requirements_for_level,
)
from repro.standards.mapping import (
    DEFAULT_SR_MAPPING,
    GapAnalysis,
    SrMapping,
    SrStatus,
)

__all__ = [
    "DEFAULT_SR_MAPPING",
    "FoundationalRequirement",
    "GapAnalysis",
    "IEC62443_SRS",
    "SecurityLevel",
    "SrMapping",
    "SrStatus",
    "SystemRequirement",
    "requirements_for_level",
]
