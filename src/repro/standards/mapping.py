"""SR -> catalogue mapping and gap analysis.

An :class:`SrMapping` states how an IEC 62443 system requirement is
*evidenced* in this framework: which STIG findings operationalize it on
hosts, and which specification-pattern family formalizes it.  The
:class:`GapAnalysis` grades a host (through the RQCODE catalogue)
against a target security level:

* SATISFIED — every mapped finding applicable to the host passes;
* PARTIAL — some pass, some fail;
* UNSATISFIED — mapped findings exist for the platform but all fail;
* UNMAPPED — the SR has no machine-checkable evidence here (it still
  counts against coverage, loudly, rather than disappearing).
"""

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.environment.host import SimulatedHost
from repro.rqcode.catalog import StigCatalog
from repro.rqcode.concepts import CheckStatus
from repro.standards.iec62443 import (
    SecurityLevel,
    SystemRequirement,
    requirements_for_level,
)


class SrStatus(enum.Enum):
    SATISFIED = "SATISFIED"
    PARTIAL = "PARTIAL"
    UNSATISFIED = "UNSATISFIED"
    UNMAPPED = "UNMAPPED"


@dataclass(frozen=True)
class SrMapping:
    """Evidence for one SR: finding ids + the pattern family."""

    sr_id: str
    finding_ids: Tuple[str, ...] = ()
    pattern_family: str = ""


#: The bundled mapping.  Finding ids reference the default catalogue;
#: ids outside a host's platform are simply not applicable there.
DEFAULT_SR_MAPPING: Dict[str, SrMapping] = {
    mapping.sr_id: mapping for mapping in (
        SrMapping("SR 1.1",
                  ("V-219318", "V-219319"), "Precedence"),
        SrMapping("SR 1.5", ("V-219177",), "Universality"),
        SrMapping("SR 1.7", ("V-219177",), "Universality"),
        SrMapping("SR 1.11", ("V-63447", "V-63449"), "Response"),
        SrMapping("SR 1.13",
                  ("V-219161", "V-219166", "V-219303", "V-219312"),
                  "Universality"),
        SrMapping("SR 1.14", (), "Universality"),
        SrMapping("SR 2.1", ("V-63591",), "Precedence"),
        SrMapping("SR 2.8",
                  ("V-63447", "V-63449", "V-63463", "V-63467",
                   "V-63483", "V-63487", "V-219149"), "Existence"),
        SrMapping("SR 2.9", ("V-219150",), "Universality"),
        SrMapping("SR 2.10", ("V-219150",), "TimedResponse"),
        SrMapping("SR 2.11", (), "Universality"),
        SrMapping("SR 2.12", ("V-63519",), "Existence"),
        SrMapping("SR 3.1", ("V-63351",), "Universality"),
        SrMapping("SR 3.3", ("V-219343",), "Existence"),
        SrMapping("SR 3.4", ("V-219343",), "Absence"),
        SrMapping("SR 3.5", (), "Absence"),
        SrMapping("SR 4.1", ("V-219177", "V-63797"), "Universality"),
        SrMapping("SR 4.3", ("V-219177", "V-63797"), "Universality"),
        SrMapping("SR 5.1", (), "Absence"),
        SrMapping("SR 5.2", (), "Absence"),
        SrMapping("SR 6.1", ("V-219150",), "Existence"),
        SrMapping("SR 6.2", ("V-219149", "V-219150"), "TimedResponse"),
        SrMapping("SR 7.1", (), "TimedResponse"),
        SrMapping("SR 7.6", ("V-219303", "V-219312"), "Universality"),
        SrMapping("SR 7.7",
                  ("V-219155", "V-219157", "V-219158"), "Absence"),
    )
}


@dataclass
class SrResult:
    """Gap-analysis outcome for one SR on one host."""

    requirement: SystemRequirement
    status: SrStatus
    applicable_findings: List[str] = field(default_factory=list)
    passing_findings: List[str] = field(default_factory=list)

    @property
    def evidence(self) -> str:
        if self.status is SrStatus.UNMAPPED:
            return "no machine-checkable evidence"
        return (f"{len(self.passing_findings)}/"
                f"{len(self.applicable_findings)} findings pass")


@dataclass
class GapReport:
    """All SR results for one host at one target level."""

    host_name: str
    level: SecurityLevel
    results: List[SrResult] = field(default_factory=list)

    def count(self, status: SrStatus) -> int:
        return sum(1 for r in self.results if r.status is status)

    @property
    def coverage(self) -> float:
        """Fraction of *evidenced* SRs that are fully satisfied."""
        evidenced = [r for r in self.results
                     if r.status is not SrStatus.UNMAPPED]
        if not evidenced:
            return 0.0
        return (sum(1 for r in evidenced
                    if r.status is SrStatus.SATISFIED) / len(evidenced))

    def by_fr(self) -> Dict[str, Dict[str, int]]:
        """FR -> status histogram."""
        table: Dict[str, Dict[str, int]] = {}
        for result in self.results:
            fr = result.requirement.fr.name
            histogram = table.setdefault(
                fr, {status.value: 0 for status in SrStatus})
            histogram[result.status.value] += 1
        return table

    def rows(self) -> List[Dict[str, str]]:
        return [
            {
                "sr": r.requirement.sr_id,
                "fr": r.requirement.fr.name,
                "name": r.requirement.name,
                "status": r.status.value,
                "evidence": r.evidence,
            }
            for r in self.results
        ]


class GapAnalysis:
    """Grades hosts against IEC 62443 target levels via the catalogue."""

    def __init__(self, catalog: StigCatalog,
                 mapping: Optional[Dict[str, SrMapping]] = None):
        self.catalog = catalog
        self.mapping = mapping if mapping is not None else \
            dict(DEFAULT_SR_MAPPING)

    def analyze(self, host: SimulatedHost,
                level: SecurityLevel = SecurityLevel.SL1) -> GapReport:
        """Evaluate every SR required at *level* against *host*."""
        report = GapReport(host_name=host.name, level=level)
        platform_findings = set(self.catalog.finding_ids(host.os_family))
        for requirement in requirements_for_level(level):
            mapping = self.mapping.get(requirement.sr_id)
            if mapping is None or not mapping.finding_ids:
                report.results.append(SrResult(
                    requirement=requirement, status=SrStatus.UNMAPPED))
                continue
            applicable = [fid for fid in mapping.finding_ids
                          if fid in platform_findings]
            if not applicable:
                # Mapped, but nothing applies to this platform: treat
                # as unmapped *for this host* rather than vacuously
                # satisfied.
                report.results.append(SrResult(
                    requirement=requirement, status=SrStatus.UNMAPPED))
                continue
            passing = []
            for finding_id in applicable:
                instance = self.catalog.get(finding_id).instantiate(host)
                if instance.check() is CheckStatus.PASS:
                    passing.append(finding_id)
            if len(passing) == len(applicable):
                status = SrStatus.SATISFIED
            elif passing:
                status = SrStatus.PARTIAL
            else:
                status = SrStatus.UNSATISFIED
            report.results.append(SrResult(
                requirement=requirement, status=status,
                applicable_findings=applicable,
                passing_findings=passing))
        return report
