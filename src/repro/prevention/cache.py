"""Persistent content-addressed verdict store (compat front door).

Historically this module *was* the store: one JSON file mapping task
labels to ``{fingerprint, verdict}`` entries.  It is now a thin shim
over the tiered CAS in :mod:`repro.prevention.cas` — an in-memory LRU
over a sharded local bucket store, optionally backed by a shared
directory-based remote so concurrent CI runs exchange verdicts — with
the exact lookup semantics the prevention plane was built on:

* label present, fingerprint matches — **hit**: the stored verdict is
  returned (byte-identical to the flat-cache era) and no model
  checking runs;
* label present, fingerprint differs — **invalidation**: the stale
  entry is dropped (counted) and the lookup reports a miss;
* label absent — **miss**.

Buckets are written atomically (temp file + rename) under per-bucket
advisory file locks, and only when dirty — a fully-warm run leaves
every file untouched.  A legacy single-file store
(``verification-cache.json``) found at the cache root is migrated
into the bucket store on first open and renamed ``*.migrated``; a
corrupt legacy file is counted in ``corrupt_loads`` and warned about
instead of being silently swallowed.  All operations take the
internal locks they need: the parallel verification gate fans its
misses out to a thread pool and stores results back concurrently.
"""

import json
import os
import threading
import warnings
from itertools import count
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.prevention.cas.store import BucketStore
from repro.prevention.cas.tiers import TieredVerdictStore
from repro.prevention.stats import CacheStats

__all__ = ["CacheStats", "VerificationCache"]

#: Distinguishes writers sharing one process (fleet-simulator threads).
_WRITER_SEQ = count()

#: Tier configurations ``--cache-tier`` may request: the deepest tier
#: the stack engages.
CACHE_TIERS = ("memory", "local", "shared")


def default_writer_id() -> str:
    return f"w{os.getpid()}.{next(_WRITER_SEQ)}"


class VerificationCache:
    """Tiered verdict cache keyed by task label + fingerprint.

    ``path`` is the local cache root (a directory; a legacy file path
    is accepted and resolved to its parent).  ``shared`` attaches a
    remote bucket store on that directory — the tier a CI fleet
    shares.  ``tier`` caps the stack: ``"memory"`` (no persistence),
    ``"local"`` (default), or ``"shared"`` (requires *shared*).
    """

    FILENAME = "verification-cache.json"

    def __init__(self, path: Union[str, Path, None],
                 shared: Union[str, Path, None] = None,
                 tier: Optional[str] = None,
                 max_entries: Optional[int] = None,
                 memory_entries: Optional[int] = None,
                 writer_id: Optional[str] = None,
                 chaos=None):
        if tier is None:
            tier = "shared" if shared is not None else \
                ("local" if path is not None else "memory")
        if tier not in CACHE_TIERS:
            raise ValueError(f"unknown cache tier {tier!r}; "
                             f"choose from {', '.join(CACHE_TIERS)}")
        if tier == "shared" and shared is None:
            raise ValueError("tier 'shared' needs a shared cache "
                             "directory")
        if tier != "memory" and path is None:
            raise ValueError(f"tier {tier!r} needs a local cache path")
        self.writer_id = writer_id if writer_id is not None \
            else default_writer_id()
        self.stats = CacheStats()
        self._lock = threading.Lock()

        legacy: Optional[Path] = None
        root: Optional[Path] = None
        if path is not None:
            path = Path(path)
            # A file path (the legacy single-file store, or any .json)
            # resolves to its parent directory — `--cache DIR` and the
            # historical `--cache DIR/verification-cache.json` both
            # land on the same root.
            if path.suffix == ".json" or path.is_file():
                legacy, root = path, path.parent
            else:
                legacy, root = path / self.FILENAME, path
        self.path = root
        self.legacy_path = legacy

        local = remote = None
        if tier != "memory" and root is not None:
            local = BucketStore(root / "cas", max_entries=max_entries,
                                chaos=chaos, stats=self.stats,
                                tier="local")
        if tier == "shared":
            remote = BucketStore(Path(shared) / "cas",
                                 max_entries=max_entries, chaos=chaos,
                                 stats=self.stats, tier="remote")
        self.store_tiers = TieredVerdictStore(
            local=local, remote=remote, memory_entries=memory_entries,
            writer_id=self.writer_id, chaos=chaos, stats=self.stats)
        if legacy is not None and local is not None:
            self._migrate_legacy(legacy)

    # -- legacy single-file migration ---------------------------------------

    def _migrate_legacy(self, legacy: Path) -> None:
        """Fold a flat-era JSON store into the bucket store, once.

        The legacy document's entries are stored through the normal
        write-back path (they get stamps and provenance) and the file
        is renamed ``*.migrated`` so a later open cannot resurrect
        entries that were since invalidated or evicted.  A document
        that fails to parse is *counted* (``corrupt_loads``) and
        warned about — the flat-era shim swallowed it silently.
        """
        if not legacy.exists():
            return
        try:
            raw = json.loads(legacy.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            self.stats.corrupt_loads += 1
            warnings.warn(
                f"legacy verification cache {legacy} is corrupt and "
                f"was ignored ({exc}); starting empty",
                RuntimeWarning, stacklevel=2)
            return
        entries = raw.get("entries", {}) if isinstance(raw, dict) else {}
        migrated = 0
        for label, entry in entries.items():
            if isinstance(entry, dict) \
                    and isinstance(entry.get("fingerprint"), str):
                self.store_tiers.store(label, entry["fingerprint"],
                                       entry.get("verdict"))
                migrated += 1
        # Migration is plumbing, not cache traffic: flush the adopted
        # entries, then reset every counter the stores just bumped.
        self.store_tiers.save()
        self.stats.stores -= migrated
        self.stats.migrated += migrated
        os.replace(legacy, legacy.with_suffix(".json.migrated"))

    # -- the cache contract -------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self.store_tiers)

    def lookup(self, label: str, fp: str) -> Optional[Dict[str, Any]]:
        """The stored verdict for *label* at content address *fp*.

        Returns the verdict dict on a hit; ``None`` on a miss.  A stale
        entry (same label, different fingerprint) is dropped and counted
        as an invalidation plus a miss.
        """
        with self._lock:
            return self.store_tiers.lookup(label, fp)

    def store(self, label: str, fp: str, verdict: Dict[str, Any]) -> None:
        """Record *verdict* for *label* at content address *fp*."""
        with self._lock:
            self.store_tiers.store(label, fp, verdict)

    def save(self) -> bool:
        """Flush dirty entries tier by tier; returns whether any
        bucket was written."""
        with self._lock:
            return self.store_tiers.save()

    def labels(self) -> List[str]:
        with self._lock:
            return self.store_tiers.reachable_labels()

    def tier_names(self) -> List[str]:
        return self.store_tiers.tier_names()

    def stats_dict(self) -> Dict[str, int]:
        with self._lock:
            return self.store_tiers.stats_dict()

    def provenance_dict(self) -> Dict[str, Any]:
        with self._lock:
            return self.store_tiers.provenance_dict()
