"""Persistent content-addressed verdict store.

One JSON file maps task labels to ``{fingerprint, verdict}`` entries.
Lookup semantics make the CI story precise:

* label present, fingerprint matches — **hit**: the stored verdict is
  returned and no model checking runs;
* label present, fingerprint differs — **invalidation**: the stale
  entry is dropped (counted) and the lookup reports a miss;
* label absent — **miss**.

The store is written atomically (temp file + rename) and only when
dirty, so a fully-warm run leaves the file untouched.  All operations
take an internal lock: the parallel verification gate fans its misses
out to a thread pool and stores results back concurrently.
"""

import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union


@dataclass
class CacheStats:
    """Counters for one cache lifetime (since load or last reset)."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    stores: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "stores": self.stores,
        }


class VerificationCache:
    """JSON-backed verdict cache keyed by task label + fingerprint."""

    FILENAME = "verification-cache.json"

    def __init__(self, path: Union[str, Path]):
        path = Path(path)
        # A directory (existing, or path with no suffix) gets the
        # canonical file name inside it — `--cache DIR` ergonomics.
        if path.is_dir() or not path.suffix:
            path = path / self.FILENAME
        self.path = path
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._dirty = False
        self._entries: Dict[str, Dict[str, Any]] = {}
        if self.path.exists():
            try:
                raw = json.loads(self.path.read_text())
            except (OSError, json.JSONDecodeError):
                raw = {}
            entries = raw.get("entries", {}) if isinstance(raw, dict) else {}
            for label, entry in entries.items():
                if (isinstance(entry, dict)
                        and isinstance(entry.get("fingerprint"), str)):
                    self._entries[label] = entry

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, label: str, fp: str) -> Optional[Dict[str, Any]]:
        """The stored verdict for *label* at content address *fp*.

        Returns the verdict dict on a hit; ``None`` on a miss.  A stale
        entry (same label, different fingerprint) is dropped and counted
        as an invalidation plus a miss.
        """
        with self._lock:
            entry = self._entries.get(label)
            if entry is None:
                self.stats.misses += 1
                return None
            if entry["fingerprint"] != fp:
                del self._entries[label]
                self._dirty = True
                self.stats.invalidations += 1
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            return entry["verdict"]

    def store(self, label: str, fp: str, verdict: Dict[str, Any]) -> None:
        """Record *verdict* for *label* at content address *fp*."""
        with self._lock:
            self._entries[label] = {"fingerprint": fp, "verdict": verdict}
            self._dirty = True
            self.stats.stores += 1

    def save(self) -> bool:
        """Write the store if dirty; returns whether a write happened."""
        with self._lock:
            if not self._dirty:
                return False
            self.path.parent.mkdir(parents=True, exist_ok=True)
            payload = json.dumps(
                {"entries": self._entries}, sort_keys=True, indent=1)
            tmp = self.path.with_suffix(".tmp")
            tmp.write_text(payload)
            os.replace(tmp, self.path)
            self._dirty = False
            return True

    def labels(self) -> list:
        with self._lock:
            return sorted(self._entries)

    def stats_dict(self) -> Dict[str, int]:
        with self._lock:
            stats = self.stats.as_dict()
            stats["entries"] = len(self._entries)
            return stats
