"""Shared cache accounting: one counter block per cache lifetime.

The four classic counters (hits/misses/invalidations/stores) keep the
flat-cache contract CI leans on; the rest were added with the tiered
CAS store — per-tier hit attribution, eviction/compaction work, and
the failure-visibility counters (``corrupt_loads`` for documents that
failed to parse, ``lock_timeouts`` for bucket flushes that had to be
retried, ``stale_reads`` for chaos-injected shared-tier misses).
Everything here is numeric by contract: the verification gate folds
the whole block into its float-valued metrics.
"""

from dataclasses import dataclass, fields
from typing import Dict


@dataclass
class CacheStats:
    """Counters for one cache lifetime (since load or last reset)."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    stores: int = 0
    memory_hits: int = 0
    local_hits: int = 0
    remote_hits: int = 0
    evictions: int = 0
    compactions: int = 0
    corrupt_loads: int = 0
    lock_timeouts: int = 0
    stale_reads: int = 0
    migrated: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {field.name: getattr(self, field.name)
                for field in fields(self)}
