"""Bundled verification tasks: the CLI pipeline's model-checking load.

`repro pipeline` needs real verification work for its cache and
parallelism flags to mean anything, so this module ships a small,
deterministic task set modelling the deployment environment's timing
requirements: a token ring of services passing a health token (mutual
exclusion + liveness of the last station) and an intrusion watchdog
that must raise and clear alerts within its deadlines.  Every task is
``(label, network, query_text)`` — exactly the triple
:class:`~repro.core.gates.VerificationGate` consumes.
"""

from typing import List, Tuple

from repro.ta.automaton import Edge, Location, TimedAutomaton, parse_guard
from repro.ta.system import Network


def _token_ring(size: int, hold: int = 4) -> Network:
    """A ring of stations passing one token (cf. the E6 ablation)."""
    stations = []
    for index in range(size):
        take = f"tok{index}"
        give = f"tok{(index + 1) % size}"
        stations.append(TimedAutomaton(
            name=f"S{index}",
            clocks=["c"],
            locations=[
                Location("idle"),
                Location("busy", invariant=parse_guard(f"c <= {hold}")),
            ],
            edges=[
                Edge("idle", "busy", sync=f"{take}?", resets=("c",),
                     action=f"take{index}"),
                Edge("busy", "idle", guard=parse_guard(f"c >= {hold // 2}"),
                     sync=f"{give}!", action=f"give{index}"),
            ],
            initial="busy" if index == 0 else "idle",
        ))
    return Network(stations)


def _watchdog(deadline: int) -> Network:
    """An intrusion sensor and the watchdog that must answer it."""
    sensor = TimedAutomaton(
        name="Sensor",
        clocks=["s"],
        locations=[
            Location("calm", invariant=parse_guard("s <= 10")),
            Location("raised"),
        ],
        edges=[
            Edge("calm", "raised", guard=parse_guard("s >= 1"),
                 sync="alert!", action="raise"),
            Edge("raised", "calm", sync="ack?", resets=("s",),
                 action="rearm"),
        ],
    )
    watchdog = TimedAutomaton(
        name="Watchdog",
        clocks=["w"],
        locations=[
            Location("watch"),
            Location("respond",
                     invariant=parse_guard(f"w <= {deadline}")),
        ],
        edges=[
            Edge("watch", "respond", sync="alert?", resets=("w",),
                 action="engage"),
            Edge("respond", "watch", guard=parse_guard("w >= 1"),
                 sync="ack!", action="resolve"),
        ],
    )
    return Network([sensor, watchdog])


def bundled_verification_tasks(ring_size: int = 4,
                               deadline: int = 5
                               ) -> List[Tuple[str, Network, str]]:
    """The default verification workload for `repro pipeline`."""
    ring = _token_ring(ring_size)
    last = f"S{ring_size - 1}"
    watchdog = _watchdog(deadline)
    return [
        ("ring-token-reaches-last", ring, f"E<> {last}.busy"),
        ("ring-mutual-exclusion", ring,
         "A[] not (S0.busy and S1.busy)"),
        ("ring-station-returns-idle", ring, "E<> S0.idle"),
        ("watchdog-engages", watchdog, "E<> Watchdog.respond"),
        ("watchdog-never-stuck", watchdog,
         "A[] not (Sensor.raised and Watchdog.watch)"),
        ("watchdog-alert-handled", watchdog,
         "Sensor.raised --> Watchdog.watch"),
    ]
