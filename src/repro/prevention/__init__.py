"""The incremental prevention plane: content-addressed verification.

Re-running a CI pipeline re-verifies every requirement from scratch —
the "security tooling slows the pipeline" friction DevSecOps surveys
report.  This package makes prevention incremental: every verification
input (network of timed automata, query, requirement record) gets a
content address — a blake2b fingerprint over a canonical serialization
— and :class:`VerificationCache` persists verdicts keyed by task label
so a re-run only re-checks tasks whose formal artifacts actually
changed.  Mutating any ingested artifact changes its fingerprint and
invalidates exactly the affected entries.

Since the CAS promotion (:mod:`repro.prevention.cas`) the store is
tiered — in-memory LRU over sharded local buckets over an optional
directory-based shared remote — so verdicts flow between concurrent
CI runs instead of being recomputed per process;
:func:`simulate_fleet` measures that end to end.
"""

from repro.prevention.cache import CacheStats, VerificationCache
from repro.prevention.cas import (
    BucketStore,
    CacheLockTimeout,
    TieredVerdictStore,
    bucket_prefix,
)
from repro.prevention.fleet import FleetReport, FleetRun, simulate_fleet
from repro.prevention.fingerprint import (
    canonical_network,
    canonical_query,
    canonical_requirement,
    fingerprint,
    fingerprint_ir,
    fingerprint_requirement,
    fingerprint_task,
)
from repro.prevention.tasks import bundled_verification_tasks

__all__ = [
    "BucketStore",
    "CacheLockTimeout",
    "CacheStats",
    "FleetReport",
    "FleetRun",
    "TieredVerdictStore",
    "VerificationCache",
    "bucket_prefix",
    "bundled_verification_tasks",
    "simulate_fleet",
    "canonical_network",
    "canonical_query",
    "canonical_requirement",
    "fingerprint",
    "fingerprint_ir",
    "fingerprint_requirement",
    "fingerprint_task",
]
