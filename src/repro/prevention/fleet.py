"""CI-fleet simulator: N concurrent pipeline runs, one shared cache.

The distributed cache only earns its complexity if a *fleet* of
concurrent CI runs — each with its own local tier, all sharing one
remote — actually converges on verdict reuse.  This module measures
exactly that: an optional cold seeding run populates the shared
remote, then ``runs`` concurrent pipeline runs start behind a barrier,
each against a fresh local cache root plus the common remote, and the
report aggregates the fleet's warm-hit rate and per-run latency tail.

Two execution modes:

* **thread** (default) — each run is a thread driving its own
  orchestrator and :class:`~repro.prevention.VerificationCache`
  in-process; writer isolation comes from per-run cache instances.
* **process** — each run shells out to ``repro pipeline --json`` with
  ``--cache``/``--shared-cache``, so the multi-writer story crosses
  real process boundaries (the bucket locks are file locks for
  exactly this).

Verdict equality across all runs is part of the report
(``verdicts_identical``): a shared cache that changed a verdict would
be worse than no cache at all.
"""

import json
import os
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.prevention.cache import VerificationCache


@dataclass
class FleetRun:
    """One pipeline run's contribution to the fleet report."""

    run_id: str
    seconds: float
    passed: bool
    stats: Dict[str, Any] = field(default_factory=dict)
    verdicts: Any = None

    def lookups(self) -> int:
        return int(self.stats.get("hits", 0)) \
            + int(self.stats.get("misses", 0))


@dataclass
class FleetReport:
    """Aggregate outcome of one fleet simulation."""

    runs: List[FleetRun]
    cold: Optional[FleetRun] = None
    mode: str = "thread"

    @property
    def all_passed(self) -> bool:
        return all(run.passed for run in self.runs) and \
            (self.cold is None or self.cold.passed)

    @property
    def warm_hit_rate(self) -> float:
        """Fleet-wide hit fraction over the concurrent (warm) phase.

        The seeding run is excluded by construction: it exists to pay
        the cold cost once so the fleet doesn't have to.
        """
        hits = sum(int(run.stats.get("hits", 0)) for run in self.runs)
        lookups = sum(run.lookups() for run in self.runs)
        return hits / lookups if lookups else 0.0

    @property
    def verdicts_identical(self) -> bool:
        tables = [run.verdicts for run in self.runs
                  if run.verdicts is not None]
        return all(table == tables[0] for table in tables[1:]) \
            if tables else True

    def latency(self) -> Dict[str, float]:
        """Per-run wall-clock tail over the warm phase."""
        ordered = sorted(run.seconds for run in self.runs)
        if not ordered:
            return {"p50": 0.0, "p95": 0.0, "max": 0.0}

        def quantile(q: float) -> float:
            index = min(len(ordered) - 1, int(q * len(ordered)))
            return ordered[index]

        return {"p50": quantile(0.50), "p95": quantile(0.95),
                "max": ordered[-1]}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "runs": len(self.runs),
            "passed": self.all_passed,
            "warm_hit_rate": self.warm_hit_rate,
            "verdicts_identical": self.verdicts_identical,
            "latency_s": self.latency(),
            "cold_s": self.cold.seconds if self.cold else None,
            "per_run": [
                {"run_id": run.run_id,
                 "seconds": run.seconds,
                 "passed": run.passed,
                 "hits": run.stats.get("hits", 0),
                 "misses": run.stats.get("misses", 0),
                 "remote_hits": run.stats.get("remote_hits", 0)}
                for run in self.runs
            ],
        }


def _pipeline_run(cache: VerificationCache, tasks=None,
                  jobs: int = 1) -> FleetRun:
    """One in-process prevention run against *cache* (no hosts: the
    verification gate is the load; compliance gates stay trivial)."""
    from repro.core.orchestrator import VeriDevOpsOrchestrator
    from repro.core.gates import _verdict_to_dict
    from repro.prevention.tasks import bundled_verification_tasks

    if tasks is None:
        tasks = bundled_verification_tasks()
    orchestrator = VeriDevOpsOrchestrator()
    started = time.perf_counter()
    run = orchestrator.run_prevention(
        [], verification_tasks=tasks, cache=cache,
        max_workers=jobs if jobs > 1 else None)
    seconds = time.perf_counter() - started
    verdicts = sorted(
        (label, json.dumps(_verdict_to_dict(result), sort_keys=True))
        for label, result in run.context.get("verification_results", []))
    return FleetRun(run_id=cache.writer_id, seconds=seconds,
                    passed=run.passed, stats=cache.stats_dict(),
                    verdicts=verdicts)


def _subprocess_run(run_id: str, local_dir: Path, shared_dir: Path,
                    jobs: int) -> FleetRun:
    """One pipeline run as a real child process via the CLI."""
    import repro

    env = dict(os.environ)
    package_root = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = package_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    started = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "pipeline",
         "--cache", str(local_dir), "--shared-cache", str(shared_dir),
         "--jobs", str(jobs), "--json"],
        capture_output=True, text=True, env=env)
    seconds = time.perf_counter() - started
    try:
        document = json.loads(proc.stdout)
    except json.JSONDecodeError:
        document = {}
    stats = document.get("cache") or {}
    return FleetRun(run_id=run_id, seconds=seconds,
                    passed=proc.returncode == 0 and
                    bool(document.get("passed")),
                    stats=stats,
                    verdicts=json.dumps(document.get("gates"),
                                        sort_keys=True)
                    if document else None)


def simulate_fleet(runs: int = 4,
                   shared_dir: Union[str, Path, None] = None,
                   workdir: Union[str, Path, None] = None,
                   tasks=None,
                   jobs: int = 1,
                   mode: str = "thread",
                   seed_cold: bool = True) -> FleetReport:
    """Run a CI fleet against one shared remote cache.

    *workdir* hosts the per-run local cache roots (and the shared
    remote, when *shared_dir* is not given).  *tasks* defaults to the
    bundled verification corpus; thread mode builds a fresh task list
    per run via the callable's re-invocation when *tasks* is callable.
    """
    import tempfile

    if workdir is None:
        workdir = tempfile.mkdtemp(prefix="repro-fleet-")
    workdir = Path(workdir)
    shared = Path(shared_dir) if shared_dir is not None \
        else workdir / "shared"
    if mode not in ("thread", "process"):
        raise ValueError(f"unknown fleet mode {mode!r}")

    def build_tasks():
        return tasks() if callable(tasks) else tasks

    cold = None
    if seed_cold:
        seed_cache = VerificationCache(workdir / "seed", shared=shared)
        cold = _pipeline_run(seed_cache, build_tasks(), jobs)
        cold.run_id = "seed"

    results: List[Optional[FleetRun]] = [None] * runs
    barrier = threading.Barrier(runs)

    def thread_body(index: int) -> None:
        cache = VerificationCache(workdir / f"run{index}", shared=shared)
        local_tasks = build_tasks()
        barrier.wait()
        results[index] = _pipeline_run(cache, local_tasks, jobs)

    def process_body(index: int) -> None:
        barrier.wait()
        results[index] = _subprocess_run(
            f"run{index}", workdir / f"run{index}", shared, jobs)

    body = thread_body if mode == "thread" else process_body
    threads = [threading.Thread(target=body, args=(index,),
                                name=f"fleet-run{index}")
               for index in range(runs)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return FleetReport(runs=[run for run in results if run is not None],
                       cold=cold, mode=mode)
