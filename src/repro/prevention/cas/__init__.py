"""Distributed content-addressed verification cache (CAS).

The prevention plane's verdict store, promoted from one JSON file to a
remote-cache architecture: sharded multi-writer buckets
(:mod:`~repro.prevention.cas.store`) stacked into read-through /
write-back tiers (:mod:`~repro.prevention.cas.tiers`) — in-memory LRU,
a local on-disk store, and a directory-based remote shared by a whole
CI fleet.  :class:`~repro.prevention.VerificationCache` remains the
compat front door the verification gate talks to.
"""

from repro.prevention.cas.store import (
    BucketStore,
    CacheLockTimeout,
    bucket_prefix,
)
from repro.prevention.cas.tiers import MemoryLRU, TieredVerdictStore

__all__ = [
    "BucketStore",
    "CacheLockTimeout",
    "MemoryLRU",
    "TieredVerdictStore",
    "bucket_prefix",
]
