"""Read-through / write-back tiering over the bucket stores.

A :class:`TieredVerdictStore` stacks up to three tiers:

* **memory** — a per-process LRU map, the hot path for warm runs;
* **local** — a :class:`~repro.prevention.cas.store.BucketStore` on
  the run's own disk (survives process restarts);
* **remote** — a second bucket store on a directory shared by a whole
  CI fleet (the distributed part: every concurrent run reads and
  publishes the same verdict space).

Lookup is read-through: tiers are consulted fastest-first, and the
first tier holding the label decides the outcome exactly as the flat
JSON cache did — matching fingerprint is a hit (promoted into the
faster tiers), a moved fingerprint is an invalidation (tombstoned
everywhere) plus a miss.  Because the decision is made by the first
tier that knows the label, a sequence of lookups/stores is
*accounting-identical* to the flat cache whenever the tiers are
coherent — the equivalence property suite pins exactly that.

Writes are write-back: ``store`` lands in memory immediately and is
journaled as pending; ``save`` publishes pending entries (and
tombstones) to the local tier, then to the remote tier, each under its
bucket locks.  A lock timeout (real or chaos-injected) leaves the
remainder pending for the next ``save`` — nothing is lost, nothing
torn.  Every hit records provenance: which tier answered, which
writer stored the verdict, at what logical stamp.
"""

from collections import OrderedDict
from typing import Any, Dict, List, Optional

from repro.prevention.cas.store import BucketStore, CacheLockTimeout
from repro.prevention.stats import CacheStats


class MemoryLRU:
    """Bounded label -> entry map with least-recently-used eviction."""

    def __init__(self, max_entries: Optional[int] = None):
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()

    def get(self, label: str) -> Optional[Dict[str, Any]]:
        entry = self._entries.get(label)
        if entry is not None:
            self._entries.move_to_end(label)
        return entry

    def put(self, label: str, entry: Dict[str, Any]) -> None:
        self._entries[label] = entry
        self._entries.move_to_end(label)
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def delete(self, label: str) -> None:
        self._entries.pop(label, None)

    def labels(self) -> List[str]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)


class TieredVerdictStore:
    """The CAS front door: memory -> local -> remote verdict tiers."""

    def __init__(self,
                 local: Optional[BucketStore] = None,
                 remote: Optional[BucketStore] = None,
                 memory_entries: Optional[int] = None,
                 writer_id: str = "writer",
                 chaos=None,
                 stats: Optional[CacheStats] = None):
        self.stats = stats if stats is not None else CacheStats()
        self.memory = MemoryLRU(memory_entries)
        self.local = local
        self.remote = remote
        self.writer_id = writer_id
        self.chaos = chaos
        for tier in (local, remote):
            if tier is not None:
                tier.stats = self.stats
        #: Logical clock: advanced past every stamp this store observes,
        #: so fresh stores order after everything already seen.
        self._clock = 0
        self._pending: Dict[str, Dict[str, Any]] = {}
        self._dirty_local: set = set()
        self._dirty_remote: set = set()
        #: label -> highest stamp observed when invalidating; published
        #: as tombstones so stale entries cannot resurrect from a
        #: slower tier before the next save.
        self._tombstones: Dict[str, int] = {}
        #: label -> stamp of the last in-process hit (LRU recency for
        #: compaction) and the last hit's provenance for stats surfaces.
        self._recency: Dict[str, int] = {}
        self.last_hit: Optional[Dict[str, Any]] = None

    # -- helpers ------------------------------------------------------------

    def tier_names(self) -> List[str]:
        names = ["memory"]
        if self.local is not None:
            names.append("local")
        if self.remote is not None:
            names.append("remote")
        return names

    def _observe(self, stamp: int) -> None:
        if stamp > self._clock:
            self._clock = stamp

    def _hit(self, label: str, entry: Dict[str, Any], tier: str):
        self.stats.hits += 1
        setattr(self.stats, f"{tier}_hits",
                getattr(self.stats, f"{tier}_hits") + 1)
        self._observe(entry.get("stored_at", 0))
        self._clock += 1
        self._recency[label] = self._clock
        self.last_hit = {
            "label": label,
            "tier": tier,
            "writer_id": entry.get("writer_id", "?"),
            "stored_at": entry.get("stored_at", 0),
        }
        return entry["verdict"]

    def _invalidate(self, label: str, entry: Dict[str, Any]) -> None:
        """Drop *label* everywhere: the artifact moved under it."""
        stamp = entry.get("stored_at", 0)
        self._observe(stamp)
        self.memory.delete(label)
        self._pending.pop(label, None)
        self._recency.pop(label, None)
        self._tombstones[label] = max(self._tombstones.get(label, 0), stamp)
        if self.local is not None:
            self._dirty_local.add(label)
        if self.remote is not None:
            self._dirty_remote.add(label)
        self.stats.invalidations += 1
        self.stats.misses += 1

    # -- the cache contract -------------------------------------------------

    def lookup(self, label: str, fp: str) -> Optional[Dict[str, Any]]:
        """The stored verdict for *label* at content address *fp*.

        The first tier holding the label decides: hit on a matching
        fingerprint (the entry is promoted into the faster tiers),
        invalidation + miss on a moved one, miss when no tier knows
        the label.
        """
        entry = self.memory.get(label)
        if entry is not None:
            if entry["fingerprint"] == fp:
                return self._hit(label, entry, "memory")
            self._invalidate(label, entry)
            return None
        if label in self._tombstones:
            # Invalidated but not yet flushed: the slower tiers still
            # hold the stale entry; do not resurrect it.
            self.stats.misses += 1
            return None
        if self.local is not None:
            entry = self.local.get(label)
            if entry is not None:
                if entry["fingerprint"] == fp:
                    self.memory.put(label, entry)
                    return self._hit(label, entry, "local")
                self._invalidate(label, entry)
                return None
        if self.remote is not None:
            entry = self.remote.get(label)
            if entry is not None and self.chaos is not None \
                    and self.chaos.decide("cache.stale_read",
                                          f"{label}:{fp}"):
                self.stats.stale_reads += 1
                entry = None
            if entry is not None:
                if entry["fingerprint"] == fp:
                    self.memory.put(label, entry)
                    if self.local is not None:
                        # Write-back promotion: provenance (stamp and
                        # original writer) rides along unchanged.
                        self._pending[label] = entry
                        self._dirty_local.add(label)
                    return self._hit(label, entry, "remote")
                self._invalidate(label, entry)
                return None
        self.stats.misses += 1
        return None

    def store(self, label: str, fp: str, verdict: Dict[str, Any]) -> None:
        """Record *verdict* for *label* at content address *fp*."""
        self._clock += 1
        entry = {
            "fingerprint": fp,
            "verdict": verdict,
            "stored_at": self._clock,
            "writer_id": self.writer_id,
        }
        self.memory.put(label, entry)
        self._pending[label] = entry
        self._recency[label] = self._clock
        self._tombstones.pop(label, None)
        if self.local is not None:
            self._dirty_local.add(label)
        if self.remote is not None:
            self._dirty_remote.add(label)
        self.stats.stores += 1

    def save(self) -> bool:
        """Flush pending writes/tombstones tier by tier; True if any
        label reached a tier.  Partial progress is durable: every
        bucket is attempted, only the labels whose bucket flushed
        leave the dirty set, and the remainder stays pending for the
        next save — one timed-out lock never holds the rest hostage."""
        wrote = False
        for tier, dirty in ((self.local, self._dirty_local),
                            (self.remote, self._dirty_remote)):
            if tier is None or not dirty:
                continue
            fresh_updates: Dict[str, Dict[str, Any]] = {}
            promotions: Dict[str, Dict[str, Any]] = {}
            deletions: Dict[str, int] = {}
            for label in sorted(dirty):
                if label in self._pending:
                    entry = self._pending[label]
                    if entry.get("writer_id") == self.writer_id:
                        fresh_updates[label] = entry
                    else:
                        promotions[label] = entry
                elif label in self._tombstones:
                    deletions[label] = self._tombstones[label]
            done: set = set()
            if fresh_updates or deletions:
                done |= tier.put_many(fresh_updates, fresh=True,
                                      deletions=deletions)
            if promotions:
                done |= tier.put_many(promotions, fresh=False)
            for label in done & set(fresh_updates):
                # put_many assigned the final last-writer-wins stamp
                # in place; keep the clock ahead of it.
                self._observe(fresh_updates[label].get("stored_at", 0))
            dirty.difference_update(done)
            if done:
                wrote = True
            if not dirty and tier.max_entries is not None:
                try:
                    tier.compact(recency=self._recency)
                except CacheLockTimeout:
                    pass      # eviction is advisory; retried next save
        if not self._dirty_local and not self._dirty_remote:
            self._pending.clear()
            self._tombstones.clear()
        return wrote

    # -- introspection ------------------------------------------------------

    def reachable_labels(self) -> List[str]:
        labels = set(self.memory.labels()) | set(self._pending)
        if self.local is not None:
            labels.update(self.local.labels())
        if self.remote is not None:
            labels.update(self.remote.labels())
        labels.difference_update(self._tombstones)
        return sorted(labels)

    def __len__(self) -> int:
        return len(self.reachable_labels())

    def stats_dict(self) -> Dict[str, int]:
        stats = self.stats.as_dict()
        stats["entries"] = len(self)
        return stats

    def provenance_dict(self) -> Dict[str, Any]:
        """Cache-hit provenance for the run summary: who answered."""
        return {
            "writer_id": self.writer_id,
            "tiers": self.tier_names(),
            "tier_hits": {
                "memory": self.stats.memory_hits,
                "local": self.stats.local_hits,
                "remote": self.stats.remote_hits,
            },
            "last_hit": self.last_hit,
        }
