"""Sharded, multi-writer-safe bucket store: the CAS persistence layer.

One :class:`BucketStore` is a directory of *buckets*: each entry is
addressed by its label's blake2b fingerprint, and the fingerprint's
leading hex digits pick the bucket file holding it
(``buckets/<prefix>.json``).  Sharding keeps the multi-writer unit
small — concurrent CI runs storing disjoint verdicts almost always
touch different buckets and never serialize behind one global file.

Writer protocol (the workflow-orchestrator persistent-state pattern:
lock, read, merge, atomic replace):

1. take the bucket's advisory file lock (``locks/<prefix>.lock``,
   ``flock`` with a bounded spin; an ``O_EXCL`` fallback where
   ``fcntl`` is unavailable);
2. re-read the bucket *under the lock* and merge the pending updates —
   conflicting labels resolve last-writer-wins by ``stored_at``
   logical stamp (fresh stores re-stamp above everything observed, so
   the writer holding the lock is by construction the latest);
3. write a temp file and ``os.replace`` it over the bucket.

Readers never lock: the atomic rename means any read observes a
complete document.  A torn temp file left by a killed writer is
ignored by reads and swept by compaction; a corrupt bucket file is
counted (``corrupt_loads``), warned about, and treated as empty — the
entries it held are re-verifiable by construction, never load-bearing.

Two chaos seams thread through (:mod:`repro.chaos`):
``cache.lock_timeout`` makes a lock acquisition time out (the write
stays pending and is retried on the next flush) and
``cache.stale_read`` makes a shared-tier read miss an entry that is
actually present (one redundant recompute; never a wrong verdict).
"""

import hashlib
import json
import os
import threading
import time
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.prevention.stats import CacheStats

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback path
    fcntl = None


class CacheLockTimeout(RuntimeError):
    """A bucket's advisory lock could not be taken in time."""


def bucket_prefix(label: str, prefix_len: int = 2) -> str:
    """The bucket shard for *label*: its fingerprint's leading digits."""
    digest = hashlib.blake2b(label.encode("utf-8"), digest_size=8)
    return digest.hexdigest()[:prefix_len]


class BucketStore:
    """One tier of the CAS: a directory of sharded verdict buckets.

    Entries are ``label -> {fingerprint, verdict, stored_at,
    writer_id}``; ``stored_at`` is a logical (lamport-style) stamp that
    orders writers, ``writer_id`` names who stored it (provenance).
    Safe for concurrent writers across threads *and* processes; an
    internal mutex additionally serializes writers sharing this
    instance.
    """

    def __init__(self, root: Union[str, Path],
                 prefix_len: int = 2,
                 max_entries: Optional[int] = None,
                 lock_timeout_s: float = 5.0,
                 chaos=None,
                 stats=None,
                 tier: str = "local"):
        self.root = Path(root)
        self.buckets_dir = self.root / "buckets"
        self.locks_dir = self.root / "locks"
        self.prefix_len = prefix_len
        self.max_entries = max_entries
        self.lock_timeout_s = lock_timeout_s
        self.chaos = chaos
        self.tier = tier
        # Counters land in the owner's CacheStats when one is shared.
        self.stats = stats if stats is not None else CacheStats()
        self._mutex = threading.Lock()
        self._lock_attempts: Dict[str, int] = {}

    # -- bucket IO ----------------------------------------------------------

    def _bucket_path(self, prefix: str) -> Path:
        return self.buckets_dir / f"{prefix}.json"

    def _read_bucket(self, prefix: str) -> Dict[str, Dict[str, Any]]:
        """The bucket's entries; a corrupt document counts and reads
        empty (its verdicts are recomputable, never load-bearing)."""
        path = self._bucket_path(prefix)
        try:
            raw = json.loads(path.read_text())
        except FileNotFoundError:
            return {}
        except (OSError, json.JSONDecodeError) as exc:
            self.stats.corrupt_loads += 1
            warnings.warn(
                f"verification cache bucket {path} is corrupt and was "
                f"ignored ({exc}); its entries will be re-verified",
                RuntimeWarning, stacklevel=2)
            return {}
        entries = raw.get("entries", {}) if isinstance(raw, dict) else {}
        kept = {}
        for label, entry in entries.items():
            if isinstance(entry, dict) \
                    and isinstance(entry.get("fingerprint"), str):
                kept[label] = entry
        return kept

    def _write_bucket(self, prefix: str,
                      entries: Dict[str, Dict[str, Any]]) -> None:
        path = self._bucket_path(prefix)
        if not entries:
            # An emptied bucket is removed, not left as husk files.
            try:
                path.unlink()
            except FileNotFoundError:
                pass
            return
        payload = json.dumps({"entries": entries}, sort_keys=True,
                             separators=(",", ":"))
        self.buckets_dir.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        tmp.write_text(payload)
        os.replace(tmp, path)

    # -- advisory locking ---------------------------------------------------

    @contextmanager
    def _locked(self, prefix: str):
        """Hold bucket *prefix*'s advisory file lock.

        The chaos seam draws per acquisition attempt (stable key
        ``prefix:attempt``), so an injected timeout on one flush clears
        on a later retry instead of wedging the store forever.  Real
        contention spins with a deadline; a genuine timeout raises the
        same :class:`CacheLockTimeout` the seam does.
        """
        with self._mutex:
            attempt = self._lock_attempts.get(prefix, 0)
            self._lock_attempts[prefix] = attempt + 1
        if self.chaos is not None and self.chaos.decide(
                "cache.lock_timeout", f"{self.tier}:{prefix}:{attempt}"):
            self.stats.lock_timeouts += 1
            raise CacheLockTimeout(
                f"injected lock timeout on bucket {prefix!r}")
        self.locks_dir.mkdir(parents=True, exist_ok=True)
        lock_path = self.locks_dir / f"{prefix}.lock"
        deadline = time.monotonic() + self.lock_timeout_s
        if fcntl is not None:
            handle = open(lock_path, "a+")
            try:
                while True:
                    try:
                        fcntl.flock(handle.fileno(),
                                    fcntl.LOCK_EX | fcntl.LOCK_NB)
                        break
                    except OSError:
                        if time.monotonic() >= deadline:
                            self.stats.lock_timeouts += 1
                            raise CacheLockTimeout(
                                f"bucket {prefix!r} lock held past "
                                f"{self.lock_timeout_s}s")
                        time.sleep(0.002)
                yield
            finally:
                try:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
                finally:
                    handle.close()
        else:  # pragma: no cover - exercised only without fcntl
            marker = lock_path.with_suffix(".excl")
            while True:
                try:
                    fd = os.open(marker, os.O_CREAT | os.O_EXCL)
                    os.close(fd)
                    break
                except FileExistsError:
                    if time.monotonic() >= deadline:
                        self.stats.lock_timeouts += 1
                        raise CacheLockTimeout(
                            f"bucket {prefix!r} lock held past "
                            f"{self.lock_timeout_s}s")
                    time.sleep(0.002)
            try:
                yield
            finally:
                try:
                    os.unlink(marker)
                except FileNotFoundError:
                    pass

    # -- reads --------------------------------------------------------------

    def get(self, label: str) -> Optional[Dict[str, Any]]:
        """The stored entry for *label*, or None (lock-free read)."""
        return self._read_bucket(
            bucket_prefix(label, self.prefix_len)).get(label)

    def entries(self) -> Dict[str, Dict[str, Any]]:
        """Every reachable entry across all buckets."""
        merged: Dict[str, Dict[str, Any]] = {}
        if not self.buckets_dir.is_dir():
            return merged
        for path in sorted(self.buckets_dir.glob("*.json")):
            merged.update(self._read_bucket(path.stem))
        return merged

    def labels(self) -> list:
        return sorted(self.entries())

    def __len__(self) -> int:
        return len(self.entries())

    # -- writes -------------------------------------------------------------

    def put_many(self, entries: Mapping[str, Dict[str, Any]],
                 fresh: bool = True,
                 deletions: Optional[Mapping[str, int]] = None
                 ) -> "set[str]":
        """Merge *entries* (and tombstoned *deletions*) into the store.

        Fresh stores re-stamp above every stamp observed in the bucket
        — the writer holding the lock is the latest writer, so
        conflicting labels resolve last-writer-wins.  The final stamp
        is written into the caller's entry dict *in place*: the owning
        tier store shares those dicts across its memory tier and
        pending journal, so every view agrees on the entry's identity
        after a flush.  Promotions (``fresh=False``, e.g. remote hits
        written back to the local tier) keep their original stamp and
        provenance and never overwrite a newer entry.  A deletion only
        lands while the bucket still holds the stamp the deleter
        observed: a concurrently re-stored entry survives its stale
        tombstone.

        A bucket whose advisory lock times out is skipped — its labels
        simply do not appear in the returned set, so callers keep them
        pending and retry on the next save.  One slow (or
        chaos-injected) bucket never blocks progress on the others.
        Returns the labels whose buckets were processed.
        """
        deletions = dict(deletions or {})
        by_prefix: Dict[str, Dict[str, Dict[str, Any]]] = {}
        for label, entry in entries.items():
            by_prefix.setdefault(
                bucket_prefix(label, self.prefix_len), {})[label] = entry
        for label in deletions:
            by_prefix.setdefault(
                bucket_prefix(label, self.prefix_len),
                {})
        flushed: set = set()
        for prefix in sorted(by_prefix):
            updates = by_prefix[prefix]
            try:
                with self._locked(prefix):
                    bucket = self._read_bucket(prefix)
                    top = max(
                        (e.get("stored_at", 0) for e in bucket.values()),
                        default=0)
                    changed = False
                    for label, observed in deletions.items():
                        if bucket_prefix(label, self.prefix_len) != prefix:
                            continue
                        current = bucket.get(label)
                        if current is not None \
                                and current.get("stored_at", 0) <= observed:
                            del bucket[label]
                            changed = True
                        flushed.add(label)
                    for label, entry in updates.items():
                        current = bucket.get(label)
                        if fresh:
                            top = max(top + 1, entry.get("stored_at", 0))
                            entry["stored_at"] = top
                        elif current is not None and \
                                current.get("stored_at", 0) >= \
                                entry.get("stored_at", 0):
                            flushed.add(label)
                            continue
                        if current != entry:
                            bucket[label] = dict(entry)
                            changed = True
                        flushed.add(label)
                    if changed:
                        self._write_bucket(prefix, bucket)
            except CacheLockTimeout:
                continue
        return flushed

    def delete(self, label: str, observed_stamp: int) -> None:
        self.put_many({}, deletions={label: observed_stamp})

    # -- eviction / compaction ----------------------------------------------

    def compact(self, recency: Optional[Mapping[str, int]] = None,
                max_entries: Optional[int] = None) -> int:
        """Enforce the size bound and sweep writer debris.

        Keeps the ``max_entries`` most recently used entries — recency
        is ``max(stored_at, caller-observed hit stamp)``, so an old
        entry this process kept hitting outranks a never-read newer
        one.  Evicts under each affected bucket's lock, re-reading
        first: an entry a concurrent writer refreshed past our
        decision stamp survives.  Also removes torn temp files left by
        killed writers.  Returns the number of evicted entries.
        """
        bound = max_entries if max_entries is not None else self.max_entries
        recency = dict(recency or {})
        if self.buckets_dir.is_dir():
            for tmp in self.buckets_dir.glob("*.tmp.*"):
                try:
                    tmp.unlink()
                except OSError:
                    pass
        if bound is None:
            return 0
        snapshot = self.entries()
        if len(snapshot) <= bound:
            return 0
        self.stats.compactions += 1

        def rank(item: Tuple[str, Dict[str, Any]]) -> Tuple[int, str]:
            label, entry = item
            stamp = entry.get("stored_at", 0)
            return (max(stamp, recency.get(label, 0)), label)

        victims = sorted(snapshot.items(), key=rank)[:len(snapshot) - bound]
        evicted = 0
        by_prefix: Dict[str, list] = {}
        for label, entry in victims:
            by_prefix.setdefault(
                bucket_prefix(label, self.prefix_len), []).append(
                    (label, entry.get("stored_at", 0)))
        for prefix in sorted(by_prefix):
            with self._locked(prefix):
                bucket = self._read_bucket(prefix)
                changed = False
                for label, stamp in by_prefix[prefix]:
                    current = bucket.get(label)
                    if current is not None \
                            and current.get("stored_at", 0) <= stamp:
                        del bucket[label]
                        changed = True
                        evicted += 1
                if changed:
                    self._write_bucket(prefix, bucket)
        self.stats.evictions += evicted
        return evicted
