"""Content addresses for verification inputs.

A fingerprint is a blake2b digest over a *canonical* JSON serialization
— sorted keys, no whitespace — of the artifact.  Two artifacts share a
fingerprint exactly when they are semantically identical inputs to the
model checker: same composed network (automata, clocks, locations,
invariants, edges, guards, resets, synchronizations, initial
locations), same query text.  Field order, object identity and
construction history never leak into the digest.

The serializers walk the public structure of the ``repro.ta`` types;
anything unknown fails loudly rather than fingerprinting an incomplete
view (a cache keyed on a partial serialization would serve stale
verdicts after a change it cannot see).
"""

import hashlib
import json
from typing import Any, Optional

from repro.ta.automaton import ClockConstraint, Edge, Location, TimedAutomaton
from repro.ta.system import Network

#: Digest size in bytes; 16 (128 bits) keeps keys short while making
#: accidental collisions across a repository's lifetime implausible.
_DIGEST_SIZE = 16


def fingerprint(obj: Any) -> str:
    """Hex blake2b digest of *obj*'s canonical JSON form."""
    payload = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(payload.encode("utf-8"),
                           digest_size=_DIGEST_SIZE).hexdigest()


def _canonical_constraint(constraint: ClockConstraint) -> dict:
    return {
        "left": constraint.left,
        "op": constraint.op,
        "value": constraint.value,
        "right": constraint.right,
    }


def _canonical_location(location: Location) -> dict:
    return {
        "name": location.name,
        "invariant": [_canonical_constraint(c) for c in location.invariant],
        "urgent": location.urgent,
    }


def _canonical_edge(edge: Edge) -> dict:
    return {
        "source": edge.source,
        "target": edge.target,
        "guard": [_canonical_constraint(c) for c in edge.guard],
        "resets": list(edge.resets),
        "sync": edge.sync,
        "action": edge.action,
    }


def _canonical_automaton(automaton: TimedAutomaton) -> dict:
    return {
        "name": automaton.name,
        "clocks": list(automaton.clocks),
        "initial": automaton.initial,
        "locations": [_canonical_location(automaton.locations[name])
                      for name in sorted(automaton.locations)],
        "edges": [_canonical_edge(edge) for edge in automaton.edges],
    }


def canonical_network(network: Network) -> dict:
    """The network as plain data: composition order is semantic, kept."""
    return {
        "automata": [_canonical_automaton(a) for a in network.automata],
    }


def canonical_query(query_text: str) -> dict:
    """Query canonical form: the text, whitespace-normalized."""
    return {"query": " ".join(query_text.split())}


def canonical_requirement(record: Any) -> dict:
    """A requirement's verification-relevant content — its canonical IR.

    Repository records and IR records alike serialize through the
    unified Requirement IR (:mod:`repro.reqs.ir`), so cache keys are
    front-end agnostic: the same normative requirement fingerprints
    identically whether it was ingested through a native orchestrator
    method or lowered externally through the front-end registry.
    Mutating any normative content changes the fingerprint; mutable
    pipeline bookkeeping (status, quality flags) deliberately does not.

    Objects that are neither IR nor IR-convertible fall back to a
    duck-typed serialization of the legacy fields.
    """
    from repro.reqs.ir import Requirement

    if isinstance(record, Requirement):
        return record.to_dict()
    to_ir = getattr(record, "to_ir", None)
    if callable(to_ir):
        return to_ir().to_dict()
    return {
        "req_id": record.req_id,
        "text": record.text,
        "source": getattr(record.source, "value", str(record.source)),
        "pattern": repr(record.pattern) if record.pattern else None,
        "scope": repr(record.scope) if record.scope else None,
        "ltl": record.ltl,
        "tctl": record.tctl,
        "rqcode_findings": list(record.rqcode_findings),
    }


def fingerprint_task(network: Network, query_text: str,
                     requirement: Optional[Any] = None) -> str:
    """Content address of one verification task.

    The digest covers the composed network and the query; when the task
    traces back to a requirement record, its verification-relevant
    content is folded in as well, so editing the requirement text
    invalidates the task even if the derived automaton is unchanged.
    """
    body = {
        "network": canonical_network(network),
        **canonical_query(query_text),
    }
    if requirement is not None:
        body["requirement"] = canonical_requirement(requirement)
    return fingerprint(body)


def fingerprint_requirement(record: Any) -> str:
    """Content address of one requirement record (via its IR form)."""
    return fingerprint(canonical_requirement(record))


def fingerprint_ir(ir: Any) -> str:
    """Content address of an IR record — same digest the IR itself
    computes (:meth:`repro.reqs.ir.Requirement.fingerprint`)."""
    return fingerprint(ir.to_dict())
