"""RQCODE core concepts (D2.7 Annex 1, package ``rqcode.concepts``).

The four concepts:

* :class:`Checkable` — a requirement that can be *verified* against the
  current environment (``check() -> CheckStatus``).
* :class:`Enforceable` — a requirement that can be *imposed* on the
  environment (``enforce() -> EnforcementStatus``).
* :class:`Requirement` — the textual/metadata side of a requirement,
  a direct mapping of the STIG finding structure on stigviewer.com.
* :class:`CheckableEnforceableRequirement` — the combination, which is
  what concrete STIG classes inherit.
"""

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Optional


class CheckStatus(enum.Enum):
    """Outcome of verifying a requirement against the environment."""

    PASS = "PASS"
    FAIL = "FAIL"
    INCOMPLETE = "INCOMPLETE"

    def __bool__(self) -> bool:
        """Truthiness follows compliance: only PASS is truthy."""
        return self is CheckStatus.PASS


class EnforcementStatus(enum.Enum):
    """Outcome of enforcing a requirement on the environment."""

    SUCCESS = "SUCCESS"
    FAILURE = "FAILURE"
    INCOMPLETE = "INCOMPLETE"

    def __bool__(self) -> bool:
        return self is EnforcementStatus.SUCCESS


class Checkable(ABC):
    """A requirement that can be checked programmatically.

    Implementations must be side-effect free with respect to the hosting
    environment: ``check`` observes, never mutates.
    """

    @abstractmethod
    def check(self) -> CheckStatus:
        """Check whether the current environment satisfies the requirement."""

    def holds(self) -> bool:
        """Convenience predicate: True iff ``check()`` returns PASS."""
        return self.check() is CheckStatus.PASS


class Enforceable(ABC):
    """A requirement that can be enforced on the hosting environment."""

    @abstractmethod
    def enforce(self) -> EnforcementStatus:
        """Modify the hosting environment to satisfy the requirement."""


class PredicateCheckable(Checkable):
    """Adapt a plain callable (or constant) into a :class:`Checkable`.

    Temporal patterns take ``Checkable`` operands; this adapter lets
    callers monitor arbitrary conditions (a sensor reading, a service
    probe) without writing a class.  The callable may return a
    :class:`CheckStatus` or a boolean.
    """

    def __init__(self, predicate: Callable[[], object], name: str = "p"):
        self._predicate = predicate
        self._name = name

    def check(self) -> CheckStatus:
        result = self._predicate()
        if isinstance(result, CheckStatus):
            return result
        return CheckStatus.PASS if result else CheckStatus.FAIL

    def __str__(self) -> str:
        return self._name


@dataclass(frozen=True)
class FindingMetadata:
    """STIG finding fields, mirroring stigviewer.com's layout.

    These are exactly the accessors Annex 1 gives for class
    ``Requirement`` (findingID, version, ruleID, iAControls, severity,
    description, sTIG, date, checkText..., fixText...).
    """

    finding_id: str
    version: str = ""
    rule_id: str = ""
    ia_controls: str = ""
    severity: str = "medium"
    description: str = ""
    stig: str = ""
    date: str = ""
    check_text_code: str = ""
    check_text: str = ""
    fix_text_code: str = ""
    fix_text: str = ""


class Requirement:
    """Textual requirement: a STIG finding rendered as an object.

    Concrete requirement classes either pass a :class:`FindingMetadata`
    to the constructor or override the accessor methods (the Java
    catalogue does the latter; the Python port supports both styles).
    """

    def __init__(self, metadata: Optional[FindingMetadata] = None):
        self._metadata = metadata or FindingMetadata(finding_id="")

    # Accessors named after Annex 1's operations (snake_cased).

    def finding_id(self) -> str:
        return self._metadata.finding_id

    def version(self) -> str:
        return self._metadata.version

    def rule_id(self) -> str:
        return self._metadata.rule_id

    def ia_controls(self) -> str:
        return self._metadata.ia_controls

    def severity(self) -> str:
        return self._metadata.severity

    def description(self) -> str:
        return self._metadata.description

    def stig(self) -> str:
        return self._metadata.stig

    def date(self) -> str:
        return self._metadata.date

    def check_text_code(self) -> str:
        return self._metadata.check_text_code

    def check_text(self) -> str:
        return self._metadata.check_text

    def fix_text_code(self) -> str:
        return self._metadata.fix_text_code

    def fix_text(self) -> str:
        return self._metadata.fix_text

    def to_document(self) -> str:
        """Parse the finding into a readable document (Annex 1's
        ``toString``: "a crude parsing of the finding specification")."""
        sections = [
            ("Finding ID", self.finding_id()),
            ("Version", self.version()),
            ("Rule ID", self.rule_id()),
            ("IA Controls", self.ia_controls()),
            ("Severity", self.severity()),
            ("STIG", self.stig()),
            ("Date", self.date()),
            ("Description", self.description()),
            ("Check Text", self.check_text()),
            ("Fix Text", self.fix_text()),
        ]
        lines = [f"{label}: {value}" for label, value in sections if value]
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_document()


class CheckableEnforceableRequirement(Requirement, Checkable, Enforceable):
    """A requirement that is both checkable and enforceable.

    This is the base of every concrete STIG class.  Subclasses implement
    :meth:`check` and :meth:`enforce` against a simulated host.
    """

    def check(self) -> CheckStatus:  # pragma: no cover - abstract default
        raise NotImplementedError

    def enforce(self) -> EnforcementStatus:  # pragma: no cover
        raise NotImplementedError

    def check_enforce_check(self) -> "tuple[CheckStatus, EnforcementStatus, CheckStatus]":
        """The canonical remediation transaction: check, enforce if
        failing, re-check.  Returns the three statuses; when the first
        check already passes, enforcement is skipped and reported as
        SUCCESS (nothing to do)."""
        before = self.check()
        if before is CheckStatus.PASS:
            return before, EnforcementStatus.SUCCESS, before
        enforcement = self.enforce()
        after = self.check()
        return before, enforcement, after
