"""Win10 registry-value STIG patterns and concrete findings.

Beyond audit policies, a large share of the Windows 10 STIG pins
registry values.  :class:`RegistryValueRequirement` is the reusable
pattern: check that a named registry value (a key in the simulated
host's flat settings store, prefixed ``registry.``) matches the
required value, and enforce by writing it.

Concrete findings below are representative entries from the same STIG
the audit-policy slice comes from; they exercise both exact-match and
minimum-value comparison modes.
"""

from abc import abstractmethod
from typing import Optional

from repro.environment.host import SimulatedHost
from repro.rqcode.concepts import (
    CheckableEnforceableRequirement,
    CheckStatus,
    EnforcementStatus,
    FindingMetadata,
)


class RegistryValueRequirement(CheckableEnforceableRequirement):
    """Registry-value requirement with exact or minimum comparison.

    Subclasses declare the value via the getter triple
    (:meth:`get_value_name`, :meth:`get_required_value`,
    :meth:`get_comparison`).  Comparison modes:

    * ``"exact"`` — the stored string must equal the required string;
    * ``"minimum"`` — both parse as integers; stored >= required.
    """

    def __init__(self, host: SimulatedHost,
                 metadata: Optional[FindingMetadata] = None):
        super().__init__(metadata)
        self.host = host

    @abstractmethod
    def get_value_name(self) -> str:
        """Registry value name, e.g. ``"LmCompatibilityLevel"``."""

    @abstractmethod
    def get_required_value(self) -> str:
        """The value STIG requires."""

    def get_comparison(self) -> str:
        return "exact"

    def _setting_key(self) -> str:
        return f"registry.{self.get_value_name()}"

    def check(self) -> CheckStatus:
        current = self.host.get_setting(self._setting_key())
        if current is None:
            return CheckStatus.FAIL
        required = self.get_required_value()
        if self.get_comparison() == "minimum":
            try:
                return (CheckStatus.PASS
                        if int(current) >= int(required)
                        else CheckStatus.FAIL)
            except ValueError:
                return CheckStatus.INCOMPLETE
        return (CheckStatus.PASS if current == required
                else CheckStatus.FAIL)

    def enforce(self) -> EnforcementStatus:
        self.host.set_setting(self._setting_key(),
                              self.get_required_value())
        return EnforcementStatus.SUCCESS


def _registry_metadata(finding_id: str, version: str,
                       severity: str = "medium") -> FindingMetadata:
    return FindingMetadata(
        finding_id=finding_id,
        version=version,
        rule_id=f"SV-{finding_id.split('-')[-1]}r1_rule",
        severity=severity,
        stig="Windows 10 Security Technical Implementation Guide",
        date="2016-10-28",
    )


class V_63519(RegistryValueRequirement):
    """The required legal notice must be configured to display before
    console logon (interactive logon banner)."""

    def __init__(self, host: SimulatedHost):
        super().__init__(host, _registry_metadata(
            "V-63519", "WN10-SO-000075"))

    def get_value_name(self) -> str:
        return "LegalNoticeText"

    def get_required_value(self) -> str:
        return "DoD Notice and Consent"


class V_63797(RegistryValueRequirement):
    """The LAN Manager authentication level must be set to send NTLMv2
    response only and to refuse LM and NTLM."""

    def __init__(self, host: SimulatedHost):
        super().__init__(host, _registry_metadata(
            "V-63797", "WN10-SO-000205", severity="high"))

    def get_value_name(self) -> str:
        return "LmCompatibilityLevel"

    def get_required_value(self) -> str:
        return "5"

    def get_comparison(self) -> str:
        return "minimum"


class V_63351(RegistryValueRequirement):
    """The Windows SMB client must be configured to always perform SMB
    packet signing."""

    def __init__(self, host: SimulatedHost):
        super().__init__(host, _registry_metadata(
            "V-63351", "WN10-SO-000100"))

    def get_value_name(self) -> str:
        return "RequireSecuritySignature"

    def get_required_value(self) -> str:
        return "1"


class V_63591(RegistryValueRequirement):
    """Anonymous enumeration of shares must be restricted."""

    def __init__(self, host: SimulatedHost):
        super().__init__(host, _registry_metadata(
            "V-63591", "WN10-SO-000150", severity="high"))

    def get_value_name(self) -> str:
        return "RestrictAnonymous"

    def get_required_value(self) -> str:
        return "1"


REGISTRY_FINDINGS = (V_63519, V_63797, V_63351, V_63591)
