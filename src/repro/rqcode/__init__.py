"""RQCODE — Requirements as Code (Python port).

RQCODE represents security requirements as classes, following the
Seamless Object-Oriented Requirements paradigm (D2.7 §1.1).  A
requirement class may:

* carry multiple notations (textual STIG finding, LTL/TCTL formula);
* include verification means (:class:`Checkable`) and enforcement means
  (:class:`Enforceable`), giving a lightweight formalisation;
* be extended and instantiated with parameters for massive reuse
  (``UbuntuPackagePattern("nis", must_be_installed=False)``).

Subpackage layout mirrors the Java repository described in D2.7 Annex 1:

========================  =====================================
Java package              Python module
========================  =====================================
``rqcode.concepts``       :mod:`repro.rqcode.concepts`
``rqcode.patterns.temporal``  :mod:`repro.rqcode.temporal`
``rqcode.patterns.win10``     :mod:`repro.rqcode.win10`
``rqcode.stigs.win10``        :mod:`repro.rqcode.win10`
``rqcode.stigs.ubuntu``       :mod:`repro.rqcode.ubuntu`
(catalog — new)           :mod:`repro.rqcode.catalog`
========================  =====================================
"""

from repro.rqcode.concepts import (
    Checkable,
    CheckableEnforceableRequirement,
    CheckStatus,
    Enforceable,
    EnforcementStatus,
    FindingMetadata,
    PredicateCheckable,
    Requirement,
)
from repro.rqcode.temporal import (
    AfterUntilUniversality,
    Eventually,
    GlobalResponseTimed,
    GlobalResponseUntil,
    GlobalUniversality,
    GlobalUniversalityTimed,
    MonitoringLoop,
)
from repro.rqcode.catalog import StigCatalog, ComplianceReport, default_catalog

__all__ = [
    "AfterUntilUniversality",
    "Checkable",
    "CheckableEnforceableRequirement",
    "CheckStatus",
    "ComplianceReport",
    "Enforceable",
    "EnforcementStatus",
    "Eventually",
    "FindingMetadata",
    "GlobalResponseTimed",
    "GlobalResponseUntil",
    "GlobalUniversality",
    "GlobalUniversalityTimed",
    "MonitoringLoop",
    "PredicateCheckable",
    "Requirement",
    "StigCatalog",
    "default_catalog",
]
