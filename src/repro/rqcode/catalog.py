"""STIG catalogue: registry, batch operations, compliance reporting.

D2.7 presents the patterns "from the end-user perspective": a user pulls
a catalogue of finding classes, instantiates them against hosts, and runs
check/enforce campaigns.  :class:`StigCatalog` is that surface, and
:class:`ComplianceReport` is the row format experiment E3 tabulates.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Type

from repro.environment.host import SimulatedHost
from repro.rqcode.concepts import (
    CheckableEnforceableRequirement,
    CheckStatus,
    EnforcementStatus,
)


@dataclass(frozen=True)
class CatalogEntry:
    """One registered finding class with its routing tags."""

    finding_id: str
    platform: str
    severity: str
    requirement_class: Type[CheckableEnforceableRequirement]

    def instantiate(self, host: SimulatedHost) -> CheckableEnforceableRequirement:
        return self.requirement_class(host)


@dataclass
class FindingResult:
    """Outcome of the check/enforce/check transaction for one finding."""

    finding_id: str
    severity: str
    before: CheckStatus
    enforcement: Optional[EnforcementStatus]
    after: CheckStatus

    @property
    def remediated(self) -> bool:
        """True when enforcement flipped a failing finding to PASS."""
        return (self.before is not CheckStatus.PASS
                and self.after is CheckStatus.PASS)


@dataclass
class ComplianceReport:
    """Aggregate of a check (or check/enforce/check) campaign on one host."""

    host_name: str
    platform: str
    results: List[FindingResult] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def passing(self) -> int:
        return sum(1 for r in self.results if r.after is CheckStatus.PASS)

    @property
    def failing(self) -> int:
        return sum(1 for r in self.results if r.after is CheckStatus.FAIL)

    @property
    def remediated(self) -> int:
        return sum(1 for r in self.results if r.remediated)

    @property
    def compliance_ratio(self) -> float:
        """Fraction of findings passing after the campaign (1.0 if empty)."""
        if not self.results:
            return 1.0
        return self.passing / self.total

    def rows(self) -> List[Dict[str, str]]:
        """Plain-data table rows (one per finding) for report printing."""
        return [
            {
                "finding": r.finding_id,
                "severity": r.severity,
                "before": r.before.value,
                "enforce": r.enforcement.value if r.enforcement else "-",
                "after": r.after.value,
            }
            for r in self.results
        ]

    def summary(self) -> str:
        return (
            f"{self.host_name} ({self.platform}): "
            f"{self.passing}/{self.total} passing, "
            f"{self.remediated} remediated"
        )


class StigCatalog:
    """Registry of finding classes, keyed by finding id.

    The catalogue routes findings to hosts by platform tag and offers
    the two campaign shapes the framework needs: an audit
    (:meth:`check_host`) and a remediation (:meth:`harden_host`).
    """

    def __init__(self) -> None:
        self._entries: Dict[str, CatalogEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, finding_id: str) -> bool:
        return finding_id in self._entries

    def register(self, requirement_class: Type[CheckableEnforceableRequirement],
                 platform: str) -> CatalogEntry:
        """Register a finding class; finding id and severity are read
        from a probe instance's metadata-free defaults where possible,
        otherwise from the class name (``V_63447`` -> ``V-63447``)."""
        finding_id = requirement_class.__name__.replace("_", "-")
        severity = "medium"
        doc = requirement_class.__doc__ or ""
        if "high" in doc.split("\n")[0].lower():
            severity = "high"
        entry = CatalogEntry(
            finding_id=finding_id,
            platform=platform,
            severity=severity,
            requirement_class=requirement_class,
        )
        self._entries[finding_id] = entry
        return entry

    def get(self, finding_id: str) -> CatalogEntry:
        if finding_id not in self._entries:
            raise KeyError(f"finding not in catalogue: {finding_id!r}")
        return self._entries[finding_id]

    def finding_ids(self, platform: Optional[str] = None) -> List[str]:
        return sorted(
            fid for fid, entry in self._entries.items()
            if platform is None or entry.platform == platform
        )

    def entries_for(self, platform: str) -> List[CatalogEntry]:
        return [self._entries[fid] for fid in self.finding_ids(platform)]

    def instantiate_for(self, host: SimulatedHost
                        ) -> List[CheckableEnforceableRequirement]:
        """Instantiate every finding matching the host's platform."""
        return [e.instantiate(host) for e in self.entries_for(host.os_family)]

    # -- campaigns -------------------------------------------------------------

    def check_host(self, host: SimulatedHost) -> ComplianceReport:
        """Audit: check every applicable finding without mutating the host."""
        report = ComplianceReport(host_name=host.name, platform=host.os_family)
        for entry in self.entries_for(host.os_family):
            requirement = entry.instantiate(host)
            status = requirement.check()
            severity = _severity_of(requirement, entry)
            report.results.append(FindingResult(
                finding_id=entry.finding_id,
                severity=severity,
                before=status,
                enforcement=None,
                after=status,
            ))
        return report

    def harden_host(self, host: SimulatedHost) -> ComplianceReport:
        """Remediate: run check/enforce/check for every applicable finding."""
        report = ComplianceReport(host_name=host.name, platform=host.os_family)
        for entry in self.entries_for(host.os_family):
            requirement = entry.instantiate(host)
            before, enforcement, after = requirement.check_enforce_check()
            severity = _severity_of(requirement, entry)
            report.results.append(FindingResult(
                finding_id=entry.finding_id,
                severity=severity,
                before=before,
                enforcement=enforcement,
                after=after,
            ))
        return report


def _severity_of(requirement: CheckableEnforceableRequirement,
                 entry: CatalogEntry) -> str:
    """Prefer the instance's STIG metadata severity over the registry tag."""
    severity = requirement.severity()
    return severity if severity else entry.severity


def default_catalog() -> StigCatalog:
    """The bundled catalogue: every Win10 and Ubuntu finding in the repo."""
    # Imported here to avoid a cycle (win10/ubuntu import concepts which
    # sits beside this module in the package).
    from repro.rqcode import ubuntu as ubuntu_mod
    from repro.rqcode import win10 as win10_mod
    from repro.rqcode import win10_accounts as accounts_mod
    from repro.rqcode import win10_registry as registry_mod

    catalog = StigCatalog()
    for cls in win10_mod.Windows10SecurityTechnicalImplementationGuide.STIG_CLASSES:
        catalog.register(cls, platform="windows")
    for cls in registry_mod.REGISTRY_FINDINGS:
        catalog.register(cls, platform="windows")
    for cls in accounts_mod.ACCOUNT_FINDINGS:
        catalog.register(cls, platform="windows")
    for cls in ubuntu_mod.ALL_UBUNTU_FINDINGS:
        catalog.register(cls, platform="ubuntu")
    return catalog
