"""RQCODE Windows 10 STIG patterns and concrete findings.

This module merges two Java packages from D2.7 Annex 1:

* ``rqcode.patterns.win10`` — the reusable audit-policy pattern
  hierarchy rooted at :class:`AuditPolicyRequirement`;
* ``rqcode.stigs.win10`` — the concrete findings (V-63447, V-63449,
  V-63463, V-63467, V-63483, V-63487) and the
  :class:`Windows10SecurityTechnicalImplementationGuide` aggregate.

:class:`AuditPolicyRequirement` is faithful to the Java original: it
"forks auditpol.exe [and] manipulates its input and output" — here it
invokes the host's :class:`~repro.environment.auditpol.SimulatedAuditPol`
with the same ``/get``/``/set`` command lines and parses the same report
text, rather than peeking at the policy store directly.
"""

import re
from abc import abstractmethod
from typing import List, Optional

from repro.environment.host import SimulatedHost
from repro.rqcode.concepts import (
    CheckableEnforceableRequirement,
    CheckStatus,
    EnforcementStatus,
    FindingMetadata,
)

_AUDIT_TRAIL_RATIONALE = (
    "Maintaining an audit trail of system activity logs can help identify "
    "configuration errors, troubleshoot service disruptions, and analyze "
    "compromises that have occurred, as well as detect attacks. Audit logs "
    "are necessary to provide a trail of evidence in case the system or "
    "network is compromised."
)


class AuditPolicyRequirement(CheckableEnforceableRequirement):
    """Audit-policy requirement checked/enforced through auditpol.

    Subclasses declare the target via the getter quartet
    (:meth:`get_category`, :meth:`get_subcategory`, :meth:`get_success`,
    :meth:`get_failure`); this class supplies the auditpol plumbing.

    The *inclusion setting* is the human-readable flag combination the
    STIG requires ("Success", "Failure", or "Success and Failure").
    """

    def __init__(self, host: SimulatedHost,
                 metadata: Optional[FindingMetadata] = None):
        super().__init__(metadata)
        self.host = host

    # -- declaration surface (Annex 1 operations) ----------------------------

    @abstractmethod
    def get_category(self) -> str:
        """Audit category, e.g. ``"Logon/Logoff"``."""

    @abstractmethod
    def get_subcategory(self) -> str:
        """Audit subcategory, e.g. ``"Logon"``."""

    def get_success(self) -> str:
        """Required Success flag: ``"enable"`` or ``"no change"``."""
        return "no change"

    def get_failure(self) -> str:
        """Required Failure flag: ``"enable"`` or ``"no change"``."""
        return "no change"

    def get_inclusion_setting(self) -> str:
        """Human-readable required setting, derived from the flags."""
        want_success = self.get_success() == "enable"
        want_failure = self.get_failure() == "enable"
        if want_success and want_failure:
            return "Success and Failure"
        if want_success:
            return "Success"
        if want_failure:
            return "Failure"
        return "No Auditing"

    # -- auditpol I/O ---------------------------------------------------------

    def _query_current_setting(self) -> Optional[str]:
        """Run ``auditpol /get`` and scrape the subcategory's setting.

        Returns None when the output cannot be parsed (reported as
        INCOMPLETE by :meth:`check`, matching the Java fallback).
        """
        subcategory = self.get_subcategory()
        output = self.host.auditpol.run(
            f'/get /subcategory:"{subcategory}"'
        )
        pattern = re.compile(
            rf"^\s*{re.escape(subcategory)}\s{{2,}}(?P<setting>\S.*?)\s*$",
            re.MULTILINE,
        )
        match = pattern.search(output)
        if match is None:
            return None
        return match.group("setting")

    def check(self) -> CheckStatus:
        """PASS when the live auditpol setting covers the required flags.

        "Covers" rather than "equals": a host auditing Success and
        Failure satisfies a finding that requires only Failure, which is
        the STIG check-text semantics ("if ... does not include the
        following, this is a finding").
        """
        setting = self._query_current_setting()
        if setting is None:
            return CheckStatus.INCOMPLETE
        has_success = setting in ("Success", "Success and Failure")
        has_failure = setting in ("Failure", "Success and Failure")
        if self.get_success() == "enable" and not has_success:
            return CheckStatus.FAIL
        if self.get_failure() == "enable" and not has_failure:
            return CheckStatus.FAIL
        return CheckStatus.PASS

    def enforce(self) -> EnforcementStatus:
        """Run ``auditpol /set`` with the required flags."""
        flags = []
        if self.get_success() == "enable":
            flags.append("/success:enable")
        if self.get_failure() == "enable":
            flags.append("/failure:enable")
        if not flags:
            return EnforcementStatus.INCOMPLETE
        command = (
            f'/set /subcategory:"{self.get_subcategory()}" ' + " ".join(flags)
        )
        output = self.host.auditpol.run(command)
        if "successfully" not in output:
            return EnforcementStatus.FAILURE
        return EnforcementStatus.SUCCESS


# -- pattern hierarchy (rqcode.patterns.win10) --------------------------------

class AccountManagementRequirement(AuditPolicyRequirement):
    """STIG pattern for Win10 Account Management audit settings."""

    def get_category(self) -> str:
        return "Account Management"


class UserAccountManagementRequirement(AccountManagementRequirement):
    """STIG pattern for the User Account Management subcategory."""

    def get_subcategory(self) -> str:
        return "User Account Management"

    def description(self) -> str:
        return (
            _AUDIT_TRAIL_RATIONALE + " User Account Management records "
            "events such as creating, changing, deleting, renaming, "
            "disabling, or enabling user accounts."
        )

    def check_text(self) -> str:
        return (
            "Security Option 'Audit: Force audit policy subcategory "
            "settings' must be set to 'Enabled'. Run 'AuditPol /get "
            "/category:*'. If the system does not audit 'Account "
            f"Management >> User Account Management' with "
            f"'{self.get_inclusion_setting()}', this is a finding."
        )

    def fix_text(self) -> str:
        return (
            "Configure the policy value for Computer Configuration >> "
            "Windows Settings >> Security Settings >> Advanced Audit "
            "Policy Configuration >> System Audit Policies >> Account "
            "Management >> 'Audit User Account Management' with "
            f"'{self.get_inclusion_setting()}' selected."
        )


class LogonLogoffRequirement(AuditPolicyRequirement):
    """STIG pattern for Win10 Logon/Logoff audit settings."""

    def get_category(self) -> str:
        return "Logon/Logoff"


class LogonRequirement(LogonLogoffRequirement):
    """STIG pattern for the Logon subcategory."""

    def get_subcategory(self) -> str:
        return "Logon"

    def description(self) -> str:
        return (
            _AUDIT_TRAIL_RATIONALE + " Logon records user logons. If this "
            "is an interactive logon, it is recorded on the local system. "
            "If it is to a network share, it is recorded on the system "
            "accessed."
        )

    def check_text(self) -> str:
        return (
            "Run 'AuditPol /get /category:*'. If the system does not "
            "audit 'Logon/Logoff >> Logon' with "
            f"'{self.get_inclusion_setting()}', this is a finding."
        )

    def fix_text(self) -> str:
        return (
            "Configure System Audit Policies >> Logon/Logoff >> 'Audit "
            f"Logon' with '{self.get_inclusion_setting()}' selected."
        )


class PrivilegeUseRequirement(AuditPolicyRequirement):
    """STIG pattern for Win10 Privilege Use audit settings."""

    def get_category(self) -> str:
        return "Privilege Use"


class SensitivePrivilegeUseRequirement(PrivilegeUseRequirement):
    """STIG pattern for the Sensitive Privilege Use subcategory."""

    def get_subcategory(self) -> str:
        return "Sensitive Privilege Use"

    def description(self) -> str:
        return (
            _AUDIT_TRAIL_RATIONALE + " Sensitive Privilege Use records "
            "events related to use of sensitive privileges, such as "
            "'Act as part of the operating system' or 'Debug programs'."
        )

    def check_text(self) -> str:
        return (
            "Run 'AuditPol /get /category:*'. If the system does not "
            "audit 'Privilege Use >> Sensitive Privilege Use' with "
            f"'{self.get_inclusion_setting()}', this is a finding."
        )

    def fix_text(self) -> str:
        return (
            "Configure System Audit Policies >> Privilege Use >> 'Audit "
            "Sensitive Privilege Use' with "
            f"'{self.get_inclusion_setting()}' selected."
        )


# -- concrete findings (rqcode.stigs.win10) ------------------------------------

def _win10_metadata(finding_id: str, version: str, rule_id: str,
                    severity: str = "medium") -> FindingMetadata:
    return FindingMetadata(
        finding_id=finding_id,
        version=version,
        rule_id=rule_id,
        ia_controls="ECAR-1, ECAR-2, ECAR-3",
        severity=severity,
        stig="Windows 10 Security Technical Implementation Guide",
        date="2016-10-28",
    )


class V_63447(UserAccountManagementRequirement):
    """The system must be configured to audit Account Management -
    User Account Management failures."""

    def __init__(self, host: SimulatedHost):
        super().__init__(host, _win10_metadata(
            "V-63447", "WN10-AU-000030", "SV-77937r1_rule"))

    def get_failure(self) -> str:
        return "enable"


class V_63449(UserAccountManagementRequirement):
    """The system must be configured to audit Account Management -
    User Account Management successes."""

    def __init__(self, host: SimulatedHost):
        super().__init__(host, _win10_metadata(
            "V-63449", "WN10-AU-000035", "SV-77939r1_rule"))

    def get_success(self) -> str:
        return "enable"


class V_63463(LogonRequirement):
    """The system must be configured to audit Logon/Logoff - Logon
    failures."""

    def __init__(self, host: SimulatedHost):
        super().__init__(host, _win10_metadata(
            "V-63463", "WN10-AU-000075", "SV-77953r1_rule"))

    def get_failure(self) -> str:
        return "enable"


class V_63467(LogonRequirement):
    """The system must be configured to audit Logon/Logoff - Logon
    successes."""

    def __init__(self, host: SimulatedHost):
        super().__init__(host, _win10_metadata(
            "V-63467", "WN10-AU-000080", "SV-77957r1_rule"))

    def get_success(self) -> str:
        return "enable"


class V_63483(SensitivePrivilegeUseRequirement):
    """The system must be configured to audit Privilege Use - Sensitive
    Privilege Use failures."""

    def __init__(self, host: SimulatedHost):
        super().__init__(host, _win10_metadata(
            "V-63483", "WN10-AU-000105", "SV-77973r1_rule"))

    def get_failure(self) -> str:
        return "enable"


class V_63487(SensitivePrivilegeUseRequirement):
    """The system must be configured to audit Privilege Use - Sensitive
    Privilege Use successes."""

    def __init__(self, host: SimulatedHost):
        super().__init__(host, _win10_metadata(
            "V-63487", "WN10-AU-000110", "SV-77977r1_rule"))

    def get_success(self) -> str:
        return "enable"


class Windows10SecurityTechnicalImplementationGuide:
    """Aggregate instantiating the full Win10 STIG slice for one host.

    Mirrors Annex 1's ``Windows10SecurityTechnicalImplementationGuide``:
    an example of instantiation of the Win10 STIG requirements, exposing
    the list plus batch check/enforce helpers.
    """

    STIG_CLASSES = (V_63447, V_63449, V_63463, V_63467, V_63483, V_63487)

    def __init__(self, host: SimulatedHost):
        self.host = host
        self.v_63447 = V_63447(host)
        self.v_63449 = V_63449(host)
        self.v_63463 = V_63463(host)
        self.v_63467 = V_63467(host)
        self.v_63483 = V_63483(host)
        self.v_63487 = V_63487(host)

    def all_stigs(self) -> List[AuditPolicyRequirement]:
        """All instantiated requirements, in finding-id order."""
        return [
            self.v_63447, self.v_63449, self.v_63463,
            self.v_63467, self.v_63483, self.v_63487,
        ]

    def check_all(self) -> "dict[str, CheckStatus]":
        """Check every finding; returns finding-id -> status."""
        return {req.finding_id(): req.check() for req in self.all_stigs()}

    def enforce_all(self) -> "dict[str, EnforcementStatus]":
        """Enforce every finding that is currently failing."""
        results = {}
        for req in self.all_stigs():
            if req.check() is CheckStatus.PASS:
                results[req.finding_id()] = EnforcementStatus.SUCCESS
            else:
                results[req.finding_id()] = req.enforce()
        return results
