"""RQCODE Ubuntu 18.04 STIG patterns and concrete findings.

Mirrors the Java package ``rqcode.stigs.ubuntu`` (D2.7 Annex 1).  The
reusable pattern is :class:`UbuntuPackagePattern` — "is package X
(not) installed", with enforcement installing or removing it.  Two
further reusable patterns that the wider Ubuntu STIG needs are included
(:class:`UbuntuConfigPattern` for key/value configuration findings and
:class:`UbuntuServicePattern` for unit-state findings).

The eight concrete findings named in D2.7 (V-219157, V-219158, V-219161,
V-219177, V-219304, V-219318, V-219319, V-219343) are implemented with
their stigviewer rationale text.  A handful of additional representative
findings from the same STIG exercise the config and service patterns;
they are grouped at the bottom and flagged as catalogue extensions.
"""

from typing import List, Optional

from repro.environment.host import SimulatedHost
from repro.rqcode.concepts import (
    CheckableEnforceableRequirement,
    CheckStatus,
    EnforcementStatus,
    FindingMetadata,
)

_UBUNTU_STIG = "Canonical Ubuntu 18.04 LTS Security Technical Implementation Guide"
_UBUNTU_DATE = "2021-06-16"


def _ubuntu_metadata(finding_id: str, severity: str = "medium",
                     description: str = "") -> FindingMetadata:
    return FindingMetadata(
        finding_id=finding_id,
        version=f"UBTU-18-{finding_id.split('-')[-1]}",
        rule_id=f"SV-{finding_id.split('-')[-1]}r610963_rule",
        severity=severity,
        description=description,
        stig=_UBUNTU_STIG,
        date=_UBUNTU_DATE,
    )


# -- reusable patterns ---------------------------------------------------------

class UbuntuPackagePattern(CheckableEnforceableRequirement):
    """Package presence/absence requirement (Annex 1's pattern).

    Args:
        host: Target host.
        name: Package name (apt universe).
        must_be_installed: True -> the package is required; False -> the
            package is prohibited.
    """

    def __init__(self, host: SimulatedHost, name: str,
                 must_be_installed: bool,
                 metadata: Optional[FindingMetadata] = None):
        super().__init__(metadata)
        self.host = host
        self._name = name
        self._must_be_installed = must_be_installed

    @property
    def package_name(self) -> str:
        return self._name

    @property
    def must_be_installed(self) -> bool:
        return self._must_be_installed

    def check(self) -> CheckStatus:
        installed = self.host.dpkg.is_installed(self._name)
        if installed == self._must_be_installed:
            return CheckStatus.PASS
        return CheckStatus.FAIL

    def enforce(self) -> EnforcementStatus:
        try:
            if self._must_be_installed:
                self.host.dpkg.install(self._name)
            else:
                self.host.dpkg.remove(self._name)
        except Exception:
            return EnforcementStatus.FAILURE
        return EnforcementStatus.SUCCESS

    def __str__(self) -> str:
        polarity = "installed" if self._must_be_installed else "not installed"
        return f"Package {self._name!r} must be {polarity}."


class UbuntuConfigPattern(CheckableEnforceableRequirement):
    """Configuration-file key/value requirement.

    PASS when *key* in *path* equals *expected* (case-insensitive value
    comparison, matching how the STIG check text greps).
    """

    def __init__(self, host: SimulatedHost, path: str, key: str,
                 expected: str, metadata: Optional[FindingMetadata] = None):
        super().__init__(metadata)
        self.host = host
        self.path = path
        self.key = key
        self.expected = expected

    def check(self) -> CheckStatus:
        value = self.host.config.get(self.path, self.key)
        if value is None:
            return CheckStatus.FAIL
        if value.strip().lower() == self.expected.strip().lower():
            return CheckStatus.PASS
        return CheckStatus.FAIL

    def enforce(self) -> EnforcementStatus:
        self.host.config.set(self.path, self.key, self.expected)
        self.host.events.emit(
            "config.enforced", path=self.path, key=self.key,
            value=self.expected,
        )
        return EnforcementStatus.SUCCESS

    def __str__(self) -> str:
        return f"{self.path}: {self.key} must be {self.expected!r}."


class UbuntuServicePattern(CheckableEnforceableRequirement):
    """Unit-state requirement: a service must be enabled and active."""

    def __init__(self, host: SimulatedHost, name: str,
                 metadata: Optional[FindingMetadata] = None):
        super().__init__(metadata)
        self.host = host
        self.service_name = name

    def check(self) -> CheckStatus:
        services = self.host.services
        if not services.known(self.service_name):
            return CheckStatus.FAIL
        if services.is_enabled(self.service_name) and \
                services.is_active(self.service_name):
            return CheckStatus.PASS
        return CheckStatus.FAIL

    def enforce(self) -> EnforcementStatus:
        services = self.host.services
        if not services.known(self.service_name):
            services.register(self.service_name)
        try:
            if services.is_masked(self.service_name):
                services.unmask(self.service_name)
            services.enable(self.service_name)
            services.start(self.service_name)
        except Exception:
            return EnforcementStatus.FAILURE
        return EnforcementStatus.SUCCESS

    def __str__(self) -> str:
        return f"Service {self.service_name!r} must be enabled and active."


# -- concrete findings from D2.7 -----------------------------------------------

class V_219157(UbuntuPackagePattern):
    """Ubuntu must not have the NIS package installed.

    Removing the Network Information Service (NIS) package decreases the
    risk of the accidental (or intentional) activation of NIS or NIS+
    services.
    """

    def __init__(self, host: SimulatedHost):
        super().__init__(host, "nis", must_be_installed=False,
                         metadata=_ubuntu_metadata(
                             "V-219157", "medium", self.__doc__ or ""))


class V_219158(UbuntuPackagePattern):
    """Ubuntu must not have the rsh-server package installed.

    The rsh-server service provides an unencrypted remote access service
    that does not provide for the confidentiality and integrity of user
    passwords or the remote session and has very weak authentication.
    """

    def __init__(self, host: SimulatedHost):
        super().__init__(host, "rsh-server", must_be_installed=False,
                         metadata=_ubuntu_metadata(
                             "V-219158", "high", self.__doc__ or ""))


class V_219161(UbuntuPackagePattern):
    """Ubuntu must have SSH installed to provide controlled remote access.

    Remote access services which lack automated control capabilities
    increase risk; the operating system must be capable of taking
    enforcement action over remote sessions.
    """

    def __init__(self, host: SimulatedHost):
        super().__init__(host, "openssh-server", must_be_installed=True,
                         metadata=_ubuntu_metadata(
                             "V-219161", "medium", self.__doc__ or ""))


class V_219177(UbuntuConfigPattern):
    """Ubuntu must encrypt stored passwords with SHA512.

    Passwords need to be protected at all times, and encryption is the
    standard method for protecting passwords; unencrypted passwords can
    be plainly read and easily compromised.
    """

    def __init__(self, host: SimulatedHost):
        super().__init__(host, "/etc/login.defs", "ENCRYPT_METHOD", "SHA512",
                         metadata=_ubuntu_metadata(
                             "V-219177", "high", self.__doc__ or ""))


class V_219304(UbuntuPackagePattern):
    """Ubuntu must allow users to directly initiate a session lock.

    Rather than waiting for a timeout, users must be able to manually
    invoke a session lock (the ``vlock`` package) so they can secure
    their session when temporarily vacating the vicinity.
    """

    def __init__(self, host: SimulatedHost):
        super().__init__(host, "vlock", must_be_installed=True,
                         metadata=_ubuntu_metadata(
                             "V-219304", "medium", self.__doc__ or ""))


class V_219318(UbuntuPackagePattern):
    """Ubuntu must implement smart-card multifactor authentication for
    remote access to privileged accounts (libpam-pkcs11).

    An authentication device separate from the information system
    ensures a compromise of the system does not compromise stored
    credentials.
    """

    def __init__(self, host: SimulatedHost):
        super().__init__(host, "libpam-pkcs11", must_be_installed=True,
                         metadata=_ubuntu_metadata(
                             "V-219318", "medium", self.__doc__ or ""))


class V_219319(UbuntuPackagePattern):
    """Ubuntu must accept Personal Identity Verification (PIV)
    credentials (opensc-pkcs11).

    PIV credentials facilitate standardization and reduce the risk of
    unauthorized access; DoD mandates CAC use under HSPD-12.
    """

    def __init__(self, host: SimulatedHost):
        super().__init__(host, "opensc-pkcs11", must_be_installed=True,
                         metadata=_ubuntu_metadata(
                             "V-219319", "medium", self.__doc__ or ""))


class V_219343(UbuntuPackagePattern):
    """Ubuntu must verify correct operation of security functions (aide).

    Without verification of the security functions, security functions
    may not operate correctly and the failure may go unnoticed.
    """

    def __init__(self, host: SimulatedHost):
        super().__init__(host, "aide", must_be_installed=True,
                         metadata=_ubuntu_metadata(
                             "V-219343", "medium", self.__doc__ or ""))


#: The findings exactly as listed in D2.7 Annex 1.
D27_FINDINGS = (
    V_219157, V_219158, V_219161, V_219177,
    V_219304, V_219318, V_219319, V_219343,
)


# -- catalogue extensions (representative same-STIG findings) -------------------

class V_219155(UbuntuPackagePattern):
    """[extension] Ubuntu must not have the telnet daemon installed."""

    def __init__(self, host: SimulatedHost):
        super().__init__(host, "telnetd", must_be_installed=False,
                         metadata=_ubuntu_metadata(
                             "V-219155", "high", self.__doc__ or ""))


class V_219149(UbuntuPackagePattern):
    """[extension] Ubuntu must have the auditd package installed."""

    def __init__(self, host: SimulatedHost):
        super().__init__(host, "auditd", must_be_installed=True,
                         metadata=_ubuntu_metadata(
                             "V-219149", "medium", self.__doc__ or ""))


class V_219312(UbuntuConfigPattern):
    """[extension] sshd must not allow authentication with empty passwords."""

    def __init__(self, host: SimulatedHost):
        super().__init__(host, "/etc/ssh/sshd_config",
                         "PermitEmptyPasswords", "no",
                         metadata=_ubuntu_metadata(
                             "V-219312", "high", self.__doc__ or ""))


class V_219303(UbuntuConfigPattern):
    """[extension] sshd must terminate idle sessions within 600 seconds."""

    def __init__(self, host: SimulatedHost):
        super().__init__(host, "/etc/ssh/sshd_config",
                         "ClientAliveInterval", "600",
                         metadata=_ubuntu_metadata(
                             "V-219303", "medium", self.__doc__ or ""))


class V_219166(UbuntuServicePattern):
    """[extension] The ssh service must be enabled and active."""

    def __init__(self, host: SimulatedHost):
        super().__init__(host, "ssh",
                         metadata=_ubuntu_metadata(
                             "V-219166", "medium", self.__doc__ or ""))


class V_219150(UbuntuServicePattern):
    """[extension] The rsyslog service must be enabled and active."""

    def __init__(self, host: SimulatedHost):
        super().__init__(host, "rsyslog",
                         metadata=_ubuntu_metadata(
                             "V-219150", "medium", self.__doc__ or ""))


#: Extensions beyond the deliverable's explicit list.
EXTENSION_FINDINGS = (
    V_219155, V_219149, V_219312, V_219303, V_219166, V_219150,
)

ALL_UBUNTU_FINDINGS = D27_FINDINGS + EXTENSION_FINDINGS


def instantiate_all(host: SimulatedHost) -> List[CheckableEnforceableRequirement]:
    """Instantiate every bundled Ubuntu finding for *host* (the Annex 1
    ``Main`` example, as a function)."""
    return [cls(host) for cls in ALL_UBUNTU_FINDINGS]
