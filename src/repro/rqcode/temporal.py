"""RQCODE temporal patterns (D2.7 Annex 1, package ``rqcode.patterns.temporal``).

The Java catalogue implements temporal requirements as subclasses of a
``MonitoringLoop`` — "the monitoring service that periodically checks the
temporal properties".  The loop is structured as a Hoare-style annotated
loop: a *precondition* gating entry, an *invariant* checked every
iteration, an *exit condition*, a *postcondition* judged at exit, and a
*variant* bounding iteration count (``boundary``).

Each pattern also renders itself as a TCTL formula (``tctl()``), giving
the lightweight formalisation RQCODE promises: the same object is a
runtime monitor and a model-checker query.

The Python port replaces wall-clock sleeping with a deterministic *step
hook*: after each polling iteration the loop calls ``step()``, which the
caller uses to advance the simulated world (fire events, mutate the
host).  ``sleep_milliseconds()`` is retained as the declared polling
period, so the TCTL time bounds and the loop agree on the time unit:
**one iteration = one time unit**.
"""

from typing import Callable, Optional

from repro.ltl.formulas import (
    Atom,
    Eventually as LtlEventually,
    Formula,
    Globally as LtlGlobally,
    TRUE,
    WeakUntil,
    implies,
    lor,
)
from repro.rqcode.concepts import Checkable, CheckStatus

StepHook = Callable[[int], None]


def _noop_step(_iteration: int) -> None:
    """Default step hook: the world does not change between polls."""


class MonitoringLoop(Checkable):
    """Base polling monitor (Annex 1, class ``MonitoringLoop``).

    The :meth:`check` template method runs the annotated loop:

    1. If :meth:`precondition` is false the property is not triggered;
       the verdict is INCOMPLETE (nothing was observed either way).
    2. Each iteration, :meth:`invariant` must hold, otherwise FAIL.
    3. The loop leaves when :meth:`exit_condition` becomes true, and the
       verdict is PASS iff :meth:`postcondition` holds at that point.
    4. The loop is bounded by ``boundary`` iterations (the *variant*);
       exhausting it without exiting yields the subclass's
       :meth:`timeout_verdict`.

    Args:
        boundary: Maximum number of polling iterations (time bound T).
        step: Hook invoked after every iteration with the iteration
            index; used to advance the simulated environment.
        sleep_ms: Declared polling period, purely descriptive here.
    """

    def __init__(self, boundary: int = 100,
                 step: Optional[StepHook] = None,
                 sleep_ms: int = 1000):
        if boundary < 1:
            raise ValueError("boundary must be at least 1")
        self.boundary = boundary
        self._step = step or _noop_step
        self._sleep_ms = sleep_ms
        self.iterations_run = 0

    # -- template methods (Annex 1 operation set) ----------------------------

    def sleep_milliseconds(self) -> int:
        """Declared polling period in milliseconds."""
        return self._sleep_ms

    def variant(self, i: int) -> int:
        """Loop variant: strictly decreasing, loop must stop at <= 0."""
        return self.boundary - i

    def precondition(self) -> bool:
        """Gate: does the property apply right now?  Default: yes."""
        return True

    def invariant(self) -> bool:
        """Must hold on every polled state.  Default: trivially true."""
        return True

    def exit_condition(self) -> bool:
        """When true, polling stops and the postcondition is judged."""
        return False

    def postcondition(self) -> bool:
        """Judged when the loop exits via :meth:`exit_condition`."""
        return True

    def timeout_verdict(self) -> CheckStatus:
        """Verdict when ``boundary`` iterations elapse without exit.

        Universality-style patterns treat surviving the bound as PASS;
        eventuality-style patterns treat it as FAIL.  Default: PASS.
        """
        return CheckStatus.PASS

    def tctl(self) -> str:
        """The TCTL rendering of the monitored property."""
        return "true"

    def ltl(self) -> Formula:
        """The LTL rendering, for the event-driven monitoring ablation.

        Timed patterns render their untimed abstraction (LTL carries no
        bounds); atoms are the operands' names, so operands should be
        named with identifier-shaped strings when the formula will be
        parsed back or fed to a monitor.
        """
        return TRUE

    # -- the monitoring service ----------------------------------------------

    def check(self) -> CheckStatus:
        """Run the bounded polling loop and return the verdict."""
        self.iterations_run = 0
        if not self.precondition():
            return CheckStatus.INCOMPLETE
        for i in range(self.boundary):
            if not self.invariant():
                return CheckStatus.FAIL
            if self.exit_condition():
                return (CheckStatus.PASS if self.postcondition()
                        else CheckStatus.FAIL)
            self._step(i)
            self.iterations_run = i + 1
            if self.variant(i + 1) <= 0:
                break
        return self.timeout_verdict()

    def __str__(self) -> str:
        return self.tctl()


class GlobalUniversality(MonitoringLoop):
    """Globally, it is always the case that P holds (``A[] p``)."""

    def __init__(self, p: Checkable, **kwargs):
        super().__init__(**kwargs)
        self.p = p

    def invariant(self) -> bool:
        return self.p.holds()

    def tctl(self) -> str:
        return f"A[] ({self.p})"

    def ltl(self) -> Formula:
        return LtlGlobally(Atom(str(self.p)))

    def __str__(self) -> str:
        return f"Globally, it is always the case that ({self.p}) holds."


class Eventually(MonitoringLoop):
    """P always eventually holds (``A<> p``).

    The bounded monitor reports FAIL when P has not held within the
    boundary — the finite-trace reading of liveness.
    """

    def __init__(self, p: Checkable, **kwargs):
        super().__init__(**kwargs)
        self.p = p

    def exit_condition(self) -> bool:
        return self.p.holds()

    def postcondition(self) -> bool:
        return self.p.holds()

    def timeout_verdict(self) -> CheckStatus:
        return CheckStatus.FAIL

    def tctl(self) -> str:
        return f"A<> ({self.p})"

    def ltl(self) -> Formula:
        return LtlEventually(Atom(str(self.p)))

    def __str__(self) -> str:
        return f"({self.p}) always eventually holds."


class GlobalResponseTimed(MonitoringLoop):
    """Globally, whenever S holds, R holds within ``boundary`` time units.

    Annex 1: "Globally, it is always the case that if P holds, the S
    eventually holds within T time units" (constructor order: stimulus,
    response, boundary).  The monitor arms on the stimulus and then
    requires the response before the bound elapses.
    """

    def __init__(self, s: Checkable, r: Checkable, boundary: int, **kwargs):
        super().__init__(boundary=boundary, **kwargs)
        self.s = s
        self.r = r

    def precondition(self) -> bool:
        """The property is triggered only when the stimulus is observed."""
        return self.s.holds()

    def exit_condition(self) -> bool:
        return self.r.holds()

    def postcondition(self) -> bool:
        return self.r.holds()

    def timeout_verdict(self) -> CheckStatus:
        return CheckStatus.FAIL

    def tctl(self) -> str:
        return f"A[] (({self.s}) imply A<>[0,{self.boundary}] ({self.r}))"

    def ltl(self) -> Formula:
        return LtlGlobally(implies(Atom(str(self.s)),
                                   LtlEventually(Atom(str(self.r)))))

    def __str__(self) -> str:
        return (
            f"Globally, it is always the case that if ({self.s}) holds, "
            f"then ({self.r}) holds within {self.boundary} time units."
        )


class GlobalResponseUntil(MonitoringLoop):
    """Globally, if P holds then, unless R holds, Q will eventually hold."""

    def __init__(self, p: Checkable, q: Checkable, r: Checkable, **kwargs):
        super().__init__(**kwargs)
        self.p = p
        self.q = q
        self.r = r

    def precondition(self) -> bool:
        return self.p.holds()

    def exit_condition(self) -> bool:
        return self.q.holds() or self.r.holds()

    def postcondition(self) -> bool:
        """Exiting on either the response Q or the release R satisfies
        the obligation; R waives it."""
        return self.q.holds() or self.r.holds()

    def timeout_verdict(self) -> CheckStatus:
        return CheckStatus.FAIL

    def tctl(self) -> str:
        return (
            f"A[] (({self.p}) imply "
            f"A<> (({self.q}) or ({self.r})))"
        )

    def ltl(self) -> Formula:
        return LtlGlobally(implies(
            Atom(str(self.p)),
            LtlEventually(lor(Atom(str(self.q)), Atom(str(self.r))))))

    def __str__(self) -> str:
        return (
            f"Globally, it is always the case that if ({self.p}) holds "
            f"then, unless ({self.r}) holds, ({self.q}) will eventually hold."
        )


class GlobalUniversalityTimed(GlobalUniversality):
    """Timed universality: P must hold continuously for ``boundary`` units.

    Annex 1 phrases this as "if P held for T time units, then S holds";
    operationally the catalogue monitors P over a window of T units, and
    the verdict is the windowed universality of P.
    """

    def __init__(self, p: Checkable, boundary: int, **kwargs):
        super().__init__(p, boundary=boundary, **kwargs)

    def tctl(self) -> str:
        return f"A[][0,{self.boundary}] ({self.p})"

    def ltl(self) -> Formula:
        return LtlGlobally(Atom(str(self.p)))

    def __str__(self) -> str:
        return (
            f"Globally, ({self.p}) holds continuously for "
            f"{self.boundary} time units."
        )


class AfterUntilUniversality(MonitoringLoop):
    """After Q, it is always the case that P holds until R holds."""

    def __init__(self, q: Checkable, p: Checkable, r: Checkable, **kwargs):
        super().__init__(**kwargs)
        self.q = q
        self.p = p
        self.r = r

    def precondition(self) -> bool:
        """Scope opens only once Q has been observed."""
        return self.q.holds()

    def invariant(self) -> bool:
        """Within the scope, P must hold (unless R closes the scope,
        which the exit condition observes before the invariant can be
        violated on that state)."""
        return self.r.holds() or self.p.holds()

    def exit_condition(self) -> bool:
        return self.r.holds()

    def postcondition(self) -> bool:
        return True

    def tctl(self) -> str:
        return (
            f"A[] (({self.q}) imply "
            f"(({self.p}) W ({self.r})))"
        )

    def ltl(self) -> Formula:
        return LtlGlobally(implies(
            Atom(str(self.q)),
            WeakUntil(Atom(str(self.p)), Atom(str(self.r)))))

    def __str__(self) -> str:
        return (
            f"After ({self.q}), it is always the case that ({self.p}) "
            f"holds until ({self.r}) holds."
        )
