"""Win10 account-lockout STIG patterns and concrete findings.

These findings pin the host's :class:`~repro.environment.accounts.
LockoutPolicy`.  Because the simulated logon path *enforces* that
policy, the requirements here are behaviourally testable: enforce the
finding, replay a password-guessing attack, and the account locks —
the end-to-end story the account-management STIGs exist for.
"""

from abc import abstractmethod
from typing import Optional

from repro.environment.host import SimulatedHost
from repro.rqcode.concepts import (
    CheckableEnforceableRequirement,
    CheckStatus,
    EnforcementStatus,
    FindingMetadata,
)


class AccountPolicyRequirement(CheckableEnforceableRequirement):
    """Base for lockout-policy findings: read/write one policy knob."""

    def __init__(self, host: SimulatedHost,
                 metadata: Optional[FindingMetadata] = None):
        super().__init__(metadata)
        self.host = host

    @abstractmethod
    def current_value(self) -> int:
        """The knob's current value on the host."""

    @abstractmethod
    def compliant(self, value: int) -> bool:
        """Is *value* acceptable per the finding?"""

    @abstractmethod
    def apply(self) -> None:
        """Write the compliant value."""

    def check(self) -> CheckStatus:
        return (CheckStatus.PASS if self.compliant(self.current_value())
                else CheckStatus.FAIL)

    def enforce(self) -> EnforcementStatus:
        self.apply()
        self.host.events.emit(
            "account.policy_changed", finding=self.finding_id())
        return EnforcementStatus.SUCCESS


def _account_metadata(finding_id: str, version: str) -> FindingMetadata:
    return FindingMetadata(
        finding_id=finding_id,
        version=version,
        rule_id=f"SV-{finding_id.split('-')[-1]}r1_rule",
        severity="medium",
        stig="Windows 10 Security Technical Implementation Guide",
        date="2016-10-28",
    )


class V_63409(AccountPolicyRequirement):
    """The number of allowed bad logon attempts must be configured to
    3 or less (but not 0, which disables lockout)."""

    REQUIRED_THRESHOLD = 3

    def __init__(self, host: SimulatedHost):
        super().__init__(host, _account_metadata(
            "V-63409", "WN10-AC-000010"))

    def current_value(self) -> int:
        return self.host.accounts.policy.threshold

    def compliant(self, value: int) -> bool:
        return 1 <= value <= self.REQUIRED_THRESHOLD

    def apply(self) -> None:
        self.host.accounts.policy.threshold = self.REQUIRED_THRESHOLD


class V_63405(AccountPolicyRequirement):
    """The account lockout duration must be configured to 15 minutes
    or greater."""

    REQUIRED_MINUTES = 15

    def __init__(self, host: SimulatedHost):
        super().__init__(host, _account_metadata(
            "V-63405", "WN10-AC-000005"))

    def current_value(self) -> int:
        return self.host.accounts.policy.duration_minutes

    def compliant(self, value: int) -> bool:
        return value >= self.REQUIRED_MINUTES

    def apply(self) -> None:
        self.host.accounts.policy.duration_minutes = self.REQUIRED_MINUTES


ACCOUNT_FINDINGS = (V_63405, V_63409)
