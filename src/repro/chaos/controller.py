"""The chaos controller: deterministic fault decisions at every seam.

The controller is the single authority every instrumented seam asks
before failing: shard workers (crash / hang / session error), the
incident pipeline (repairs that raise or silently no-op), SOC ingress
(duplicated, reordered, delayed events), host config stores (slow
reads), and the tiered verification cache (stale shared-tier reads,
bucket-lock timeouts).  Each decision is a pure function of
``(plan.seed, site, key)`` where *key* identifies the subject by
stable content — host name, event time, strike count, attempt index —
never by call order.  Two runs of the same scenario under the same
plan therefore draw identical decisions regardless of thread
interleaving, which is what makes chaos runs replayable and the
invariant checker able to compare them byte-for-byte
(:meth:`ChaosController.decisions_digest`).

Injected failures are real exceptions (:class:`InjectedWorkerCrash`,
:class:`InjectedSessionError`, :class:`InjectedRepairError`) raised at
the same program points genuine failures would occur, so the hardening
they exercise — supervisor restarts, poison quarantine, breaker
escalation — is the production path, not a test double.
"""

import enum
import hashlib
import json
import threading
import time
from dataclasses import replace
from typing import Callable, Dict, List, Optional

from repro.chaos.plan import Campaign, FaultPlan
from repro.environment.events import Event


class WorkerFault(enum.Enum):
    """What the controller tells a shard worker to do with one event."""

    CRASH = "crash"
    HANG = "hang"
    SESSION_ERROR = "session-error"


class RepairFault(enum.Enum):
    """What the controller tells the pipeline about one repair attempt."""

    RAISE = "raise"
    NOOP = "noop"


class SchedFault(enum.Enum):
    """What the controller tells the work scheduler after a completion."""

    CRASH = "crash"
    CRASH_TORN = "crash-torn"   # crash AND tear the fresh journal tail


class InjectedWorkerCrash(RuntimeError):
    """Chaos killed a shard worker mid-dequeue."""


class InjectedSessionError(RuntimeError):
    """Chaos made a monitor session blow up on an event."""


class InjectedRepairError(RuntimeError):
    """Chaos made an enforcement attempt raise."""


#: Decision slot of each fault site inside its seam's 24-byte digest:
#: byte slice ``[8*slot, 8*slot + 8)`` is the site's uniform.  Sites of
#: one seam share a single hash per subject key, which matters because
#: the E14 bench's faulted runs pay for every draw and the fault-free
#: baseline pays for none.  The seam helpers (``worker_fault``,
#: ``repair_fault``, ``ingress_events``) inline these slices; keep
#: them in agreement with this table.
SITE_SLOTS = {
    "worker.crash": 0, "worker.hang": 1, "session.error": 2,
    "repair.raise": 0, "repair.noop": 1,
    "ingress.reorder": 0, "ingress.duplicate": 1, "ingress.delay": 2,
    "config.slow": 0,
    "sched.crash": 0, "sched.truncate": 1,
    "cache.stale_read": 0, "cache.lock_timeout": 1,
}


class ChaosController:
    """Draws every fault decision for one chaos run.

    Thread-safe: workers, emitters, and the reconcile sweep may all
    consult it concurrently.  The decision ledger records every *hit*
    (site, key) pair; since decisions are order-independent, the ledger
    of two identical runs is identical as a set, and
    :meth:`decisions_digest` hashes the sorted ledger into a single
    replay fingerprint.
    """

    def __init__(self, plan: FaultPlan,
                 sleeper: Callable[[float], None] = time.sleep):
        self.plan = plan
        self.sleeper = sleeper
        #: Bound by SocService at construction so chaos counters land
        #: in the same registry as the SOC's own.
        self.metrics = None
        #: Per-thread hit buffers, merged on read: recording a hit is a
        #: lock-free (GIL-atomic) list append on the hot path, and the
        #: merged ledger is a set — identical no matter how threads
        #: interleaved, which is all replay comparison needs.
        self._hit_local = threading.local()
        self._hit_buffers: List[list] = []
        self._site_counters: Dict[str, object] = {}
        self._lock = threading.Lock()
        self._stash: Dict[str, Event] = {}
        self._repair_attempts: Dict[str, int] = {}
        self._config_reads: Dict[str, int] = {}
        self._seed_prefix = f"{plan.seed}:".encode("utf-8")
        self._rates = {site: plan.rate(site) for site in SITE_SLOTS}

    # -- the decision primitive ---------------------------------------------

    def _digest(self, key: str) -> bytes:
        """The 24-byte decision digest for subject *key* — one hash
        serves every site of a seam via :data:`SITE_SLOTS` slices."""
        return hashlib.blake2b(self._seed_prefix + key.encode("utf-8"),
                               digest_size=24).digest()

    def decide(self, site: str, key: str,
               digest: Optional[bytes] = None) -> bool:
        """True when fault *site* fires for subject *key*.

        Pure in ``(plan.seed, site, key)``: the subject's digest is
        sliced at the site's fixed slot and read as a uniform in
        ``[0, 1)``, so the same ``(site, key)`` draws the same value no
        matter who asks, in what order, or whether the caller passed a
        precomputed *digest*.  A zero-rate site never draws.  Hits are
        recorded in the ledger and counted in the metrics registry as
        ``chaos.<site>``.
        """
        rate = self._rates.get(site)
        if rate is None:                 # unknown site: plan's error
            rate = self.plan.rate(site)
        if rate <= 0.0:
            return False
        if digest is None:
            digest = self._digest(key)
        slot = SITE_SLOTS[site]
        draw = int.from_bytes(digest[8 * slot:8 * slot + 8],
                              "big") / 2.0 ** 64
        hit = draw < rate
        if hit:
            self._record(site, key, draw)
        return hit

    def _record(self, site: str, key: str, draw: float) -> None:
        """Ledger + metrics for one hit (lock-free on the hot path)."""
        buffer = getattr(self._hit_local, "buffer", None)
        if buffer is None:
            buffer = []
            with self._lock:
                self._hit_buffers.append(buffer)
            self._hit_local.buffer = buffer
        buffer.append((site, key, draw))
        metrics = self.metrics
        if metrics is not None:
            counter = self._site_counters.get(site)
            if counter is None:
                # Racing creators get the same registry-owned counter
                # back, so the cache store is idempotent.
                counter = self._site_counters[site] = \
                    metrics.counter(f"chaos.{site}")
            counter.inc()

    # -- worker seam ----------------------------------------------------------

    def worker_fault(self, host_name: str, event: Event,
                     strikes: int) -> Optional[WorkerFault]:
        """Fault (if any) for one event delivery on a shard worker.

        Keyed by the event's stable identity plus its strike count, so
        a redelivered event draws a *fresh* decision — a crash loop
        terminates once a delivery draws clean (or the quarantine
        parks the event).
        """
        rates = self._rates
        crash = rates["worker.crash"]
        hang = rates["worker.hang"]
        error = rates["session.error"]
        if not (crash or hang or error):
            return None
        # Inlined decide(): this runs once per delivery at nonzero
        # rates, so the seam slices its digest directly (slots per
        # SITE_SLOTS) instead of paying three calls' worth of lookups.
        key = f"{host_name}:{event.time}:{strikes}"
        digest = self._digest(key)
        if crash:
            draw = int.from_bytes(digest[0:8], "big") / 2.0 ** 64
            if draw < crash:
                self._record("worker.crash", key, draw)
                return WorkerFault.CRASH
        if hang:
            draw = int.from_bytes(digest[8:16], "big") / 2.0 ** 64
            if draw < hang:
                self._record("worker.hang", key, draw)
                return WorkerFault.HANG
        if error:
            draw = int.from_bytes(digest[16:24], "big") / 2.0 ** 64
            if draw < error:
                self._record("session.error", key, draw)
                return WorkerFault.SESSION_ERROR
        return None

    def hang(self) -> None:
        """Serve one injected hang (the worker calls this inline).

        A zero-length hang skips the sleep entirely: even ``sleep(0)``
        surrenders the GIL and costs a reacquisition wait, which would
        bill pure scheduler noise to the benchmark's fault ledger.
        """
        if self.plan.hang_seconds > 0:
            self.sleeper(self.plan.hang_seconds)

    # -- repair seam ----------------------------------------------------------

    def repair_fault(self, host_name: str,
                     finding_id: str) -> Optional[RepairFault]:
        """Fault (if any) for the next enforcement attempt.

        Attempts are numbered per ``(host, finding)``; per-host repair
        serialization makes the numbering deterministic.
        """
        rates = self._rates
        raise_rate = rates["repair.raise"]
        noop_rate = rates["repair.noop"]
        if not (raise_rate or noop_rate):
            return None
        with self._lock:
            counter_key = f"{host_name}:{finding_id}"
            attempt = self._repair_attempts.get(counter_key, 0)
            self._repair_attempts[counter_key] = attempt + 1
        key = f"{host_name}:{finding_id}:{attempt}"
        digest = self._digest(key)
        if raise_rate:
            draw = int.from_bytes(digest[0:8], "big") / 2.0 ** 64
            if draw < raise_rate:
                self._record("repair.raise", key, draw)
                return RepairFault.RAISE
        if noop_rate:
            draw = int.from_bytes(digest[8:16], "big") / 2.0 ** 64
            if draw < noop_rate:
                self._record("repair.noop", key, draw)
                return RepairFault.NOOP
        return None

    # -- scheduler seam -------------------------------------------------------

    def sched_fault(self, key: str) -> Optional[SchedFault]:
        """Fault (if any) right after one journaled task completion.

        The scheduler keys this by ``generation:task`` — generation
        being the resume count — so a resumed run draws *fresh*
        decisions instead of deterministically re-crashing at the same
        completion forever; each resume makes at least one fresh
        completion before its first draw, so chaos'd runs always
        terminate.  ``sched.truncate`` is drawn only given a crash: it
        decides whether the freshly journaled tail is also torn
        mid-line (fsync issued, blocks never landed).
        """
        rates = self._rates
        crash = rates["sched.crash"]
        torn = rates["sched.truncate"]
        if not crash:
            return None
        full_key = f"sched:{key}"
        digest = self._digest(full_key)
        draw = int.from_bytes(digest[0:8], "big") / 2.0 ** 64
        if draw >= crash:
            return None
        self._record("sched.crash", full_key, draw)
        if torn:
            torn_draw = int.from_bytes(digest[8:16], "big") / 2.0 ** 64
            if torn_draw < torn:
                self._record("sched.truncate", full_key, torn_draw)
                return SchedFault.CRASH_TORN
        return SchedFault.CRASH

    # -- ingress seam ---------------------------------------------------------

    def ingress_events(self, host_name: str, event: Event) -> List[Event]:
        """The events to actually enqueue for one emitted event.

        May duplicate the event, stash it to swap with its successor
        (reordering), or return it unchanged; an independent decision
        may also stall the emitter ``delay_seconds`` (latency, not
        loss).  Stashes must be flushed via :meth:`flush_stash` before
        a drain barrier, or the invariant checker will flag the loss.
        """
        rates = self._rates
        reorder = rates["ingress.reorder"]
        duplicate = rates["ingress.duplicate"]
        delay = rates["ingress.delay"]
        if not (reorder or duplicate or delay):
            return [event]               # stash stays empty at rate 0
        key = f"{host_name}:{event.time}"
        digest = self._digest(key)
        ordered: List[Event] = []
        stashed = None
        if self._stash:
            # Unlocked emptiness peek is sound: a host's events are
            # emitted by one thread, so its own stash entry can only
            # have been planted by this thread's previous call.
            with self._lock:
                stashed = self._stash.pop(host_name, None)
        if stashed is not None:
            # The successor overtakes the stashed event: an adjacent swap.
            ordered.append(event)
            ordered.append(stashed)
        else:
            held = False
            if reorder:
                draw = int.from_bytes(digest[0:8], "big") / 2.0 ** 64
                if draw < reorder:
                    self._record("ingress.reorder", key, draw)
                    with self._lock:
                        self._stash[host_name] = event
                    held = True
            if not held:
                ordered.append(event)
        expanded: List[Event] = []
        for item in ordered:
            expanded.append(item)
            if not duplicate:
                continue
            if item.time == event.time:
                item_key, item_digest = key, digest
            else:
                item_key = f"{host_name}:{item.time}"
                item_digest = self._digest(item_key)
            draw = int.from_bytes(item_digest[8:16], "big") / 2.0 ** 64
            if draw < duplicate:
                self._record("ingress.duplicate", item_key, draw)
                expanded.append(item)
        if delay:
            draw = int.from_bytes(digest[16:24], "big") / 2.0 ** 64
            if draw < delay:
                self._record("ingress.delay", key, draw)
                if self.plan.delay_seconds > 0:
                    self.sleeper(self.plan.delay_seconds)
        return expanded

    def flush_stash(self, host_name: str) -> List[Event]:
        """Release any event held back for reordering on *host_name*."""
        with self._lock:
            stashed = self._stash.pop(host_name, None)
        return [stashed] if stashed is not None else []

    def pending_stash(self) -> int:
        with self._lock:
            return len(self._stash)

    # -- config seam ----------------------------------------------------------

    def config_read_hook(self, host_name: str) -> Callable[[str, str], None]:
        """A :class:`ConfigFileStore` read hook that injects slow reads.

        Reads are numbered per host (repairs touching the config store
        are serialized per host, so the numbering is deterministic).
        """

        def hook(path: str, key: str) -> None:
            with self._lock:
                index = self._config_reads.get(host_name, 0)
                self._config_reads[host_name] = index + 1
            if self.decide("config.slow", f"{host_name}:{index}") \
                    and self.plan.config_delay_seconds > 0:
                self.sleeper(self.plan.config_delay_seconds)

        return hook

    # -- replay fingerprint ---------------------------------------------------

    def decisions(self) -> Dict[str, str]:
        """Every fault that fired: ``"site|key" -> draw``, sorted.

        Merges the per-thread hit buffers into one deduplicated map
        (the same ``(site, key)`` may legitimately be decided more than
        once; it always draws the same value)."""
        with self._lock:
            buffers = list(self._hit_buffers)
        merged: Dict[str, str] = {}
        for buffer in buffers:
            for site, key, draw in list(buffer):
                merged[f"{site}|{key}"] = f"{draw:.12f}"
        return dict(sorted(merged.items()))

    def decisions_digest(self) -> str:
        """SHA-256 over the sorted decision ledger — the replay
        fingerprint two identical runs must share byte-for-byte."""
        payload = json.dumps(self.decisions(), sort_keys=True,
                             separators=(",", ":")).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()

    def injection_count(self) -> int:
        return len(self.decisions())


class CampaignController(ChaosController):
    """A chaos controller that walks a :class:`Campaign` stage by stage.

    The decision scheme is exactly the base controller's — every draw
    is a pure function of ``(campaign.seed, site, key)`` — but the
    *rates* (and targeting) in force come from the active stage's
    plan.  Because subject keys are globally unique across a run (host
    event clocks and attempt counters are monotonic), swapping rates
    at stage boundaries never re-draws a key, so the merged decision
    ledger — and therefore :meth:`decisions_digest` — replays
    byte-identically from the serialized campaign.

    Stage transitions are the harness's job (:func:`~repro.chaos.
    harness.run_campaign`): it calls :meth:`stage_should_extend` after
    each drained round (the extension is itself a seeded decision,
    recorded in the ledger as ``campaign.extend``) and
    :meth:`advance_stage` between stages.  Both must be called while
    the service is drained — the rate swap is not synchronized against
    in-flight workers, the drain barrier is the synchronization.
    """

    def __init__(self, campaign: Campaign,
                 sleeper: Callable[[float], None] = time.sleep):
        super().__init__(campaign.stage_plan(0), sleeper=sleeper)
        self.campaign = campaign
        self._stage_index = 0
        self._targets = frozenset(campaign.stages[0].target_hosts)
        #: Cumulative decision snapshots, one per completed stage.
        self._stage_marks: List[Dict[str, str]] = []

    # -- stage state ----------------------------------------------------------

    @property
    def stage(self):
        return self.campaign.stages[self._stage_index]

    @property
    def stage_index(self) -> int:
        return self._stage_index

    def targets_host(self, host_name: str) -> bool:
        """Does the active stage inject faults on *host_name*?"""
        return not self._targets or host_name in self._targets

    def stage_should_extend(self, rounds_in_stage: int) -> bool:
        """Keep the active stage for another round? (seeded decision)

        True unconditionally below the stage's mandatory ``rounds``;
        beyond them, an extension is drawn per round through the
        decision digest (recorded as ``campaign.extend``) until
        ``max_extra_rounds`` is exhausted.
        """
        stage = self.stage
        if rounds_in_stage < stage.rounds:
            return True
        extra = rounds_in_stage - stage.rounds
        if extra >= stage.max_extra_rounds or stage.extend_rate <= 0.0:
            return False
        key = (f"campaign:{self.campaign.name}:{stage.name}"
               f":{rounds_in_stage}")
        digest = self._digest(key)
        draw = int.from_bytes(digest[0:8], "big") / 2.0 ** 64
        if draw < stage.extend_rate:
            self._record("campaign.extend", key, draw)
            return True
        return False

    def advance_stage(self) -> bool:
        """Seal the active stage and arm the next one.

        Snapshots the cumulative decision ledger (the boundary
        :meth:`stage_decisions` diffs per-stage slices from), then
        swaps the rate table and target set to the next stage.
        Returns False when the sealed stage was the last one.  Call
        only at a drain barrier.
        """
        self._stage_marks.append(self.decisions())
        if self._stage_index + 1 >= len(self.campaign.stages):
            return False
        self._stage_index += 1
        stage = self.campaign.stages[self._stage_index]
        plan = replace(stage.plan, seed=self.campaign.seed)
        self.plan = plan
        self._rates = {site: plan.rate(site) for site in SITE_SLOTS}
        self._targets = frozenset(stage.target_hosts)
        return True

    def stage_decisions(self) -> List[Dict[str, str]]:
        """Per-stage slices of the decision ledger, in stage order."""
        slices: List[Dict[str, str]] = []
        previous: Dict[str, str] = {}
        for mark in self._stage_marks:
            slices.append({key: value for key, value in mark.items()
                           if key not in previous})
            previous = mark
        return slices

    # -- targeted seams -------------------------------------------------------

    def worker_fault(self, host_name: str, event: Event,
                     strikes: int) -> Optional[WorkerFault]:
        if not self.targets_host(host_name):
            return None
        return super().worker_fault(host_name, event, strikes)

    def repair_fault(self, host_name: str,
                     finding_id: str) -> Optional[RepairFault]:
        if not self.targets_host(host_name):
            return None
        return super().repair_fault(host_name, finding_id)

    def ingress_events(self, host_name: str, event: Event) -> List[Event]:
        if not self.targets_host(host_name):
            # Any event stashed while the host *was* targeted still
            # flushes ahead of its successor (adjacent-swap contract).
            flushed = self.flush_stash(host_name)
            return [event] if not flushed else [event] + flushed
        return super().ingress_events(host_name, event)

    def config_read_hook(self, host_name: str) -> Callable[[str, str], None]:
        base = super().config_read_hook(host_name)

        def hook(path: str, key: str) -> None:
            if self.targets_host(host_name):
                base(path, key)
            else:
                # Keep the per-host read numbering continuous so a
                # later targeted stage draws the same decisions no
                # matter how many untargeted reads preceded it.
                with self._lock:
                    self._config_reads[host_name] = \
                        self._config_reads.get(host_name, 0) + 1

        return hook
