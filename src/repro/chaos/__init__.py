"""Chaos plane: deterministic fault injection for the SOC runtime.

Seeded, replayable fault injection at every SOC seam (workers, repairs,
ingress, config reads), plus the invariant checker and scenario harness
that turn chaos runs into conservation-law tests.  See
:mod:`repro.chaos.plan` for how determinism is achieved.  Multi-stage
attack *campaigns* — stage-scoped fault plans with CAPEC annotations
and target hosts — compile onto the same machinery
(:class:`Campaign` / :class:`CampaignController` / :func:`run_campaign`)
and replay byte-identically from their serialized form.
"""

from repro.chaos.controller import (
    CampaignController,
    ChaosController,
    InjectedRepairError,
    InjectedSessionError,
    InjectedWorkerCrash,
    RepairFault,
    WorkerFault,
)
from repro.chaos.harness import (
    CampaignRunResult,
    ChaosRunResult,
    build_chaos_fleet,
    inject_storm,
    run_campaign,
    run_chaos_scenario,
)
from repro.chaos.invariants import (
    CampaignInvariantChecker,
    InvariantChecker,
    InvariantReport,
    InvariantViolation,
    StageWindow,
    check_campaign,
    check_invariants,
)
from repro.chaos.plan import (
    RATE_FIELDS,
    Campaign,
    CampaignError,
    CampaignStage,
    FaultPlan,
    FaultPlanError,
)

__all__ = [
    "Campaign",
    "CampaignController",
    "CampaignError",
    "CampaignInvariantChecker",
    "CampaignRunResult",
    "CampaignStage",
    "ChaosController",
    "ChaosRunResult",
    "FaultPlan",
    "FaultPlanError",
    "InjectedRepairError",
    "InjectedSessionError",
    "InjectedWorkerCrash",
    "InvariantChecker",
    "InvariantReport",
    "InvariantViolation",
    "RATE_FIELDS",
    "RepairFault",
    "StageWindow",
    "WorkerFault",
    "build_chaos_fleet",
    "check_campaign",
    "check_invariants",
    "inject_storm",
    "run_campaign",
    "run_chaos_scenario",
]
