"""Chaos plane: deterministic fault injection for the SOC runtime.

Seeded, replayable fault injection at every SOC seam (workers, repairs,
ingress, config reads), plus the invariant checker and scenario harness
that turn chaos runs into conservation-law tests.  See
:mod:`repro.chaos.plan` for how determinism is achieved.
"""

from repro.chaos.controller import (
    ChaosController,
    InjectedRepairError,
    InjectedSessionError,
    InjectedWorkerCrash,
    RepairFault,
    WorkerFault,
)
from repro.chaos.harness import (
    ChaosRunResult,
    build_chaos_fleet,
    inject_storm,
    run_chaos_scenario,
)
from repro.chaos.invariants import (
    InvariantChecker,
    InvariantReport,
    InvariantViolation,
    check_invariants,
)
from repro.chaos.plan import RATE_FIELDS, FaultPlan, FaultPlanError

__all__ = [
    "ChaosController",
    "ChaosRunResult",
    "FaultPlan",
    "FaultPlanError",
    "InjectedRepairError",
    "InjectedSessionError",
    "InjectedWorkerCrash",
    "InvariantChecker",
    "InvariantReport",
    "InvariantViolation",
    "RATE_FIELDS",
    "RepairFault",
    "WorkerFault",
    "build_chaos_fleet",
    "check_invariants",
    "inject_storm",
    "run_chaos_scenario",
]
