"""Fault plans: serialized, seeded descriptions of a chaos run.

A :class:`FaultPlan` is the *entire* specification of a chaos
experiment: which fault sites fire, at what rate, with what knobs
(hang lengths, quarantine thresholds, queue overrides) — plus the seed
every probabilistic decision derives from.  The
:class:`~repro.chaos.controller.ChaosController` draws each decision
from ``Random(f"{seed}:{site}:{key}")`` where *key* is a stable
identity of the fault site's subject (host name + event time + strike
count, never call order), so a chaos run replays byte-identically from
its serialized plan no matter how threads interleave.

Plans round-trip through :meth:`to_json` / :meth:`from_json`;
malformed documents are rejected with errors naming the offending
field, which is what the CLI's ``--chaos-plan`` leans on.
"""

import json
import random
from dataclasses import asdict, dataclass, fields, replace
from typing import Any, Dict, Optional, Tuple


class FaultPlanError(ValueError):
    """A fault-plan document failed validation."""


class CampaignError(FaultPlanError):
    """A campaign document failed validation."""


#: Fault-site name -> FaultPlan rate field.  The controller consults
#: this table; anything not listed here is not a fault site.
RATE_FIELDS = {
    "worker.crash": "worker_crash",
    "worker.hang": "worker_hang",
    "session.error": "session_error",
    "repair.raise": "repair_raise",
    "repair.noop": "repair_noop",
    "ingress.duplicate": "event_duplicate",
    "ingress.reorder": "event_reorder",
    "ingress.delay": "event_delay",
    "config.slow": "config_slow",
    # Scheduler and cache sites are appended last and excluded from
    # :meth:`FaultPlan.randomized`, so pre-existing randomized plans
    # keep drawing byte-identical rates.
    "sched.crash": "sched_crash",
    "sched.truncate": "sched_truncate",
    "cache.stale_read": "cache_stale_read",
    "cache.lock_timeout": "cache_lock_timeout",
}


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of every fault a chaos run may inject.

    Rates are per-decision probabilities in ``[0, 1]``:

    * ``worker_crash`` — the shard worker dies before processing an
      event (the event and the rest of its batch are requeued; the
      supervisor restarts the worker);
    * ``worker_hang`` — the worker stalls ``hang_seconds`` before
      processing an event (deposable via ``hang_timeout``);
    * ``session_error`` — progressing the event through the monitor
      session raises (the poison-quarantine path);
    * ``repair_raise`` — an enforcement attempt raises instead of
      repairing (escalates through the circuit breaker);
    * ``repair_noop`` — an enforcement attempt silently does nothing
      (the re-check fails, burning a retry);
    * ``event_duplicate`` / ``event_reorder`` / ``event_delay`` —
      ingress stream perturbations (dup, adjacent swap, latency);
    * ``config_slow`` — host config reads stall
      ``config_delay_seconds``;
    * ``sched_crash`` — the work scheduler dies immediately after
      journaling an effective task completion (resume from the
      journal); ``sched_truncate`` — given a crash, the probability
      the journal's freshly written tail is torn mid-line too;
    * ``cache_stale_read`` — a shared-tier verification-cache read
      misses an entry that is actually present (one redundant
      recompute, never a wrong verdict); ``cache_lock_timeout`` — a
      cache bucket flush times out on its advisory lock (the write
      stays pending and is retried on the next save).
    """

    seed: int = 0
    worker_crash: float = 0.0
    worker_hang: float = 0.0
    session_error: float = 0.0
    repair_raise: float = 0.0
    repair_noop: float = 0.0
    event_duplicate: float = 0.0
    event_reorder: float = 0.0
    event_delay: float = 0.0
    config_slow: float = 0.0
    sched_crash: float = 0.0
    sched_truncate: float = 0.0
    cache_stale_read: float = 0.0
    cache_lock_timeout: float = 0.0
    hang_seconds: float = 0.001
    delay_seconds: float = 0.0005
    config_delay_seconds: float = 0.0005
    max_deliveries: int = 3
    dead_letter_capacity: int = 64
    queue_capacity: Optional[int] = None
    hang_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        for name in RATE_FIELDS.values():
            value = getattr(self, name)
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool):
                raise FaultPlanError(f"{name} must be a number, "
                                     f"got {value!r}")
            if not 0.0 <= value <= 1.0:
                raise FaultPlanError(
                    f"{name} must be a rate in [0, 1], got {value!r}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise FaultPlanError(f"seed must be an int, got {self.seed!r}")
        for name in ("hang_seconds", "delay_seconds",
                     "config_delay_seconds"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool) or value < 0:
                raise FaultPlanError(
                    f"{name} must be a non-negative number, got {value!r}")
        for name in ("max_deliveries", "dead_letter_capacity"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 1:
                raise FaultPlanError(
                    f"{name} must be an int >= 1, got {value!r}")
        if self.queue_capacity is not None and (
                not isinstance(self.queue_capacity, int)
                or isinstance(self.queue_capacity, bool)
                or self.queue_capacity < 1):
            raise FaultPlanError(
                f"queue_capacity must be an int >= 1 or null, "
                f"got {self.queue_capacity!r}")
        if self.hang_timeout is not None and (
                not isinstance(self.hang_timeout, (int, float))
                or isinstance(self.hang_timeout, bool)
                or self.hang_timeout <= 0):
            raise FaultPlanError(
                f"hang_timeout must be a positive number or null, "
                f"got {self.hang_timeout!r}")

    # -- derived views ------------------------------------------------------

    def rate(self, site: str) -> float:
        """The rate configured for fault *site* (raises on unknown)."""
        try:
            return getattr(self, RATE_FIELDS[site])
        except KeyError:
            raise FaultPlanError(f"unknown fault site: {site!r}")

    @property
    def active_sites(self) -> Dict[str, float]:
        """Sites with a non-zero rate (what this plan can inject)."""
        return {site: getattr(self, field_name)
                for site, field_name in sorted(RATE_FIELDS.items())
                if getattr(self, field_name) > 0.0}

    @property
    def quiet(self) -> bool:
        """True when the plan injects nothing (all rates zero)."""
        return not self.active_sites

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(document, dict):
            raise FaultPlanError(
                f"fault plan must be a JSON object, "
                f"got {type(document).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(document) - known)
        if unknown:
            raise FaultPlanError(
                f"unknown fault plan field(s): {', '.join(unknown)}; "
                f"known fields: {', '.join(sorted(known))}")
        return cls(**document)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}")
        return cls.from_dict(document)

    # -- randomized plans ---------------------------------------------------

    @classmethod
    def randomized(cls, seed: int, max_rate: float = 0.2) -> "FaultPlan":
        """A randomized-but-reproducible plan for property harnesses.

        Every rate is drawn from ``[0, max_rate]`` with roughly half
        the sites switched off entirely, so the invariant suite sweeps
        both sparse and dense fault mixes.  The draw itself is a pure
        function of *seed*.
        """
        rng = random.Random(f"fault-plan:{seed}")
        rates = {
            field_name: (round(rng.uniform(0.0, max_rate), 4)
                         if rng.random() < 0.5 else 0.0)
            # Scheduler and cache sites are deliberately left out (and
            # so stay 0.0): they target other planes than the SOC this
            # harness sweeps, and skipping them keeps the rng draw
            # sequence — hence every historical randomized plan —
            # byte-identical.
            for site, field_name in RATE_FIELDS.items()
            if not site.startswith(("sched.", "cache."))
        }
        return cls(
            seed=seed,
            max_deliveries=rng.choice((2, 3, 4)),
            dead_letter_capacity=rng.choice((8, 16, 64)),
            queue_capacity=rng.choice((None, None, 32, 128)),
            **rates,
        )

    def describe(self) -> str:
        """One-line human summary (CLI banner, test ids)."""
        active = self.active_sites
        if not active:
            return f"quiet plan (seed {self.seed})"
        parts = ", ".join(f"{site}={rate:g}"
                          for site, rate in active.items())
        return f"seed {self.seed}: {parts}"


# -- campaigns: staged fault plans ------------------------------------------


@dataclass(frozen=True)
class CampaignStage:
    """One stage of a multi-stage attack campaign.

    A stage is a :class:`FaultPlan` scoped to a phase of the attack
    (its rates and knobs apply only while the stage is active), plus
    the campaign-level structure the bare plan has no words for: which
    CAPEC patterns the fault mix stands in for, which hosts the stage
    targets (empty tuple = the whole fleet), and how many drift rounds
    the stage spans.  ``extend_rate`` lets a stage run up to
    ``max_extra_rounds`` longer: the extension is drawn through the
    controller's seeded-decision scheme, so stage lengths vary by
    campaign seed yet replay byte-identically.

    The stage plan's own ``seed`` is ignored — every decision in a
    campaign derives from the campaign seed (one seed, one replay
    fingerprint).
    """

    name: str
    plan: FaultPlan
    capec_ids: Tuple[str, ...] = ()
    target_hosts: Tuple[str, ...] = ()
    rounds: int = 1
    extend_rate: float = 0.0
    max_extra_rounds: int = 0

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise CampaignError(
                f"stage name must be a non-empty string, "
                f"got {self.name!r}")
        if not isinstance(self.plan, FaultPlan):
            raise CampaignError(
                f"stage {self.name!r}: plan must be a FaultPlan, "
                f"got {type(self.plan).__name__}")
        for field_name in ("capec_ids", "target_hosts"):
            value = getattr(self, field_name)
            if not isinstance(value, tuple) \
                    or not all(isinstance(item, str) for item in value):
                raise CampaignError(
                    f"stage {self.name!r}: {field_name} must be a "
                    f"tuple of strings, got {value!r}")
        if not isinstance(self.rounds, int) \
                or isinstance(self.rounds, bool) or self.rounds < 1:
            raise CampaignError(
                f"stage {self.name!r}: rounds must be an int >= 1, "
                f"got {self.rounds!r}")
        if not isinstance(self.extend_rate, (int, float)) \
                or isinstance(self.extend_rate, bool) \
                or not 0.0 <= self.extend_rate <= 1.0:
            raise CampaignError(
                f"stage {self.name!r}: extend_rate must be a rate in "
                f"[0, 1], got {self.extend_rate!r}")
        if not isinstance(self.max_extra_rounds, int) \
                or isinstance(self.max_extra_rounds, bool) \
                or self.max_extra_rounds < 0:
            raise CampaignError(
                f"stage {self.name!r}: max_extra_rounds must be an "
                f"int >= 0, got {self.max_extra_rounds!r}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "plan": self.plan.to_dict(),
            "capec_ids": list(self.capec_ids),
            "target_hosts": list(self.target_hosts),
            "rounds": self.rounds,
            "extend_rate": self.extend_rate,
            "max_extra_rounds": self.max_extra_rounds,
        }

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "CampaignStage":
        if not isinstance(document, dict):
            raise CampaignError(
                f"campaign stage must be a JSON object, "
                f"got {type(document).__name__}")
        known = {"name", "plan", "capec_ids", "target_hosts",
                 "rounds", "extend_rate", "max_extra_rounds"}
        unknown = sorted(set(document) - known)
        if unknown:
            raise CampaignError(
                f"unknown campaign stage field(s): "
                f"{', '.join(unknown)}; known: {', '.join(sorted(known))}")
        payload = dict(document)
        plan = payload.get("plan")
        payload["plan"] = (plan if isinstance(plan, FaultPlan)
                           else FaultPlan.from_dict(plan or {}))
        for field_name in ("capec_ids", "target_hosts"):
            if field_name in payload:
                value = payload[field_name]
                if not isinstance(value, (list, tuple)):
                    raise CampaignError(
                        f"{field_name} must be a list, got {value!r}")
                payload[field_name] = tuple(value)
        return cls(**payload)


@dataclass(frozen=True)
class Campaign:
    """A seeded, serialized multi-stage attack campaign.

    Layered on :class:`FaultPlan` the way a plan is layered on the
    controller: the campaign is the *entire* specification of a staged
    chaos run — stage order, per-stage fault plans, targets, spans —
    plus the one seed every decision (fault draws *and* stage-length
    extensions) derives from.  Round-trips through JSON so a run can
    be replayed byte-identically from its serialized form
    (:class:`~repro.chaos.controller.CampaignController` is the
    executor).
    """

    name: str
    seed: int
    stages: Tuple[CampaignStage, ...]

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise CampaignError(
                f"campaign name must be a non-empty string, "
                f"got {self.name!r}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise CampaignError(
                f"campaign seed must be an int, got {self.seed!r}")
        if not isinstance(self.stages, tuple) or not self.stages \
                or not all(isinstance(stage, CampaignStage)
                           for stage in self.stages):
            raise CampaignError(
                "campaign stages must be a non-empty tuple of "
                "CampaignStage")
        seen: Dict[str, int] = {}
        for stage in self.stages:
            if stage.name in seen:
                raise CampaignError(
                    f"duplicate stage name {stage.name!r}")
            seen[stage.name] = 1

    def stage_plan(self, index: int) -> FaultPlan:
        """Stage *index*'s plan with the campaign seed folded in."""
        return replace(self.stages[index].plan, seed=self.seed)

    @property
    def total_min_rounds(self) -> int:
        return sum(stage.rounds for stage in self.stages)

    def describe(self) -> str:
        stages = " -> ".join(
            f"{stage.name}({stage.rounds}r"
            + (f"+{stage.max_extra_rounds}?" if stage.max_extra_rounds
               else "") + ")"
            for stage in self.stages)
        return f"campaign {self.name!r} seed {self.seed}: {stages}"

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "seed": self.seed,
                "stages": [stage.to_dict() for stage in self.stages]}

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "Campaign":
        if not isinstance(document, dict):
            raise CampaignError(
                f"campaign must be a JSON object, "
                f"got {type(document).__name__}")
        known = {"name", "seed", "stages"}
        unknown = sorted(set(document) - known)
        if unknown:
            raise CampaignError(
                f"unknown campaign field(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}")
        stages = document.get("stages")
        if not isinstance(stages, (list, tuple)):
            raise CampaignError(
                f"campaign stages must be a list, got {stages!r}")
        return cls(
            name=document.get("name", ""),
            seed=document.get("seed", 0),
            stages=tuple(
                stage if isinstance(stage, CampaignStage)
                else CampaignStage.from_dict(stage)
                for stage in stages),
        )

    @classmethod
    def from_json(cls, text: str) -> "Campaign":
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CampaignError(f"campaign is not valid JSON: {exc}")
        return cls.from_dict(document)
