"""The chaos harness: one reusable seeded scenario runner.

Tests, the E14 benchmark, and the CLI all need the same thing — "drive
a fleet drift storm through the SOC runtime with this fault plan, then
tell me what happened" — so the harness owns that shape once:

1. build a fleet of hardened hosts,
2. arm the SOC with a :class:`ChaosController` drawing from *plan*,
3. inject a deterministic noise-wrapped drift storm (drained between
   rounds so a host is never re-drifted mid-repair),
4. stop, run the reconcile sweep (the degradation ladder's last rung),
5. audit posture and check the conservation invariants.

Everything observable about the run comes back in a
:class:`ChaosRunResult`: the decision ledger digest (the replay
fingerprint), throughput figures, reconcile repairs, the invariant
report, and the final fleet posture.  Two calls with an identical plan
and scenario must agree on the digest byte-for-byte — that property is
itself under test.
"""

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.chaos.controller import CampaignController, ChaosController
from repro.chaos.invariants import (
    CampaignInvariantChecker,
    InvariantChecker,
    InvariantReport,
    StageWindow,
)
from repro.chaos.plan import Campaign, FaultPlan
from repro.core.fleet import Fleet
from repro.environment import hardened_ubuntu_host
from repro.rqcode import default_catalog
from repro.soc.service import SocService

#: Packages cycled through the drift storm (all STIG-prohibited).
DRIFT_PACKAGES = ("nis", "rsh-server", "telnetd")


@dataclass
class ChaosRunResult:
    """Everything observable about one chaos scenario run."""

    plan: FaultPlan
    service: SocService
    fleet: Fleet
    drifts: int                       # drift injections performed
    events_emitted: int               # scenario events (noise + drift)
    storm_seconds: float              # emission through drain barrier
    reconcile_repairs: int
    injections: int                   # faults that actually fired
    decisions: Dict[str, str] = field(default_factory=dict)
    digest: str = ""
    invariants: Optional[InvariantReport] = None
    posture_ratio: float = 0.0        # worst-host compliance after run

    @property
    def events_per_second(self) -> float:
        if self.storm_seconds <= 0:
            return 0.0
        return self.events_emitted / self.storm_seconds

    @property
    def fully_repaired(self) -> bool:
        """100% eventual repair coverage: every host fully compliant."""
        return self.posture_ratio >= 1.0

    def signature(self) -> List[tuple]:
        """Order-stable incident fingerprint for replay comparison."""
        return sorted(
            (incident.req_id, incident.detected_at,
             incident.trigger_kind,
             tuple((r.finding_id, r.status.value, r.detail)
                   for r in incident.repairs))
            for incident in self.service.incidents())


def build_chaos_fleet(hosts: int = 4, name: str = "chaos") -> Fleet:
    """A fleet of hardened Ubuntu hosts for chaos scenarios."""
    fleet = Fleet(name, default_catalog())
    for index in range(hosts):
        fleet.add(hardened_ubuntu_host(f"{name}-{index:02d}"))
    return fleet


def inject_storm(fleet: Fleet, service: SocService,
                 rounds: int = 2, noise_per_drift: int = 3) -> int:
    """Noise-wrapped drift on every host, drained between rounds.

    The per-round drain pins every event timestamp to the scenario (a
    host is never re-drifted while its own repair is in flight), which
    is what lets content-keyed chaos decisions replay exactly.
    """
    drifts = 0
    for round_index in range(rounds):
        for host_index, host in enumerate(fleet.hosts()):
            for _ in range(noise_per_drift):
                host.events.emit("app.heartbeat")
            host.drift_install_package(
                DRIFT_PACKAGES[(round_index + host_index)
                               % len(DRIFT_PACKAGES)])
            drifts += 1
        service.drain()
    return drifts


def run_chaos_scenario(plan: FaultPlan,
                       hosts: int = 4,
                       rounds: int = 2,
                       noise_per_drift: int = 3,
                       shards: int = 4,
                       seed: int = 0,
                       queue_capacity: int = 1024,
                       reconcile: bool = True,
                       check_invariants: bool = True,
                       **soc_kwargs) -> ChaosRunResult:
    """Run one seeded chaos scenario end to end (see module docstring).

    The *plan*'s own ``queue_capacity`` (when set) overrides the
    default passed here; all faults derive from the plan's seed, the
    scenario itself from the arguments — same arguments + same plan =
    same run, byte for byte.  Extra keyword arguments pass through to
    :class:`~repro.soc.service.SocService` (retry schedule, supervisor
    interval, ...); none of them may change fault decisions, only how
    fast the runtime digests them.
    """
    fleet = build_chaos_fleet(hosts=hosts)
    controller = ChaosController(plan)
    service = fleet.arm_soc(shards=shards, seed=seed, chaos=controller,
                            queue_capacity=queue_capacity, **soc_kwargs)
    try:
        started = time.perf_counter()
        drifts = inject_storm(fleet, service, rounds=rounds,
                              noise_per_drift=noise_per_drift)
        storm_seconds = time.perf_counter() - started
    finally:
        service.stop()
    repaired = service.reconcile() if reconcile else 0
    posture = fleet.audit()
    result = ChaosRunResult(
        plan=plan,
        service=service,
        fleet=fleet,
        drifts=drifts,
        # Per drift: noise heartbeats + package.installed + drift marker.
        events_emitted=drifts * (noise_per_drift + 2),
        storm_seconds=storm_seconds,
        reconcile_repairs=repaired,
        injections=controller.injection_count(),
        decisions=controller.decisions(),
        digest=controller.decisions_digest(),
        posture_ratio=posture.worst_ratio,
    )
    if check_invariants:
        result.invariants = InvariantChecker().check(service)
    return result


@dataclass
class CampaignRunResult:
    """Everything observable about one campaign run."""

    campaign: Campaign
    service: SocService
    fleet: Fleet
    drifts: int
    events_emitted: int
    storm_seconds: float
    reconcile_repairs: int
    injections: int
    stage_windows: List[StageWindow] = field(default_factory=list)
    decisions: Dict[str, str] = field(default_factory=dict)
    digest: str = ""
    invariants: Optional[InvariantReport] = None
    #: The per-stage detection/repair sweep (CampaignInvariantChecker).
    stage_invariants: Optional[InvariantReport] = None
    posture_ratio: float = 0.0

    @property
    def rounds_run(self) -> int:
        return sum(window.rounds for window in self.stage_windows)

    @property
    def fully_repaired(self) -> bool:
        return self.posture_ratio >= 1.0

    def stage_summary(self) -> List[Dict[str, object]]:
        """Plain-data per-stage rows (CLI tables, bench JSON)."""
        return [{"stage": window.stage,
                 "rounds": window.rounds,
                 "targets": len(window.targets),
                 "injections": len(window.decisions)}
                for window in self.stage_windows]

    def signature(self) -> List[tuple]:
        """Order-stable incident fingerprint for replay comparison."""
        return sorted(
            (incident.req_id, incident.detected_at,
             incident.trigger_kind,
             tuple((r.finding_id, r.status.value, r.detail)
                   for r in incident.repairs))
            for incident in self.service.incidents())


def default_drift(host, round_index: int, host_index: int) -> None:
    """The harness's stock drift: rotate the prohibited packages."""
    host.drift_install_package(
        DRIFT_PACKAGES[(round_index + host_index) % len(DRIFT_PACKAGES)])


def run_campaign(campaign: Campaign,
                 fleet: Optional[Fleet] = None,
                 hosts: int = 4,
                 noise_per_drift: int = 3,
                 shards: int = 4,
                 seed: int = 0,
                 queue_capacity: int = 1024,
                 reconcile: bool = True,
                 check_invariants: bool = True,
                 drift: Optional[Callable] = None,
                 **soc_kwargs) -> CampaignRunResult:
    """Run one compiled campaign end to end, stage by stage.

    Each stage drives drift rounds against its target hosts (noise
    heartbeats keep flowing fleet-wide — background traffic does not
    pause for an attack), drained between rounds exactly like
    :func:`run_chaos_scenario`, so every fault decision stays a pure
    function of the campaign seed and event content.  Stage lengths
    beyond the mandatory rounds are seeded extension draws
    (:meth:`~repro.chaos.controller.CampaignController.
    stage_should_extend`); stage boundaries snapshot host clocks into
    :class:`~repro.chaos.invariants.StageWindow` records so the
    per-stage detection/repair sweep can attribute every event.

    *drift* overrides how a target host is drifted — it receives
    ``(host, round_index_in_stage, host_index)`` and must inject one
    drift appropriate to the host (mixed-platform topology fleets pass
    a platform-aware injector); the default rotates the prohibited
    packages exactly like :func:`inject_storm`.

    Same campaign + same fleet/arguments = byte-identical decision
    digest — the replay property the campaign determinism tests pin.
    """
    fleet = fleet if fleet is not None else build_chaos_fleet(hosts=hosts)
    drift = drift if drift is not None else default_drift
    controller = CampaignController(campaign)
    service = fleet.arm_soc(shards=shards, seed=seed, chaos=controller,
                            queue_capacity=queue_capacity, **soc_kwargs)
    windows: List[StageWindow] = []
    drifts_total = 0
    try:
        started = time.perf_counter()
        while True:
            stage = controller.stage
            all_hosts = fleet.hosts()
            targets = [host for host in all_hosts
                       if not stage.target_hosts
                       or host.name in stage.target_hosts]
            start_clocks = {host.name: host.events.clock
                            for host in all_hosts}
            rounds_in_stage = 0
            while True:
                for host in all_hosts:
                    for _ in range(noise_per_drift):
                        host.events.emit("app.heartbeat")
                for host_index, host in enumerate(targets):
                    drift(host, rounds_in_stage, host_index)
                    drifts_total += 1
                service.drain()
                rounds_in_stage += 1
                if not controller.stage_should_extend(rounds_in_stage):
                    break
            windows.append(StageWindow(
                stage=stage.name,
                index=controller.stage_index,
                targets=tuple(host.name for host in targets),
                rounds=rounds_in_stage,
                clocks={host.name: (start_clocks[host.name],
                                    host.events.clock)
                        for host in all_hosts},
            ))
            if not controller.advance_stage():
                break
        storm_seconds = time.perf_counter() - started
    finally:
        service.stop()
    repaired = service.reconcile() if reconcile else 0
    for window, ledger in zip(windows, controller.stage_decisions()):
        window.decisions = ledger
    posture = fleet.audit()
    rounds_run = sum(window.rounds for window in windows)
    result = CampaignRunResult(
        campaign=campaign,
        service=service,
        fleet=fleet,
        drifts=drifts_total,
        # Per round: fleet-wide noise; per drift: install + marker.
        events_emitted=(rounds_run * len(fleet.hosts()) * noise_per_drift
                        + drifts_total * 2),
        storm_seconds=storm_seconds,
        reconcile_repairs=repaired,
        injections=controller.injection_count(),
        stage_windows=windows,
        decisions=controller.decisions(),
        digest=controller.decisions_digest(),
        posture_ratio=posture.worst_ratio,
    )
    if check_invariants:
        result.invariants = InvariantChecker().check(service)
        result.stage_invariants = CampaignInvariantChecker().check(
            service, windows)
    return result
