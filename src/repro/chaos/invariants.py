"""Invariant checking for SOC runs: conservation laws under chaos.

Every chaos run — in fact every SOC run — must end in a state where a
handful of conservation properties hold regardless of which faults
fired.  The :class:`InvariantChecker` asserts them after the drain
barrier:

* **Event conservation.**  Every event offered to ingress is accounted
  for: ``offered == ingested + rejected`` (admission), and
  ``ingested == processed + dropped`` (disposition) where *processed*
  includes dead-lettered events — parking is a terminal disposition,
  loss is not.  Nothing vanishes; the only exits are the counted ones.
* **Quiescent drain.**  After ``drain()``, every shard queue is empty
  with zero unfinished credit — the barrier actually flushed.
* **At most one effective repair per drift.**  A host's effective
  (state-changing, re-check-passing) repairs never exceed its drift
  events: duplicated events, retries, and reconcile sweeps may all
  *attempt* repairs, but only a genuinely drifted host can yield an
  effective one.
* **No phantom incidents.**  Every incident's trigger is a drift event
  that actually exists in its host's log at the recorded time — chaos
  may duplicate, delay, or reorder events, but it can never make the
  SOC react to something that did not happen.
* **Bounded dead letters.**  The dead-letter queue never exceeds its
  capacity, and its monotonic ledger matches the metrics counter.

Violations are collected (not raised one at a time) so a failing chaos
seed reports everything that broke; ``report.ok`` / ``report.raise_if_
violated()`` are the test-facing API.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.soc.service import SocService


class InvariantViolation(AssertionError):
    """At least one SOC conservation invariant failed."""


@dataclass
class InvariantReport:
    """Outcome of one invariant sweep over a drained service."""

    violations: List[str] = field(default_factory=list)
    checked: List[str] = field(default_factory=list)
    facts: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_violated(self) -> None:
        if self.violations:
            raise InvariantViolation(
                f"{len(self.violations)} invariant violation(s):\n  "
                + "\n  ".join(self.violations))

    def summary(self) -> str:
        state = "OK" if self.ok else f"{len(self.violations)} VIOLATED"
        return (f"invariants {state} "
                f"({len(self.checked)} checked; "
                + ", ".join(f"{k}={v}" for k, v in sorted(
                    self.facts.items())) + ")")


class InvariantChecker:
    """Asserts the SOC's conservation laws on a drained service."""

    def check(self, service: SocService) -> InvariantReport:
        report = InvariantReport()
        counters = service.metrics_snapshot()["counters"]
        self._check_conservation(service, counters, report)
        self._check_quiescence(service, report)
        self._check_repair_uniqueness(service, report)
        self._check_no_phantom_incidents(service, report)
        self._check_dead_letter_bounds(service, counters, report)
        return report

    # -- individual invariants ------------------------------------------------

    def _check_conservation(self, service, counters, report) -> None:
        report.checked.append("event-conservation")
        offered = counters.get("soc.events.offered", 0)
        ingested = counters.get("soc.events.ingested", 0)
        rejected = counters.get("soc.events.rejected", 0)
        dropped = counters.get("soc.events.dropped", 0)
        processed = sum(
            value for name, value in counters.items()
            if name.startswith("soc.shard.") and name.endswith(".processed"))
        report.facts.update(offered=offered, ingested=ingested,
                            rejected=rejected, dropped=dropped,
                            processed=processed)
        if offered != ingested + rejected:
            report.violations.append(
                f"admission leak: offered={offered} != "
                f"ingested={ingested} + rejected={rejected}")
        if ingested != processed + dropped:
            report.violations.append(
                f"disposition leak: ingested={ingested} != "
                f"processed={processed} + dropped={dropped}")
        if service.chaos is not None \
                and service.chaos.pending_stash():
            report.violations.append(
                f"{service.chaos.pending_stash()} event(s) still held in "
                f"the chaos reorder stash after drain")

    def _check_quiescence(self, service, report) -> None:
        report.checked.append("quiescent-drain")
        for index, queue in enumerate(service.queues):
            if queue.depth:
                report.violations.append(
                    f"shard {index} queue not empty after drain "
                    f"(depth={queue.depth})")
            if queue.unfinished:
                report.violations.append(
                    f"shard {index} has {queue.unfinished} unfinished "
                    f"item(s) after drain")

    def _check_repair_uniqueness(self, service, report) -> None:
        report.checked.append("one-effective-repair-per-drift")
        effective_total = 0
        for host_name, incidents in service.incidents_by_host().items():
            host = service.hosts[host_name]
            drifts = sum(1 for event in host.events
                         if event.kind.startswith("drift"))
            effective = sum(1 for incident in incidents
                            if incident.effective)
            effective_total += effective
            if effective > drifts:
                report.violations.append(
                    f"{host_name}: {effective} effective repairs for "
                    f"only {drifts} drift event(s)")
        report.facts["effective_repairs"] = effective_total

    def _check_no_phantom_incidents(self, service, report) -> None:
        report.checked.append("no-phantom-incidents")
        for host_name, incidents in service.incidents_by_host().items():
            host = service.hosts[host_name]
            for incident in incidents:
                matches = any(
                    event.time == incident.detected_at
                    and event.kind == incident.trigger_kind
                    for event in host.events)
                if not matches:
                    report.violations.append(
                        f"{host_name}: incident {incident.req_id} claims "
                        f"trigger {incident.trigger_kind!r} at t="
                        f"{incident.detected_at}, but no such event "
                        f"exists in the host log")
                if not incident.trigger_kind.startswith("drift"):
                    report.violations.append(
                        f"{host_name}: incident {incident.req_id} "
                        f"triggered by non-drift event "
                        f"{incident.trigger_kind!r}")

    def _check_dead_letter_bounds(self, service, counters, report) -> None:
        report.checked.append("bounded-dead-letters")
        dlq = service.dead_letters
        retained = len(dlq)
        report.facts["dead_lettered"] = dlq.parked_total
        if retained > dlq.capacity:
            report.violations.append(
                f"dead-letter queue over capacity: {retained} > "
                f"{dlq.capacity}")
        counted = counters.get("soc.events.dead_lettered", 0)
        if counted != dlq.parked_total:
            report.violations.append(
                f"dead-letter ledger mismatch: metrics say {counted}, "
                f"queue says {dlq.parked_total}")


def check_invariants(service: SocService) -> InvariantReport:
    """Convenience: one-shot invariant sweep (see InvariantChecker)."""
    return InvariantChecker().check(service)


# -- campaign stage invariants ----------------------------------------------


@dataclass
class StageWindow:
    """One campaign stage's observable footprint on a run.

    The harness records, per stage, the half-open logical-clock window
    ``[start, end)`` of every host (host clocks are monotonic, so a
    window pins exactly the events the stage produced), the hosts the
    stage targeted, and the stage's slice of the fault-decision
    ledger.  The checker attributes drifts, incidents, and parked
    events to stages through these windows.
    """

    stage: str
    index: int
    targets: Tuple[str, ...]
    rounds: int
    clocks: Dict[str, Tuple[int, int]]
    decisions: Dict[str, str] = field(default_factory=dict)

    def contains(self, host_name: str, time: int) -> bool:
        start, end = self.clocks.get(host_name, (0, 0))
        return start <= time < end


class CampaignInvariantChecker:
    """Per-stage detection/repair assertions over a campaign run.

    For every :class:`StageWindow` (on a drained, reconciled service):

    * **Stage detection.**  Every drift the stage injected on a
      targeted host was either detected (an incident whose trigger
      falls inside the window) or terminally parked in the dead-letter
      queue — chaos may delay or park an attack symptom, but it can
      never silently vanish between stages.
    * **Stage repair uniqueness.**  Effective repairs attributed to a
      stage window never exceed the drifts the stage injected —
      the global one-effective-repair-per-drift law, stage-scoped.
    * **Stage targeting.**  Drift events and drift-triggered incidents
      appear only on the stage's target hosts: a campaign stage that
      claims to attack the DMZ must not leave fingerprints on the
      control zone.
    """

    def check(self, service: SocService,
              windows: List[StageWindow]) -> InvariantReport:
        report = InvariantReport()
        incidents_by_host = service.incidents_by_host()
        letters = (service.dead_letters.letters()
                   if service.dead_letters is not None else [])
        for window in windows:
            self._check_stage(service, window, incidents_by_host,
                              letters, report)
        return report

    def _check_stage(self, service, window, incidents_by_host,
                     letters, report) -> None:
        label = f"stage {window.stage!r}"
        report.checked.append(f"{label}: detection+repair")
        targeted = set(window.targets)
        stage_drifts = 0
        stage_detected = 0
        stage_effective = 0
        for host_name, host in sorted(service.hosts.items()):
            drifts = [event for event in host.events
                      if event.kind.startswith("drift")
                      and window.contains(host_name, event.time)]
            incidents = [
                incident
                for incident in incidents_by_host.get(host_name, [])
                if window.contains(host_name, incident.detected_at)]
            parked = [
                letter for letter in letters
                if letter.host == host_name
                and letter.event.kind.startswith("drift")
                and window.contains(host_name, letter.event.time)]
            effective = sum(1 for incident in incidents
                            if incident.effective)
            stage_drifts += len(drifts)
            stage_detected += len(incidents)
            stage_effective += effective
            if targeted and host_name not in targeted:
                if drifts:
                    report.violations.append(
                        f"{label}: {len(drifts)} drift event(s) on "
                        f"untargeted host {host_name}")
                if incidents:
                    report.violations.append(
                        f"{label}: {len(incidents)} incident(s) on "
                        f"untargeted host {host_name}")
                continue
            if len(incidents) + len(parked) < len(drifts):
                report.violations.append(
                    f"{label}: {host_name} had {len(drifts)} drift(s) "
                    f"but only {len(incidents)} incident(s) + "
                    f"{len(parked)} parked — "
                    f"{len(drifts) - len(incidents) - len(parked)} "
                    f"attack symptom(s) vanished")
            if effective > len(drifts):
                report.violations.append(
                    f"{label}: {host_name} has {effective} effective "
                    f"repair(s) for only {len(drifts)} stage drift(s)")
        report.facts[f"stage.{window.stage}.drifts"] = stage_drifts
        report.facts[f"stage.{window.stage}.detected"] = stage_detected
        report.facts[f"stage.{window.stage}.effective"] = stage_effective
        report.facts[f"stage.{window.stage}.injections"] = \
            len(window.decisions)


def check_campaign(service: SocService,
                   windows: List[StageWindow]) -> InvariantReport:
    """Convenience: one-shot per-stage sweep (see the checker)."""
    return CampaignInvariantChecker().check(service, windows)
