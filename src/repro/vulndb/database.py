"""The vulnerability store and the bundled offline dataset.

:func:`bundled_database` combines a curated set of well-known,
historically real vulnerability profiles (openssl/bash/sshd-style
entries) with a deterministic synthetic expansion across the product
universe, giving experiment E10 a ~120-record corpus with a realistic
CWE/severity distribution — without any network fetch.
"""

import random
from typing import Dict, Iterable, List, Optional

from repro.vulndb.records import (
    AffectedProduct,
    CWE_CATALOG,
    Severity,
    VulnRecord,
)


class VulnerabilityDatabase:
    """In-memory store with the query surface the generator uses.

    Maintains a product-name inverted index alongside the primary map,
    so inventory scans touch only the records that mention a product
    instead of walking the whole corpus per product.
    """

    def __init__(self, records: Iterable[VulnRecord] = ()):
        self._records: Dict[str, VulnRecord] = {}
        #: product name -> records with an affected range on it.
        self._by_product: Dict[str, List[VulnRecord]] = {}
        #: product name -> sorted result list, built lazily by
        #: :meth:`for_product` and invalidated by any mutation that
        #: touches the product.  A streaming feed interleaves adds with
        #: inventory scans, so the cache must never outlive a write —
        #: the regression tests pin exactly that.
        self._sorted_cache: Dict[str, List[VulnRecord]] = {}
        for record in records:
            self.add(record)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, cve_id: str) -> bool:
        return cve_id in self._records

    def _index(self, record: VulnRecord) -> None:
        indexed = set()
        for affected in record.affected:
            if affected.product not in indexed:
                indexed.add(affected.product)
                self._by_product.setdefault(affected.product,
                                            []).append(record)
                self._sorted_cache.pop(affected.product, None)

    def add(self, record: VulnRecord) -> None:
        if record.cve_id in self._records:
            raise ValueError(f"duplicate CVE id: {record.cve_id}")
        if record.cwe_id not in CWE_CATALOG:
            raise ValueError(f"{record.cve_id}: unknown CWE {record.cwe_id}")
        self._records[record.cve_id] = record
        self._index(record)

    def upsert(self, record: VulnRecord) -> bool:
        """Add *record*, replacing any existing revision of the CVE.

        The streaming entry point: advisory feeds re-announce a CVE
        whenever its affected ranges or score are revised.  Replacement
        is index-exact — the old revision is unlinked from every
        product list it was on (a product the new revision no longer
        mentions must stop reporting it), and the affected products'
        cached scan results are dropped on both sides of the swap.
        Returns True when an existing record was replaced.
        """
        previous = self._records.get(record.cve_id)
        if previous is None:
            self.add(record)
            return False
        if record.cwe_id not in CWE_CATALOG:
            raise ValueError(f"{record.cve_id}: unknown CWE {record.cwe_id}")
        for affected in {item.product for item in previous.affected}:
            bucket = self._by_product.get(affected, [])
            self._by_product[affected] = [
                entry for entry in bucket
                if entry.cve_id != record.cve_id]
            if not self._by_product[affected]:
                del self._by_product[affected]
            self._sorted_cache.pop(affected, None)
        self._records[record.cve_id] = record
        self._index(record)
        return True

    def get(self, cve_id: str) -> VulnRecord:
        return self._records[cve_id]

    def all(self) -> List[VulnRecord]:
        return sorted(self._records.values(), key=lambda r: r.cve_id)

    def for_product(self, product: str) -> List[VulnRecord]:
        """Records carrying an affected range on *product*, sorted by
        CVE id — the sub-linear entry point for inventory scans.

        Results are cached per product until the next mutation touching
        the product; callers get a private copy."""
        cached = self._sorted_cache.get(product)
        if cached is None:
            cached = sorted(self._by_product.get(product, ()),
                            key=lambda r: r.cve_id)
            self._sorted_cache[product] = cached
        return list(cached)

    def query(self, product: Optional[str] = None,
              version: Optional[str] = None,
              min_severity: Optional[Severity] = None,
              cwe_category: Optional[str] = None) -> List[VulnRecord]:
        """Filter records; all criteria are conjunctive.

        A product criterion narrows the candidate set through the
        inverted index before any per-record work."""
        order = [Severity.LOW, Severity.MEDIUM, Severity.HIGH,
                 Severity.CRITICAL]
        candidates = self.all() if product is None \
            else self.for_product(product)
        results = []
        for record in candidates:
            if product is not None and version is not None \
                    and not record.affects(product, version):
                continue
            if min_severity is not None and \
                    order.index(record.severity) < order.index(min_severity):
                continue
            if cwe_category is not None:
                cwe = record.cwe
                if cwe is None or cwe.category != cwe_category:
                    continue
            results.append(record)
        return results

    def severity_histogram(self) -> Dict[str, int]:
        histogram = {s.value: 0 for s in Severity}
        for record in self.all():
            histogram[record.severity.value] += 1
        return histogram


#: Curated entries modelled on well-known vulnerability profiles.
_CURATED = (
    VulnRecord(
        "CVE-2014-6271",
        "Shell command injection via crafted environment variables "
        "(Shellshock-class flaw in the bash parser).",
        "CWE-78", 9.8,
        (AffectedProduct("gnu", "bash", None, "4.3.25"),),
        "2014-09-24",
    ),
    VulnRecord(
        "CVE-2014-0160",
        "Out-of-bounds read in the TLS heartbeat extension leaks process "
        "memory including private keys (Heartbleed-class flaw).",
        "CWE-125", 7.5,
        (AffectedProduct("openssl", "openssl", "1.0.1", "1.0.1g"),),
        "2014-04-07",
    ),
    VulnRecord(
        "CVE-2016-5195",
        "Race condition in copy-on-write memory handling allows local "
        "privilege escalation (Dirty-COW-class flaw).",
        "CWE-416", 7.8,
        (AffectedProduct("linux", "kernel", None, "4.8.3"),),
        "2016-10-19",
    ),
    VulnRecord(
        "CVE-2018-15473",
        "Username enumeration through malformed authentication packets "
        "in the SSH daemon.",
        "CWE-287", 5.3,
        (AffectedProduct("openbsd", "openssh-server", None, "7.8"),),
        "2018-08-17",
    ),
    VulnRecord(
        "CVE-2017-0144",
        "Remote code execution in the SMBv1 server via crafted packets "
        "(EternalBlue-class flaw).",
        "CWE-787", 8.1,
        (AffectedProduct("microsoft", "smbv1", None, None),),
        "2017-03-14",
    ),
    VulnRecord(
        "CVE-2019-0708",
        "Pre-authentication remote code execution in remote desktop "
        "services (BlueKeep-class flaw).",
        "CWE-416", 9.8,
        (AffectedProduct("microsoft", "rdp", None, None),),
        "2019-05-14",
    ),
    VulnRecord(
        "CVE-2021-44228",
        "Remote code execution through attacker-controlled JNDI lookups "
        "in the logging library (Log4Shell-class flaw).",
        "CWE-20", 10.0,
        (AffectedProduct("apache", "log4j", "2.0", "2.15.0"),),
        "2021-12-10",
    ),
    VulnRecord(
        "CVE-2015-5600",
        "Keyboard-interactive authentication permits effectively "
        "unlimited password guesses in one connection.",
        "CWE-307", 8.5,
        (AffectedProduct("openbsd", "openssh-server", None, "7.0"),),
        "2015-08-02",
    ),
    VulnRecord(
        "CVE-2012-1823",
        "CGI argument injection allows source disclosure and remote "
        "execution in the PHP CGI handler.",
        "CWE-20", 7.5,
        (AffectedProduct("php", "php", None, "5.4.2"),),
        "2012-05-11",
    ),
    VulnRecord(
        "CVE-2017-5638",
        "Remote code execution via crafted Content-Type header in the "
        "multipart parser (Struts-class flaw).",
        "CWE-20", 10.0,
        (AffectedProduct("apache", "struts", "2.3", "2.3.32"),),
        "2017-03-10",
    ),
    VulnRecord(
        "CVE-2000-1206",
        "rsh trust relationships allow remote command execution without "
        "password authentication.",
        "CWE-306", 9.1,
        (AffectedProduct("gnu", "rsh-server", None, None),),
        "2000-06-01",
    ),
    VulnRecord(
        "CVE-1999-0651",
        "NIS/NIS+ services expose directory maps to unauthenticated "
        "remote queries.",
        "CWE-284", 7.5,
        (AffectedProduct("sun", "nis", None, None),),
        "1999-01-01",
    ),
    VulnRecord(
        "CVE-2019-6110",
        "scp client output manipulation allows hiding of transferred "
        "file names (cleartext-era tooling weakness).",
        "CWE-319", 6.8,
        (AffectedProduct("gnu", "telnetd", None, None),),
        "2019-01-31",
    ),
)

#: Product universe for the synthetic expansion: (vendor, product,
#: plausible fixed-in version).
_SYNTHETIC_PRODUCTS = (
    ("openssl", "openssl", "3.0.8"),
    ("openbsd", "openssh-server", "9.2"),
    ("apache", "httpd", "2.4.55"),
    ("nginx", "nginx", "1.23.3"),
    ("postgresql", "postgresql", "15.2"),
    ("mysql", "mysql-server", "8.0.32"),
    ("canonical", "sssd", "2.8.2"),
    ("gnu", "auditd", "3.1"),
    ("netfilter", "ufw", "0.36.2"),
    ("rsyslog", "rsyslog", "8.2212"),
    ("isc", "bind", "9.18.12"),
    ("samba", "samba", "4.17.5"),
)

_SYNTHETIC_SUMMARIES = {
    "input-validation": "Improper validation of attacker-supplied input "
                        "in {product} permits request smuggling or "
                        "injection.",
    "memory-safety": "Memory-safety violation in the {product} parser "
                     "can be triggered by a crafted payload.",
    "authentication": "Authentication weakness in {product} lowers the "
                      "effort required to impersonate a valid user.",
    "authorization": "Privilege boundary error in {product} allows "
                     "actions beyond the granted role.",
    "cryptography": "Cryptographic weakness in {product} exposes "
                    "protected data to offline recovery.",
    "auditing": "Security-relevant operations in {product} are not "
                "recorded reliably, hindering incident analysis.",
    "availability": "Unbounded resource consumption in {product} allows "
                    "remote denial of service.",
    "configuration": "Insecure default configuration in {product} leaves "
                     "a hardened deployment exposed after upgrade.",
}


def bundled_database(synthetic_count: int = 107,
                     seed: int = 20210426) -> VulnerabilityDatabase:
    """The offline corpus: curated entries + deterministic expansion.

    Defaults yield 120 records total (13 curated + 107 synthetic).  The
    expansion draws CWEs weighted toward the categories the curated set
    under-represents and assigns CVSS scores spread over all severity
    bands, so per-category and per-severity statistics are non-trivial.
    """
    rng = random.Random(seed)
    database = VulnerabilityDatabase(_CURATED)
    cwe_ids = sorted(CWE_CATALOG)
    for index in range(synthetic_count):
        vendor, product, fixed_in = _SYNTHETIC_PRODUCTS[
            index % len(_SYNTHETIC_PRODUCTS)]
        cwe_id = cwe_ids[rng.randrange(len(cwe_ids))]
        category = CWE_CATALOG[cwe_id].category
        cvss = round(rng.uniform(2.0, 10.0), 1)
        year = rng.randrange(2015, 2022)
        record = VulnRecord(
            cve_id=f"CVE-{year}-{30000 + index}",
            summary=_SYNTHETIC_SUMMARIES[category].format(product=product),
            cwe_id=cwe_id,
            cvss=cvss,
            affected=(AffectedProduct(vendor, product, None, fixed_in),),
            published=f"{year}-01-01",
        )
        database.add(record)
    return database
