"""A minimal vulnerability-database poller for the live re-arm plane.

The streaming ingestion path (:class:`~repro.reqs.stream.ReqStream` +
:class:`~repro.soc.rearm.Rearmer`) consumes *feeds*: batches of IR
records whose rids upsert against the armed set.  This poller turns a
:class:`~repro.vulndb.database.VulnerabilityDatabase` into such a feed:
each :meth:`poll` re-scans one inventory, lowers the generated
requirements through the ``vulndb`` front-end adapter, and returns the
delta against the stream — empty when nothing in the database moved,
exactly the new/changed records after a catalogue
:meth:`~repro.vulndb.database.VulnerabilityDatabase.upsert` landed.
Records that stop matching the scan (a CVE withdrawn, a product
removed from the inventory) are retired through the delta's
``remove_rids`` leg, so the armed set tracks the catalogue in both
directions.

The poller is pull-based on purpose: the simulated database has no
change feed, and NVD-style sources are polled in practice too.  Wiring
it to a real schedule is the caller's business — the contract here is
just "every poll yields the minimal delta".
"""

from typing import List, Optional, Tuple

from repro.vulndb.database import VulnerabilityDatabase
from repro.vulndb.generator import RequirementGenerator, SoftwareInventory
from repro.vulndb.records import Severity


class VulnDbPoller:
    """Polls one database/inventory pair into a requirement stream."""

    def __init__(self, database: VulnerabilityDatabase,
                 inventory: SoftwareInventory,
                 registry=None,
                 min_severity: Severity = Severity.LOW):
        from repro.reqs import default_registry

        self.database = database
        self.inventory = inventory
        self.registry = registry if registry is not None \
            else default_registry()
        self.min_severity = min_severity
        self.polls = 0
        self._announced: Tuple[str, ...] = ()

    def _lower(self) -> List:
        """Scan + lower: the database's current answer for the
        inventory, as IR records (rejections are dropped — the vulndb
        adapter's natives are machine-generated and lint-clean)."""
        from repro.reqs.ir import Requirement

        report = RequirementGenerator(
            self.database,
            min_severity=self.min_severity).generate(self.inventory)
        return [item for item in
                self.registry.lower_iter("vulndb", report.requirements)
                if isinstance(item, Requirement)]

    def poll(self, stream):
        """One poll: the minimal :class:`StreamDelta` for *stream*.

        Upserts every record the scan currently yields and retires any
        rid a previous poll announced that the scan no longer does.
        The caller applies the delta (e.g. ``Rearmer.apply``) and
        commits it; polling never mutates the stream itself.
        """
        records = self._lower()
        current = tuple(record.rid for record in records)
        retired = [rid for rid in self._announced if rid not in current]
        delta = stream.diff(records, remove_rids=retired)
        self._announced = current
        self.polls += 1
        return delta

    def poll_into(self, stream, rearmer):
        """Poll, apply through *rearmer*, commit.  Returns
        ``(delta, rearm_report)`` — the one-call form a live-feed loop
        uses per tick."""
        delta = self.poll(stream)
        report = rearmer.apply(delta)
        stream.commit(delta)
        return delta, report
