"""Vulnerability record types and the CWE taxonomy slice.

Records follow the NVD shape closely enough that the extraction logic
(CPE-style product matching, CWE-driven requirement mapping) is the
same code one would run against the real feed.
"""

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


class Severity(enum.Enum):
    """CVSS v3 qualitative severity bands."""

    LOW = "LOW"
    MEDIUM = "MEDIUM"
    HIGH = "HIGH"
    CRITICAL = "CRITICAL"

    @classmethod
    def from_score(cls, score: float) -> "Severity":
        if score >= 9.0:
            return cls.CRITICAL
        if score >= 7.0:
            return cls.HIGH
        if score >= 4.0:
            return cls.MEDIUM
        return cls.LOW


@dataclass(frozen=True)
class CweEntry:
    """One Common Weakness Enumeration entry."""

    cwe_id: str
    name: str
    category: str  # coarse grouping used by the requirement mapper


#: The CWE slice the generator maps; categories drive the
#: requirement-pattern choice in :mod:`repro.vulndb.generator`.
CWE_CATALOG: Dict[str, CweEntry] = {
    entry.cwe_id: entry for entry in (
        CweEntry("CWE-79", "Cross-site Scripting", "input-validation"),
        CweEntry("CWE-89", "SQL Injection", "input-validation"),
        CweEntry("CWE-20", "Improper Input Validation", "input-validation"),
        CweEntry("CWE-78", "OS Command Injection", "input-validation"),
        CweEntry("CWE-119", "Buffer Overflow", "memory-safety"),
        CweEntry("CWE-125", "Out-of-bounds Read", "memory-safety"),
        CweEntry("CWE-787", "Out-of-bounds Write", "memory-safety"),
        CweEntry("CWE-416", "Use After Free", "memory-safety"),
        CweEntry("CWE-287", "Improper Authentication", "authentication"),
        CweEntry("CWE-306", "Missing Authentication for Critical Function",
                 "authentication"),
        CweEntry("CWE-798", "Use of Hard-coded Credentials",
                 "authentication"),
        CweEntry("CWE-521", "Weak Password Requirements", "authentication"),
        CweEntry("CWE-307", "Improper Restriction of Excessive "
                 "Authentication Attempts", "authentication"),
        CweEntry("CWE-269", "Improper Privilege Management",
                 "authorization"),
        CweEntry("CWE-284", "Improper Access Control", "authorization"),
        CweEntry("CWE-862", "Missing Authorization", "authorization"),
        CweEntry("CWE-863", "Incorrect Authorization", "authorization"),
        CweEntry("CWE-311", "Missing Encryption of Sensitive Data",
                 "cryptography"),
        CweEntry("CWE-327", "Use of a Broken Crypto Algorithm",
                 "cryptography"),
        CweEntry("CWE-916", "Use of Password Hash With Insufficient "
                 "Computational Effort", "cryptography"),
        CweEntry("CWE-532", "Insertion of Sensitive Information into "
                 "Log File", "auditing"),
        CweEntry("CWE-778", "Insufficient Logging", "auditing"),
        CweEntry("CWE-400", "Uncontrolled Resource Consumption",
                 "availability"),
        CweEntry("CWE-770", "Allocation of Resources Without Limits",
                 "availability"),
        CweEntry("CWE-319", "Cleartext Transmission of Sensitive "
                 "Information", "cryptography"),
        CweEntry("CWE-1188", "Insecure Default Initialization of Resource",
                 "configuration"),
        CweEntry("CWE-16", "Configuration", "configuration"),
        CweEntry("CWE-250", "Execution with Unnecessary Privileges",
                 "authorization"),
    )
}


@dataclass(frozen=True)
class AffectedProduct:
    """CPE-like product range: vendor/product plus version interval.

    ``version_end`` is exclusive ("fixed in"); ``None`` bounds are
    open.  Version strings compare component-wise numerically.
    """

    vendor: str
    product: str
    version_start: Optional[str] = None
    version_end: Optional[str] = None

    def matches(self, product: str, version: str) -> bool:
        if product != self.product:
            return False
        key = _version_key(version)
        if self.version_start is not None and \
                key < _version_key(self.version_start):
            return False
        if self.version_end is not None and \
                key >= _version_key(self.version_end):
            return False
        return True


def _version_key(version: str) -> Tuple[Tuple[int, str], ...]:
    """Component-wise version key; openssl-style letter suffixes
    ("1.0.1g") order after their bare numeric component ("1.0.1")."""
    parts = []
    for chunk in version.lower().replace("-", ".").split("."):
        digits = "".join(ch for ch in chunk if ch.isdigit())
        letters = "".join(ch for ch in chunk if ch.isalpha())
        parts.append((int(digits) if digits else 0, letters))
    return tuple(parts)


@dataclass(frozen=True)
class VulnRecord:
    """One vulnerability entry (NVD-shaped)."""

    cve_id: str
    summary: str
    cwe_id: str
    cvss: float
    affected: Tuple[AffectedProduct, ...] = field(default_factory=tuple)
    published: str = ""

    @property
    def severity(self) -> Severity:
        return Severity.from_score(self.cvss)

    @property
    def cwe(self) -> Optional[CweEntry]:
        return CWE_CATALOG.get(self.cwe_id)

    def affects(self, product: str, version: str) -> bool:
        return any(p.matches(product, version) for p in self.affected)
