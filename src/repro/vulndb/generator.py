"""Vulnerability -> security-requirement generation.

The WP2 extraction path: scan a software inventory against the
vulnerability database; for each matched record, emit a
:class:`GeneratedRequirement` — a natural-language security requirement
plus its formal binding: the specification-pattern family the CWE
category maps to, and (where applicable) the RQCODE pattern that can
check/enforce it on a host.

The CWE-category -> pattern mapping is the heart of the generator; it
is deliberately explicit (a table, not heuristics) so case-study
partners can review and extend it.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.vulndb.database import VulnerabilityDatabase
from repro.vulndb.records import Severity, VulnRecord


@dataclass(frozen=True)
class SoftwareInventory:
    """What a host runs: (product, version) pairs plus a platform tag."""

    host_name: str
    platform: str  # "windows" | "ubuntu"
    products: Tuple[Tuple[str, str], ...]

    @classmethod
    def of(cls, host_name: str, platform: str,
           products: Dict[str, str]) -> "SoftwareInventory":
        return cls(host_name=host_name, platform=platform,
                   products=tuple(sorted(products.items())))


@dataclass
class GeneratedRequirement:
    """One extracted requirement with its formal bindings."""

    req_id: str
    text: str
    source_cve: str
    severity: Severity
    cwe_category: str
    #: Specification-pattern family recommended for formalization.
    pattern_family: str
    #: RQCODE pattern kind that can check/enforce it ("package",
    #: "config", "audit", "monitor"), or None when it needs bespoke code.
    rqcode_binding: Optional[str] = None
    rationale: str = ""


#: CWE category -> (pattern family, RQCODE binding, requirement template).
_CATEGORY_MAPPING: Dict[str, Tuple[str, Optional[str], str]] = {
    "input-validation": (
        "Absence",
        "monitor",
        "The system shall reject and log inputs to {product} that fail "
        "validation against the declared interface contract.",
    ),
    "memory-safety": (
        "Absence",
        "package",
        "The system shall run {product} at a version not affected by "
        "{cve} (upgrade beyond the fixed-in release).",
    ),
    "authentication": (
        "Precedence",
        "config",
        "The system shall require successful multifactor authentication "
        "before granting access to {product} functions exposed by {cve}.",
    ),
    "authorization": (
        "Precedence",
        "audit",
        "The system shall verify an explicit authorization decision "
        "before {product} performs the privileged operation affected by "
        "{cve}, and shall audit every use.",
    ),
    "cryptography": (
        "Universality",
        "config",
        "The system shall protect data handled by {product} with "
        "approved algorithms at all times (mitigating {cve}).",
    ),
    "auditing": (
        "Existence",
        "audit",
        "The system shall record every security-relevant operation of "
        "{product} in the audit trail (closing the gap behind {cve}).",
    ),
    "availability": (
        "TimedResponse",
        "monitor",
        "The system shall detect resource exhaustion in {product} and "
        "restore service within the recovery-time objective "
        "(mitigating {cve}).",
    ),
    "configuration": (
        "Universality",
        "config",
        "The system shall maintain the hardened configuration baseline "
        "for {product} continuously (preventing regressions like {cve}).",
    ),
}


@dataclass
class GenerationReport:
    """Outcome of one extraction run."""

    inventory: SoftwareInventory
    scanned: int
    matched: List[VulnRecord] = field(default_factory=list)
    requirements: List[GeneratedRequirement] = field(default_factory=list)

    def pattern_histogram(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for requirement in self.requirements:
            histogram[requirement.pattern_family] = (
                histogram.get(requirement.pattern_family, 0) + 1)
        return histogram

    def by_severity(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for requirement in self.requirements:
            histogram[requirement.severity.value] = (
                histogram.get(requirement.severity.value, 0) + 1)
        return histogram


class RequirementGenerator:
    """Scans inventories and emits requirements with formal bindings."""

    def __init__(self, database: VulnerabilityDatabase,
                 min_severity: Severity = Severity.LOW):
        self.database = database
        self.min_severity = min_severity

    def generate(self, inventory: SoftwareInventory) -> GenerationReport:
        """Extract requirements for one host inventory.

        One requirement per matched (vulnerability, product) pair;
        duplicate texts from the same CWE category on the same product
        are collapsed to the highest-severity representative.
        """
        order = [Severity.LOW, Severity.MEDIUM, Severity.HIGH,
                 Severity.CRITICAL]
        report = GenerationReport(inventory=inventory,
                                  scanned=len(self.database))
        # The product-name inverted index narrows each inventory entry
        # to the records that mention it; matches are then replayed in
        # (cve_id, product) order — exactly the order the full
        # record-major scan produced — so downstream output (matched
        # list, tie-breaking in ``best``) is unchanged.
        floor = order.index(self.min_severity)
        matches: List[Tuple[str, str, VulnRecord]] = []
        for product, version in inventory.products:
            for record in self.database.for_product(product):
                if order.index(record.severity) < floor:
                    continue
                if not record.affects(product, version):
                    continue
                matches.append((record.cve_id, product, record))
        matches.sort(key=lambda match: (match[0], match[1]))
        best: Dict[Tuple[str, str], Tuple[VulnRecord, str]] = {}
        for _, product, record in matches:
            report.matched.append(record)
            cwe = record.cwe
            if cwe is None:
                continue
            key = (product, cwe.category)
            incumbent = best.get(key)
            if incumbent is None or \
                    order.index(record.severity) > \
                    order.index(incumbent[0].severity):
                best[key] = (record, product)
        for index, ((product, category), (record, _)) in enumerate(
                sorted(best.items()), start=1):
            family, binding, template = _CATEGORY_MAPPING[category]
            report.requirements.append(GeneratedRequirement(
                req_id=f"GEN-{inventory.host_name}-{index:03d}",
                text=template.format(product=product, cve=record.cve_id),
                source_cve=record.cve_id,
                severity=record.severity,
                cwe_category=category,
                pattern_family=family,
                rqcode_binding=binding,
                rationale=record.summary,
            ))
        return report
