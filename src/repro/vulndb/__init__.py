"""Vulnerability database and security-requirement generation.

WP2 "investigates automatic extraction, formalization and verification
of the security requirements from natural language requirements,
vulnerability databases and standards" (D2.7 §1).  Real CVE/NVD feeds
need network access; this package ships an offline CVE-like record
store with a realistic shape (CWE classification, CVSS scores, affected
products) and the extraction logic that turns matched vulnerabilities
into security requirements bound to RQCODE patterns.

* :mod:`repro.vulndb.records` — record types and the CWE slice.
* :mod:`repro.vulndb.database` — the store, queries, and the bundled
  dataset (curated entries + deterministic synthetic expansion).
* :mod:`repro.vulndb.generator` — vulnerability -> requirement mapping.
* :mod:`repro.vulndb.poller` — feeds catalogue upserts into the live
  re-arm plane (:class:`~repro.reqs.stream.ReqStream` deltas).
"""

from repro.vulndb.records import (
    AffectedProduct,
    CWE_CATALOG,
    CweEntry,
    Severity,
    VulnRecord,
)
from repro.vulndb.database import VulnerabilityDatabase, bundled_database
from repro.vulndb.generator import (
    GeneratedRequirement,
    RequirementGenerator,
    SoftwareInventory,
)
from repro.vulndb.poller import VulnDbPoller

__all__ = [
    "AffectedProduct",
    "CWE_CATALOG",
    "CweEntry",
    "GeneratedRequirement",
    "RequirementGenerator",
    "Severity",
    "SoftwareInventory",
    "VulnDbPoller",
    "VulnRecord",
    "VulnerabilityDatabase",
    "bundled_database",
]
