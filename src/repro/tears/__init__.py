"""TEARS — independent guarded assertions (G/As) over timed logs.

TEARS "was introduced as a specification syntax for independent guarded
assertions" evaluated in the NAPKIN environment (D2.7 §2.2.1).  A G/A
pairs a *guard* (when does the requirement apply?) with an *assertion*
(what must hold?), both boolean expressions over logged signals; G/As
are independent — each is judged on its own against a log, post-hoc.

* :mod:`repro.tears.expr` — the signal-expression language (arithmetic,
  comparisons, boolean connectives) and its parser.
* :mod:`repro.tears.ga` — :class:`GuardedAssertion` with WITHIN/FOR
  timing modifiers, verdicts (PASSED/FAILED/VACUOUS) and failure detail.
* :mod:`repro.tears.trace` — timed traces (samples of signal values).
* :mod:`repro.tears.parser` — the G/A text syntax
  (``GA "name": WHEN <expr> THEN <expr> [WITHIN t] [FOR t]``).
* :mod:`repro.tears.session` — the NAPKIN session-directory layout
  (``GA/``, ``generated/``, ``log/``) and the ANALYSIS overview report.
"""

from repro.tears.expr import Expr, ExprParseError, parse_expr
from repro.tears.ga import GaResult, GaVerdict, GuardedAssertion
from repro.tears.parser import parse_ga, parse_ga_file
from repro.tears.session import SessionDirectory
from repro.tears.trace import Sample, TimedTrace

__all__ = [
    "Expr",
    "ExprParseError",
    "GaResult",
    "GaVerdict",
    "GuardedAssertion",
    "Sample",
    "SessionDirectory",
    "TimedTrace",
    "parse_expr",
    "parse_ga",
    "parse_ga_file",
]
