"""TEARS G/A text syntax.

One G/A per declaration::

    GA "brake_response":
        WHEN speed > 50 and brake == 1
        THEN deceleration >= 2
        WITHIN 3
        FOR 1.5

Keywords are case-insensitive; the clauses after ``WHEN``/``THEN`` are
signal expressions (:mod:`repro.tears.expr`); ``WITHIN`` and ``FOR``
take numeric time offsets and are optional.  A file may hold any number
of declarations plus blank lines and ``#`` comments — this is the format
stored in the session's ``GA/`` directory.
"""

import re
from typing import List

from repro.tears.expr import parse_expr
from repro.tears.ga import GuardedAssertion

_HEADER = re.compile(r'^\s*GA\s+"(?P<name>[^"]+)"\s*:\s*$', re.IGNORECASE)
_CLAUSE = re.compile(
    r"^\s*(?P<keyword>WHEN|THEN|WITHIN|FOR)\b\s*(?P<body>.*?)\s*$",
    re.IGNORECASE,
)


class GaSyntaxError(ValueError):
    """Malformed G/A declaration, with the offending line number."""

    def __init__(self, message: str, line_number: int):
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


def parse_ga_file(text: str) -> List[GuardedAssertion]:
    """Parse every G/A declaration in *text*."""
    declarations: List[GuardedAssertion] = []
    current = None  # (name, clauses dict, header line)
    line_number = 0

    def finish(pending, at_line: int) -> None:
        if pending is None:
            return
        name, clauses, header_line = pending
        if "WHEN" not in clauses:
            raise GaSyntaxError(f'GA "{name}" lacks a WHEN clause',
                                header_line)
        if "THEN" not in clauses:
            raise GaSyntaxError(f'GA "{name}" lacks a THEN clause',
                                header_line)
        declarations.append(GuardedAssertion(
            name=name,
            guard=parse_expr(clauses["WHEN"]),
            assertion=parse_expr(clauses["THEN"]),
            within=float(clauses["WITHIN"]) if "WITHIN" in clauses else None,
            hold_for=float(clauses["FOR"]) if "FOR" in clauses else None,
        ))

    for raw_line in text.splitlines():
        line_number += 1
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        header = _HEADER.match(raw_line)
        if header:
            finish(current, line_number)
            current = (header.group("name"), {}, line_number)
            continue
        clause = _CLAUSE.match(raw_line)
        if clause:
            if current is None:
                raise GaSyntaxError(
                    f"{clause.group('keyword')} outside a GA declaration",
                    line_number)
            keyword = clause.group("keyword").upper()
            name, clauses, header_line = current
            if keyword in clauses:
                raise GaSyntaxError(
                    f'duplicate {keyword} in GA "{name}"', line_number)
            clauses[keyword] = clause.group("body")
            continue
        raise GaSyntaxError(f"unrecognized line: {line!r}", line_number)
    finish(current, line_number)
    return declarations


def parse_ga(text: str) -> GuardedAssertion:
    """Parse exactly one G/A declaration."""
    declarations = parse_ga_file(text)
    if len(declarations) != 1:
        raise ValueError(
            f"expected exactly one GA declaration, found {len(declarations)}"
        )
    return declarations[0]
