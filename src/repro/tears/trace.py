"""Timed traces: the logs that G/As are evaluated against.

A trace is an ordered sequence of :class:`Sample` records — a timestamp
plus a snapshot of signal values.  The NAPKIN back end reads these from
``session/log``; here they are built in memory or loaded from the same
simple ``LOGDATA`` text format (one ``time signal=value ...`` line per
sample).
"""

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence


@dataclass(frozen=True)
class Sample:
    """One log record: timestamp plus signal snapshot."""

    time: float
    values: Dict[str, float] = field(default_factory=dict)

    def get(self, signal: str) -> float:
        return self.values[signal]


class TimedTrace:
    """Ordered samples with monotone non-decreasing timestamps."""

    def __init__(self, samples: Sequence[Sample] = ()):
        self._samples: List[Sample] = []
        for sample in samples:
            self.append(sample)

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self) -> Iterator[Sample]:
        return iter(self._samples)

    def __getitem__(self, index):
        return self._samples[index]

    def append(self, sample: Sample) -> None:
        if self._samples and sample.time < self._samples[-1].time:
            raise ValueError(
                f"timestamps must be non-decreasing: {sample.time} after "
                f"{self._samples[-1].time}"
            )
        self._samples.append(sample)

    def record(self, time: float, **values: float) -> Sample:
        """Convenience append: ``trace.record(1.5, speed=52, brake=1)``."""
        sample = Sample(time=time, values={k: float(v) for k, v in
                                           values.items()})
        self.append(sample)
        return sample

    def window(self, start: float, end: float) -> List[Sample]:
        """Samples with ``start <= time <= end``."""
        return [s for s in self._samples if start <= s.time <= end]

    @property
    def duration(self) -> float:
        if not self._samples:
            return 0.0
        return self._samples[-1].time - self._samples[0].time

    def signals(self) -> List[str]:
        names = set()
        for sample in self._samples:
            names.update(sample.values)
        return sorted(names)

    # -- LOGDATA text round-trip ---------------------------------------------

    def to_logdata(self) -> str:
        """Serialize in the ``LOGDATA`` line format."""
        lines = []
        for sample in self._samples:
            pairs = " ".join(
                f"{name}={value:g}"
                for name, value in sorted(sample.values.items())
            )
            lines.append(f"{sample.time:g} {pairs}".rstrip())
        return "\n".join(lines)

    @classmethod
    def from_logdata(cls, text: str) -> "TimedTrace":
        """Parse the ``LOGDATA`` line format; blank lines and ``#``
        comments are skipped."""
        trace = cls()
        for line_number, line in enumerate(text.splitlines(), start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            try:
                time = float(parts[0])
            except ValueError as error:
                raise ValueError(
                    f"line {line_number}: bad timestamp {parts[0]!r}"
                ) from error
            values = {}
            for pair in parts[1:]:
                name, _, raw = pair.partition("=")
                if not raw:
                    raise ValueError(
                        f"line {line_number}: bad pair {pair!r}")
                values[name] = float(raw)
            trace.append(Sample(time=time, values=values))
        return trace
