"""Signal-expression language for TEARS guards and assertions.

Expressions are evaluated against one sample (a mapping of signal name
to numeric value).  Grammar::

    or_expr   := and_expr ( 'or' and_expr )*
    and_expr  := not_expr ( 'and' not_expr )*
    not_expr  := 'not' not_expr | comparison
    comparison:= sum ( ('=='|'!='|'<='|'>='|'<'|'>') sum )?
    sum       := term ( ('+'|'-') term )*
    term      := factor ( ('*'|'/') factor )*
    factor    := NUMBER | IDENT | 'abs' '(' or_expr ')' | '(' or_expr ')'
                 | '-' factor

Booleans are numbers (0 is false); comparisons yield 0/1, so guards and
assertions compose arithmetically the way test engineers expect from
measurement tooling.
"""

import re
from typing import Dict, List, Optional, Tuple

Number = float


class ExprParseError(ValueError):
    """Malformed expression text."""


class Expr:
    """A parsed expression: evaluate against a sample mapping.

    Unknown signals raise :class:`KeyError` with the signal name, so a
    typo in a G/A fails loudly instead of silently passing.
    """

    def __init__(self, source: str, root):
        self.source = source
        self._root = root

    def evaluate(self, sample: Dict[str, Number]) -> Number:
        return _eval(self._root, sample)

    def holds(self, sample: Dict[str, Number]) -> bool:
        return bool(self.evaluate(sample))

    def signals(self) -> Tuple[str, ...]:
        """All signal names referenced, sorted."""
        names = set()
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node[0] == "signal":
                names.add(node[1])
            else:
                stack.extend(child for child in node[1:]
                             if isinstance(child, tuple))
        return tuple(sorted(names))

    def __str__(self) -> str:
        return self.source


_TOKEN = re.compile(
    r"\s*(?:(?P<num>\d+(?:\.\d+)?)"
    r"|(?P<op>==|!=|<=|>=|<|>|\+|-|\*|/|\(|\))"
    r"|(?P<word>[A-Za-z_]\w*))"
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            if text[position:].strip():
                raise ExprParseError(
                    f"bad expression near {text[position:]!r}")
            break
        for kind in ("num", "op", "word"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    def peek(self) -> Optional[Tuple[str, str]]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> Tuple[str, str]:
        token = self.peek()
        if token is None:
            raise ExprParseError(f"unexpected end of expression: {self.text!r}")
        self.index += 1
        return token

    def accept(self, kind: str, *values: str) -> Optional[str]:
        token = self.peek()
        if token is not None and token[0] == kind and token[1] in values:
            self.index += 1
            return token[1]
        return None

    # grammar

    def parse(self):
        node = self.or_expr()
        if self.peek() is not None:
            raise ExprParseError(
                f"trailing tokens in expression: {self.text!r}")
        return node

    def or_expr(self):
        node = self.and_expr()
        while self.accept("word", "or"):
            node = ("or", node, self.and_expr())
        return node

    def and_expr(self):
        node = self.not_expr()
        while self.accept("word", "and"):
            node = ("and", node, self.not_expr())
        return node

    def not_expr(self):
        if self.accept("word", "not"):
            return ("not", self.not_expr())
        return self.comparison()

    def comparison(self):
        node = self.sum_()
        operator = self.accept("op", "==", "!=", "<=", ">=", "<", ">")
        if operator:
            return ("cmp", operator, node, self.sum_())
        return node

    def sum_(self):
        node = self.term()
        while True:
            operator = self.accept("op", "+", "-")
            if not operator:
                return node
            node = ("arith", operator, node, self.term())

    def term(self):
        node = self.factor()
        while True:
            operator = self.accept("op", "*", "/")
            if not operator:
                return node
            node = ("arith", operator, node, self.factor())

    def factor(self):
        if self.accept("op", "-"):
            return ("neg", self.factor())
        if self.accept("op", "("):
            node = self.or_expr()
            if not self.accept("op", ")"):
                raise ExprParseError(f"missing ')' in {self.text!r}")
            return node
        kind, value = self.next()
        if kind == "num":
            return ("const", float(value))
        if kind == "word":
            if value == "abs":
                if not self.accept("op", "("):
                    raise ExprParseError("abs requires parentheses")
                node = self.or_expr()
                if not self.accept("op", ")"):
                    raise ExprParseError(f"missing ')' in {self.text!r}")
                return ("abs", node)
            if value in ("true", "false"):
                return ("const", 1.0 if value == "true" else 0.0)
            return ("signal", value)
        raise ExprParseError(f"unexpected token {value!r} in {self.text!r}")


def _eval(node, sample: Dict[str, Number]) -> Number:
    kind = node[0]
    if kind == "const":
        return node[1]
    if kind == "signal":
        if node[1] not in sample:
            raise KeyError(node[1])
        return float(sample[node[1]])
    if kind == "neg":
        return -_eval(node[1], sample)
    if kind == "abs":
        return abs(_eval(node[1], sample))
    if kind == "not":
        return 0.0 if _eval(node[1], sample) else 1.0
    if kind == "and":
        return 1.0 if (_eval(node[1], sample) and _eval(node[2], sample)) \
            else 0.0
    if kind == "or":
        return 1.0 if (_eval(node[1], sample) or _eval(node[2], sample)) \
            else 0.0
    if kind == "cmp":
        left, right = _eval(node[2], sample), _eval(node[3], sample)
        return 1.0 if {
            "==": left == right,
            "!=": left != right,
            "<=": left <= right,
            ">=": left >= right,
            "<": left < right,
            ">": left > right,
        }[node[1]] else 0.0
    if kind == "arith":
        left, right = _eval(node[2], sample), _eval(node[3], sample)
        if node[1] == "+":
            return left + right
        if node[1] == "-":
            return left - right
        if node[1] == "*":
            return left * right
        if right == 0:
            raise ZeroDivisionError(f"division by zero in expression")
        return left / right
    raise TypeError(f"unknown node kind {kind!r}")


def parse_expr(text: str) -> Expr:
    """Parse *text* into an :class:`Expr`."""
    return Expr(text.strip(), _Parser(text).parse())
