"""The NAPKIN session directory.

D2.7 §2.2.2 documents the layout the TEARS back end works against::

    session
    ├── GA
    │   └── TEARS requirements.txt
    ├── generated
    │   └── ANALYSIS_overview.html
    ├── log
    │   └── Expert-Sessions
    │       └── LOGDATA.TXT
    ├── main_definitions.ga
    └── req

:class:`SessionDirectory` creates and round-trips that structure on a
real filesystem path, evaluates every stored G/A against every stored
log, and renders the ANALYSIS overview.
"""

from pathlib import Path
from typing import Dict, List, Sequence

from repro.tears.ga import GaResult, GaVerdict, GuardedAssertion
from repro.tears.parser import parse_ga_file
from repro.tears.trace import TimedTrace


class SessionDirectory:
    """A TEARS working session rooted at a directory."""

    GA_FILE = "TEARS requirements.txt"
    OVERVIEW_FILE = "ANALYSIS_overview.html"

    def __init__(self, root: Path):
        self.root = Path(root)

    # -- layout -------------------------------------------------------------------

    @property
    def ga_dir(self) -> Path:
        return self.root / "GA"

    @property
    def generated_dir(self) -> Path:
        return self.root / "generated"

    @property
    def log_dir(self) -> Path:
        return self.root / "log" / "Expert-Sessions"

    @property
    def req_dir(self) -> Path:
        return self.root / "req"

    def initialize(self) -> "SessionDirectory":
        """Create the directory skeleton (idempotent)."""
        for directory in (self.ga_dir, self.generated_dir, self.log_dir,
                          self.req_dir):
            directory.mkdir(parents=True, exist_ok=True)
        definitions = self.root / "main_definitions.ga"
        if not definitions.exists():
            definitions.write_text("# TEARS main definitions\n")
        return self

    # -- G/As ------------------------------------------------------------------------

    def write_gas(self, gas: Sequence[GuardedAssertion]) -> Path:
        """Store G/As in the session's requirements file."""
        path = self.ga_dir / self.GA_FILE
        path.write_text("\n\n".join(_render_ga(ga) for ga in gas) + "\n")
        return path

    def load_gas(self) -> List[GuardedAssertion]:
        path = self.ga_dir / self.GA_FILE
        if not path.exists():
            return []
        return parse_ga_file(path.read_text())

    # -- logs -------------------------------------------------------------------------

    def write_log(self, name: str, trace: TimedTrace) -> Path:
        path = self.log_dir / f"{name}.TXT"
        path.write_text(trace.to_logdata() + "\n")
        return path

    def load_logs(self) -> Dict[str, TimedTrace]:
        logs = {}
        if self.log_dir.exists():
            for path in sorted(self.log_dir.glob("*.TXT")):
                logs[path.stem] = TimedTrace.from_logdata(path.read_text())
        return logs

    # -- analysis ----------------------------------------------------------------------

    def analyze(self) -> Dict[str, List[GaResult]]:
        """Evaluate every stored G/A against every stored log.

        Returns log name -> per-G/A results, and writes the ANALYSIS
        overview into ``generated/``.
        """
        gas = self.load_gas()
        logs = self.load_logs()
        results = {
            log_name: [ga.evaluate(trace) for ga in gas]
            for log_name, trace in logs.items()
        }
        overview = render_overview(results)
        self.generated_dir.mkdir(parents=True, exist_ok=True)
        (self.generated_dir / self.OVERVIEW_FILE).write_text(overview)
        return results


def _render_ga(ga: GuardedAssertion) -> str:
    lines = [f'GA "{ga.name}":',
             f"    WHEN {ga.guard}",
             f"    THEN {ga.assertion}"]
    if ga.within is not None:
        lines.append(f"    WITHIN {ga.within:g}")
    if ga.hold_for is not None:
        lines.append(f"    FOR {ga.hold_for:g}")
    return "\n".join(lines)


_VERDICT_COLOR = {
    GaVerdict.PASSED: "#2e7d32",
    GaVerdict.FAILED: "#c62828",
    GaVerdict.VACUOUS: "#f9a825",
}


def render_overview(results: Dict[str, List[GaResult]]) -> str:
    """Render the ANALYSIS_overview.html table."""
    rows = []
    for log_name in sorted(results):
        for result in results[log_name]:
            color = _VERDICT_COLOR[result.verdict]
            detail = "; ".join(f.reason for f in result.failures) or "-"
            rows.append(
                "<tr>"
                f"<td>{log_name}</td>"
                f"<td>{result.name}</td>"
                f"<td style='color:{color}'>{result.verdict.value}</td>"
                f"<td>{result.activations}</td>"
                f"<td>{detail}</td>"
                "</tr>"
            )
    body = "\n".join(rows)
    return (
        "<!DOCTYPE html>\n<html><head><title>TEARS analysis overview"
        "</title></head><body>\n"
        "<h1>ANALYSIS overview</h1>\n"
        "<table border='1'>\n"
        "<tr><th>Log</th><th>G/A</th><th>Verdict</th>"
        "<th>Activations</th><th>Detail</th></tr>\n"
        f"{body}\n</table>\n</body></html>\n"
    )
