"""Guarded assertions and their evaluation semantics.

A :class:`GuardedAssertion` is judged against a
:class:`~repro.tears.trace.TimedTrace` post-hoc:

* find every *rising edge* of the guard (a sample where the guard holds
  and it did not hold on the previous sample);
* for each activation, the assertion must hold — immediately when no
  timing modifier is present; within ``within`` time units (at some
  sample) when WITHIN is given; and continuously for ``hold_for`` time
  units after it first holds when FOR is given.

Verdicts:

* ``PASSED`` — at least one activation, all obligations met;
* ``FAILED`` — some obligation violated (details carried);
* ``VACUOUS`` — the guard never rose, so nothing was tested.  Vacuity
  is reported explicitly because a suite of all-vacuous G/As is the
  classic silent-testing failure.
"""

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.tears.expr import Expr
from repro.tears.trace import Sample, TimedTrace


class GaVerdict(enum.Enum):
    PASSED = "PASSED"
    FAILED = "FAILED"
    VACUOUS = "VACUOUS"


@dataclass
class GaFailure:
    """One violated obligation: where the guard rose and why it failed."""

    activation_time: float
    reason: str


@dataclass
class GaResult:
    """Evaluation outcome of one G/A on one trace."""

    name: str
    verdict: GaVerdict
    activations: int
    failures: List[GaFailure] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return self.verdict is GaVerdict.PASSED


@dataclass
class GuardedAssertion:
    """One independent guarded assertion.

    Attributes:
        name: Identifier for reports.
        guard: When the requirement applies (rising-edge triggered).
        assertion: What must hold.
        within: Optional response window — the assertion must hold at
            some sample within this many time units of the activation.
        hold_for: Optional hold window — once the assertion holds it
            must keep holding for this many time units.
    """

    name: str
    guard: Expr
    assertion: Expr
    within: Optional[float] = None
    hold_for: Optional[float] = None

    def evaluate(self, trace: TimedTrace) -> GaResult:
        """Judge this G/A against *trace*."""
        activations = self._rising_edges(trace)
        if not activations:
            return GaResult(name=self.name, verdict=GaVerdict.VACUOUS,
                            activations=0)
        failures: List[GaFailure] = []
        for index, sample in activations:
            failure = self._check_activation(trace, index, sample)
            if failure is not None:
                failures.append(failure)
        verdict = GaVerdict.FAILED if failures else GaVerdict.PASSED
        return GaResult(name=self.name, verdict=verdict,
                        activations=len(activations), failures=failures)

    # -- internals -------------------------------------------------------------

    def _rising_edges(self, trace: TimedTrace):
        edges = []
        previous = False
        for index, sample in enumerate(trace):
            current = self.guard.holds(sample.values)
            if current and not previous:
                edges.append((index, sample))
            previous = current
        return edges

    def _check_activation(self, trace: TimedTrace, index: int,
                          activation: Sample) -> Optional[GaFailure]:
        deadline = (activation.time + self.within
                    if self.within is not None else activation.time)
        satisfied_at: Optional[int] = None
        for j in range(index, len(trace)):
            sample = trace[j]
            if sample.time > deadline:
                break
            if self.assertion.holds(sample.values):
                satisfied_at = j
                break
        if satisfied_at is None:
            window = (f"within {self.within}" if self.within is not None
                      else "at activation")
            return GaFailure(
                activation_time=activation.time,
                reason=f"assertion never held {window}",
            )
        if self.hold_for is not None:
            hold_end = trace[satisfied_at].time + self.hold_for
            for j in range(satisfied_at, len(trace)):
                sample = trace[j]
                if sample.time > hold_end:
                    break
                if not self.assertion.holds(sample.values):
                    return GaFailure(
                        activation_time=activation.time,
                        reason=(
                            f"assertion broke at t={sample.time:g} before "
                            f"holding for {self.hold_for}"
                        ),
                    )
        return None

    def __str__(self) -> str:
        text = f'GA "{self.name}": WHEN {self.guard} THEN {self.assertion}'
        if self.within is not None:
            text += f" WITHIN {self.within:g}"
        if self.hold_for is not None:
            text += f" FOR {self.hold_for:g}"
        return text
