"""The specification-pattern taxonomy.

Dwyer's property specification patterns, as adopted by the PSP-UPPAAL
catalogue behind PROPAS.  Patterns are parameterized by atomic events
(proposition names); the LTL/TCTL mappings and observer builders consume
these records.

Occurrence patterns: :class:`Absence`, :class:`Universality`,
:class:`Existence`, :class:`BoundedExistence`.
Order patterns: :class:`Precedence`, :class:`Response`,
:class:`PrecedenceChain`, :class:`ResponseChain`.
Real-time extension: :class:`TimedResponse` (MTL bound, the workhorse
of security response requirements such as "alert within T of a
violation").
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class Pattern:
    """Base class; concrete patterns are frozen dataclasses so they can
    key mapping tables."""

    @property
    def kind(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class Absence(Pattern):
    """P never occurs (within the scope)."""

    p: str

    def __str__(self) -> str:
        return f"never {self.p}"


@dataclass(frozen=True)
class Universality(Pattern):
    """P holds continuously (within the scope)."""

    p: str

    def __str__(self) -> str:
        return f"always {self.p}"


@dataclass(frozen=True)
class Existence(Pattern):
    """P occurs at least once (within the scope)."""

    p: str

    def __str__(self) -> str:
        return f"eventually {self.p}"


@dataclass(frozen=True)
class BoundedExistence(Pattern):
    """P occurs at most *bound* times (within the scope).

    The catalogue (and this reproduction) fixes ``bound = 2``, the case
    Dwyer's published table spells out.
    """

    p: str
    bound: int = 2

    def __str__(self) -> str:
        return f"at most {self.bound} occurrences of {self.p}"


@dataclass(frozen=True)
class Precedence(Pattern):
    """S precedes P: P cannot occur before S has occurred."""

    p: str
    s: str

    def __str__(self) -> str:
        return f"{self.s} precedes {self.p}"


@dataclass(frozen=True)
class Response(Pattern):
    """S responds to P: every P is eventually followed by S."""

    p: str
    s: str

    def __str__(self) -> str:
        return f"{self.s} responds to {self.p}"


@dataclass(frozen=True)
class PrecedenceChain(Pattern):
    """The chain S, T precedes P (2-cause-1-effect chain)."""

    p: str
    s: str
    t: str

    def __str__(self) -> str:
        return f"{self.s},{self.t} precede {self.p}"


@dataclass(frozen=True)
class ResponseChain(Pattern):
    """The chain S, T responds to P (1-cause-2-effect chain)."""

    p: str
    s: str
    t: str

    def __str__(self) -> str:
        return f"{self.s},{self.t} respond to {self.p}"


@dataclass(frozen=True)
class TimedResponse(Pattern):
    """S responds to P within *bound* time units (MTL/TCTL extension).

    This is the formalization target of RQCODE's
    :class:`~repro.rqcode.temporal.GlobalResponseTimed` and the classic
    security-operations property ("raise an alert within T seconds of a
    policy violation").
    """

    p: str
    s: str
    bound: int

    def __str__(self) -> str:
        return f"{self.s} responds to {self.p} within {self.bound}"
