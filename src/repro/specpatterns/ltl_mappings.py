"""Pattern x scope -> LTL, per Dwyer's published mapping table.

Each supported combination returns a :class:`repro.ltl.formulas.Formula`
so the result plugs straight into the runtime monitor
(:class:`repro.ltl.monitor.LtlMonitor`) and LTLf evaluation — the same
artifact serves formalization (WP2) and operations monitoring (WP3).

Combinations the catalogue does not spell out (chains and bounded
existence outside the *globally* scope) raise
:class:`PatternScopeUnsupported`; the E5 coverage bench reports the
support matrix rather than pretending completeness.
"""

from typing import Callable, Dict, List, Tuple, Type

from repro.ltl.formulas import (
    Atom,
    Eventually as F,
    Formula,
    Globally as G,
    Next as X,
    Until,
    WeakUntil,
    implies,
    land,
    lnot,
    lor,
)
from repro.specpatterns.patterns import (
    Absence,
    BoundedExistence,
    Existence,
    Pattern,
    Precedence,
    PrecedenceChain,
    Response,
    ResponseChain,
    TimedResponse,
    Universality,
)
from repro.specpatterns.scopes import (
    AfterQ,
    AfterQUntilR,
    BeforeR,
    BetweenQAndR,
    Globally as GloballyScope,
    Scope,
)


class PatternScopeUnsupported(NotImplementedError):
    """The catalogue has no LTL mapping for this pattern/scope pair."""

    def __init__(self, pattern: Pattern, scope: Scope):
        super().__init__(f"no LTL mapping for ({pattern}) ({scope})")
        self.pattern = pattern
        self.scope = scope


def U(left: Formula, right: Formula) -> Formula:
    return Until(left, right)


def W(left: Formula, right: Formula) -> Formula:
    return WeakUntil(left, right)


def to_ltl(pattern: Pattern, scope: Scope) -> Formula:
    """The LTL formula for *pattern* within *scope*."""
    handler = _TABLE.get((type(pattern), type(scope)))
    if handler is None:
        raise PatternScopeUnsupported(pattern, scope)
    return handler(pattern, scope)


def supported_combinations() -> List[Tuple[Type[Pattern], Type[Scope]]]:
    """All (pattern class, scope class) pairs with an LTL mapping."""
    return sorted(_TABLE, key=lambda pair: (pair[0].__name__,
                                            pair[1].__name__))


# -- absence ---------------------------------------------------------------------

def _absence_global(pat: Absence, _: Scope) -> Formula:
    return G(lnot(Atom(pat.p)))


def _absence_before(pat: Absence, scope: BeforeR) -> Formula:
    p, r = Atom(pat.p), Atom(scope.r)
    return implies(F(r), U(lnot(p), r))


def _absence_after(pat: Absence, scope: AfterQ) -> Formula:
    p, q = Atom(pat.p), Atom(scope.q)
    return G(implies(q, G(lnot(p))))


def _absence_between(pat: Absence, scope: BetweenQAndR) -> Formula:
    p, q, r = Atom(pat.p), Atom(scope.q), Atom(scope.r)
    return G(implies(land(land(q, lnot(r)), F(r)), U(lnot(p), r)))


def _absence_until(pat: Absence, scope: AfterQUntilR) -> Formula:
    p, q, r = Atom(pat.p), Atom(scope.q), Atom(scope.r)
    return G(implies(land(q, lnot(r)), W(lnot(p), r)))


# -- universality ------------------------------------------------------------------

def _universality_global(pat: Universality, _: Scope) -> Formula:
    return G(Atom(pat.p))


def _universality_before(pat: Universality, scope: BeforeR) -> Formula:
    p, r = Atom(pat.p), Atom(scope.r)
    return implies(F(r), U(p, r))


def _universality_after(pat: Universality, scope: AfterQ) -> Formula:
    p, q = Atom(pat.p), Atom(scope.q)
    return G(implies(q, G(p)))


def _universality_between(pat: Universality, scope: BetweenQAndR) -> Formula:
    p, q, r = Atom(pat.p), Atom(scope.q), Atom(scope.r)
    return G(implies(land(land(q, lnot(r)), F(r)), U(p, r)))


def _universality_until(pat: Universality, scope: AfterQUntilR) -> Formula:
    p, q, r = Atom(pat.p), Atom(scope.q), Atom(scope.r)
    return G(implies(land(q, lnot(r)), W(p, r)))


# -- existence ----------------------------------------------------------------------

def _existence_global(pat: Existence, _: Scope) -> Formula:
    return F(Atom(pat.p))


def _existence_before(pat: Existence, scope: BeforeR) -> Formula:
    p, r = Atom(pat.p), Atom(scope.r)
    return W(lnot(r), land(p, lnot(r)))


def _existence_after(pat: Existence, scope: AfterQ) -> Formula:
    p, q = Atom(pat.p), Atom(scope.q)
    return lor(G(lnot(q)), F(land(q, F(p))))


def _existence_between(pat: Existence, scope: BetweenQAndR) -> Formula:
    p, q, r = Atom(pat.p), Atom(scope.q), Atom(scope.r)
    return G(implies(land(q, lnot(r)), W(lnot(r), land(p, lnot(r)))))


def _existence_until(pat: Existence, scope: AfterQUntilR) -> Formula:
    p, q, r = Atom(pat.p), Atom(scope.q), Atom(scope.r)
    return G(implies(land(q, lnot(r)), U(lnot(r), land(p, lnot(r)))))


# -- bounded existence (bound = 2, globally) -------------------------------------------

def _bounded_existence_global(pat: BoundedExistence, _: Scope) -> Formula:
    if pat.bound != 2:
        raise PatternScopeUnsupported(pat, GloballyScope())
    p = Atom(pat.p)
    # (!p W (p W (!p W (p W G !p)))): at most two p-segments.
    return W(lnot(p), W(p, W(lnot(p), W(p, G(lnot(p))))))


# -- precedence ---------------------------------------------------------------------

def _precedence_global(pat: Precedence, _: Scope) -> Formula:
    p, s = Atom(pat.p), Atom(pat.s)
    return W(lnot(p), s)


def _precedence_before(pat: Precedence, scope: BeforeR) -> Formula:
    p, s, r = Atom(pat.p), Atom(pat.s), Atom(scope.r)
    return implies(F(r), U(lnot(p), lor(s, r)))


def _precedence_after(pat: Precedence, scope: AfterQ) -> Formula:
    p, s, q = Atom(pat.p), Atom(pat.s), Atom(scope.q)
    return lor(G(lnot(q)), F(land(q, W(lnot(p), s))))


def _precedence_between(pat: Precedence, scope: BetweenQAndR) -> Formula:
    p, s, q, r = Atom(pat.p), Atom(pat.s), Atom(scope.q), Atom(scope.r)
    return G(implies(land(land(q, lnot(r)), F(r)), U(lnot(p), lor(s, r))))


def _precedence_until(pat: Precedence, scope: AfterQUntilR) -> Formula:
    p, s, q, r = Atom(pat.p), Atom(pat.s), Atom(scope.q), Atom(scope.r)
    return G(implies(land(q, lnot(r)), W(lnot(p), lor(s, r))))


# -- response -----------------------------------------------------------------------

def _response_global(pat: Response, _: Scope) -> Formula:
    p, s = Atom(pat.p), Atom(pat.s)
    return G(implies(p, F(s)))


def _response_before(pat: Response, scope: BeforeR) -> Formula:
    p, s, r = Atom(pat.p), Atom(pat.s), Atom(scope.r)
    inner = implies(p, U(lnot(r), land(s, lnot(r))))
    return implies(F(r), U(inner, r))


def _response_after(pat: Response, scope: AfterQ) -> Formula:
    p, s, q = Atom(pat.p), Atom(pat.s), Atom(scope.q)
    return G(implies(q, G(implies(p, F(s)))))


def _response_between(pat: Response, scope: BetweenQAndR) -> Formula:
    p, s, q, r = Atom(pat.p), Atom(pat.s), Atom(scope.q), Atom(scope.r)
    inner = implies(p, U(lnot(r), land(s, lnot(r))))
    return G(implies(land(land(q, lnot(r)), F(r)), U(inner, r)))


def _response_until(pat: Response, scope: AfterQUntilR) -> Formula:
    p, s, q, r = Atom(pat.p), Atom(pat.s), Atom(scope.q), Atom(scope.r)
    inner = implies(p, U(lnot(r), land(s, lnot(r))))
    return G(implies(land(q, lnot(r)), W(inner, r)))


# -- chains (globally) -----------------------------------------------------------------

def _precedence_chain_global(pat: PrecedenceChain, _: Scope) -> Formula:
    p, s, t = Atom(pat.p), Atom(pat.s), Atom(pat.t)
    # <>p -> (!p U (s & !p & X(!p U t)))
    return implies(
        F(p),
        U(lnot(p), land(land(s, lnot(p)), X(U(lnot(p), t)))),
    )


def _response_chain_global(pat: ResponseChain, _: Scope) -> Formula:
    p, s, t = Atom(pat.p), Atom(pat.s), Atom(pat.t)
    # [](p -> <>(s & X<>t))
    return G(implies(p, F(land(s, X(F(t))))))


# -- timed response (LTL approximation: untimed response) ---------------------------------

def _timed_response_global(pat: TimedResponse, _: Scope) -> Formula:
    """Plain LTL cannot carry the bound; the untimed response is the
    standard abstraction (the bound lives in the TCTL mapping and the
    observer automaton)."""
    p, s = Atom(pat.p), Atom(pat.s)
    return G(implies(p, F(s)))


Handler = Callable[[Pattern, Scope], Formula]

_TABLE: Dict[Tuple[type, type], Handler] = {
    (Absence, GloballyScope): _absence_global,
    (Absence, BeforeR): _absence_before,
    (Absence, AfterQ): _absence_after,
    (Absence, BetweenQAndR): _absence_between,
    (Absence, AfterQUntilR): _absence_until,
    (Universality, GloballyScope): _universality_global,
    (Universality, BeforeR): _universality_before,
    (Universality, AfterQ): _universality_after,
    (Universality, BetweenQAndR): _universality_between,
    (Universality, AfterQUntilR): _universality_until,
    (Existence, GloballyScope): _existence_global,
    (Existence, BeforeR): _existence_before,
    (Existence, AfterQ): _existence_after,
    (Existence, BetweenQAndR): _existence_between,
    (Existence, AfterQUntilR): _existence_until,
    (BoundedExistence, GloballyScope): _bounded_existence_global,
    (Precedence, GloballyScope): _precedence_global,
    (Precedence, BeforeR): _precedence_before,
    (Precedence, AfterQ): _precedence_after,
    (Precedence, BetweenQAndR): _precedence_between,
    (Precedence, AfterQUntilR): _precedence_until,
    (Response, GloballyScope): _response_global,
    (Response, BeforeR): _response_before,
    (Response, AfterQ): _response_after,
    (Response, BetweenQAndR): _response_between,
    (Response, AfterQUntilR): _response_until,
    (PrecedenceChain, GloballyScope): _precedence_chain_global,
    (ResponseChain, GloballyScope): _response_chain_global,
    (TimedResponse, GloballyScope): _timed_response_global,
}
