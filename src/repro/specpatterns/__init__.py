"""Specification patterns (PSP) with LTL/TCTL mappings and observers.

PROPAS "provides the necessary means for generating formal system
specifications (CTL, TCTL) based on Specification Patterns", drawing on
the PSP-UPPAAL catalogue of Dwyer-style patterns implemented as observer
automata (D2.7 §2.2.1).  This package reproduces that stack:

* :mod:`repro.specpatterns.patterns` — the pattern taxonomy (occurrence
  and order patterns, plus the timed-response extension).
* :mod:`repro.specpatterns.scopes` — the five Dwyer scopes.
* :mod:`repro.specpatterns.ltl_mappings` — pattern x scope -> LTL
  formula (the published mapping table).
* :mod:`repro.specpatterns.tctl_mappings` — pattern -> TCTL query
  strings for the zone-graph checker.
* :mod:`repro.specpatterns.observers` — observer timed automata per
  pattern, composable with a system network for verification.
"""

from repro.specpatterns.patterns import (
    Absence,
    BoundedExistence,
    Existence,
    Pattern,
    Precedence,
    PrecedenceChain,
    Response,
    ResponseChain,
    TimedResponse,
    Universality,
)
from repro.specpatterns.scopes import (
    AfterQ,
    AfterQUntilR,
    BeforeR,
    BetweenQAndR,
    Globally,
    Scope,
)
from repro.specpatterns.ltl_mappings import (
    PatternScopeUnsupported,
    supported_combinations,
    to_ltl,
)
from repro.specpatterns.tctl_mappings import to_tctl
from repro.specpatterns.observers import ObserverSpec, build_observer

__all__ = [
    "Absence",
    "AfterQ",
    "AfterQUntilR",
    "BeforeR",
    "BetweenQAndR",
    "BoundedExistence",
    "Existence",
    "Globally",
    "ObserverSpec",
    "Pattern",
    "PatternScopeUnsupported",
    "Precedence",
    "PrecedenceChain",
    "Response",
    "ResponseChain",
    "Scope",
    "TimedResponse",
    "Universality",
    "build_observer",
    "supported_combinations",
    "to_ltl",
    "to_tctl",
]
