"""The five Dwyer scopes.

A scope delimits the trace segment over which a pattern must hold:
globally, before the first R, after the first Q, between any Q and the
following R, and after any Q until the following R (the open-ended
variant of *between*).
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class Scope:
    """Base class for scopes."""

    @property
    def kind(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class Globally(Scope):
    """The whole trace."""

    def __str__(self) -> str:
        return "globally"


@dataclass(frozen=True)
class BeforeR(Scope):
    """Up to (excluding) the first occurrence of R."""

    r: str

    def __str__(self) -> str:
        return f"before {self.r}"


@dataclass(frozen=True)
class AfterQ(Scope):
    """From the first occurrence of Q onwards."""

    q: str

    def __str__(self) -> str:
        return f"after {self.q}"


@dataclass(frozen=True)
class BetweenQAndR(Scope):
    """Every segment from a Q to the next R (the R must occur)."""

    q: str
    r: str

    def __str__(self) -> str:
        return f"between {self.q} and {self.r}"


@dataclass(frozen=True)
class AfterQUntilR(Scope):
    """Every segment from a Q to the next R, or to the end of the trace
    when no R follows (the obligation persists)."""

    q: str
    r: str

    def __str__(self) -> str:
        return f"after {self.q} until {self.r}"
