"""Pattern -> TCTL query strings (the PROPAS output format).

PROPAS emits CTL/TCTL for "various model checkers such as UPPAAL".  The
strings below use the observer convention: the system under verification
emits the pattern's events as channels, the generated observer (see
:mod:`repro.specpatterns.observers`) tracks them, and the query inspects
the observer's locations — which is exactly how the PSP-UPPAAL templates
are meant to be checked.

Two flavours per pattern:

* ``to_tctl(pattern, scope)`` — the direct TCTL formula over event
  atoms, suitable for documentation and for checkers with full TCTL.
* ``observer_query(pattern)`` — the query to run against the composed
  observer network with this package's zone-graph checker.
"""

from typing import Optional

from repro.specpatterns.patterns import (
    Absence,
    BoundedExistence,
    Existence,
    Pattern,
    Precedence,
    PrecedenceChain,
    Response,
    ResponseChain,
    TimedResponse,
    Universality,
)
from repro.specpatterns.scopes import (
    AfterQ,
    AfterQUntilR,
    BeforeR,
    BetweenQAndR,
    Globally,
    Scope,
)


def to_tctl(pattern: Pattern, scope: Optional[Scope] = None) -> str:
    """Render *pattern* (within *scope*, default globally) as TCTL text."""
    scope = scope if scope is not None else Globally()
    body = _pattern_body(pattern)
    return _wrap_scope(body, scope)


def _pattern_body(pattern: Pattern) -> str:
    if isinstance(pattern, Absence):
        return f"A[] not {pattern.p}"
    if isinstance(pattern, Universality):
        return f"A[] {pattern.p}"
    if isinstance(pattern, Existence):
        return f"A<> {pattern.p}"
    if isinstance(pattern, BoundedExistence):
        return f"A[] (count({pattern.p}) <= {pattern.bound})"
    if isinstance(pattern, Precedence):
        return f"A[] ({pattern.p} imply seen({pattern.s}))"
    if isinstance(pattern, Response):
        return f"{pattern.p} --> {pattern.s}"
    if isinstance(pattern, TimedResponse):
        return (
            f"A[] ({pattern.p} imply A<>[0,{pattern.bound}] {pattern.s})"
        )
    if isinstance(pattern, PrecedenceChain):
        return (
            f"A[] ({pattern.p} imply seen({pattern.s}) and "
            f"seen_after({pattern.t}, {pattern.s}))"
        )
    if isinstance(pattern, ResponseChain):
        return f"{pattern.p} --> ({pattern.s} and A<> {pattern.t})"
    raise TypeError(f"unknown pattern: {pattern!r}")


def _wrap_scope(body: str, scope: Scope) -> str:
    if isinstance(scope, Globally):
        return body
    if isinstance(scope, BeforeR):
        return f"before({scope.r}): {body}"
    if isinstance(scope, AfterQ):
        return f"after({scope.q}): {body}"
    if isinstance(scope, BetweenQAndR):
        return f"between({scope.q},{scope.r}): {body}"
    if isinstance(scope, AfterQUntilR):
        return f"after_until({scope.q},{scope.r}): {body}"
    raise TypeError(f"unknown scope: {scope!r}")


def observer_query(pattern: Pattern, observer_name: str = "Obs") -> str:
    """The zone-checker query for the composed observer network.

    Safety-style patterns reduce to ``A[] not Obs.err``; existence
    reduces to liveness on the observer's ``done`` location.
    """
    if isinstance(pattern, (Absence, Precedence, PrecedenceChain,
                            TimedResponse, Universality, BoundedExistence)):
        return f"A[] not {observer_name}.err"
    if isinstance(pattern, Existence):
        return f"A<> {observer_name}.done"
    if isinstance(pattern, (Response, ResponseChain)):
        return f"{observer_name}.waiting --> {observer_name}.idle"
    raise TypeError(f"unknown pattern: {pattern!r}")
